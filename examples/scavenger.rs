//! The Scavenger at work: wreck a disk six ways, recover everything.
//!
//! ```text
//! cargo run --example scavenger
//! ```
//!
//! Reproduces the §3.5 story: a file system is damaged — stale allocation
//! map after a crash, scrambled links, smashed directory, an unreadable
//! sector, a lost directory entry — and a single scavenge reconstructs
//! every hint from the absolutes. Then the *compacting* scavenger makes
//! the surviving files consecutive and we measure the sequential-read
//! speedup the paper promises.

use alto::fs::names::PageName;
use alto::prelude::*;

fn main() {
    let clock = SimClock::new();
    let trace = Trace::new();
    let drive = DiskDrive::with_formatted_pack(clock.clone(), trace, DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).expect("format");
    let root = fs.root_dir();

    // Build a small population of files.
    println!("Creating files...");
    let mut files = Vec::new();
    for i in 0..8 {
        let name = format!("doc-{i}.txt");
        let f = dir::create_named_file(&mut fs, root, &name).unwrap();
        let body = format!("contents of document {i}").repeat(40 + i * 13);
        fs.write_file(f, body.as_bytes()).unwrap();
        files.push((name, body));
    }

    // --- Damage 1: lose a directory entry (the file itself survives).
    dir::remove(&mut fs, root, "doc-3.txt").unwrap();
    println!("damage: removed the directory entry for doc-3.txt");

    // --- Damage 2: scramble a file's links on the medium.
    let victim = dir::lookup(&mut fs, root, "doc-1.txt").unwrap().unwrap();
    let (leader_label, _) = fs.read_page(victim.leader_page()).unwrap();
    let p1 = leader_label.next;
    {
        let sector = fs.disk_mut().pack_mut().unwrap().sector_mut(p1).unwrap();
        let mut label = sector.decoded_label();
        label.next = DiskAddress(4000);
        sector.label = label.encode();
    }
    println!("damage: scrambled doc-1.txt's page links");

    // --- Damage 3: an unreadable sector in doc-5.txt.
    let victim = dir::lookup(&mut fs, root, "doc-5.txt").unwrap().unwrap();
    let (l, _) = fs.read_page(victim.leader_page()).unwrap();
    let (l2, _) = fs.read_page(PageName::new(victim.fv, 1, l.next)).unwrap();
    fs.disk_mut().pack_mut().unwrap().damage(l2.next);
    println!("damage: media failure under doc-5.txt page 2");

    // --- Damage 4: a stale entry address for doc-6.txt.
    let f6 = dir::lookup(&mut fs, root, "doc-6.txt").unwrap().unwrap();
    dir::insert(
        &mut fs,
        root,
        "doc-6.txt",
        alto::fs::FileFullName::new(f6.fv, DiskAddress(4500)),
    )
    .unwrap();
    println!("damage: doc-6.txt's directory entry points at the wrong sector");

    // --- Damage 5: crash with a stale allocation map (no unmount).
    let disk = fs.crash();
    println!("damage: crashed without flushing the allocation map\n");

    // --- Recovery. ------------------------------------------------------
    println!("Running the Scavenger...");
    let t0 = clock.now();
    let (mut fs, report) = Scavenger::rebuild(disk).expect("scavenge");
    println!("  finished in {} of simulated time", clock.now() - t0);
    println!(
        "  scanned {} sectors; {} files, {} live pages, {} free pages",
        report.sectors_scanned, report.files, report.live_pages, report.free_pages
    );
    println!(
        "  repaired {} links, fixed {} entries, dropped {}, adopted {} orphans, {} bad pages",
        report.links_repaired,
        report.entries_fixed,
        report.entries_dropped,
        report.orphans_adopted,
        report.bad_pages
    );

    // Verify every file (doc-5 is truncated at the dead sector; the rest
    // must be byte-identical).
    let root = fs.root_dir();
    for (name, body) in &files {
        let found = dir::lookup(&mut fs, root, name).unwrap();
        match found {
            Some(f) => {
                let bytes = fs.read_file(f).unwrap();
                if name == "doc-5.txt" {
                    assert!(body.as_bytes().starts_with(&bytes));
                    println!(
                        "  {name}: truncated to {} bytes (media damage)",
                        bytes.len()
                    );
                } else {
                    assert_eq!(bytes, body.as_bytes(), "{name} corrupted!");
                    println!("  {name}: intact ({} bytes)", bytes.len());
                }
            }
            None => panic!("{name} was lost!"),
        }
    }

    // --- The compacting scavenger (§3.5). -------------------------------
    // Scatter one file across the whole platter first (months of editing
    // in one call), then measure the order-of-magnitude claim.
    println!("\nMeasuring sequential read before/after compaction...");
    let f = dir::lookup(&mut fs, root, "doc-7.txt").unwrap().unwrap();
    alto_bench::scatter_file(&mut fs, f, 2026);
    let t0 = clock.now();
    fs.read_file(f).unwrap();
    let scattered = clock.now() - t0;

    let report = Compactor::run(&mut fs).expect("compact");
    println!(
        "  compaction moved {} pages in {} cycles ({} files now consecutive)",
        report.pages_moved, report.cycles, report.consecutive_files
    );

    let root = fs.root_dir();
    let f = dir::lookup(&mut fs, root, "doc-7.txt").unwrap().unwrap();
    let t0 = clock.now();
    fs.read_file(f).unwrap();
    let compacted = clock.now() - t0;
    println!(
        "  sequential read: {scattered} scattered -> {compacted} consecutive ({:.1}x)",
        scattered.as_nanos() as f64 / compacted.as_nanos() as f64
    );
}
