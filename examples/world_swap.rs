//! World swapping: checkpointing, debugging, and the boot button (§4).
//!
//! ```text
//! cargo run --example world_swap
//! ```
//!
//! Three vignettes from the paper:
//!
//! 1. **Checkpointing** — a long computation saves its state; the machine
//!    "fails"; the computation resumes from the checkpoint.
//! 2. **Debugging** — a program traps to `OutLoad`; a debugger (here,
//!    Rust) examines and patches the saved world, then resumes it.
//! 3. **Bootstrapping** — the patched world is installed as the boot
//!    file; the hardware boot button restores it with no directory help.

use alto::os::swap::{FLAG_ADDR, MESSAGE_ADDR};
use alto::prelude::*;

fn main() {
    let mut os = alto::fresh_alto();
    let clock = os.machine.clock().clone();

    // A long-running computation: sums 1..=N, checkpointing via OutLoad.
    let checkpoint_code = alto::os::syscalls::SysCall::OutLoad.code();
    let source = format!(
        r#"
        ; AC2 = running sum, counter in memory
loop:   lda 0, counter
        add 0, 2            ; sum += counter
        dsz counter
        jmp loop
        ; checkpoint before "publishing"
        lda 0, namep
        trap 0, {checkpoint_code}
        ; both branches continue here: store the sum and halt
        sta 2, 0o300
        halt
counter: .word 100
namep:   .word name
name:    .str "Checkpoint.state"
        "#
    );
    os.store_program("sum.run", &source).expect("store");

    println!("Running the computation (it checkpoints itself)...");
    os.run_program("sum.run", 1_000_000).expect("run");
    let sum = os.machine.mem.read(0o300);
    println!("  sum(1..=100) = {sum} (expected 5050)");
    assert_eq!(sum, 5050);

    // --- 1. Checkpoint recovery. ----------------------------------------
    println!("\nSimulating a failure, then resuming from the checkpoint...");
    os.machine.mem.write(0o300, 0); // the failure eats the result
    os.machine.pc = 0;
    os.in_load_named("Checkpoint.state", &[0; MESSAGE_WORDS])
        .expect("restore checkpoint");
    // The restored world resumes just after its OutLoad trap, with the
    // written flag false.
    assert_eq!(os.machine.mem.read(FLAG_ADDR), 0);
    os.run_machine(10_000).expect("resume");
    println!("  recomputed after restore: {}", os.machine.mem.read(0o300));
    assert_eq!(os.machine.mem.read(0o300), 5050);

    // --- 2. The debugger examines and patches the saved world. ----------
    println!("\nPlaying debugger on the checkpoint file...");
    let root = os.fs.root_dir();
    let ckpt = dir::lookup(&mut os.fs, root, "Checkpoint.state")
        .unwrap()
        .unwrap();
    let bytes = os.fs.read_file(ckpt).unwrap();
    let words = alto::fs::file::bytes_to_words(&bytes);
    let mut state = MachineState::decode(&words).expect("decode state");
    println!(
        "  saved world: PC={:#o} AC2(sum)={} carry={}",
        state.pc, state.ac[2], state.carry
    );
    // Patch the sum in the sleeping world — the debugger "alters the state
    // of the faulty program by ... writing portions of the file" (§4).
    state.ac[2] = 4242;
    let bytes = alto::fs::file::words_to_bytes(&state.encode());
    os.fs.write_file(ckpt, &bytes).unwrap();
    os.in_load_named("Checkpoint.state", &[7; MESSAGE_WORDS])
        .unwrap();
    assert_eq!(os.machine.mem.read(MESSAGE_ADDR), 7, "message delivered");
    os.run_machine(10_000).expect("resume patched");
    println!(
        "  resumed patched world: result = {}",
        os.machine.mem.read(0o300)
    );
    assert_eq!(os.machine.mem.read(0o300), 4242);

    // --- 3. The boot button. ---------------------------------------------
    println!("\nInstalling the current world as the boot file...");
    os.machine.ac[1] = 0xB007;
    let t0 = clock.now();
    os.install_boot_file().expect("install boot");
    println!("  installed in {}", clock.now() - t0);

    // Someone scrambles every directory; the boot button does not care.
    let root = os.fs.root_dir();
    os.fs.write_file(root, &[0xFF; 128]).unwrap();
    os.machine.ac[1] = 0;
    let t0 = clock.now();
    os.bootstrap().expect("boot");
    println!(
        "  boot button restored the world in {} (AC1 = {:#06x})",
        clock.now() - t0,
        os.machine.ac[1]
    );
    assert_eq!(os.machine.ac[1], 0xB007);

    println!("\ntotal simulated time: {}", clock.now());
}
