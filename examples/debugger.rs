//! Swat: debugging by world swap (§4).
//!
//! ```text
//! cargo run --example debugger
//! ```
//!
//! A program misbehaves; we plant a breakpoint, let it run until the trap
//! saves the whole machine to the swatee file, then play debugger: list
//! the code around the stuck PC, inspect the registers, patch the bug —
//! *in the file*, as the paper describes — and resume the repaired world.

use alto::os::debug::SwateeDebugger;
use alto::os::DebugStop;

fn main() {
    let mut os = alto::fresh_alto();

    // The "faulty program": it is meant to sum 1..=10 but the programmer
    // wrote the limit as 10000, so it grinds far longer than intended.
    let code = alto::machine::assemble(
        "
        subz 0, 0        ; sum
        subz 2, 2        ; i
loop:   inc 2, 2         ; i += 1
        add 2, 0         ; sum += i
        lda 1, limit
        sub# 2, 1, szr   ; done when i == limit
        jmp loop
        sta 0, result
        halt
limit:  .word 10000      ; BUG: should be 10
result: .word 0
        ",
    )
    .expect("assemble");
    os.machine.load_program(0o400, &code.words).unwrap();
    let loop_addr = code.labels["loop"];
    let limit_addr = code.labels["limit"];
    let result_addr = code.labels["result"];

    // The user notices it hanging and plants a breakpoint on the loop.
    println!("planting a breakpoint at the loop head ({loop_addr:#o})...");
    let bp = os.set_breakpoint(loop_addr);
    let stop = os.run_until_break(bp, 1_000_000).expect("run");
    println!("stopped: {stop:?}\n");

    // The debugger examines the sleeping world through its state file.
    let mut dbg = SwateeDebugger::open_named(&mut os).expect("open swatee");
    println!(
        "registers: AC0(sum)={} AC2(i)={} PC={:#o}",
        dbg.ac(0),
        dbg.ac(2),
        dbg.pc()
    );
    println!("listing around the PC:");
    for (_, line) in dbg.listing(dbg.pc(), 8) {
        println!("  {line}");
    }

    // Diagnose: the limit cell is absurd. Patch it in the file.
    println!(
        "\nthe limit word reads {} — patching it to 10",
        dbg.read(limit_addr)
    );
    dbg.write(limit_addr, 10);
    // Also rewind the partial sum so the run is clean.
    dbg.set_ac(0, 0);
    dbg.set_ac(2, 0);
    dbg.save(&mut os).expect("save swatee");

    // Resume the repaired world.
    let stop = os.resume_swatee(bp, 1_000_000).expect("resume");
    assert_eq!(stop, DebugStop::Halted);
    println!(
        "resumed and finished: sum(1..=10) = {} (expected 55)",
        os.machine.mem.read(result_addr)
    );
    assert_eq!(os.machine.mem.read(result_addr), 55);
}
