//! The printing server: activity switching via state save/restore (§4).
//!
//! ```text
//! cargo run --example printing_server
//! ```
//!
//! "One example is a printing server, a program that accepts files from a
//! local communications network and prints them. The program is divided
//! into two tasks: a spooler that reads files from the network and queues
//! them in a disk file, and a printer that removes entries from the queue
//! and controls the hardware that prints them … they communicate using the
//! state save/restore mechanism. Whenever the spooler is idle but the
//! queue is not empty, it saves its state and calls the printer. Whenever
//! the printer is finished or detects incoming network traffic, it stops
//! the printer hardware, saves its state, and invokes the spooler."
//!
//! The two tasks here are machine worlds exchanged with `OutLoad`/`InLoad`
//! (each has private state the other never sees), with the control policy
//! in Rust; jobs arrive over the simulated Ethernet from a workstation
//! host.

use alto::net::receive_file;
use alto::prelude::*;

const SERVER_HOST: u8 = 2;
const WORKSTATION: u8 = 7;
const PRINT_SOCKET: u16 = 0x30;
const ACK_SOCKET: u16 = 0x31;

fn main() {
    let mut os = alto::fresh_alto();
    let clock = os.machine.clock().clone();
    let mut ether = Ether::new(clock.clone(), Trace::new());
    ether.attach(SERVER_HOST).unwrap();
    ether.attach(WORKSTATION).unwrap();

    // Establish the two coroutine worlds. Each world's identity lives in
    // AC3; its private progress counter in AC2.
    let spooler = os.create_state_file("Spooler.state").unwrap();
    let printer = os.create_state_file("Printer.state").unwrap();
    os.machine.ac = [0, 0, 0, 1]; // world 1 = spooler
    os.out_load(spooler).unwrap();
    os.machine.ac = [0, 0, 0, 2]; // world 2 = printer
    os.out_load(printer).unwrap();

    // The print queue is an ordinary disk file of job names.
    let root = os.fs.root_dir();
    let queue = dir::create_named_file(&mut os.fs, root, "PrintQueue").unwrap();
    let mut queued: Vec<String> = Vec::new();
    let mut printed = 0usize;

    // The workstation will submit four jobs at staggered times.
    let jobs: Vec<(SimTime, String, String)> = (0..4)
        .map(|i| {
            (
                SimTime::from_millis(200 + i * 700),
                format!("job-{i}.press"),
                format!("PRESS FILE {i}\n").repeat(3 + i as usize * 2),
            )
        })
        .collect();
    let mut next_job = 0usize;

    println!("printing server up; four jobs will arrive over the ether\n");
    let mut switches = 0u32;
    // Round-robin of the two activities until all jobs are printed.
    let mut current = "spooler";
    while printed < jobs.len() {
        match current {
            "spooler" => {
                // Resume the spooler world.
                os.in_load(spooler, &[0; MESSAGE_WORDS]).unwrap();
                assert_eq!(os.machine.ac[3], 1, "spooler world identity");
                // Spooler: receive any job whose time has come.
                while next_job < jobs.len() && jobs[next_job].0 <= clock.now() {
                    let (_, name, body) = &jobs[next_job];
                    let words = alto::fs::file::bytes_to_words(body.as_bytes());
                    // Workstation transmits; server receives.
                    let got = receive_file(
                        &mut ether,
                        WORKSTATION,
                        SERVER_HOST,
                        PRINT_SOCKET,
                        ACK_SOCKET,
                        &words,
                    )
                    .expect("transfer");
                    // Spool: store the job as a file and append to queue.
                    let root = os.fs.root_dir();
                    let f = dir::create_named_file(&mut os.fs, root, name).unwrap();
                    let bytes = alto::fs::file::words_to_bytes(&got);
                    os.fs.write_file(f, &bytes[..body.len()]).unwrap();
                    queued.push(name.clone());
                    os.fs
                        .write_file(queue, queued.join("\n").as_bytes())
                        .unwrap();
                    println!("[{}] spooler: queued {name}", clock.now());
                    next_job += 1;
                    os.machine.ac[2] += 1; // private spooled count
                }
                // "Whenever the spooler is idle but the queue is not
                // empty, it saves its state and calls the printer."
                os.out_load(spooler).unwrap();
                switches += 1;
                current = "printer";
            }
            _ => {
                os.in_load(printer, &[0; MESSAGE_WORDS]).unwrap();
                assert_eq!(os.machine.ac[3], 2, "printer world identity");
                // Printer: take one job from the queue and "print" it.
                if let Some(name) = queued.first().cloned() {
                    let root = os.fs.root_dir();
                    let f = dir::lookup(&mut os.fs, root, &name).unwrap().unwrap();
                    let body = os.fs.read_file(f).unwrap();
                    os.put_str(&format!("--- printing {name} ({} bytes) ---\n", body.len()));
                    // Printing takes real time per byte (a slow printer).
                    clock.advance(SimTime::from_micros(200).scaled(body.len() as u64));
                    queued.remove(0);
                    os.fs
                        .write_file(queue, queued.join("\n").as_bytes())
                        .unwrap();
                    printed += 1;
                    os.machine.ac[2] += 1; // private printed count
                    println!("[{}] printer: finished {name}", clock.now());
                } else {
                    // Idle: let time pass until the next job is due.
                    if next_job < jobs.len() {
                        let wait = jobs[next_job].0.saturating_sub(clock.now());
                        clock.advance(wait);
                    }
                }
                // "Whenever the printer is finished or detects incoming
                // network traffic … it saves its state, and invokes the
                // spooler."
                os.out_load(printer).unwrap();
                switches += 1;
                current = "spooler";
            }
        }
    }

    // Each world kept its own private count across all the swaps.
    os.in_load(spooler, &[0; MESSAGE_WORDS]).unwrap();
    let spooled = os.machine.ac[2];
    os.in_load(printer, &[0; MESSAGE_WORDS]).unwrap();
    let printed_count = os.machine.ac[2];
    println!("\nspooler world spooled {spooled}, printer world printed {printed_count}");
    println!(
        "{switches} activity switches, {} total simulated time",
        clock.now()
    );
    println!("\n--- printer output ---");
    print!("{}", os.machine.display.transcript());
    assert_eq!(spooled, 4);
    assert_eq!(printed_count, 4);
}
