//! A full Executive session, driven from the (scripted) keyboard (§5.1).
//!
//! ```text
//! cargo run --example executive
//! ```
//!
//! Installs the system, stores a small assembly program on disk, then
//! plays a user session: list files, create output by running the
//! program, inspect it, exercise Junta from the command level via a
//! program that gives up the display, and scavenge — all through the
//! command interpreter.

fn main() {
    let mut os = alto::fresh_alto();

    // Put a program on disk: it prints a banner via the PutChar fixup.
    os.store_program(
        "banner.run",
        r#"
        lda 2, msgp
        lda 1, lenv
loop:   lda 0, 0,2
        jsr @putchar
        inc 2, 2
        dsz lenv
        jmp loop
        halt
putchar: .fixup "PutChar"
lenv:   .word 14
msgp:   .word msg
msg:    .word 'A'
        .word 'l'
        .word 't'
        .word 'o'
        .word ' '
        .word 'l'
        .word 'i'
        .word 'v'
        .word 'e'
        .word 's'
        .word ' '
        .word 'o'
        .word 'n'
        .word 10        ; newline
        "#,
    )
    .expect("store banner");

    // Another program exercises Junta from inside a loaded program: it
    // prints, removes everything above level 4 (losing the display), and
    // proves the service is gone by trying again.
    let junta_code = alto::os::syscalls::SysCall::Junta.code();
    os.store_program(
        "greedy.run",
        &format!(
            r#"
        lda 0, ch
        jsr @putchar    ; works: display stream resident
        lda 0, four
        trap 0, {junta_code}
        halt
putchar: .fixup "PutChar"
ch:     .word '*'
four:   .word 4
        "#
        ),
    )
    .expect("store greedy");

    // The user types a session; every keystroke goes through the
    // interrupt-driven keyboard path and the type-ahead buffer.
    os.type_text(
        "ls\n\
         banner.run\n\
         type banner.run\n\
         delete banner.run\n\
         ls\n\
         scavenge\n\
         quit\n",
    );
    os.run_executive(20).expect("session");

    println!("=== what the user saw ===");
    for row in os.machine.display.screen() {
        println!("| {row}");
    }

    // Run the greedy program directly and show the Junta effect.
    println!("\n=== greedy program removes the display mid-run ===");
    os.counter_junta();
    os.run_program("greedy.run", 100_000).expect("greedy");
    println!(
        "resident levels after greedy.run: 1..={}",
        os.levels().resident()
    );
    let err = os.handle_syscall(alto::os::syscalls::SysCall::PutChar.code(), 0);
    println!("PutChar now says: {}", err.unwrap_err());
    os.counter_junta();
    println!(
        "after CounterJunta: resident levels 1..={}",
        os.levels().resident()
    );
}
