//! Quickstart: install the system, make files, read them back.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the happy path of the whole stack: format a 2.5 MB Diablo 31
//! pack, create files through directories and streams, list the root
//! directory with the Executive, and show the simulated-time cost of
//! everything (every seek and rotation was accounted).

use alto::prelude::*;

fn main() {
    // One simulated timeline shared by the CPU and the disk.
    let clock = SimClock::new();
    let trace = Trace::new();
    let machine = Machine::new(clock.clone(), trace.clone());
    let drive = DiskDrive::with_formatted_pack(clock.clone(), trace, DiskModel::Diablo31, 1);

    println!("Installing the Alto OS on a fresh 2.5 MB pack...");
    let mut os = AltoOs::install(machine, drive).expect("install");
    println!(
        "  formatted + installed in {} of simulated time\n",
        clock.now()
    );

    // --- Files through the high-level interface. -----------------------
    let root = os.fs.root_dir();
    let memo = dir::create_named_file(&mut os.fs, root, "memo.txt").expect("create");
    os.fs
        .write_file(
            memo,
            b"The file system survives anything short of a head crash.",
        )
        .expect("write");
    println!(
        "memo.txt says: {}",
        String::from_utf8_lossy(&os.fs.read_file(memo).unwrap())
    );

    // --- Files through streams (the OS6 interface, paper section 2). ----
    let log = dir::create_named_file(&mut os.fs, root, "log.dat").expect("create");
    let mut stream = DiskByteStream::open(&mut os.fs, log).expect("open");
    for i in 0..2000u32 {
        stream.put_byte(&mut os.fs, (i % 251) as u8).expect("put");
    }
    stream.close(&mut os.fs).expect("close");
    println!(
        "log.dat holds {} bytes across {} pages",
        os.fs.file_length(log).unwrap(),
        os.fs.read_leader(log).unwrap().last_page,
    );

    // --- Page-level access: the small component is open too (section 1).
    let leader = os.fs.read_leader(memo).unwrap();
    println!(
        "memo.txt leader page: name={:?} created={:?} last page {} at {}",
        leader.name, leader.created, leader.last_page, leader.last_da,
    );

    // --- A user at the keyboard, served by the Executive (section 5.1).
    os.type_text("ls\nquit\n");
    os.run_executive(10).expect("executive");
    println!("\n--- display ---");
    for row in os.machine.display.screen() {
        if !row.is_empty() {
            println!("| {row}");
        }
    }

    println!("\ntotal simulated time: {}", clock.now());
    let stats = os.fs.disk().stats();
    println!(
        "disk: {} ops, {} seeks, {} label writes, busy {}",
        stats.ops,
        stats.seeks,
        stats.label_writes,
        stats.busy_time(),
    );
}
