//! The diskless Alto (§5.2): an OS with no disk, booting diagnostics over
//! the network.
//!
//! ```text
//! cargo run --example diskless
//! ```
//!
//! "The display, keyboard, and storage-allocation packages have been
//! assembled to form an operating system for use without a disk, used to
//! support diagnostics or other programs that depend on network
//! communications rather than on local disk storage."

use alto::os::diskless::{BootServer, DisklessOs};
use alto::os::AltoOs;
use alto::prelude::*;

fn main() {
    let clock = SimClock::new();

    // The diskless workstation: machine only, no drive anywhere.
    let mut workstation = DisklessOs::new(Machine::new(clock.clone(), Trace::new()));
    println!("diskless workstation up: display/keyboard/zones, no disk");
    println!(
        "file services resident? level 8 = {}\n",
        workstation.is_resident(8)
    );

    // The boot server: a normal Alto with a pack full of diagnostics.
    let machine = Machine::new(clock.clone(), Trace::new());
    let drive = DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
    let mut server_os = AltoOs::install(machine, drive).expect("server install");
    server_os
        .store_program(
            "memtest.run",
            r#"
        ; walk a pattern through a memory cell and report
        lda 2, count
loop:   lda 0, pat
        sta 0, @cell
        lda 1, @cell
        sub# 0, 1, szr
        jmp fail
        ; rotate the pattern for the next round
        lda 0, pat
        movzl 0, 0
        sta 0, pat
        dsz countv
        jmp loop
        lda 0, okc
        jsr @putchar
        lda 0, kc
        jsr @putchar
        halt
fail:   lda 0, fc
        jsr @putchar
        halt
putchar: .fixup "PutChar"
cell:   .word 0o2000
pat:    .word 0o100001
count:  .word 12
countv: .word 12
okc:    .word 'O'
kc:     .word 'K'
fc:     .word 'F'
        "#,
        )
        .expect("store diagnostic");

    // Attach both to the ether and boot over the wire.
    let mut ether = Ether::new(clock.clone(), Trace::new());
    ether.attach(1).unwrap(); // workstation
    ether.attach(2).unwrap(); // server
    let mut server = BootServer::new(&mut server_os, 2);

    println!("netbooting memtest.run from the server...");
    let t0 = clock.now();
    let exit = workstation
        .netboot(&mut ether, 1, &mut server, "memtest.run", 1_000_000)
        .expect("netboot");
    println!(
        "diagnostic ran {} instructions; transferred + executed in {}",
        exit.instructions,
        clock.now() - t0
    );
    println!(
        "workstation display says: {:?}",
        workstation.machine.display.transcript()
    );
    assert_eq!(workstation.machine.display.transcript(), "OK");
}
