//! Scripted diskless clients for the page server (§5.2).
//!
//! A [`ScriptedClient`] plays the role of a diskless Alto fetching a file
//! over the ether: it opens one file by name, then reads every data page
//! front to back with a small window of outstanding requests — the shape
//! of a machine demand-paging its boot image from the server across the
//! room. Reliability is the client's job, exactly as in Pup: requests
//! carry ids, replies echo them, and anything unanswered past a deadline
//! is retransmitted with exponential backoff. The server is idempotent,
//! so a duplicate (lost-reply) retransmission is harmless.
//!
//! A [`ClientFleet`] packs thousands of clients onto the 8-bit host space
//! by multiplexing sockets: clients spread across hosts, each with a
//! distinct source socket, and the fleet drains every host's inbox *once*
//! per tick, routing packets to clients by destination socket — one pass
//! over arrivals, not one scan per client.
//!
//! Each client folds every served word into an order-independent digest,
//! so a lossy run can be checked word-for-word against a lossless one.

use alto_sim::SimTime;

use crate::ether::{Ether, HostId, NetError};
use crate::packet::{Packet, PacketType};
use crate::pool;
use crate::server::{
    encode_name, ERR_REPLY, OPEN_REPLY, OPEN_REQUEST, PAGE_REPLY, READ_REQUEST, STATUS_OK,
};

/// Tuning knobs shared by every client in a fleet.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// The server's host address.
    pub server_host: HostId,
    /// The server's listening socket.
    pub server_socket: u16,
    /// Maximum outstanding page requests.
    pub window: usize,
    /// Initial retransmit timeout (doubles per retry, capped).
    pub timeout: SimTime,
    /// Retries before a request is declared dead and the client fails.
    pub max_retries: u32,
}

impl ClientConfig {
    /// Defaults for `server_host`: window 8, 50 ms timeout, 16 retries.
    pub fn new(server_host: HostId, server_socket: u16) -> ClientConfig {
        ClientConfig {
            server_host,
            server_socket,
            window: 8,
            timeout: SimTime::from_millis(50),
            max_retries: 16,
        }
    }
}

/// Where a client is in its script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// Waiting for (or about to send) the open.
    Opening,
    /// Streaming pages.
    Reading,
    /// Every page served and verified.
    Done,
    /// Gave up (error reply or retries exhausted).
    Failed,
}

/// One in-flight page request.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    page: u16,
    seq: u16,
    first_sent: SimTime,
    sent: SimTime,
    timeout: SimTime,
    retries: u32,
}

/// One scripted diskless client: open a file, read it front to back.
#[derive(Debug)]
pub struct ScriptedClient {
    host: HostId,
    socket: u16,
    file: String,
    cfg: ClientConfig,
    phase: ClientPhase,
    handle: u16,
    pages: u16,
    next_page: u16,
    next_seq: u16,
    open_sent: Option<SimTime>,
    open_retries: u32,
    window: Vec<Outstanding>,
    /// Pages received (duplicates not counted).
    pub received: u64,
    /// Payload words folded into the digest.
    pub served_words: u64,
    /// Retransmitted requests (opens and reads).
    pub retransmits: u64,
    /// Duplicate replies discarded.
    pub duplicates: u64,
    /// Order-independent fold of every served word (loss-divergence check).
    pub digest: u64,
}

impl ScriptedClient {
    /// A client at `host`:`socket` that will fetch `file`.
    pub fn new(host: HostId, socket: u16, file: String, cfg: ClientConfig) -> ScriptedClient {
        ScriptedClient {
            host,
            socket,
            file,
            cfg,
            phase: ClientPhase::Opening,
            handle: 0,
            pages: 0,
            next_page: 1,
            next_seq: 1,
            open_sent: None,
            open_retries: 0,
            window: Vec::with_capacity(cfg.window),
            received: 0,
            served_words: 0,
            retransmits: 0,
            duplicates: 0,
            digest: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> ClientPhase {
        self.phase
    }

    /// True once the script has finished (successfully or not).
    pub fn finished(&self) -> bool {
        matches!(self.phase, ClientPhase::Done | ClientPhase::Failed)
    }

    /// Absorbs one reply addressed to this client. Pushes the request's
    /// first-send → reply latency onto `samples` for served pages.
    /// Consumes (recycles) the packet's payload.
    pub fn on_packet(&mut self, pkt: Packet, now: SimTime, samples: &mut Vec<SimTime>) {
        match pkt.ptype {
            OPEN_REPLY if self.phase == ClientPhase::Opening => {
                if let [STATUS_OK, handle, pages, _last_len] = pkt.payload[..] {
                    self.handle = handle;
                    self.pages = pages;
                    self.phase = if pages == 0 {
                        ClientPhase::Done
                    } else {
                        ClientPhase::Reading
                    };
                } else {
                    self.phase = ClientPhase::Failed;
                }
            }
            PAGE_REPLY if self.phase == ClientPhase::Reading => {
                match self.window.iter().position(|o| o.seq == pkt.seq) {
                    Some(i) => {
                        let o = self.window.swap_remove(i);
                        samples.push(now.saturating_sub(o.first_sent));
                        self.received += 1;
                        self.served_words += pkt.payload.len() as u64;
                        // Commutative fold: replies may arrive out of order
                        // (and differently so under loss), the digest must
                        // not care.
                        let page = o.page as u64;
                        for (i, &w) in pkt.payload.iter().enumerate() {
                            self.digest = self
                                .digest
                                .wrapping_add((page << 32) ^ ((i as u64) << 16) ^ w as u64);
                        }
                        if self.window.is_empty() && self.next_page > self.pages {
                            self.phase = ClientPhase::Done;
                        }
                    }
                    None => self.duplicates += 1,
                }
            }
            ERR_REPLY => {
                // Any error reply ends the script: the harness files are
                // all present, so an error means a real server-side fault.
                self.phase = ClientPhase::Failed;
            }
            _ => self.duplicates += 1,
        }
        pool::recycle_words(pkt.payload);
    }

    /// Drives the script forward: sends the open, fills the request
    /// window, retransmits anything past its deadline. Returns the number
    /// of packets sent.
    pub fn pump(&mut self, ether: &mut Ether, now: SimTime) -> Result<u64, NetError> {
        let mut sent = 0u64;
        match self.phase {
            ClientPhase::Opening => {
                let due = match self.open_sent {
                    None => true,
                    Some(at) => {
                        now.saturating_sub(at) >= backoff(self.cfg.timeout, self.open_retries)
                    }
                };
                if due {
                    if self.open_sent.is_some() {
                        self.open_retries += 1;
                        self.retransmits += 1;
                        if self.open_retries > self.cfg.max_retries {
                            self.phase = ClientPhase::Failed;
                            return Ok(sent);
                        }
                    }
                    let mut payload = pool::words_vec();
                    encode_name(&self.file, &mut payload);
                    self.transmit(ether, OPEN_REQUEST, 0, payload)?;
                    self.open_sent = Some(now);
                    sent += 1;
                }
            }
            ClientPhase::Reading => {
                // Retransmit overdue requests (lost request or lost reply —
                // the client can't tell, and doesn't need to).
                for i in 0..self.window.len() {
                    let o = self.window[i];
                    if now.saturating_sub(o.sent) < o.timeout {
                        continue;
                    }
                    if o.retries >= self.cfg.max_retries {
                        self.phase = ClientPhase::Failed;
                        return Ok(sent);
                    }
                    let mut payload = pool::words_vec();
                    payload.extend_from_slice(&[self.handle, o.page]);
                    self.transmit(ether, READ_REQUEST, o.seq, payload)?;
                    let o = &mut self.window[i];
                    o.sent = now;
                    o.timeout = o.timeout.scaled(2);
                    o.retries += 1;
                    self.retransmits += 1;
                    sent += 1;
                }
                // Fill the window with fresh page requests.
                while self.window.len() < self.cfg.window && self.next_page <= self.pages {
                    let page = self.next_page;
                    let seq = self.next_seq;
                    self.next_page += 1;
                    self.next_seq = self.next_seq.wrapping_add(1);
                    let mut payload = pool::words_vec();
                    payload.extend_from_slice(&[self.handle, page]);
                    self.transmit(ether, READ_REQUEST, seq, payload)?;
                    self.window.push(Outstanding {
                        page,
                        seq,
                        first_sent: now,
                        sent: now,
                        timeout: self.cfg.timeout,
                        retries: 0,
                    });
                    sent += 1;
                }
            }
            ClientPhase::Done | ClientPhase::Failed => {}
        }
        Ok(sent)
    }

    fn transmit(
        &self,
        ether: &mut Ether,
        ptype: PacketType,
        seq: u16,
        payload: Vec<u16>,
    ) -> Result<(), NetError> {
        ether.send(Packet {
            ptype,
            dst_host: self.cfg.server_host,
            src_host: self.host,
            dst_socket: self.cfg.server_socket,
            src_socket: self.socket,
            seq,
            payload,
        })
    }
}

/// Exponential backoff with a cap: `base << retries`, at most 32 × base.
fn backoff(base: SimTime, retries: u32) -> SimTime {
    base.scaled(1u64 << retries.min(5))
}

/// First source socket a fleet assigns (clear of well-known services).
pub const FLEET_SOCKET_BASE: u16 = 0x100;

/// Aggregate results from a fleet run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetStats {
    /// Clients that finished successfully.
    pub done: u64,
    /// Clients that gave up.
    pub failed: u64,
    /// Pages received across the fleet.
    pub received: u64,
    /// Payload words served across the fleet.
    pub served_words: u64,
    /// Retransmissions across the fleet.
    pub retransmits: u64,
    /// Duplicate replies discarded across the fleet.
    pub duplicates: u64,
}

/// Thousands of scripted clients multiplexed onto the ether.
///
/// Client `i` lives at host `hosts[i / per_host]`, socket
/// `FLEET_SOCKET_BASE + i % per_host` — pure arithmetic both ways, so
/// packet routing needs no table.
#[derive(Debug)]
pub struct ClientFleet {
    clients: Vec<ScriptedClient>,
    hosts: Vec<HostId>,
    per_host: usize,
    inbox: Vec<Packet>,
    /// First-send → reply latency of every served page, in arrival order.
    pub samples: Vec<SimTime>,
}

impl ClientFleet {
    /// Builds and attaches a fleet of `count` clients. Hosts `1..=254`
    /// excluding `cfg.server_host` are available; `file_for(i)` names the
    /// file client `i` fetches.
    pub fn new(
        ether: &mut Ether,
        cfg: ClientConfig,
        count: usize,
        file_for: impl Fn(usize) -> String,
    ) -> Result<ClientFleet, NetError> {
        assert!(count > 0, "a fleet needs at least one client");
        let all: Vec<HostId> = (1..=254).filter(|&h| h != cfg.server_host).collect();
        let hosts_used = count.div_ceil(count.div_ceil(all.len())).min(all.len());
        let per_host = count.div_ceil(hosts_used.max(1));
        let hosts: Vec<HostId> = all[..hosts_used].to_vec();
        for &h in &hosts {
            ether.attach(h)?;
        }
        let clients = (0..count)
            .map(|i| {
                ScriptedClient::new(
                    hosts[i / per_host],
                    FLEET_SOCKET_BASE + (i % per_host) as u16,
                    file_for(i),
                    cfg,
                )
            })
            .collect();
        Ok(ClientFleet {
            clients,
            hosts,
            per_host,
            inbox: Vec::new(),
            samples: Vec::new(),
        })
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// True when the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// One fleet tick: drain every host inbox once, route replies to their
    /// clients, then pump every unfinished client. Returns packets
    /// received plus packets sent (0 means the fleet is idle — waiting).
    pub fn tick(&mut self, ether: &mut Ether) -> Result<u64, NetError> {
        let now = ether.clock().now();
        let mut events = 0u64;
        let mut inbox = std::mem::take(&mut self.inbox);
        for (hi, &host) in self.hosts.iter().enumerate() {
            inbox.clear();
            ether.drain_arrived(host, &mut inbox)?;
            for pkt in inbox.drain(..) {
                let slot = pkt.dst_socket.wrapping_sub(FLEET_SOCKET_BASE) as usize;
                let idx = hi * self.per_host + slot;
                if slot < self.per_host && idx < self.clients.len() {
                    events += 1;
                    self.clients[idx].on_packet(pkt, now, &mut self.samples);
                } else {
                    pool::recycle_words(pkt.payload);
                }
            }
        }
        self.inbox = inbox;
        for c in &mut self.clients {
            if !c.finished() {
                events += c.pump(ether, now)?;
            }
        }
        Ok(events)
    }

    /// True once every client has finished (done or failed).
    pub fn all_done(&self) -> bool {
        self.clients.iter().all(ScriptedClient::finished)
    }

    /// Aggregate counters across the fleet.
    pub fn stats(&self) -> FleetStats {
        let mut s = FleetStats::default();
        for c in &self.clients {
            match c.phase() {
                ClientPhase::Done => s.done += 1,
                ClientPhase::Failed => s.failed += 1,
                _ => {}
            }
            s.received += c.received;
            s.served_words += c.served_words;
            s.retransmits += c.retransmits;
            s.duplicates += c.duplicates;
        }
        s
    }

    /// Order-independent fold of every client's digest — two runs serving
    /// identical bytes (lossless vs lossy) must agree.
    pub fn digest(&self) -> u64 {
        self.clients
            .iter()
            .fold(0u64, |d, c| d.wrapping_add(c.digest))
    }

    /// Access to an individual client (tests).
    pub fn client(&self, i: usize) -> &ScriptedClient {
        &self.clients[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let base = SimTime::from_millis(50);
        assert_eq!(backoff(base, 0), base);
        assert_eq!(backoff(base, 1), base.scaled(2));
        assert_eq!(backoff(base, 5), base.scaled(32));
        assert_eq!(backoff(base, 20), base.scaled(32));
    }
}
