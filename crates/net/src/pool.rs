//! Recycled packet buffers.
//!
//! A packet's life touches the heap in two places: the payload vector the
//! sender builds, and the wire vector the ether encodes it into. On the
//! page-server hot path — thousands of clients, a request and a page-sized
//! reply per page — that used to mean two allocations per packet each way.
//! Word vectors now come from a thread-local free list, taken when a
//! payload or wire image is staged and recycled when its packet has been
//! consumed, so the steady state touches the heap zero times.
//!
//! Like [`alto_disk::pool`] this is a host-side optimization only: it never
//! touches the simulated clock, and recycled vectors are always cleared
//! before reuse. The list shares the disk pool's
//! [`alto_disk::pool::enabled`] ablation gate so one switch measures every
//! pooling layer together.
//!
//! The cap is much larger than the disk pools': with a 5k-client fleet a
//! whole tick's worth of replies (clients × window, each holding a payload
//! vector) can sit in inboxes before the clients drain and recycle them,
//! and the free list must absorb that wave to keep the next tick
//! allocation-free. Page-sized vectors are ~0.5 KiB, so even the full cap
//! is a few tens of megabytes — host memory, not simulated state.

use std::cell::RefCell;

/// Free-list cap per thread: sized to absorb one full reply wave from the
/// largest supported client fleet (see module docs).
const PER_LIST: usize = 64 * 1024;

thread_local! {
    static WORDS: RefCell<Vec<Vec<u16>>> = const { RefCell::new(Vec::new()) };
}

fn enabled() -> bool {
    alto_disk::pool::enabled()
}

/// An empty word vector (payload or wire staging), recycled when possible.
pub fn words_vec() -> Vec<u16> {
    if !enabled() {
        return Vec::new();
    }
    WORDS.with(|l| l.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a word vector to the free list (contents are dropped).
pub fn recycle_words(mut v: Vec<u16>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    WORDS.with(|l| {
        let mut list = l.borrow_mut();
        if list.len() < PER_LIST {
            list.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_capacity() {
        alto_disk::pool::set_enabled(true);
        let mut v = words_vec();
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        recycle_words(v);
        let v2 = words_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap.min(3));
    }

    #[test]
    fn disabled_pool_hands_out_fresh_vectors() {
        alto_disk::pool::set_enabled(false);
        let mut v = words_vec();
        v.push(1);
        recycle_words(v);
        assert_eq!(words_vec().capacity(), 0);
        alto_disk::pool::set_enabled(true);
    }
}
