//! The broadcast medium: a simulated 3 Mb/s Ethernet.
//!
//! Hosts attach to the ether and exchange [`Packet`]s; transmission charges
//! the shared clock at the experimental Ethernet's 3 Mb/s (≈5.33 µs per
//! 16-bit word), and each packet arrives at its destination after the
//! transmission time. Deterministic packet loss can be injected for
//! protocol testing.

use std::collections::VecDeque;

use alto_sim::{SimClock, SimTime, SplitMix64, Trace};

use crate::packet::{Packet, MAX_PAYLOAD_WORDS};
use crate::pool;

/// A host address on the ether (0 is broadcast and cannot be a host).
pub type HostId = u8;

/// Errors from the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetError {
    /// The host id is not attached (or is the broadcast address).
    NoSuchHost(HostId),
    /// A host id was attached twice.
    HostInUse(HostId),
    /// The payload exceeds [`MAX_PAYLOAD_WORDS`]; nothing was put on the
    /// wire (an encoded oversize would be rejected by every receiver, so
    /// the interface refuses it up front instead of wasting wire time —
    /// or, as it once did, panicking on its own transmission).
    Oversized(usize),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::NoSuchHost(h) => write!(f, "no host {h} on the ether"),
            NetError::HostInUse(h) => write!(f, "host {h} already attached"),
            NetError::Oversized(words) => {
                write!(f, "payload of {words} words exceeds {MAX_PAYLOAD_WORDS}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Time to put one 16-bit word on a 3 Mb/s wire.
pub const WORD_TIME: SimTime = SimTime::from_nanos(5_333);

#[derive(Debug)]
struct Inbox {
    host: HostId,
    queue: VecDeque<(SimTime, Packet)>,
}

/// The shared broadcast medium.
#[derive(Debug)]
pub struct Ether {
    clock: SimClock,
    trace: Trace,
    inboxes: Vec<Inbox>,
    /// Packet-loss injection: lose one packet in `loss_denominator` sends.
    loss_num: u64,
    loss_denom: u64,
    rng: SplitMix64,
    /// Packets put on the wire.
    pub sent: u64,
    /// Packets dropped by injected loss.
    pub lost: u64,
}

impl Ether {
    /// A lossless ether on the given timeline.
    pub fn new(clock: SimClock, trace: Trace) -> Ether {
        Ether {
            clock,
            trace,
            inboxes: Vec::new(),
            loss_num: 0,
            loss_denom: 1,
            rng: SplitMix64::new(0xE7E7),
            sent: 0,
            lost: 0,
        }
    }

    /// Configures deterministic random loss: `num` in `denom` packets are
    /// dropped in transit.
    pub fn set_loss(&mut self, num: u64, denom: u64, seed: u64) {
        assert!(denom > 0 && num <= denom);
        self.loss_num = num;
        self.loss_denom = denom;
        self.rng = SplitMix64::new(seed);
    }

    /// The clock transmissions are charged to.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Records a service-level event on the ether's trace at the current
    /// simulated time, so co-located services (the page server, the boot
    /// server) land their events on the same timeline as the wire's own.
    pub fn note(&self, tag: &'static str, detail: impl FnOnce() -> String) {
        self.trace.record_with(self.clock.now(), tag, detail);
    }

    /// Attaches a host.
    pub fn attach(&mut self, host: HostId) -> Result<(), NetError> {
        if host == 0 {
            return Err(NetError::NoSuchHost(0));
        }
        if self.inboxes.iter().any(|i| i.host == host) {
            return Err(NetError::HostInUse(host));
        }
        self.inboxes.push(Inbox {
            host,
            queue: VecDeque::new(),
        });
        Ok(())
    }

    fn check_attached(&self, host: HostId) -> Result<(), NetError> {
        if self.inboxes.iter().any(|i| i.host == host) {
            Ok(())
        } else {
            Err(NetError::NoSuchHost(host))
        }
    }

    /// Puts a packet on the wire. The sender pays the transmission time;
    /// the packet arrives at the destination (or, for `dst_host == 0`, at
    /// every other host) when the transmission ends.
    pub fn send(&mut self, packet: Packet) -> Result<(), NetError> {
        self.check_attached(packet.src_host)?;
        if packet.dst_host != 0 {
            self.check_attached(packet.dst_host)?;
        }
        if packet.payload.len() > MAX_PAYLOAD_WORDS {
            // Refuse before charging the wire: the receive side would
            // reject the image anyway (see `Packet::decode`), and the
            // sender finding out *here* is the bug fix — this used to
            // panic on the self-decode below.
            return Err(NetError::Oversized(packet.payload.len()));
        }
        // The wire image is staged on a recycled vector; the consumed
        // packet's payload is recycled below once its words are encoded.
        let mut wire = pool::words_vec();
        packet.encode_into(&mut wire);
        // lint: allow(clock-discipline) — the Ethernet is a hardware model
        // with the same standing as the disk: transmission charges wire time
        // per word to the shared timeline
        self.clock.advance(WORD_TIME.scaled(wire.len() as u64));
        let arrival = self.clock.now();
        self.sent += 1;
        if self.loss_num > 0 && self.rng.chance(self.loss_num, self.loss_denom) {
            self.lost += 1;
            self.trace
                .record_with(arrival, "net.lost", || format!("seq {}", packet.seq));
            pool::recycle_words(wire);
            pool::recycle_words(packet.payload);
            return Ok(());
        }
        self.trace.record_with(arrival, "net.sent", || {
            format!(
                "{} -> {} seq {}",
                packet.src_host, packet.dst_host, packet.seq
            )
        });
        if packet.dst_host != 0 {
            // Unicast: decode once onto the sender's recycled payload
            // vector and *move* the packet into the one inbox — the hot
            // path delivers with zero heap traffic.
            let delivered =
                Packet::decode_with(&wire, packet.payload).expect("self-encoded packet");
            pool::recycle_words(wire);
            if let Some(inbox) = self.inboxes.iter_mut().find(|i| i.host == packet.dst_host) {
                inbox.queue.push_back((arrival, delivered));
            }
            return Ok(());
        }
        // Broadcast: every other host revalidates and takes its own copy.
        for k in 0..self.inboxes.len() {
            if packet.src_host == self.inboxes[k].host {
                continue;
            }
            let delivered =
                Packet::decode_with(&wire, pool::words_vec()).expect("self-encoded packet");
            self.inboxes[k].queue.push_back((arrival, delivered));
        }
        pool::recycle_words(wire);
        pool::recycle_words(packet.payload);
        Ok(())
    }

    /// Receives the next packet for `host` on `socket` that has arrived by
    /// the current simulated time.
    ///
    /// This scans the host's queue for one socket; a host multiplexing many
    /// sockets (the page server, a client fleet) should prefer
    /// [`Ether::drain_arrived`] and route by socket itself.
    pub fn receive(&mut self, host: HostId, socket: u16) -> Result<Option<Packet>, NetError> {
        let now = self.clock.now();
        let inbox = self
            .inboxes
            .iter_mut()
            .find(|i| i.host == host)
            .ok_or(NetError::NoSuchHost(host))?;
        let pos = inbox
            .queue
            .iter()
            .position(|(at, p)| *at <= now && p.dst_socket == socket);
        Ok(pos.and_then(|i| inbox.queue.remove(i)).map(|(_, p)| p))
    }

    /// Drains every packet that has arrived at `host` by the current
    /// simulated time into `out`, in arrival order, across all sockets —
    /// the batch receive the page server's request loop is built on: one
    /// pass over the inbox per tick instead of one scan per socket.
    ///
    /// Recycle each consumed packet's payload with
    /// [`pool::recycle_words`] to keep the steady state allocation-free.
    pub fn drain_arrived(&mut self, host: HostId, out: &mut Vec<Packet>) -> Result<(), NetError> {
        let now = self.clock.now();
        let inbox = self
            .inboxes
            .iter_mut()
            .find(|i| i.host == host)
            .ok_or(NetError::NoSuchHost(host))?;
        // Arrival times are monotone (every send happens at a later clock
        // instant), so the arrived prefix is exactly the front of the queue.
        while let Some((at, _)) = inbox.queue.front() {
            if *at > now {
                break;
            }
            let (_, p) = inbox.queue.pop_front().unwrap_or_else(|| unreachable!());
            out.push(p);
        }
        Ok(())
    }

    /// Advances the shared clock by `dt` with nothing on the wire — the
    /// polling quantum a host burns waiting for timeouts to mature (e.g. a
    /// client fleet whose every outstanding request is waiting out its
    /// retransmission timer after a loss).
    pub fn idle_wait(&mut self, dt: SimTime) {
        // lint: allow(clock-discipline) — the Ethernet is a hardware model
        // with the same standing as the disk: idle waiting charges the
        // shared timeline just as transmission does
        self.clock.advance(dt);
    }

    /// Packets waiting (arrived or in flight) for a host.
    pub fn queued(&self, host: HostId) -> usize {
        self.inboxes
            .iter()
            .find(|i| i.host == host)
            .map_or(0, |i| i.queue.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketType;

    fn ether() -> Ether {
        let mut e = Ether::new(SimClock::new(), Trace::new());
        e.attach(1).unwrap();
        e.attach(2).unwrap();
        e.attach(3).unwrap();
        e
    }

    fn packet(src: HostId, dst: HostId, socket: u16, seq: u16) -> Packet {
        Packet {
            ptype: PacketType::Data,
            dst_host: dst,
            src_host: src,
            dst_socket: socket,
            src_socket: 0x99,
            seq,
            payload: vec![seq; 4],
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let mut e = ether();
        e.send(packet(1, 2, 0x30, 1)).unwrap();
        assert_eq!(e.receive(2, 0x30).unwrap().unwrap().seq, 1);
        assert!(e.receive(2, 0x30).unwrap().is_none());
        // Host 3 saw nothing.
        assert!(e.receive(3, 0x30).unwrap().is_none());
    }

    #[test]
    fn broadcast_reaches_everyone_but_the_sender() {
        let mut e = ether();
        e.send(packet(1, 0, 0x30, 9)).unwrap();
        assert!(e.receive(2, 0x30).unwrap().is_some());
        assert!(e.receive(3, 0x30).unwrap().is_some());
        assert!(e.receive(1, 0x30).unwrap().is_none());
    }

    #[test]
    fn sockets_demultiplex() {
        let mut e = ether();
        e.send(packet(1, 2, 0x30, 1)).unwrap();
        e.send(packet(1, 2, 0x31, 2)).unwrap();
        assert_eq!(e.receive(2, 0x31).unwrap().unwrap().seq, 2);
        assert_eq!(e.receive(2, 0x30).unwrap().unwrap().seq, 1);
    }

    #[test]
    fn transmission_charges_the_clock() {
        let mut e = ether();
        let before = e.clock().now();
        let p = packet(1, 2, 0x30, 1);
        let words = p.wire_words() as u64;
        e.send(p).unwrap();
        assert_eq!(e.clock().now() - before, WORD_TIME.scaled(words));
    }

    #[test]
    fn a_page_sized_packet_takes_under_two_milliseconds() {
        // 256 payload words + header at 3 Mb/s ≈ 1.4 ms: the network is
        // much faster than one disk revolution, which is why the printing
        // server's spooler keeps up (§4).
        let mut e = ether();
        let mut p = packet(1, 2, 0x30, 1);
        p.payload = vec![0; 256];
        let before = e.clock().now();
        e.send(p).unwrap();
        let dt = e.clock().now() - before;
        assert!(dt < SimTime::from_millis(2), "page packet took {dt}");
    }

    #[test]
    fn unknown_hosts_rejected() {
        let mut e = ether();
        assert_eq!(e.send(packet(9, 2, 0x30, 1)), Err(NetError::NoSuchHost(9)));
        assert_eq!(e.send(packet(1, 9, 0x30, 1)), Err(NetError::NoSuchHost(9)));
        assert_eq!(e.receive(9, 0x30), Err(NetError::NoSuchHost(9)));
        assert_eq!(e.attach(1), Err(NetError::HostInUse(1)));
        assert_eq!(e.attach(0), Err(NetError::NoSuchHost(0)));
    }

    #[test]
    fn injected_loss_drops_packets() {
        let mut e = ether();
        e.set_loss(1, 2, 42);
        for seq in 0..100 {
            e.send(packet(1, 2, 0x30, seq)).unwrap();
        }
        assert_eq!(e.sent, 100);
        assert!(e.lost > 20 && e.lost < 80, "lost {}", e.lost);
        let mut received = 0;
        while e.receive(2, 0x30).unwrap().is_some() {
            received += 1;
        }
        assert_eq!(received + e.lost, 100);
    }

    #[test]
    fn oversized_payload_is_refused_not_panicked() {
        use crate::packet::MAX_PAYLOAD_WORDS;
        let mut e = ether();
        let mut p = packet(1, 2, 0x30, 1);
        p.payload = vec![0; MAX_PAYLOAD_WORDS + 1];
        let before = e.clock().now();
        assert_eq!(e.send(p), Err(NetError::Oversized(MAX_PAYLOAD_WORDS + 1)));
        // Nothing was charged to the wire and nothing was counted sent.
        assert_eq!(e.clock().now(), before);
        assert_eq!(e.sent, 0);
        // A maximum-size payload still goes through.
        let mut p = packet(1, 2, 0x30, 2);
        p.payload = vec![0; MAX_PAYLOAD_WORDS];
        e.send(p).unwrap();
        assert_eq!(e.receive(2, 0x30).unwrap().unwrap().seq, 2);
    }

    #[test]
    fn drain_arrived_pops_every_socket_in_arrival_order() {
        let mut e = ether();
        e.send(packet(1, 2, 0x30, 1)).unwrap();
        e.send(packet(3, 2, 0x31, 2)).unwrap();
        e.send(packet(1, 2, 0x32, 3)).unwrap();
        // A packet for someone else does not show up.
        e.send(packet(1, 3, 0x30, 9)).unwrap();
        let mut out = Vec::new();
        e.drain_arrived(2, &mut out).unwrap();
        assert_eq!(out.iter().map(|p| p.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        out.clear();
        e.drain_arrived(2, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(e.drain_arrived(99, &mut out), Err(NetError::NoSuchHost(99)));
    }

    #[test]
    fn idle_wait_advances_the_shared_clock() {
        let mut e = ether();
        let before = e.clock().now();
        e.idle_wait(SimTime::from_millis(3));
        assert_eq!(e.clock().now() - before, SimTime::from_millis(3));
    }

    #[test]
    fn delivery_preserves_contents() {
        let mut e = ether();
        let mut p = packet(1, 2, 0x30, 5);
        p.payload = (0..100).collect();
        e.send(p.clone()).unwrap();
        assert_eq!(e.receive(2, 0x30).unwrap().unwrap(), p);
    }
}
