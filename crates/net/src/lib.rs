//! Simulated local network (§1, §4, §5.2).
//!
//! The paper standardizes "the representation … of packets on the network"
//! below any operating-system software, so that programs in different
//! languages share the same remote facilities. This crate provides that
//! substrate for the examples that need it — chiefly the printing server
//! of §4 (a spooler task "that reads files from a local communications
//! network") and the diskless configuration of §5.2:
//!
//! * [`Packet`] — a Pup-flavoured packet with a word-level wire format and
//!   a software checksum (the *standardized representation*);
//! * [`Ether`] — a broadcast medium with 3 Mb/s transmission timing charged
//!   to the shared simulated clock, optional packet loss for protocol
//!   tests, and per-host receive queues;
//! * [`proto`] — a minimal stop-and-wait file-transfer protocol over it;
//! * [`server`] / [`client`] — the page/file server of §5.2 and the
//!   scripted diskless clients that load it: batched cross-client service
//!   through a pluggable [`PageStore`], replies on pooled zero-copy
//!   payload buffers.

#![forbid(unsafe_code)]

pub mod client;
pub mod ether;
pub mod packet;
pub mod pool;
pub mod proto;
pub mod server;

pub use client::{ClientConfig, ClientFleet, ClientPhase, FleetStats, ScriptedClient};
pub use ether::{Ether, HostId, NetError};
pub use packet::{Packet, PacketType, MAX_PAYLOAD_WORDS};
pub use proto::{echo_responder, ping, receive_file, send_file, ProtoError};
pub use server::{OpenInfo, PageRequest, PageServer, PageStore, ServerStats, PAGE_SERVICE_SOCKET};
