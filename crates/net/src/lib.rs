//! Simulated local network (§1, §4, §5.2).
//!
//! The paper standardizes "the representation … of packets on the network"
//! below any operating-system software, so that programs in different
//! languages share the same remote facilities. This crate provides that
//! substrate for the examples that need it — chiefly the printing server
//! of §4 (a spooler task "that reads files from a local communications
//! network") and the diskless configuration of §5.2:
//!
//! * [`Packet`] — a Pup-flavoured packet with a word-level wire format and
//!   a software checksum (the *standardized representation*);
//! * [`Ether`] — a broadcast medium with 3 Mb/s transmission timing charged
//!   to the shared simulated clock, optional packet loss for protocol
//!   tests, and per-host receive queues;
//! * [`proto`] — a minimal stop-and-wait file-transfer protocol over it.

#![forbid(unsafe_code)]

pub mod ether;
pub mod packet;
pub mod proto;

pub use ether::{Ether, HostId, NetError};
pub use packet::{Packet, PacketType, MAX_PAYLOAD_WORDS};
pub use proto::{echo_responder, ping, receive_file, send_file, ProtoError};
