//! The page/file server request loop (§5.2 / §4).
//!
//! The paper's endgame for the network is a *diskless Alto*: boot code
//! arrives over the ether and every page fault is serviced by a machine
//! across the room (§5.2), while §4's printing server sketches the server
//! shape — a loop that drains requests from the wire and turns them into
//! disk transfers. This module is that server, grown to thousands of
//! clients:
//!
//! * per tick, [`PageServer::tick`] drains *every* request that has
//!   arrived at the server host ([`Ether::drain_arrived`] — one pass over
//!   the inbox, not one scan per client);
//! * all page reads collected in a tick are handed to the backing
//!   [`PageStore`] as **one batch**, which the store sorts by disk address
//!   and feeds to the chained-transfer scheduler — requests from different
//!   clients coalesce into single disk command chains instead of paying a
//!   full rotation each (`set_batching_enabled(false)` restores the naive
//!   per-request service for the ablation);
//! * replies are assembled on pooled payload vectors filled straight from
//!   the store's zero-copy sector views: one copy platter → payload, no
//!   staging buffer, no per-request allocation.
//!
//! The protocol is Pup-flavoured and deliberately idempotent: re-opening a
//! name returns the same handle and re-reading a page returns the same
//! data, so client retransmissions under packet loss are harmless.
//!
//! Session state is keyed by `(host, socket)`: the 8-bit host space is
//! multiplexed by the 16-bit socket space, which is how a thousand-client
//! fleet fits one simulated ether.

use std::collections::BTreeMap;

use alto_disk::DATA_WORDS;

use crate::ether::{Ether, HostId, NetError};
use crate::packet::{Packet, PacketType};
use crate::pool;

/// The well-known socket the page server listens on.
pub const PAGE_SERVICE_SOCKET: u16 = 0o50;

/// Open a file by name. Payload: `[name_bytes, packed name words...]`;
/// `seq` is the client's request id, echoed in the reply.
pub const OPEN_REQUEST: PacketType = PacketType::Other(20);
/// Open succeeded. Payload: `[STATUS_OK, handle, pages, last_len]`.
pub const OPEN_REPLY: PacketType = PacketType::Other(21);
/// Read one page of an open file. Payload: `[handle, page]` (pages are
/// 1-based, the leader is the server's business); `seq` is the request id.
pub const READ_REQUEST: PacketType = PacketType::Other(22);
/// A served page. Payload: exactly [`DATA_WORDS`] data words; `seq` echoes
/// the request id (the client correlates handle and page from it).
pub const PAGE_REPLY: PacketType = PacketType::Other(23);
/// A failed request. Payload: `[status]`; `seq` echoes the request id.
pub const ERR_REPLY: PacketType = PacketType::Other(29);

/// Request served.
pub const STATUS_OK: u16 = 0;
/// The opened name does not exist on the server's disk.
pub const STATUS_NO_SUCH_FILE: u16 = 1;
/// The read's handle is not open in this session.
pub const STATUS_BAD_HANDLE: u16 = 2;
/// The read's page number is out of the open file's range.
pub const STATUS_BAD_PAGE: u16 = 3;
/// The disk failed the request (after retries).
pub const STATUS_IO: u16 = 4;
/// The request payload did not parse.
pub const STATUS_MALFORMED: u16 = 5;

/// Protocol-level cap on an open request's file name, in bytes. No store
/// names files anywhere near this long; a declared length past it is a
/// malformed request, not a big name.
pub const MAX_NAME_LEN: usize = 255;

/// Packs an ASCII file name into request payload words.
pub fn encode_name(name: &str, out: &mut Vec<u16>) {
    out.clear();
    let bytes = name.as_bytes();
    out.push(bytes.len() as u16);
    for pair in bytes.chunks(2) {
        let hi = pair[0] as u16;
        let lo = *pair.get(1).unwrap_or(&0) as u16;
        out.push((hi << 8) | lo);
    }
}

/// Unpacks a file name from request payload words.
pub fn decode_name(payload: &[u16]) -> Option<String> {
    let len = *payload.first()? as usize;
    let words = payload.get(1..)?;
    if len > MAX_NAME_LEN || len > 2 * words.len() {
        return None;
    }
    let mut bytes = Vec::with_capacity(len);
    for i in 0..len {
        let w = words[i / 2];
        bytes.push(if i % 2 == 0 { (w >> 8) as u8 } else { w as u8 });
    }
    String::from_utf8(bytes).ok()
}

/// What an open answered: the store-wide open id plus the file's shape.
#[derive(Debug, Clone, Copy)]
pub struct OpenInfo {
    /// The store's token for this open file (stable across re-opens).
    pub open_id: u32,
    /// Number of data pages.
    pub pages: u16,
    /// Bytes used in the last page.
    pub last_len: u16,
}

/// One page read, as handed to the store: `tag` is the server's reply
/// slot, echoed through [`PageStore::serve`]'s delivery callback.
#[derive(Debug, Clone, Copy)]
pub struct PageRequest {
    /// The store token from [`PageStore::open`].
    pub open_id: u32,
    /// 1-based data page number.
    pub page: u16,
    /// Opaque reply tag, echoed to `deliver`/`failed`.
    pub tag: u32,
}

/// The disk side of the page server. `crates/core`'s `FsPageService`
/// implements this over a real `FileSystem`; tests may use in-memory
/// fakes. The server never touches the disk directly — raw sector access
/// stays behind the store's own `fs::page` wrappers.
pub trait PageStore {
    /// Opens `name`, returning its token and shape, or a `STATUS_*` code.
    /// Must be idempotent: re-opening a name returns the same token.
    fn open(&mut self, name: &str) -> Result<OpenInfo, u16>;

    /// Serves a batch of page reads. For every served request, `deliver`
    /// is called exactly once with the request's `tag` and its page data;
    /// every failed request's `(tag, STATUS_*)` is pushed onto `failed`.
    ///
    /// The batch spans *clients*: the store is expected to sort it by disk
    /// address and issue it as chained transfers — that cross-client
    /// coalescing is the whole performance story of the server.
    fn serve<F>(&mut self, reqs: &[PageRequest], failed: &mut Vec<(u32, u16)>, deliver: F)
    where
        F: FnMut(u32, &[u16; DATA_WORDS]);
}

/// One client's open-file table. Handles are indexes into `opens`, so a
/// retransmitted open finds its existing entry by name.
#[derive(Debug, Default)]
struct Session {
    opens: Vec<(String, OpenInfo)>,
}

/// Where a collected read's reply must go.
#[derive(Debug, Clone, Copy)]
struct PendingReply {
    host: HostId,
    socket: u16,
    seq: u16,
}

/// Running counters, for the load harness and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct ServerStats {
    /// Ticks executed.
    pub ticks: u64,
    /// Packets drained from the inbox.
    pub packets: u64,
    /// Opens answered (including idempotent re-opens).
    pub opens: u64,
    /// Page reads collected.
    pub reads: u64,
    /// Page replies sent.
    pub served: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Store batches issued (one per tick when batching; one per request
    /// in the naive ablation).
    pub batches: u64,
    /// Replies the ether refused to carry (counted and traced as
    /// `net.send_drop`, never silently dropped — the client's
    /// retransmission machinery recovers).
    pub send_failures: u64,
}

/// The request loop: drains the server host's inbox, multiplexes sessions,
/// batches reads into the store, and replies on pooled buffers.
#[derive(Debug)]
pub struct PageServer {
    host: HostId,
    socket: u16,
    batching: bool,
    sessions: BTreeMap<(HostId, u16), Session>,
    inbox: Vec<Packet>,
    reads: Vec<PageRequest>,
    pending: Vec<PendingReply>,
    failed: Vec<(u32, u16)>,
    /// Counters; `stats.served` is the harness's served-requests metric.
    pub stats: ServerStats,
}

impl PageServer {
    /// A server listening on `host`:[`PAGE_SERVICE_SOCKET`]. The caller
    /// attaches the host to the ether.
    pub fn new(host: HostId) -> PageServer {
        PageServer {
            host,
            socket: PAGE_SERVICE_SOCKET,
            batching: true,
            sessions: BTreeMap::new(),
            inbox: Vec::new(),
            reads: Vec::new(),
            pending: Vec::new(),
            failed: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// The server's host address.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Toggles cross-client batching (on by default). Off, every read is
    /// handed to the store alone, in arrival order — the naive ablation
    /// the harness measures against.
    pub fn set_batching_enabled(&mut self, enabled: bool) {
        self.batching = enabled;
    }

    /// Runs one service tick: drain everything that has arrived, answer
    /// opens, collect reads, serve them through `store` (one batch, or one
    /// by one under the ablation), and send every reply. Returns how many
    /// packets were processed (0 means the tick was idle).
    pub fn tick<S: PageStore>(
        &mut self,
        ether: &mut Ether,
        store: &mut S,
    ) -> Result<u64, NetError> {
        self.stats.ticks += 1;
        let mut inbox = std::mem::take(&mut self.inbox);
        inbox.clear();
        ether.drain_arrived(self.host, &mut inbox)?;
        let processed = inbox.len() as u64;
        self.stats.packets += processed;
        self.reads.clear();
        self.pending.clear();
        self.failed.clear();
        for pkt in inbox.drain(..) {
            if pkt.dst_socket != self.socket {
                pool::recycle_words(pkt.payload);
                continue;
            }
            match pkt.ptype {
                OPEN_REQUEST => self.handle_open(ether, store, pkt),
                READ_REQUEST => self.collect_read(ether, pkt),
                _ => pool::recycle_words(pkt.payload),
            }
        }
        self.inbox = inbox;

        if self.batching {
            if !self.reads.is_empty() {
                self.stats.batches += 1;
                let ServerStats {
                    served,
                    send_failures,
                    ..
                } = &mut self.stats;
                let pending = &self.pending;
                let host = self.host;
                let socket = self.socket;
                store.serve(&self.reads, &mut self.failed, |tag, data| {
                    *served += 1;
                    send_page_reply(
                        ether,
                        host,
                        socket,
                        pending[tag as usize],
                        data,
                        send_failures,
                    );
                });
            }
        } else {
            for i in 0..self.reads.len() {
                self.stats.batches += 1;
                let ServerStats {
                    served,
                    send_failures,
                    ..
                } = &mut self.stats;
                let pending = &self.pending;
                let host = self.host;
                let socket = self.socket;
                store.serve(&self.reads[i..=i], &mut self.failed, |tag, data| {
                    *served += 1;
                    send_page_reply(
                        ether,
                        host,
                        socket,
                        pending[tag as usize],
                        data,
                        send_failures,
                    );
                });
            }
        }
        for k in 0..self.failed.len() {
            let (tag, status) = self.failed[k];
            let to = self.pending[tag as usize];
            self.error_reply(ether, to, status);
        }
        Ok(processed)
    }

    fn handle_open<S: PageStore>(&mut self, ether: &mut Ether, store: &mut S, pkt: Packet) {
        self.stats.opens += 1;
        let to = PendingReply {
            host: pkt.src_host,
            socket: pkt.src_socket,
            seq: pkt.seq,
        };
        let Some(name) = decode_name(&pkt.payload) else {
            pool::recycle_words(pkt.payload);
            self.error_reply(ether, to, STATUS_MALFORMED);
            return;
        };
        pool::recycle_words(pkt.payload);
        let session = self.sessions.entry((to.host, to.socket)).or_default();
        // Idempotent re-open: a retransmitted OPEN finds its entry.
        let existing = session.opens.iter().position(|(n, _)| *n == name);
        let (handle, info) = match existing {
            Some(h) => (h as u16, session.opens[h].1),
            None => match store.open(&name) {
                Ok(info) => {
                    session.opens.push((name, info));
                    ((session.opens.len() - 1) as u16, info)
                }
                Err(status) => {
                    self.error_reply(ether, to, status);
                    return;
                }
            },
        };
        let mut payload = pool::words_vec();
        payload.extend_from_slice(&[STATUS_OK, handle, info.pages, info.last_len]);
        let reply = Packet {
            ptype: OPEN_REPLY,
            dst_host: to.host,
            src_host: self.host,
            dst_socket: to.socket,
            src_socket: self.socket,
            seq: to.seq,
            payload,
        };
        send_reply(ether, &mut self.stats.send_failures, reply);
    }

    fn collect_read(&mut self, ether: &mut Ether, pkt: Packet) {
        let to = PendingReply {
            host: pkt.src_host,
            socket: pkt.src_socket,
            seq: pkt.seq,
        };
        let parsed = match pkt.payload[..] {
            [handle, page] => Some((handle, page)),
            _ => None,
        };
        pool::recycle_words(pkt.payload);
        let Some((handle, page)) = parsed else {
            self.error_reply(ether, to, STATUS_MALFORMED);
            return;
        };
        let Some(info) = self
            .sessions
            .get(&(to.host, to.socket))
            .and_then(|s| s.opens.get(handle as usize))
            .map(|(_, info)| *info)
        else {
            self.error_reply(ether, to, STATUS_BAD_HANDLE);
            return;
        };
        if page == 0 || page > info.pages {
            self.error_reply(ether, to, STATUS_BAD_PAGE);
            return;
        }
        self.stats.reads += 1;
        let tag = self.pending.len() as u32;
        self.pending.push(to);
        self.reads.push(PageRequest {
            open_id: info.open_id,
            page,
            tag,
        });
    }

    fn error_reply(&mut self, ether: &mut Ether, to: PendingReply, status: u16) {
        self.stats.errors += 1;
        let mut payload = pool::words_vec();
        payload.push(status);
        let reply = Packet {
            ptype: ERR_REPLY,
            dst_host: to.host,
            src_host: self.host,
            dst_socket: to.socket,
            src_socket: self.socket,
            seq: to.seq,
            payload,
        };
        send_reply(ether, &mut self.stats.send_failures, reply);
    }
}

/// Sends one reply; a refused send is counted and traced (`net.send_drop`)
/// instead of vanishing. The protocol is idempotent, so the client's
/// retransmission recovers the loss — but the operator gets to see it.
fn send_reply(ether: &mut Ether, send_failures: &mut u64, reply: Packet) {
    let dst = reply.dst_host;
    let seq = reply.seq;
    if ether.send(reply).is_err() {
        *send_failures += 1;
        ether.note("net.send_drop", || format!("reply to {dst} seq {seq}"));
    }
}

/// Builds and sends one page reply on a pooled payload — the single copy
/// of the page's 512 bytes between platter and wire.
fn send_page_reply(
    ether: &mut Ether,
    host: HostId,
    socket: u16,
    to: PendingReply,
    data: &[u16; DATA_WORDS],
    send_failures: &mut u64,
) {
    let mut payload = pool::words_vec();
    payload.extend_from_slice(data);
    let reply = Packet {
        ptype: PAGE_REPLY,
        dst_host: to.host,
        src_host: host,
        dst_socket: to.socket,
        src_socket: socket,
        seq: to.seq,
        payload,
    };
    send_reply(ether, send_failures, reply);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        let mut out = Vec::new();
        for name in ["", "a", "ab", "boot.image", "Sys.Boot"] {
            encode_name(name, &mut out);
            assert_eq!(decode_name(&out).as_deref(), Some(name));
        }
    }

    #[test]
    fn malformed_names_are_rejected() {
        assert_eq!(decode_name(&[]), None);
        // Declared longer than the words supplied.
        assert_eq!(decode_name(&[5, 0x4142]), None);
        // Invalid UTF-8 byte sequences decode to None, not a panic.
        assert_eq!(decode_name(&[2, 0xFFFE]), None);
        // Declared past the protocol cap, even with the words to back it.
        let huge = vec![0x4141u16; 1 + MAX_NAME_LEN];
        let mut p = vec![(MAX_NAME_LEN + 1) as u16];
        p.extend_from_slice(&huge);
        assert_eq!(decode_name(&p), None);
    }

    #[test]
    fn seeded_name_payload_sweep_rejects_or_is_well_formed() {
        // Mirror the packet-level corruption sweep one layer up: random
        // OPEN payloads must either be rejected or decode to a name whose
        // shape matches what the payload declared — never panic, never
        // over-read, never exceed the protocol cap.
        let mut rng = alto_sim::SplitMix64::new(0x09E4_4A3E);
        let mut accepted = 0u32;
        for round in 0..4000u64 {
            let payload: Vec<u16> = match round % 3 {
                // Pure noise.
                0 => (0..rng.next_u64() % 40).map(|_| rng.next_u16()).collect(),
                // A valid encode with words smashed.
                1 => {
                    let name: String = (0..rng.next_u64() % 50)
                        .map(|_| (b'a' + (rng.next_u64() % 26) as u8) as char)
                        .collect();
                    let mut out = Vec::new();
                    encode_name(&name, &mut out);
                    for _ in 0..1 + rng.next_u64() % 3 {
                        if !out.is_empty() {
                            let i = rng.next_u64() as usize % out.len();
                            out[i] = rng.next_u16();
                        }
                    }
                    out
                }
                // A hostile declared length over real bytes.
                _ => {
                    let mut out: Vec<u16> =
                        (0..rng.next_u64() % 20).map(|_| rng.next_u16()).collect();
                    out.insert(0, rng.next_u16());
                    out
                }
            };
            if let Some(name) = decode_name(&payload) {
                accepted += 1;
                assert_eq!(name.len(), payload[0] as usize);
                assert!(name.len() <= MAX_NAME_LEN);
            }
        }
        // The sweep must actually exercise both outcomes.
        assert!(accepted > 0);
    }
}
