//! A minimal stop-and-wait file-transfer protocol.
//!
//! Enough protocol to move a file (e.g. a print job) between hosts with
//! per-packet acknowledgement and retransmission over a lossy ether. Both
//! ends are *polled* state machines — no threads — so the printing-server
//! example can interleave a spooler and a printer the way the paper's
//! coroutines did (§4).

use std::fmt;

use crate::ether::{Ether, HostId, NetError};
use crate::packet::{Packet, PacketType, MAX_PAYLOAD_WORDS};

/// Protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The medium failed.
    Net(NetError),
    /// Retransmission limit exceeded.
    TooManyRetries {
        /// Sequence number that never got through.
        seq: u16,
    },
    /// The receiver saw a sequence number it cannot reconcile.
    OutOfSequence {
        /// Expected sequence.
        expected: u16,
        /// Received sequence.
        got: u16,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Net(e) => write!(f, "network error: {e}"),
            ProtoError::TooManyRetries { seq } => {
                write!(f, "gave up retransmitting packet {seq}")
            }
            ProtoError::OutOfSequence { expected, got } => {
                write!(f, "out of sequence: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<NetError> for ProtoError {
    fn from(e: NetError) -> Self {
        ProtoError::Net(e)
    }
}

/// Retransmissions per packet before giving up.
const MAX_RETRIES: u32 = 16;

/// Sends `words` from `src` to `dst` on `socket`, stop-and-wait with
/// retransmission. Returns the number of data packets (excluding
/// retransmissions). The receiver must be driven by [`receive_file`]
/// on the same ether — this function polls for its acknowledgements.
pub fn send_file(
    ether: &mut Ether,
    src: HostId,
    dst: HostId,
    socket: u16,
    ack_socket: u16,
    words: &[u16],
) -> Result<u32, ProtoError> {
    let mut packets = 0u32;
    let chunks: Vec<&[u16]> = if words.is_empty() {
        vec![&[][..]]
    } else {
        words.chunks(MAX_PAYLOAD_WORDS).collect()
    };
    let total = chunks.len();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let is_last = i + 1 == total;
        let seq = i as u16;
        let packet = Packet {
            ptype: if is_last {
                PacketType::End
            } else {
                PacketType::Data
            },
            dst_host: dst,
            src_host: src,
            dst_socket: socket,
            src_socket: ack_socket,
            seq,
            payload: chunk.to_vec(),
        };
        let mut acked = false;
        for _ in 0..=MAX_RETRIES {
            ether.send(packet.clone())?;
            // Poll for the ack (the medium delivers instantly at the end
            // of transmission; a lost ack shows up as silence).
            if let Some(ack) = ether.receive(src, ack_socket)? {
                if ack.ptype == PacketType::Ack && ack.seq == seq {
                    acked = true;
                    break;
                }
            }
        }
        if !acked {
            return Err(ProtoError::TooManyRetries { seq });
        }
        packets += 1;
    }
    Ok(packets)
}

/// Receive state machine: drives one transfer via [`Receiver::step`].
#[derive(Debug)]
pub struct Receiver {
    host: HostId,
    socket: u16,
    expected: u16,
    words: Vec<u16>,
    done: bool,
}

impl Receiver {
    /// A receiver listening on `(host, socket)`.
    pub fn new(host: HostId, socket: u16) -> Receiver {
        Receiver {
            host,
            socket,
            expected: 0,
            words: Vec::new(),
            done: false,
        }
    }

    /// True when the final packet has been acknowledged.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The words received so far (the full file once [`Receiver::is_done`]).
    pub fn take_words(self) -> Vec<u16> {
        self.words
    }

    /// Polls the ether once: accepts an in-order packet (appending its
    /// payload and acking it), re-acks duplicates, rejects gaps.
    /// Returns true if a packet was consumed.
    pub fn step(&mut self, ether: &mut Ether) -> Result<bool, ProtoError> {
        let Some(packet) = ether.receive(self.host, self.socket)? else {
            return Ok(false);
        };
        if packet.seq == self.expected {
            self.words.extend_from_slice(&packet.payload);
            if packet.ptype == PacketType::End {
                self.done = true;
            }
            self.expected += 1;
        } else if packet.seq > self.expected {
            return Err(ProtoError::OutOfSequence {
                expected: self.expected,
                got: packet.seq,
            });
        }
        // Ack both fresh and duplicate packets (the sender's ack may have
        // been lost).
        let ack = Packet {
            ptype: PacketType::Ack,
            dst_host: packet.src_host,
            src_host: self.host,
            dst_socket: packet.src_socket,
            src_socket: self.socket,
            seq: packet.seq,
            payload: vec![],
        };
        ether.send(ack)?;
        Ok(true)
    }
}

/// Convenience: runs a whole transfer by interleaving sender and receiver
/// (they share the single-threaded ether, like coroutines).
pub fn receive_file(
    ether: &mut Ether,
    src: HostId,
    dst: HostId,
    socket: u16,
    ack_socket: u16,
    words: &[u16],
) -> Result<Vec<u16>, ProtoError> {
    // Stop-and-wait needs the receiver to run between sends; emulate by
    // sending one chunk at a time and stepping the receiver.
    let mut receiver = Receiver::new(dst, socket);
    let chunks: Vec<&[u16]> = if words.is_empty() {
        vec![&[][..]]
    } else {
        words.chunks(MAX_PAYLOAD_WORDS).collect()
    };
    let total = chunks.len();
    for (i, chunk) in chunks.into_iter().enumerate() {
        let is_last = i + 1 == total;
        let seq = i as u16;
        let packet = Packet {
            ptype: if is_last {
                PacketType::End
            } else {
                PacketType::Data
            },
            dst_host: dst,
            src_host: src,
            dst_socket: socket,
            src_socket: ack_socket,
            seq,
            payload: chunk.to_vec(),
        };
        let mut acked = false;
        for _ in 0..=MAX_RETRIES {
            ether.send(packet.clone())?;
            receiver.step(ether)?;
            if let Some(ack) = ether.receive(src, ack_socket)? {
                if ack.ptype == PacketType::Ack && ack.seq == seq {
                    acked = true;
                    break;
                }
            }
        }
        if !acked {
            return Err(ProtoError::TooManyRetries { seq });
        }
    }
    Ok(receiver.take_words())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_sim::{SimClock, Trace};

    fn ether() -> Ether {
        let mut e = Ether::new(SimClock::new(), Trace::new());
        e.attach(1).unwrap();
        e.attach(2).unwrap();
        e
    }

    #[test]
    fn lossless_transfer() {
        let mut e = ether();
        let words: Vec<u16> = (0..1000u16).collect();
        let got = receive_file(&mut e, 1, 2, 0x30, 0x31, &words).unwrap();
        assert_eq!(got, words);
    }

    #[test]
    fn empty_transfer() {
        let mut e = ether();
        let got = receive_file(&mut e, 1, 2, 0x30, 0x31, &[]).unwrap();
        assert_eq!(got, Vec::<u16>::new());
    }

    #[test]
    fn exact_chunk_boundary() {
        let mut e = ether();
        let words: Vec<u16> = (0..(MAX_PAYLOAD_WORDS as u16 * 2)).collect();
        let got = receive_file(&mut e, 1, 2, 0x30, 0x31, &words).unwrap();
        assert_eq!(got, words);
    }

    #[test]
    fn transfer_survives_heavy_loss() {
        let mut e = ether();
        e.set_loss(1, 3, 7); // a third of all packets vanish
        let words: Vec<u16> = (0..2000u16).map(|i| i.wrapping_mul(31)).collect();
        let got = receive_file(&mut e, 1, 2, 0x30, 0x31, &words).unwrap();
        assert_eq!(got, words);
        assert!(e.lost > 0, "the loss injection must actually have fired");
    }

    #[test]
    fn retries_eventually_give_up() {
        let mut e = ether();
        e.set_loss(1, 1, 7); // everything is lost
        let err = receive_file(&mut e, 1, 2, 0x30, 0x31, &[1, 2, 3]).unwrap_err();
        assert_eq!(err, ProtoError::TooManyRetries { seq: 0 });
    }

    #[test]
    fn manual_receiver_stepping() {
        let mut e = ether();
        let words: Vec<u16> = (0..10).collect();
        let mut receiver = Receiver::new(2, 0x30);
        // Send a single End packet by hand.
        let n = send_file_manual(&mut e, &mut receiver, &words);
        assert!(n > 0);
        assert!(receiver.is_done());
        assert_eq!(receiver.take_words(), words);
    }

    fn send_file_manual(e: &mut Ether, r: &mut Receiver, words: &[u16]) -> u32 {
        let packet = Packet {
            ptype: PacketType::End,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0x30,
            src_socket: 0x31,
            seq: 0,
            payload: words.to_vec(),
        };
        e.send(packet).unwrap();
        let consumed = r.step(e).unwrap();
        assert!(consumed);
        1
    }

    #[test]
    fn duplicate_packets_are_reacked_not_reappended() {
        let mut e = ether();
        let mut r = Receiver::new(2, 0x30);
        let packet = Packet {
            ptype: PacketType::End,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0x30,
            src_socket: 0x31,
            seq: 0,
            payload: vec![5, 6],
        };
        e.send(packet.clone()).unwrap();
        r.step(&mut e).unwrap();
        // Duplicate (retransmission after a lost ack).
        e.send(packet).unwrap();
        r.step(&mut e).unwrap();
        assert_eq!(r.take_words(), vec![5, 6]);
        // Two acks went back.
        let mut acks = 0;
        while e.receive(1, 0x31).unwrap().is_some() {
            acks += 1;
        }
        assert_eq!(acks, 2);
    }

    #[test]
    fn sequence_gap_is_an_error() {
        let mut e = ether();
        let mut r = Receiver::new(2, 0x30);
        let packet = Packet {
            ptype: PacketType::Data,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0x30,
            src_socket: 0x31,
            seq: 5,
            payload: vec![],
        };
        e.send(packet).unwrap();
        assert_eq!(
            r.step(&mut e).unwrap_err(),
            ProtoError::OutOfSequence {
                expected: 0,
                got: 5
            }
        );
    }
}

/// Sends an echo request from `src` to `dst` and waits for the reply that
/// [`echo_responder`] sends back. Returns the round-trip simulated time.
///
/// Diagnostics used exactly this on the real ether to check that a machine
/// was alive before netbooting it.
pub fn ping(
    ether: &mut Ether,
    src: HostId,
    dst: HostId,
    socket: u16,
    payload: &[u16],
) -> Result<alto_sim::SimTime, ProtoError> {
    let start = ether.clock().now();
    let request = Packet {
        ptype: PacketType::EchoRequest,
        dst_host: dst,
        src_host: src,
        dst_socket: socket,
        src_socket: socket,
        seq: 1,
        payload: payload.to_vec(),
    };
    ether.send(request)?;
    echo_responder(ether, dst, socket)?;
    let Some(reply) = ether.receive(src, socket)? else {
        return Err(ProtoError::TooManyRetries { seq: 1 });
    };
    if reply.ptype != PacketType::EchoReply || reply.payload != payload {
        return Err(ProtoError::OutOfSequence {
            expected: 1,
            got: reply.seq,
        });
    }
    Ok(ether.clock().now() - start)
}

/// Serves one pending echo request at `(host, socket)`, if any. Returns
/// true if a reply was sent.
pub fn echo_responder(ether: &mut Ether, host: HostId, socket: u16) -> Result<bool, ProtoError> {
    let Some(request) = ether.receive(host, socket)? else {
        return Ok(false);
    };
    if request.ptype != PacketType::EchoRequest {
        return Ok(false);
    }
    let reply = Packet {
        ptype: PacketType::EchoReply,
        dst_host: request.src_host,
        src_host: host,
        dst_socket: request.src_socket,
        src_socket: socket,
        seq: request.seq,
        payload: request.payload,
    };
    ether.send(reply)?;
    Ok(true)
}

#[cfg(test)]
mod echo_tests {
    use super::*;
    use alto_sim::{SimClock, SimTime, Trace};

    fn ether() -> Ether {
        let mut e = Ether::new(SimClock::new(), Trace::new());
        e.attach(1).unwrap();
        e.attach(2).unwrap();
        e
    }

    #[test]
    fn ping_round_trips() {
        let mut e = ether();
        let rtt = ping(&mut e, 1, 2, 0o77, &[1, 2, 3]).unwrap();
        // Two small packets on a 3 Mb/s wire: well under a millisecond.
        assert!(rtt > SimTime::ZERO);
        assert!(rtt < SimTime::from_millis(1), "rtt {rtt}");
    }

    #[test]
    fn responder_ignores_non_echo_traffic() {
        let mut e = ether();
        e.send(Packet {
            ptype: PacketType::Data,
            dst_host: 2,
            src_host: 1,
            dst_socket: 0o77,
            src_socket: 0o77,
            seq: 0,
            payload: vec![],
        })
        .unwrap();
        assert!(!echo_responder(&mut e, 2, 0o77).unwrap());
        // Nothing came back.
        assert!(e.receive(1, 0o77).unwrap().is_none());
    }

    #[test]
    fn ping_to_dead_host_times_out() {
        let mut e = ether();
        e.set_loss(1, 1, 3); // the wire eats everything
        let err = ping(&mut e, 1, 2, 0o77, &[9]).unwrap_err();
        assert!(matches!(err, ProtoError::TooManyRetries { .. }));
    }
}
