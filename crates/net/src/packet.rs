//! The packet format: the standardized on-the-wire representation (§1).
//!
//! Word layout (loosely after the PARC Universal Packet):
//!
//! ```text
//! word 0   length of the whole packet in words (header + payload + checksum)
//! word 1   packet type
//! word 2   destination host (high byte) | source host (low byte)
//! word 3   destination socket
//! word 4   source socket
//! word 5   sequence / identifier
//! words 6..n-1   payload
//! word n-1 checksum: ones'-complement sum of words 0..n-1
//! ```

use std::fmt;

/// Header words before the payload.
pub const HEADER_WORDS: usize = 6;
/// Maximum payload words per packet (a disk page fits in one packet).
pub const MAX_PAYLOAD_WORDS: usize = 256;

/// Packet types used by the protocols in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// File-transfer data chunk.
    Data,
    /// Acknowledgement of a sequence number.
    Ack,
    /// End of transfer.
    End,
    /// Echo request (diagnostics).
    EchoRequest,
    /// Echo reply.
    EchoReply,
    /// Anything else (user-defined).
    Other(u16),
}

impl PacketType {
    fn to_word(self) -> u16 {
        match self {
            PacketType::Data => 1,
            PacketType::Ack => 2,
            PacketType::End => 3,
            PacketType::EchoRequest => 4,
            PacketType::EchoReply => 5,
            PacketType::Other(w) => w,
        }
    }

    fn from_word(w: u16) -> PacketType {
        match w {
            1 => PacketType::Data,
            2 => PacketType::Ack,
            3 => PacketType::End,
            4 => PacketType::EchoRequest,
            5 => PacketType::EchoReply,
            other => PacketType::Other(other),
        }
    }
}

/// A network packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet type.
    pub ptype: PacketType,
    /// Destination host (0 = broadcast).
    pub dst_host: u8,
    /// Source host.
    pub src_host: u8,
    /// Destination socket.
    pub dst_socket: u16,
    /// Source socket.
    pub src_socket: u16,
    /// Sequence number / identifier.
    pub seq: u16,
    /// Payload words.
    pub payload: Vec<u16>,
}

/// Why a packet failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer words than a header plus checksum.
    TooShort,
    /// Declared length disagrees with the words supplied.
    LengthMismatch,
    /// Payload longer than [`MAX_PAYLOAD_WORDS`].
    TooLong,
    /// Checksum mismatch (corrupt on the wire).
    BadChecksum,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PacketError::TooShort => "packet too short",
            PacketError::LengthMismatch => "packet length mismatch",
            PacketError::TooLong => "packet too long",
            PacketError::BadChecksum => "packet checksum mismatch",
        })
    }
}

impl std::error::Error for PacketError {}

fn ones_complement_sum(words: &[u16]) -> u16 {
    let mut sum = 0u32;
    for &w in words {
        sum += w as u32;
        if sum > 0xFFFF {
            sum = (sum & 0xFFFF) + 1;
        }
    }
    sum as u16
}

impl Packet {
    /// Total wire length in words.
    pub fn wire_words(&self) -> usize {
        HEADER_WORDS + self.payload.len() + 1
    }

    /// Encodes to the wire format (with checksum).
    pub fn encode(&self) -> Vec<u16> {
        let mut w = Vec::with_capacity(self.wire_words());
        self.encode_into(&mut w);
        w
    }

    /// Encodes to the wire format into `out` (cleared first) — the pooled
    /// transmit path: the ether stages onto a recycled wire vector instead
    /// of allocating one per send.
    pub fn encode_into(&self, out: &mut Vec<u16>) {
        out.clear();
        out.reserve(self.wire_words());
        out.push(self.wire_words() as u16);
        out.push(self.ptype.to_word());
        out.push(((self.dst_host as u16) << 8) | self.src_host as u16);
        out.push(self.dst_socket);
        out.push(self.src_socket);
        out.push(self.seq);
        out.extend_from_slice(&self.payload);
        out.push(ones_complement_sum(out));
    }

    /// Decodes from the wire format, verifying length and checksum.
    pub fn decode(words: &[u16]) -> Result<Packet, PacketError> {
        Self::decode_with(words, Vec::new())
    }

    /// [`Packet::decode`] reusing `payload` (cleared first) as the payload
    /// vector — the pooled receive path. On error the vector is dropped;
    /// decode errors are the cold path.
    pub fn decode_with(words: &[u16], mut payload: Vec<u16>) -> Result<Packet, PacketError> {
        if words.len() < HEADER_WORDS + 1 {
            return Err(PacketError::TooShort);
        }
        if words[0] as usize != words.len() {
            return Err(PacketError::LengthMismatch);
        }
        if words.len() - HEADER_WORDS - 1 > MAX_PAYLOAD_WORDS {
            return Err(PacketError::TooLong);
        }
        let body = &words[..words.len() - 1];
        if ones_complement_sum(body) != words[words.len() - 1] {
            return Err(PacketError::BadChecksum);
        }
        payload.clear();
        payload.extend_from_slice(&words[HEADER_WORDS..words.len() - 1]);
        Ok(Packet {
            ptype: PacketType::from_word(words[1]),
            dst_host: (words[2] >> 8) as u8,
            src_host: words[2] as u8,
            dst_socket: words[3],
            src_socket: words[4],
            seq: words[5],
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            ptype: PacketType::Data,
            dst_host: 3,
            src_host: 7,
            dst_socket: 0x30,
            src_socket: 0x99,
            seq: 12,
            payload: vec![0xAAAA, 0x5555, 0],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        // Empty payload too.
        let mut q = sample();
        q.payload.clear();
        assert_eq!(Packet::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn corruption_is_detected() {
        let mut words = sample().encode();
        words[6] ^= 0x0100; // flip a payload bit
        assert_eq!(Packet::decode(&words), Err(PacketError::BadChecksum));
    }

    #[test]
    fn header_corruption_is_detected() {
        let mut words = sample().encode();
        words[3] ^= 1; // destination socket
        assert_eq!(Packet::decode(&words), Err(PacketError::BadChecksum));
    }

    #[test]
    fn length_mismatch_rejected() {
        let words = sample().encode();
        assert_eq!(
            Packet::decode(&words[..words.len() - 1]),
            Err(PacketError::LengthMismatch)
        );
        assert_eq!(Packet::decode(&[]), Err(PacketError::TooShort));
    }

    #[test]
    fn packet_types_round_trip() {
        for t in [
            PacketType::Data,
            PacketType::Ack,
            PacketType::End,
            PacketType::EchoRequest,
            PacketType::EchoReply,
            PacketType::Other(77),
        ] {
            let mut p = sample();
            p.ptype = t;
            assert_eq!(Packet::decode(&p.encode()).unwrap().ptype, t);
        }
    }

    #[test]
    fn every_short_or_trimmed_slice_is_rejected_not_panicked() {
        // Exhaustive sweep: decode every prefix and every suffix of a
        // maximum-size valid wire image, plus slices of constant filler, at
        // every length from 0 to past the maximum. None may panic; only the
        // full image may decode.
        let mut p = sample();
        p.payload = (0..MAX_PAYLOAD_WORDS as u16).collect();
        let wire = p.encode();
        assert_eq!(wire.len(), HEADER_WORDS + MAX_PAYLOAD_WORDS + 1);
        for len in 0..=wire.len() {
            let prefix = Packet::decode(&wire[..len]);
            if len == wire.len() {
                assert!(prefix.is_ok());
            } else {
                assert!(prefix.is_err(), "prefix of {len} words decoded");
            }
            assert!(Packet::decode(&wire[wire.len() - len..]).is_err() || len == wire.len());
        }
        for len in 0..=2 * MAX_PAYLOAD_WORDS {
            for fill in [0u16, 1, 0xFFFF, len as u16] {
                let junk = vec![fill; len];
                // Must never panic. Constant filler can occasionally form a
                // genuinely valid image (e.g. 257 words of 0x101: the length
                // word matches and the ones'-complement sum folds back to
                // 0x101) — that's a correct accept, so only well-formedness
                // is required, not rejection.
                if let Ok(q) = Packet::decode(&junk) {
                    assert_eq!(q.wire_words(), len, "mis-sized junk accept");
                    assert!(q.payload.len() <= MAX_PAYLOAD_WORDS);
                }
            }
        }
    }

    #[test]
    fn oversized_wire_images_are_rejected_with_the_right_error() {
        // A wire image whose declared and actual length agree but whose
        // payload exceeds MAX_PAYLOAD_WORDS must come back TooLong (with a
        // correct checksum) — never a mis-sized payload.
        let mut p = sample();
        p.payload = vec![7; MAX_PAYLOAD_WORDS + 1];
        let wire = p.encode();
        assert_eq!(Packet::decode(&wire), Err(PacketError::TooLong));
        // And one far past any sane size.
        p.payload = vec![7; 4 * MAX_PAYLOAD_WORDS];
        assert_eq!(Packet::decode(&p.encode()), Err(PacketError::TooLong));
    }

    #[test]
    fn seeded_corruption_never_panics_and_never_mis_sizes() {
        // Corrupt valid wire images with a seeded PRNG — random word
        // smashes, bit flips, truncations and extensions — and require
        // decode to either reject or produce a well-formed packet (the
        // ones'-complement sum admits 0x0000 <-> 0xFFFF aliasing, so "all
        // corruption detected" would be too strong).
        let mut rng = alto_sim::SplitMix64::new(0xC0FFEE);
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        for round in 0..2000 {
            let mut p = sample();
            p.payload = (0..(round % 257)).map(|w| w ^ round).collect();
            p.seq = round;
            let mut wire = p.encode();
            let mutations = 1 + (rng.next_u64() % 4) as usize;
            for _ in 0..mutations {
                match rng.next_u64() % 4 {
                    0 => {
                        let i = rng.next_u64() as usize % wire.len();
                        wire[i] = rng.next_u64() as u16;
                    }
                    1 => {
                        let i = rng.next_u64() as usize % wire.len();
                        wire[i] ^= 1 << (rng.next_u64() % 16);
                    }
                    2 => {
                        let keep = rng.next_u64() as usize % (wire.len() + 1);
                        wire.truncate(keep);
                        if wire.is_empty() {
                            wire.push(rng.next_u64() as u16);
                        }
                    }
                    _ => wire.push(rng.next_u64() as u16),
                }
            }
            match Packet::decode(&wire) {
                Ok(q) => {
                    accepted += 1;
                    assert_eq!(q.wire_words(), wire.len(), "mis-sized payload accepted");
                    assert!(q.payload.len() <= MAX_PAYLOAD_WORDS);
                }
                Err(_) => rejected += 1,
            }
        }
        // The sweep must actually exercise the reject paths.
        assert!(rejected > 1500, "only {rejected} rejects");
        // Aliasing acceptances are possible but must be rare.
        assert!(accepted < 100, "{accepted} corrupt packets accepted");
    }

    #[test]
    fn decode_with_reuses_the_given_vector() {
        let p = sample();
        let wire = p.encode();
        let mut recycled = Vec::with_capacity(64);
        recycled.push(0xDEAD);
        let q = Packet::decode_with(&wire, recycled).unwrap();
        assert_eq!(q, p);
        assert!(q.payload.capacity() >= 64);
    }

    #[test]
    fn checksum_is_ones_complement() {
        // Carries wrap around.
        assert_eq!(ones_complement_sum(&[0xFFFF, 1]), 1);
        assert_eq!(ones_complement_sum(&[0x8000, 0x8000]), 1);
        assert_eq!(ones_complement_sum(&[]), 0);
    }
}
