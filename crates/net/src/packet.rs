//! The packet format: the standardized on-the-wire representation (§1).
//!
//! Word layout (loosely after the PARC Universal Packet):
//!
//! ```text
//! word 0   length of the whole packet in words (header + payload + checksum)
//! word 1   packet type
//! word 2   destination host (high byte) | source host (low byte)
//! word 3   destination socket
//! word 4   source socket
//! word 5   sequence / identifier
//! words 6..n-1   payload
//! word n-1 checksum: ones'-complement sum of words 0..n-1
//! ```

use std::fmt;

/// Header words before the payload.
pub const HEADER_WORDS: usize = 6;
/// Maximum payload words per packet (a disk page fits in one packet).
pub const MAX_PAYLOAD_WORDS: usize = 256;

/// Packet types used by the protocols in this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// File-transfer data chunk.
    Data,
    /// Acknowledgement of a sequence number.
    Ack,
    /// End of transfer.
    End,
    /// Echo request (diagnostics).
    EchoRequest,
    /// Echo reply.
    EchoReply,
    /// Anything else (user-defined).
    Other(u16),
}

impl PacketType {
    fn to_word(self) -> u16 {
        match self {
            PacketType::Data => 1,
            PacketType::Ack => 2,
            PacketType::End => 3,
            PacketType::EchoRequest => 4,
            PacketType::EchoReply => 5,
            PacketType::Other(w) => w,
        }
    }

    fn from_word(w: u16) -> PacketType {
        match w {
            1 => PacketType::Data,
            2 => PacketType::Ack,
            3 => PacketType::End,
            4 => PacketType::EchoRequest,
            5 => PacketType::EchoReply,
            other => PacketType::Other(other),
        }
    }
}

/// A network packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet type.
    pub ptype: PacketType,
    /// Destination host (0 = broadcast).
    pub dst_host: u8,
    /// Source host.
    pub src_host: u8,
    /// Destination socket.
    pub dst_socket: u16,
    /// Source socket.
    pub src_socket: u16,
    /// Sequence number / identifier.
    pub seq: u16,
    /// Payload words.
    pub payload: Vec<u16>,
}

/// Why a packet failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer words than a header plus checksum.
    TooShort,
    /// Declared length disagrees with the words supplied.
    LengthMismatch,
    /// Payload longer than [`MAX_PAYLOAD_WORDS`].
    TooLong,
    /// Checksum mismatch (corrupt on the wire).
    BadChecksum,
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PacketError::TooShort => "packet too short",
            PacketError::LengthMismatch => "packet length mismatch",
            PacketError::TooLong => "packet too long",
            PacketError::BadChecksum => "packet checksum mismatch",
        })
    }
}

impl std::error::Error for PacketError {}

fn ones_complement_sum(words: &[u16]) -> u16 {
    let mut sum = 0u32;
    for &w in words {
        sum += w as u32;
        if sum > 0xFFFF {
            sum = (sum & 0xFFFF) + 1;
        }
    }
    sum as u16
}

impl Packet {
    /// Total wire length in words.
    pub fn wire_words(&self) -> usize {
        HEADER_WORDS + self.payload.len() + 1
    }

    /// Encodes to the wire format (with checksum).
    pub fn encode(&self) -> Vec<u16> {
        let mut w = Vec::with_capacity(self.wire_words());
        w.push(self.wire_words() as u16);
        w.push(self.ptype.to_word());
        w.push(((self.dst_host as u16) << 8) | self.src_host as u16);
        w.push(self.dst_socket);
        w.push(self.src_socket);
        w.push(self.seq);
        w.extend_from_slice(&self.payload);
        w.push(ones_complement_sum(&w));
        w
    }

    /// Decodes from the wire format, verifying length and checksum.
    pub fn decode(words: &[u16]) -> Result<Packet, PacketError> {
        if words.len() < HEADER_WORDS + 1 {
            return Err(PacketError::TooShort);
        }
        if words[0] as usize != words.len() {
            return Err(PacketError::LengthMismatch);
        }
        if words.len() - HEADER_WORDS - 1 > MAX_PAYLOAD_WORDS {
            return Err(PacketError::TooLong);
        }
        let body = &words[..words.len() - 1];
        if ones_complement_sum(body) != words[words.len() - 1] {
            return Err(PacketError::BadChecksum);
        }
        Ok(Packet {
            ptype: PacketType::from_word(words[1]),
            dst_host: (words[2] >> 8) as u8,
            src_host: words[2] as u8,
            dst_socket: words[3],
            src_socket: words[4],
            seq: words[5],
            payload: words[HEADER_WORDS..words.len() - 1].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            ptype: PacketType::Data,
            dst_host: 3,
            src_host: 7,
            dst_socket: 0x30,
            src_socket: 0x99,
            seq: 12,
            payload: vec![0xAAAA, 0x5555, 0],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        assert_eq!(Packet::decode(&p.encode()).unwrap(), p);
        // Empty payload too.
        let mut q = sample();
        q.payload.clear();
        assert_eq!(Packet::decode(&q.encode()).unwrap(), q);
    }

    #[test]
    fn corruption_is_detected() {
        let mut words = sample().encode();
        words[6] ^= 0x0100; // flip a payload bit
        assert_eq!(Packet::decode(&words), Err(PacketError::BadChecksum));
    }

    #[test]
    fn header_corruption_is_detected() {
        let mut words = sample().encode();
        words[3] ^= 1; // destination socket
        assert_eq!(Packet::decode(&words), Err(PacketError::BadChecksum));
    }

    #[test]
    fn length_mismatch_rejected() {
        let words = sample().encode();
        assert_eq!(
            Packet::decode(&words[..words.len() - 1]),
            Err(PacketError::LengthMismatch)
        );
        assert_eq!(Packet::decode(&[]), Err(PacketError::TooShort));
    }

    #[test]
    fn packet_types_round_trip() {
        for t in [
            PacketType::Data,
            PacketType::Ack,
            PacketType::End,
            PacketType::EchoRequest,
            PacketType::EchoReply,
            PacketType::Other(77),
        ] {
            let mut p = sample();
            p.ptype = t;
            assert_eq!(Packet::decode(&p.encode()).unwrap().ptype, t);
        }
    }

    #[test]
    fn checksum_is_ones_complement() {
        // Carries wrap around.
        assert_eq!(ones_complement_sum(&[0xFFFF, 1]), 1);
        assert_eq!(ones_complement_sum(&[0x8000, 0x8000]), 1);
        assert_eq!(ones_complement_sum(&[]), 0);
    }
}
