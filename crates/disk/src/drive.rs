//! The simulated disk drive: geometry + timing + check semantics.
//!
//! A [`DiskDrive`] holds at most one removable [`DiskPack`]; every sector
//! operation charges seek time, rotational latency and one sector transfer
//! time to the shared [`SimClock`], then applies the operation with full
//! check semantics ([`crate::sector::apply`]).
//!
//! [`Disk`] is the *abstract disk object* of §2/§5.2: the file system is
//! generic over it, so "a program using a large non-standard disk" can
//! provide its own implementation and still use the standard disk-stream
//! package — the openness property the paper emphasizes.

use alto_sim::{SimClock, SimTime, Trace};

use crate::audit::{Auditor, Observed, Provenance, UnparkOutcome};
use crate::errors::{DiskError, SectorPart};
use crate::geometry::{Chs, DiskAddress, DiskGeometry};
use crate::inject::FaultInjector;
use crate::pack::DiskPack;
use crate::pool;
use crate::sched::{self, BatchRequest};
use crate::sector::{apply, check_part, Action, SectorBuf, SectorOp};
use crate::timing::TimingModel;
use crate::view::{SectorView, WriteSource};

/// The abstract disk object.
///
/// Implementations must provide sector operations with §3.3 semantics; the
/// file system relies on check actions aborting before any write.
pub trait Disk {
    /// The geometry of the loaded pack.
    fn geometry(&self) -> Result<DiskGeometry, DiskError>;

    /// The pack number of the loaded pack (sector headers carry it).
    fn pack_number(&self) -> Result<u16, DiskError>;

    /// Performs one sector operation, charging simulated time.
    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError>;

    /// Performs a batch of sector operations, returning one result per
    /// request in the batch's original order.
    ///
    /// Implementations are free to service the batch in any order and to
    /// chain transfers (§4), but every request keeps the full per-sector
    /// check semantics of [`Disk::do_op`] — see [`crate::sched`]. The
    /// default just issues the requests one at a time.
    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        batch
            .iter_mut()
            .map(|r| {
                let op = r.op;
                let da = r.da;
                self.do_op(da, op, &mut r.buf)
            })
            .collect()
    }

    /// Chained batch read with zero-copy delivery: services every address
    /// in `das` exactly like [`Disk::do_batch`] given [`SectorOp::READ_ALL`]
    /// requests — same timing, stats and traces — but lends each serviced
    /// sector to `visit` as a borrowed [`SectorView`] instead of copying its
    /// 532 bytes into a caller-owned buffer. `visit` runs at most once per
    /// request (never for a failed one) with the request's index in `das`;
    /// the visit order is implementation-defined (service order on a real
    /// drive, index order for the staged default).
    ///
    /// The default stages through [`Disk::do_batch`] — bit-identical
    /// results, timing, stats and traces, just with the 512-byte copy in.
    /// [`DiskDrive`] overrides it with a genuinely zero-copy chain and
    /// [`crate::DriveArray`] splits it across arms on overlapped
    /// sub-timelines.
    fn do_batch_read<F>(&mut self, das: &[DiskAddress], mut visit: F) -> Vec<Result<(), DiskError>>
    where
        Self: Sized,
        F: FnMut(usize, SectorView<'_>),
    {
        let mut batch = pool::batch_vec();
        batch.extend(
            das.iter()
                .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())),
        );
        let results = self.do_batch(&mut batch);
        for (i, (req, res)) in batch.iter().zip(results.iter()).enumerate() {
            if res.is_ok() {
                visit(i, SectorView::of_buf(&req.buf));
            }
        }
        pool::recycle_batch(batch);
        results
    }

    /// Performs a batch of ordinary data writes ([`SectorOp::WRITE`]: header
    /// and label checked, value written) with borrowed buffers: `source`
    /// supplies request `i`'s check patterns and a borrow of its data words,
    /// and `visit` is lent the serviced sector (post-write, so the label a
    /// passed check captured is exactly what the view shows) at most once
    /// per request, never for a failed one. The write-side twin of
    /// [`DiskDrive::do_batch_read`].
    ///
    /// The default stages through [`Disk::do_batch`] — bit-identical
    /// results, timing, stats and traces, just with the 256-word copy in —
    /// which is also how composite disks ([`crate::DualDrive`],
    /// [`crate::DriveArray`]) inherit their splitting, header translation
    /// and overlapped timelines for free. [`DiskDrive`] overrides it with a
    /// genuinely zero-copy chain.
    fn do_batch_write<'a, S, V>(
        &mut self,
        das: &[DiskAddress],
        mut source: S,
        mut visit: V,
    ) -> Vec<Result<(), DiskError>>
    where
        Self: Sized,
        S: FnMut(usize) -> WriteSource<'a>,
        V: FnMut(usize, SectorView<'_>),
    {
        let mut batch = pool::batch_vec();
        for (i, &da) in das.iter().enumerate() {
            let ws = source(i);
            let mut buf = SectorBuf::zeroed();
            buf.header = ws.header;
            buf.label = ws.label;
            buf.data = *ws.data;
            batch.push(BatchRequest::new(da, SectorOp::WRITE, buf));
        }
        let results = self.do_batch(&mut batch);
        for (i, (req, res)) in batch.iter().zip(results.iter()).enumerate() {
            if res.is_ok() {
                visit(i, SectorView::of_buf(&req.buf));
            }
        }
        pool::recycle_batch(batch);
        results
    }

    /// Records that `hits` pages were served from a readahead buffer above
    /// this disk, out of `prefetched` newly prefetched pages. Purely
    /// statistical; the default ignores it.
    fn note_readahead(&mut self, _hits: u64, _prefetched: u64) {}

    /// A value that changes whenever any write action reaches the medium.
    /// Caching layers (stream readahead) compare epochs to notice writes
    /// that bypassed them and drop their copies. The default — a constant —
    /// is only suitable for disks that are never written behind a cache's
    /// back.
    fn write_epoch(&self) -> u64 {
        0
    }

    /// A snapshot of this disk's cumulative I/O counters, for the
    /// Executive's `iostat` command and the benches. Composite disks
    /// (e.g. [`crate::DualDrive`]) merge their members' counters. The
    /// default — all zeros — is for disks that keep none.
    fn io_stats(&self) -> DriveStats {
        DriveStats::default()
    }

    /// Records that a write-behind buffer above this disk drained `pages`
    /// dirty pages as one coalesced batch. Purely statistical; the default
    /// ignores it.
    fn note_write_behind(&mut self, _pages: u64) {}

    /// How many times the retry layer above this disk may re-issue an
    /// operation that failed with [`DiskError::Transient`] before
    /// escalating to [`DiskError::HardError`]. Zero means abort
    /// immediately (the ablation that recovers pre-retry behavior).
    fn retry_limit(&self) -> u32 {
        3
    }

    /// Simulated time the retry layer waits before each re-issue — on a
    /// real drive the sector has to come around again, so one revolution.
    /// The default — zero — is for disks with no timing model.
    fn retry_backoff(&self) -> SimTime {
        SimTime::ZERO
    }

    /// Records the outcome of one retry sequence: `retries` re-issues were
    /// spent, ending in recovery (`recovered`) or escalation to a hard
    /// failure. Purely statistical; the default ignores it.
    fn note_retry(&mut self, _retries: u64, _recovered: bool) {}

    /// Records that a write-behind buffer above this disk parked the dirty
    /// page `page` destined for `da`. The §3.3 auditor uses park/unpark
    /// pairs to prove no dirty page is ever dropped; the default ignores it.
    fn note_park(&mut self, _da: DiskAddress, _page: u16) {}

    /// Records that a write-behind buffer disposed of the page parked for
    /// `da`: drained to the medium, parked again after a failed drain, or
    /// discarded. The default ignores it.
    fn note_unpark(&mut self, _da: DiskAddress, _page: u16, _outcome: UnparkOutcome) {}

    /// Turns the runtime §3.3 auditor on or off, if this disk has one. The
    /// default ignores it (a disk with no auditor has nothing to toggle);
    /// ablation wrappers that *deliberately* break the discipline call
    /// `set_audit_enabled(false)` on the disk they wrap.
    fn set_audit_enabled(&mut self, _enabled: bool) {}

    /// Number of §3.3 audit violations recorded against this disk so far
    /// (zero when no auditor is attached).
    fn audit_violations(&self) -> u64 {
        0
    }

    /// How many independent arms (head assemblies) serve this disk's
    /// address space. Single drives have one; composite disks
    /// (e.g. [`crate::DriveArray`]) report their member count so layers
    /// above can spread work across arms.
    fn arm_count(&self) -> usize {
        1
    }

    /// Which arm serves `da`. Out-of-range addresses answer arm 0; the
    /// default — everything on arm 0 — matches a single drive.
    fn arm_of(&self, _da: DiskAddress) -> usize {
        0
    }

    /// A disk address near the start of `arm`'s contiguous span, if this
    /// disk has per-arm contiguous spans worth steering allocation toward.
    /// `None` (the default) means the caller should not bias placement —
    /// either there is one arm, or consecutive addresses already interleave
    /// across arms.
    fn arm_origin(&self, _arm: usize) -> Option<DiskAddress> {
        None
    }

    /// The clock this disk charges time to.
    fn clock(&self) -> &SimClock;

    /// The trace this disk records events to.
    fn trace(&self) -> &Trace;
}

/// Cumulative drive statistics, used by the experiments to report mechanism
/// (e.g. "allocation cost exactly one extra revolution").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Sector operations issued.
    pub ops: u64,
    /// Operations that performed any write action.
    pub write_ops: u64,
    /// Operations that wrote the label part (allocation, free, length
    /// change, format).
    pub label_writes: u64,
    /// Check actions that failed (aborted operations).
    pub failed_checks: u64,
    /// Arm movements.
    pub seeks: u64,
    /// Total time spent seeking.
    pub seek_time: SimTime,
    /// Total time spent waiting for the target sector to come around.
    pub rotational_wait: SimTime,
    /// Total time spent transferring sectors under the head.
    pub transfer_time: SimTime,
    /// Total command set-up / interrupt-service time charged.
    pub command_time: SimTime,
    /// Batches submitted through [`Disk::do_batch`].
    pub batches: u64,
    /// Sector operations that arrived inside a batch.
    pub batched_ops: u64,
    /// Transfers that followed their predecessor with no seek and no
    /// rotational wait (the §4 "consecutive sectors" case).
    pub chained_transfers: u64,
    /// Pages served from a stream readahead buffer instead of the platter.
    pub readahead_hits: u64,
    /// Pages prefetched into stream readahead buffers.
    pub readahead_prefetched: u64,
    /// Operations whose value part was read (data sectors transferred in).
    pub sectors_read: u64,
    /// Operations whose value part was written (data sectors transferred
    /// out). Unlike [`DriveStats::write_ops`] this excludes label-only
    /// writes (free, quarantine).
    pub sectors_written: u64,
    /// Coalesced drains of a write-behind buffer (see
    /// [`Disk::note_write_behind`]).
    pub wb_drains: u64,
    /// Dirty pages written by those drains.
    pub wb_coalesced: u64,
    /// Batches that a dual-drive executed with both units overlapped.
    pub overlap_batches: u64,
    /// Simulated time saved by overlapping, versus serial execution (the
    /// smaller unit's elapsed time, summed over overlapped batches).
    pub overlap_saved: SimTime,
    /// Transient failures observed (each failed attempt counts once).
    pub soft_errors: u64,
    /// Operations re-issued by the retry layer.
    pub retries: u64,
    /// Retry sequences that ended in success (the transient cleared).
    pub recovered: u64,
    /// Retry sequences that exhausted the limit and escalated to
    /// [`DiskError::HardError`].
    pub hard_failures: u64,
}

impl DriveStats {
    /// Total disk-busy time accounted so far.
    pub fn busy_time(&self) -> SimTime {
        self.seek_time + self.rotational_wait + self.transfer_time + self.command_time
    }

    /// Field-wise sum of two snapshots; composite disks report the merge
    /// of their members.
    pub fn merged(&self, other: &DriveStats) -> DriveStats {
        DriveStats {
            ops: self.ops + other.ops,
            write_ops: self.write_ops + other.write_ops,
            label_writes: self.label_writes + other.label_writes,
            failed_checks: self.failed_checks + other.failed_checks,
            seeks: self.seeks + other.seeks,
            seek_time: self.seek_time + other.seek_time,
            rotational_wait: self.rotational_wait + other.rotational_wait,
            transfer_time: self.transfer_time + other.transfer_time,
            command_time: self.command_time + other.command_time,
            batches: self.batches + other.batches,
            batched_ops: self.batched_ops + other.batched_ops,
            chained_transfers: self.chained_transfers + other.chained_transfers,
            readahead_hits: self.readahead_hits + other.readahead_hits,
            readahead_prefetched: self.readahead_prefetched + other.readahead_prefetched,
            sectors_read: self.sectors_read + other.sectors_read,
            sectors_written: self.sectors_written + other.sectors_written,
            wb_drains: self.wb_drains + other.wb_drains,
            wb_coalesced: self.wb_coalesced + other.wb_coalesced,
            overlap_batches: self.overlap_batches + other.overlap_batches,
            overlap_saved: self.overlap_saved + other.overlap_saved,
            soft_errors: self.soft_errors + other.soft_errors,
            retries: self.retries + other.retries,
            recovered: self.recovered + other.recovered,
            hard_failures: self.hard_failures + other.hard_failures,
        }
    }
}

/// A simulated moving-head drive with one removable pack.
#[derive(Debug)]
pub struct DiskDrive {
    clock: SimClock,
    trace: Trace,
    pack: Option<Loaded>,
    stats: DriveStats,
    injector: FaultInjector,
    retries: u32,
    audit: Option<Auditor>,
    scratch: BatchScratch,
}

/// Per-drive working storage for [`Disk::do_batch`], kept across batches so
/// the steady state replans and reschedules without heap allocation.
#[derive(Debug, Default)]
struct BatchScratch {
    pending: Vec<usize>,
    remaining: Vec<usize>,
    next_remaining: Vec<usize>,
    das: Vec<DiskAddress>,
    chs: Vec<Chs>,
    order: Vec<usize>,
    waits: Vec<SimTime>,
    plan: sched::PlanScratch,
}

/// Hot-path counters the zero-copy batch read accumulates in locals and
/// flushes into [`DriveStats`] once per batch — the totals are identical,
/// only the per-sector read-modify-writes on the shared struct go away.
#[derive(Debug, Default)]
struct ViewChainStats {
    ops: u64,
    sectors_read: u64,
    write_ops: u64,
    sectors_written: u64,
    failed_checks: u64,
    seeks: u64,
    seek_time: SimTime,
    rotational_wait: SimTime,
    transfer_time: SimTime,
}

impl ViewChainStats {
    fn flush_into(self, stats: &mut DriveStats) {
        stats.ops += self.ops;
        stats.sectors_read += self.sectors_read;
        stats.write_ops += self.write_ops;
        stats.sectors_written += self.sectors_written;
        stats.failed_checks += self.failed_checks;
        stats.seeks += self.seeks;
        stats.seek_time += self.seek_time;
        stats.rotational_wait += self.rotational_wait;
        stats.transfer_time += self.transfer_time;
    }
}

#[derive(Debug)]
struct Loaded {
    pack: DiskPack,
    timing: TimingModel,
    cylinder: u16,
}

impl DiskDrive {
    /// Creates an empty drive on the given timeline. With `ALTO_AUDIT=1` in
    /// the environment the drive starts with a strict §3.3 auditor attached
    /// (see [`crate::audit`]); otherwise auditing is off.
    pub fn new(clock: SimClock, trace: Trace) -> DiskDrive {
        DiskDrive {
            clock,
            trace,
            pack: None,
            stats: DriveStats::default(),
            injector: FaultInjector::new(),
            retries: 3,
            audit: Auditor::from_env(),
            scratch: BatchScratch::default(),
        }
    }

    /// Hands this drive a different clock, returning the old one. The
    /// dual-drive adapter uses this to run a unit's share of a spanning
    /// batch against a private timeline on a worker thread; ordinary code
    /// has no business swapping clocks (the clock-discipline lint watches
    /// the call sites that mutate time).
    pub(crate) fn swap_clock(&mut self, clock: SimClock) -> SimClock {
        std::mem::replace(&mut self.clock, clock)
    }

    /// Hands this drive a different trace, returning the old one — the
    /// companion of [`DiskDrive::swap_clock`] for deterministic event
    /// merging after threaded execution.
    pub(crate) fn swap_trace(&mut self, trace: Trace) -> Trace {
        std::mem::replace(&mut self.trace, trace)
    }

    /// Attaches a fresh non-strict §3.3 auditor (replacing any existing one,
    /// including an environment-configured strict one) and returns a handle
    /// to query its findings. Tests that deliberately violate the discipline
    /// use this so violations are collected rather than panicking.
    pub fn enable_audit(&mut self) -> Auditor {
        let auditor = Auditor::new(false);
        self.audit = Some(auditor.clone());
        auditor
    }

    /// The attached §3.3 auditor, if any.
    pub fn auditor(&self) -> Option<&Auditor> {
        self.audit.as_ref()
    }

    /// Convenience: a drive with a freshly formatted pack loaded.
    pub fn with_formatted_pack(
        clock: SimClock,
        trace: Trace,
        model: crate::geometry::DiskModel,
        pack_number: u16,
    ) -> DiskDrive {
        let mut d = DiskDrive::new(clock, trace);
        d.load_pack(DiskPack::formatted(model, pack_number));
        d
    }

    /// Loads a pack into the drive (arm returns to cylinder 0).
    pub fn load_pack(&mut self, pack: DiskPack) {
        let timing = pack.model().timing();
        self.pack = Some(Loaded {
            pack,
            timing,
            cylinder: 0,
        });
    }

    /// Removes and returns the pack, if any.
    pub fn unload_pack(&mut self) -> Option<DiskPack> {
        self.pack.take().map(|l| l.pack)
    }

    /// Shared access to the loaded pack (tests and the fault campaign use
    /// this to corrupt the medium directly; software uses [`Disk::do_op`]).
    pub fn pack(&self) -> Option<&DiskPack> {
        self.pack.as_ref().map(|l| &l.pack)
    }

    /// Mutable access to the loaded pack.
    pub fn pack_mut(&mut self) -> Option<&mut DiskPack> {
        self.pack.as_mut().map(|l| &mut l.pack)
    }

    /// The fault injector for this drive.
    pub fn injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.injector
    }

    /// Sets how many times the retry layer may re-issue a transiently
    /// failed operation against this drive. `set_retries(0)` is the
    /// ablation: transients escalate immediately, recovering the
    /// abort-on-first-error behavior the retry layer replaced.
    pub fn set_retries(&mut self, retries: u32) {
        self.retries = retries;
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DriveStats {
        self.stats
    }

    /// Resets the statistics counters (the clock is unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = DriveStats::default();
        // The write epoch is derived from the counters, so the auditor's
        // monotonicity baseline must rewind with it.
        if let Some(aud) = &self.audit {
            aud.note_epoch_reset();
        }
    }

    /// The timing model of the loaded pack.
    pub fn timing(&self) -> Result<TimingModel, DiskError> {
        Ok(self.pack.as_ref().ok_or(DiskError::NoPack)?.timing)
    }

    /// The arm's current cylinder.
    pub fn current_cylinder(&self) -> u16 {
        self.pack.as_ref().map_or(0, |l| l.cylinder)
    }

    /// Validates an operation without charging any time.
    fn precheck(&self, da: DiskAddress, op: SectorOp) -> Result<(), DiskError> {
        op.validate()?;
        let loaded = self.pack.as_ref().ok_or(DiskError::NoPack)?;
        if !loaded.pack.geometry().contains(da) {
            return Err(DiskError::InvalidAddress(da));
        }
        Ok(())
    }

    /// Charges one command set-up (issued once per [`Disk::do_op`] call and
    /// once per batch — which is the entire point of batching, §4).
    fn charge_command(&mut self) {
        let overhead = self
            .pack
            .as_ref()
            .expect("prechecked: pack is loaded")
            .timing
            .command_overhead;
        self.clock.advance(overhead);
        self.stats.command_time += overhead;
    }

    /// Emits the `disk.chain` trace for a finished chained run, if any.
    /// `followers` counts the transfers that chained onto the run's head.
    fn flush_chain(&mut self, followers: u64) {
        if followers >= 1 {
            self.trace.record_with(self.clock.now(), "disk.chain", || {
                format!("{}-sector chained transfer", followers + 1)
            });
        }
    }

    /// Services one already-prechecked operation: seek, rotational wait,
    /// transfer, check semantics. Does *not* charge command set-up.
    ///
    /// `chs` is `da`'s geometry decomposition, computed by the caller —
    /// [`Disk::do_batch`] already has it from planning, so recomputing it
    /// per serviced sector (three divisions) would be pure overhead. The
    /// caller has prechecked `da` and `op` ([`DiskDrive::precheck`]).
    fn service(
        &mut self,
        da: DiskAddress,
        chs: Chs,
        op: SectorOp,
        planned_wait: Option<SimTime>,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        let loaded = self.pack.as_mut().ok_or(DiskError::NoPack)?;

        // Simulated time is carried in a local and stored back once: the
        // clock is shared (an atomic), and nothing else observes it between
        // the start and end of one serviced operation, so three read-modify-
        // write advances collapse into one load and one store.
        let mut now = self.clock.now();

        // Seek.
        if chs.cylinder != loaded.cylinder {
            let distance = chs.cylinder.abs_diff(loaded.cylinder);
            let t = loaded.timing.seek(distance);
            now += t;
            self.stats.seeks += 1;
            self.stats.seek_time += t;
            let from = loaded.cylinder;
            self.trace.record_with(now, "disk.seek", || {
                format!("cyl {} -> {} ({t})", from, chs.cylinder)
            });
            loaded.cylinder = chs.cylinder;
        }

        // Rotational latency: the batch planner already derived the wait on
        // the identical timeline, so a planned operation reuses it (checked
        // in debug builds) instead of re-deriving it per sector.
        let wait = match planned_wait {
            Some(w) => {
                debug_assert_eq!(
                    w,
                    loaded.timing.rotational_wait(now, chs.sector),
                    "planned wait diverged from the drive's timeline"
                );
                w
            }
            None => loaded.timing.rotational_wait(now, chs.sector),
        };
        now += wait;
        self.stats.rotational_wait += wait;

        // The transfer itself: one sector time regardless of actions.
        now += loaded.timing.sector_time;
        self.clock.set(now);
        self.stats.transfer_time += loaded.timing.sector_time;
        self.stats.ops += 1;
        if op.writes() {
            self.stats.write_ops += 1;
        }
        if op.label == Action::Write {
            self.stats.label_writes += 1;
        }
        if op.value == Action::Read {
            self.stats.sectors_read += 1;
        }
        if op.value == Action::Write {
            self.stats.sectors_written += 1;
        }

        // Unrecoverable media damage surfaces when the value part is read.
        // The header and label actions still complete (they precede the
        // value on the platter), so the Scavenger can learn *which* page
        // was lost before quarantining the sector.
        if loaded.pack.is_damaged(da) && matches!(op.value, Action::Read | Action::Check) {
            let stripped = SectorOp {
                header: op.header,
                label: op.label,
                value: Action::Read,
            };
            let sector = loaded
                .pack
                .sector_mut(da)
                .expect("address validated against geometry");
            let audit_pre = self.audit.is_some().then(|| (sector.clone(), buf.clone()));
            let mut scratch = buf.clone();
            let result = match apply(stripped, da, sector, &mut scratch) {
                Err(e) => {
                    if matches!(e, DiskError::Check(_)) {
                        self.stats.failed_checks += 1;
                    }
                    Err(e)
                }
                Ok(()) => {
                    buf.header = scratch.header;
                    buf.label = scratch.label;
                    self.trace.record(
                        now,
                        "disk.hard_error",
                        format!("{da} value part unreadable"),
                    );
                    Err(DiskError::HardError {
                        da,
                        part: SectorPart::Value,
                    })
                }
            };
            if let Some((sector_before, buf_before)) = audit_pre {
                let aud = self.audit.clone().expect("pre-state implies auditor");
                aud.observe(
                    &Observed {
                        da,
                        op,
                        sector_before: &sector_before,
                        buf_before: &buf_before,
                        sector_after: sector,
                        buf_after: buf,
                        result: &result,
                        provenance: Provenance::Damaged,
                        epoch: self.stats.write_ops,
                    },
                    &self.trace,
                    now,
                );
            }
            return result;
        }

        // Fault injection may transform the effective operation (torn or
        // dropped writes) before it reaches the medium.
        let sector = loaded
            .pack
            .sector_mut(da)
            .expect("address validated against geometry");
        let audit_pre = self.audit.is_some().then(|| (sector.clone(), buf.clone()));
        let (result, injected) = match self.injector.apply(da, op, sector, buf) {
            Some(r) => (r, true),
            None => (apply(op, da, sector, buf), false),
        };
        if let Some((sector_before, buf_before)) = audit_pre {
            let aud = self.audit.clone().expect("pre-state implies auditor");
            aud.observe(
                &Observed {
                    da,
                    op,
                    sector_before: &sector_before,
                    buf_before: &buf_before,
                    sector_after: sector,
                    buf_after: buf,
                    result: &result,
                    provenance: if injected {
                        Provenance::Injected
                    } else {
                        Provenance::Clean
                    },
                    epoch: self.stats.write_ops,
                },
                &self.trace,
                now,
            );
        }

        match &result {
            Ok(()) => {
                self.trace
                    .record_with(now, "disk.op", || format!("{op:?} at {da}"));
            }
            Err(DiskError::Check(c)) => {
                self.stats.failed_checks += 1;
                self.trace
                    .record_with(now, "disk.check_fail", || c.to_string());
            }
            Err(e @ DiskError::Transient { .. }) => {
                self.stats.soft_errors += 1;
                self.trace
                    .record_with(now, "disk.retry.soft_error", || e.to_string());
            }
            Err(e) => {
                self.trace.record_with(now, "disk.error", || e.to_string());
            }
        }
        result
    }

    /// Chained batch read with zero-copy delivery: services every address
    /// in `das` exactly like [`Disk::do_batch`] given [`SectorOp::READ_ALL`]
    /// requests — same §4 command chaining and planning, same simulated
    /// timing, same stats and trace — but lends each serviced sector to
    /// `visit` as a borrowed [`SectorView`] instead of copying its 532
    /// bytes into a caller-owned buffer. `visit` runs at most once per
    /// request (never for a failed one), in service order, with the
    /// request's index in `das`.
    ///
    /// The simulated controller still transfers the sector — one sector
    /// time, full rotational accounting — only the host-side representation
    /// changes. When the §3.3 auditor is attached or any fault is armed,
    /// each sector goes through the buffered `DiskDrive::service` path
    /// into private scratch instead (`visit` sees a view of that scratch),
    /// so audit observations and fault semantics stay identical to
    /// `do_batch`'s.
    pub fn do_batch_read<F>(
        &mut self,
        das: &[DiskAddress],
        mut visit: F,
    ) -> Vec<Result<(), DiskError>>
    where
        F: FnMut(usize, SectorView<'_>),
    {
        let op = SectorOp::READ_ALL;
        let mut results = pool::results_vec();
        results.extend(das.iter().map(|_| Ok(())));
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.pending.clear();
        // Batch form of `precheck`: the op is a constant (`READ_ALL` always
        // validates) and the pack lookup is loop-invariant, so per address
        // only the range check remains.
        debug_assert!(op.validate().is_ok());
        match self.pack.as_ref() {
            None => {
                results.fill(Err(DiskError::NoPack));
            }
            Some(loaded) => {
                let count = loaded.pack.geometry().sector_count();
                for (i, &da) in das.iter().enumerate() {
                    if !da.is_nil() && (da.0 as u32) < count {
                        scratch.pending.push(i);
                    } else {
                        results[i] = Err(DiskError::InvalidAddress(da));
                    }
                }
            }
        }
        if scratch.pending.is_empty() {
            self.scratch = scratch;
            return results;
        }
        let buffered = self.audit.is_some() || !self.injector.is_idle();
        let loaded = self.pack.as_ref().expect("prechecked: pack is loaded");
        let geometry = loaded.pack.geometry();
        let timing = loaded.timing;

        // One command set-up covers the whole chain (§4), and the
        // halt-and-replan semantics on failure mirror `do_batch`: a hard
        // error consumes its slot, stops the chain, and the unserved
        // remainder reschedules from the arm's new position.
        self.charge_command();
        self.stats.batches += 1;
        self.stats.batched_ops += scratch.pending.len() as u64;
        let pending_len = scratch.pending.len();
        self.trace.record_with(self.clock.now(), "disk.batch", || {
            format!("{pending_len} requests")
        });
        let reads_before = self.stats.sectors_read;
        scratch.remaining.clear();
        scratch.remaining.extend_from_slice(&scratch.pending);
        let mut scratch_buf = SectorBuf::zeroed();
        let mut acc = ViewChainStats::default();
        let mut chained_total = 0u64;
        let mut first_chain = true;
        while !scratch.remaining.is_empty() {
            if !first_chain {
                self.charge_command();
            }
            first_chain = false;
            if scratch.remaining.len() == das.len() {
                // Every request survived prechecks and none have been
                // serviced yet: `remaining` is the identity, skip the gather.
                geometry.to_chs_batch(das, &mut scratch.chs);
            } else {
                scratch.das.clear();
                scratch
                    .das
                    .extend(scratch.remaining.iter().map(|&i| das[i]));
                geometry.to_chs_batch(&scratch.das, &mut scratch.chs);
            }
            sched::plan_into(
                timing,
                self.current_cylinder(),
                self.clock.now(),
                &scratch.chs,
                &mut scratch.plan,
                &mut scratch.order,
                &mut scratch.waits,
            );
            let mut followers = 0u64;
            let mut halted_at = None;
            if buffered {
                for (k, (&j, &wait)) in scratch.order.iter().zip(scratch.waits.iter()).enumerate() {
                    let i = scratch.remaining[j];
                    let da = das[i];
                    let seeks_before = self.stats.seeks;
                    let wait_before = self.stats.rotational_wait;
                    let r = self.service(da, scratch.chs[j], op, Some(wait), &mut scratch_buf);
                    let chained = k > 0
                        && self.stats.seeks == seeks_before
                        && self.stats.rotational_wait == wait_before;
                    if r.is_ok() {
                        visit(i, SectorView::of_buf(&scratch_buf));
                    }
                    let failed = r.is_err();
                    results[i] = r;
                    if chained {
                        followers += 1;
                        chained_total += 1;
                    } else {
                        self.flush_chain(followers);
                        followers = 0;
                    }
                    if failed {
                        halted_at = Some(k);
                        break;
                    }
                }
                self.flush_chain(followers);
            } else {
                // The zero-copy arm: `service`'s timeline, stats and trace
                // events exactly (the parity tests pin all three), with the
                // per-sector state split out of `self` once per chain — the
                // pack and arm position, the trace handle, and the clock in
                // a local — so servicing a sector touches no shared cells
                // and lends the platter sector to `visit` in place of the
                // 532-word copy out.
                let loaded = self.pack.as_mut().expect("prechecked: pack is loaded");
                let trace = &self.trace;
                let sector_time = loaded.timing.sector_time;
                let mut now = self.clock.now();
                for (k, (&j, &wait)) in scratch.order.iter().zip(scratch.waits.iter()).enumerate() {
                    let i = scratch.remaining[j];
                    let da = das[i];
                    let chs = scratch.chs[j];
                    let mut seeked = false;
                    if chs.cylinder != loaded.cylinder {
                        seeked = true;
                        let distance = chs.cylinder.abs_diff(loaded.cylinder);
                        let t = loaded.timing.seek(distance);
                        now += t;
                        acc.seeks += 1;
                        acc.seek_time += t;
                        let from = loaded.cylinder;
                        trace.record_with(now, "disk.seek", || {
                            format!("cyl {} -> {} ({t})", from, chs.cylinder)
                        });
                        loaded.cylinder = chs.cylinder;
                    }
                    debug_assert_eq!(
                        wait,
                        loaded.timing.rotational_wait(now, chs.sector),
                        "planned wait diverged from the drive's timeline"
                    );
                    now += wait;
                    acc.rotational_wait += wait;
                    now += sector_time;
                    acc.transfer_time += sector_time;
                    acc.ops += 1;
                    acc.sectors_read += 1;
                    let r = if loaded.pack.is_damaged(da) {
                        // READ_ALL against damaged media: header and label
                        // actions complete, the value part is unreadable —
                        // the same surface `service` reports.
                        trace.record(
                            now,
                            "disk.hard_error",
                            format!("{da} value part unreadable"),
                        );
                        Err(DiskError::HardError {
                            da,
                            part: SectorPart::Value,
                        })
                    } else {
                        let sector = loaded
                            .pack
                            .sector(da)
                            .expect("address validated against geometry");
                        trace.record_with(now, "disk.op", || {
                            format!("{:?} at {da}", SectorOp::READ_ALL)
                        });
                        visit(i, SectorView::new(sector));
                        Ok(())
                    };
                    let failed = r.is_err();
                    results[i] = r;
                    if k > 0 && !seeked && wait == SimTime::ZERO {
                        followers += 1;
                        chained_total += 1;
                    } else {
                        if followers >= 1 {
                            let f = followers;
                            trace.record_with(now, "disk.chain", || {
                                format!("{}-sector chained transfer", f + 1)
                            });
                        }
                        followers = 0;
                    }
                    if failed {
                        halted_at = Some(k);
                        break;
                    }
                }
                if followers >= 1 {
                    let f = followers;
                    trace.record_with(now, "disk.chain", || {
                        format!("{}-sector chained transfer", f + 1)
                    });
                }
                self.clock.set(now);
            }
            match halted_at {
                Some(k) => {
                    scratch.next_remaining.clear();
                    scratch
                        .next_remaining
                        .extend(scratch.order[k + 1..].iter().map(|&j| scratch.remaining[j]));
                    std::mem::swap(&mut scratch.remaining, &mut scratch.next_remaining);
                }
                None => scratch.remaining.clear(),
            }
        }
        acc.flush_into(&mut self.stats);
        self.stats.chained_transfers += chained_total;
        self.trace
            .record_with(self.clock.now(), "disk.io.batch", || {
                format!(
                    "{} serviced ({} read, 0 written)",
                    pending_len,
                    self.stats.sectors_read - reads_before,
                )
            });
        self.scratch = scratch;
        results
    }
}

impl Disk for DiskDrive {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        Ok(self.pack.as_ref().ok_or(DiskError::NoPack)?.pack.geometry())
    }

    // The genuinely zero-copy chain (the inherent method predates the trait
    // hook; generic callers now reach it through the trait).
    fn do_batch_read<F>(&mut self, das: &[DiskAddress], visit: F) -> Vec<Result<(), DiskError>>
    where
        F: FnMut(usize, SectorView<'_>),
    {
        DiskDrive::do_batch_read(self, das, visit)
    }

    // Counted when the write is *attempted* (before the check), so even an
    // aborted write invalidates caches — the safe direction.
    fn write_epoch(&self) -> u64 {
        self.stats.write_ops
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        Ok(self
            .pack
            .as_ref()
            .ok_or(DiskError::NoPack)?
            .pack
            .pack_number())
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        self.precheck(da, op)?;
        let chs = self
            .pack
            .as_ref()
            .expect("prechecked: pack is loaded")
            .pack
            .geometry()
            .to_chs(da);
        self.charge_command();
        self.service(da, chs, op, None, buf)
    }

    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        // The result vector and all planning storage come out of per-thread
        // free lists / the drive's own scratch, so a steady-state batch
        // costs no heap allocation (see `crate::pool`).
        let mut results = pool::results_vec();
        results.extend(batch.iter().map(|_| Ok(())));
        let mut scratch = std::mem::take(&mut self.scratch);
        // Malformed requests are rejected up front and never scheduled.
        scratch.pending.clear();
        for (i, req) in batch.iter().enumerate() {
            match self.precheck(req.da, req.op) {
                Ok(()) => scratch.pending.push(i),
                Err(e) => results[i] = Err(e),
            }
        }
        if scratch.pending.is_empty() {
            self.scratch = scratch;
            return results;
        }
        let loaded = self.pack.as_ref().expect("prechecked: pack is loaded");
        let geometry = loaded.pack.geometry();
        let timing = loaded.timing;

        // One command set-up covers the whole chain (§4).
        self.charge_command();
        self.stats.batches += 1;
        self.stats.batched_ops += scratch.pending.len() as u64;
        let pending_len = scratch.pending.len();
        self.trace.record_with(self.clock.now(), "disk.batch", || {
            format!("{pending_len} requests")
        });

        // The schedule is computable up front only while the chain runs
        // clean: every serviced request costs seek + wait + one sector
        // regardless of its check outcome, but a *failure* halts command
        // chaining at the failing sector (the controller stops; software
        // must restart). The failing request keeps its slot; the unserved
        // remainder is rescheduled from the arm's new position under a
        // fresh command set-up.
        let reads_before = self.stats.sectors_read;
        let writes_before = self.stats.sectors_written;
        scratch.remaining.clear();
        scratch.remaining.extend_from_slice(&scratch.pending);
        let mut first_chain = true;
        while !scratch.remaining.is_empty() {
            if !first_chain {
                self.charge_command();
            }
            first_chain = false;
            scratch.das.clear();
            scratch
                .das
                .extend(scratch.remaining.iter().map(|&i| batch[i].da));
            geometry.to_chs_batch(&scratch.das, &mut scratch.chs);
            sched::plan_into(
                timing,
                self.current_cylinder(),
                self.clock.now(),
                &scratch.chs,
                &mut scratch.plan,
                &mut scratch.order,
                &mut scratch.waits,
            );
            let mut followers = 0u64;
            let mut halted_at = None;
            for (k, &j) in scratch.order.iter().enumerate() {
                let i = scratch.remaining[j];
                let seeks_before = self.stats.seeks;
                let wait_before = self.stats.rotational_wait;
                let req = &mut batch[i];
                let (da, op) = (req.da, req.op);
                results[i] =
                    self.service(da, scratch.chs[j], op, Some(scratch.waits[k]), &mut req.buf);
                let chained = k > 0
                    && self.stats.seeks == seeks_before
                    && self.stats.rotational_wait == wait_before;
                if chained {
                    followers += 1;
                    self.stats.chained_transfers += 1;
                } else {
                    self.flush_chain(followers);
                    followers = 0;
                }
                if results[i].is_err() {
                    halted_at = Some(k);
                    break;
                }
            }
            self.flush_chain(followers);
            match halted_at {
                // Requests the halted chain never reached go around again.
                Some(k) => {
                    scratch.next_remaining.clear();
                    scratch
                        .next_remaining
                        .extend(scratch.order[k + 1..].iter().map(|&j| scratch.remaining[j]));
                    std::mem::swap(&mut scratch.remaining, &mut scratch.next_remaining);
                }
                None => scratch.remaining.clear(),
            }
        }
        self.trace
            .record_with(self.clock.now(), "disk.io.batch", || {
                format!(
                    "{} serviced ({} read, {} written)",
                    pending_len,
                    self.stats.sectors_read - reads_before,
                    self.stats.sectors_written - writes_before,
                )
            });
        self.scratch = scratch;
        results
    }

    /// Chained batch write with borrowed buffers: services every address
    /// exactly like [`Disk::do_batch`] given [`SectorOp::WRITE`] requests —
    /// same §4 command chaining and planning, same simulated timing, same
    /// stats and traces (the parity tests pin all of them) — but the data
    /// words come straight from `source`'s borrow and the check patterns
    /// are matched against the platter sector *in place*, so nothing is
    /// staged through a 265-word buffer. A passed check's captured label is
    /// bit-identical to the sector's own label (every non-wildcard word
    /// matched, every wildcard captured the disk word), so lending the
    /// post-write sector to `visit` shows exactly what the buffered form
    /// copies out.
    ///
    /// When the §3.3 auditor is attached or any fault is armed, each sector
    /// goes through the buffered `DiskDrive::service` path into private
    /// scratch instead, so audit observations and fault semantics stay
    /// identical to `do_batch`'s.
    fn do_batch_write<'a, S, V>(
        &mut self,
        das: &[DiskAddress],
        mut source: S,
        mut visit: V,
    ) -> Vec<Result<(), DiskError>>
    where
        S: FnMut(usize) -> WriteSource<'a>,
        V: FnMut(usize, SectorView<'_>),
    {
        let op = SectorOp::WRITE;
        let mut results = pool::results_vec();
        results.extend(das.iter().map(|_| Ok(())));
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.pending.clear();
        // Batch form of `precheck`: the op is a constant (`WRITE` always
        // validates) and the pack lookup is loop-invariant, so per address
        // only the range check remains.
        debug_assert!(op.validate().is_ok());
        match self.pack.as_ref() {
            None => {
                results.fill(Err(DiskError::NoPack));
            }
            Some(loaded) => {
                let count = loaded.pack.geometry().sector_count();
                for (i, &da) in das.iter().enumerate() {
                    if !da.is_nil() && (da.0 as u32) < count {
                        scratch.pending.push(i);
                    } else {
                        results[i] = Err(DiskError::InvalidAddress(da));
                    }
                }
            }
        }
        if scratch.pending.is_empty() {
            self.scratch = scratch;
            return results;
        }
        let buffered = self.audit.is_some() || !self.injector.is_idle();
        let loaded = self.pack.as_ref().expect("prechecked: pack is loaded");
        let geometry = loaded.pack.geometry();
        let timing = loaded.timing;

        // One command set-up covers the whole chain (§4), and the
        // halt-and-replan semantics on failure mirror `do_batch`: a failed
        // check consumes its slot, stops the chain, and the unserved
        // remainder reschedules from the arm's new position.
        self.charge_command();
        self.stats.batches += 1;
        self.stats.batched_ops += scratch.pending.len() as u64;
        let pending_len = scratch.pending.len();
        self.trace.record_with(self.clock.now(), "disk.batch", || {
            format!("{pending_len} requests")
        });
        let writes_before = self.stats.sectors_written;
        scratch.remaining.clear();
        scratch.remaining.extend_from_slice(&scratch.pending);
        let mut scratch_buf = SectorBuf::zeroed();
        let mut acc = ViewChainStats::default();
        let mut chained_total = 0u64;
        let mut first_chain = true;
        while !scratch.remaining.is_empty() {
            if !first_chain {
                self.charge_command();
            }
            first_chain = false;
            if scratch.remaining.len() == das.len() {
                // Every request survived prechecks and none have been
                // serviced yet: `remaining` is the identity, skip the gather.
                geometry.to_chs_batch(das, &mut scratch.chs);
            } else {
                scratch.das.clear();
                scratch
                    .das
                    .extend(scratch.remaining.iter().map(|&i| das[i]));
                geometry.to_chs_batch(&scratch.das, &mut scratch.chs);
            }
            sched::plan_into(
                timing,
                self.current_cylinder(),
                self.clock.now(),
                &scratch.chs,
                &mut scratch.plan,
                &mut scratch.order,
                &mut scratch.waits,
            );
            let mut followers = 0u64;
            let mut halted_at = None;
            if buffered {
                for (k, (&j, &wait)) in scratch.order.iter().zip(scratch.waits.iter()).enumerate() {
                    let i = scratch.remaining[j];
                    let da = das[i];
                    let ws = source(i);
                    scratch_buf.header = ws.header;
                    scratch_buf.label = ws.label;
                    scratch_buf.data = *ws.data;
                    let seeks_before = self.stats.seeks;
                    let wait_before = self.stats.rotational_wait;
                    let r = self.service(da, scratch.chs[j], op, Some(wait), &mut scratch_buf);
                    let chained = k > 0
                        && self.stats.seeks == seeks_before
                        && self.stats.rotational_wait == wait_before;
                    if r.is_ok() {
                        visit(i, SectorView::of_buf(&scratch_buf));
                    }
                    let failed = r.is_err();
                    results[i] = r;
                    if chained {
                        followers += 1;
                        chained_total += 1;
                    } else {
                        self.flush_chain(followers);
                        followers = 0;
                    }
                    if failed {
                        halted_at = Some(k);
                        break;
                    }
                }
                self.flush_chain(followers);
            } else {
                // The zero-copy arm: `service`'s timeline, stats and trace
                // events exactly, with the per-sector state split out of
                // `self` once per chain. The §3.3 discipline runs in place:
                // header and label patterns are matched against the platter
                // words (wildcards captured into locals), and only when both
                // pass do the borrowed data words land on the sector. WRITE
                // ignores media damage — the value part is never read — so
                // the only possible failure here is a check mismatch, just
                // as in `service`.
                let loaded = self.pack.as_mut().expect("prechecked: pack is loaded");
                let trace = &self.trace;
                let sector_time = loaded.timing.sector_time;
                let mut now = self.clock.now();
                for (k, (&j, &wait)) in scratch.order.iter().zip(scratch.waits.iter()).enumerate() {
                    let i = scratch.remaining[j];
                    let da = das[i];
                    let chs = scratch.chs[j];
                    let mut seeked = false;
                    if chs.cylinder != loaded.cylinder {
                        seeked = true;
                        let distance = chs.cylinder.abs_diff(loaded.cylinder);
                        let t = loaded.timing.seek(distance);
                        now += t;
                        acc.seeks += 1;
                        acc.seek_time += t;
                        let from = loaded.cylinder;
                        trace.record_with(now, "disk.seek", || {
                            format!("cyl {} -> {} ({t})", from, chs.cylinder)
                        });
                        loaded.cylinder = chs.cylinder;
                    }
                    debug_assert_eq!(
                        wait,
                        loaded.timing.rotational_wait(now, chs.sector),
                        "planned wait diverged from the drive's timeline"
                    );
                    now += wait;
                    acc.rotational_wait += wait;
                    now += sector_time;
                    acc.transfer_time += sector_time;
                    acc.ops += 1;
                    acc.write_ops += 1;
                    acc.sectors_written += 1;
                    let sector = loaded
                        .pack
                        .sector_mut(da)
                        .expect("address validated against geometry");
                    let ws = source(i);
                    let mut header = ws.header;
                    let mut label = ws.label;
                    let checked = check_part(&sector.header, &mut header, da, SectorPart::Header)
                        .and_then(|()| {
                            check_part(&sector.label, &mut label, da, SectorPart::Label)
                        });
                    let r = match checked {
                        Ok(()) => {
                            sector.data = *ws.data;
                            trace.record_with(now, "disk.op", || {
                                format!("{:?} at {da}", SectorOp::WRITE)
                            });
                            visit(i, SectorView::new(sector));
                            Ok(())
                        }
                        Err(c) => {
                            acc.failed_checks += 1;
                            trace.record_with(now, "disk.check_fail", || c.to_string());
                            Err(DiskError::Check(c))
                        }
                    };
                    let failed = r.is_err();
                    results[i] = r;
                    if k > 0 && !seeked && wait == SimTime::ZERO {
                        followers += 1;
                        chained_total += 1;
                    } else {
                        if followers >= 1 {
                            let f = followers;
                            trace.record_with(now, "disk.chain", || {
                                format!("{}-sector chained transfer", f + 1)
                            });
                        }
                        followers = 0;
                    }
                    if failed {
                        halted_at = Some(k);
                        break;
                    }
                }
                if followers >= 1 {
                    let f = followers;
                    trace.record_with(now, "disk.chain", || {
                        format!("{}-sector chained transfer", f + 1)
                    });
                }
                self.clock.set(now);
            }
            match halted_at {
                Some(k) => {
                    scratch.next_remaining.clear();
                    scratch
                        .next_remaining
                        .extend(scratch.order[k + 1..].iter().map(|&j| scratch.remaining[j]));
                    std::mem::swap(&mut scratch.remaining, &mut scratch.next_remaining);
                }
                None => scratch.remaining.clear(),
            }
        }
        acc.flush_into(&mut self.stats);
        self.stats.chained_transfers += chained_total;
        self.trace
            .record_with(self.clock.now(), "disk.io.batch", || {
                format!(
                    "{} serviced (0 read, {} written)",
                    pending_len,
                    self.stats.sectors_written - writes_before,
                )
            });
        self.scratch = scratch;
        results
    }

    fn io_stats(&self) -> DriveStats {
        self.stats
    }

    fn retry_limit(&self) -> u32 {
        self.retries
    }

    // One revolution: the mis-read sector has to come all the way around
    // before the controller can try it again.
    fn retry_backoff(&self) -> SimTime {
        self.pack
            .as_ref()
            .map_or(SimTime::ZERO, |l| l.timing.revolution())
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.stats.retries += retries;
        if recovered {
            self.stats.recovered += 1;
            self.trace
                .record_with(self.clock.now(), "disk.retry.recovered", || {
                    format!(
                        "recovered after {retries} retr{}",
                        if retries == 1 { "y" } else { "ies" }
                    )
                });
        } else {
            self.stats.hard_failures += 1;
            self.trace
                .record_with(self.clock.now(), "disk.retry.hard_failure", || {
                    format!("{retries} retries exhausted, escalating")
                });
        }
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.stats.wb_drains += 1;
        self.stats.wb_coalesced += pages;
        self.trace
            .record_with(self.clock.now(), "disk.io.write_behind", || {
                format!("{pages}-page coalesced drain")
            });
    }

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.stats.readahead_hits += hits;
        self.stats.readahead_prefetched += prefetched;
        if hits > 0 {
            self.trace
                .record_with(self.clock.now(), "disk.readahead_hit", || {
                    format!("{hits} page(s) served from readahead")
                });
        }
    }

    fn note_park(&mut self, da: DiskAddress, page: u16) {
        if let Some(aud) = &self.audit {
            aud.note_park(da, page);
        }
    }

    fn note_unpark(&mut self, da: DiskAddress, page: u16, outcome: UnparkOutcome) {
        if let Some(aud) = &self.audit {
            aud.note_unpark(da, page, outcome, &self.trace, self.clock.now());
        }
    }

    fn set_audit_enabled(&mut self, enabled: bool) {
        if enabled {
            if self.audit.is_none() {
                self.audit = Some(Auditor::new(false));
            }
        } else {
            self.audit = None;
        }
    }

    fn audit_violations(&self) -> u64 {
        self.audit
            .as_ref()
            .map_or(0, |a| a.violation_count() as u64)
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn trace(&self) -> &Trace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;
    use crate::label::Label;

    fn drive() -> DiskDrive {
        DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1)
    }

    fn live_label(page: u16) -> Label {
        Label {
            fid: [3, 4],
            version: 1,
            page_number: page,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    /// Allocate a sector the §3.3 way: check free, then write label+data.
    fn allocate(drive: &mut DiskDrive, da: DiskAddress, label: Label) {
        let mut buf = SectorBuf::with_label(Label::FREE);
        drive.do_op(da, SectorOp::CHECK_LABEL, &mut buf).unwrap();
        let mut buf = SectorBuf::with_label(label);
        buf.data = [7; crate::sector::DATA_WORDS];
        drive.do_op(da, SectorOp::WRITE_LABEL, &mut buf).unwrap();
    }

    #[test]
    fn no_pack_errors() {
        let mut d = DiskDrive::new(SimClock::new(), Trace::new());
        let mut buf = SectorBuf::zeroed();
        assert_eq!(
            d.do_op(DiskAddress(0), SectorOp::READ_ALL, &mut buf),
            Err(DiskError::NoPack)
        );
        assert!(d.geometry().is_err());
        assert!(d.pack_number().is_err());
    }

    #[test]
    fn invalid_address_rejected() {
        let mut d = drive();
        let mut buf = SectorBuf::zeroed();
        assert_eq!(
            d.do_op(DiskAddress(9999), SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(DiskAddress(9999)))
        );
        assert_eq!(
            d.do_op(DiskAddress::NIL, SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(DiskAddress::NIL))
        );
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut d = drive();
        allocate(&mut d, DiskAddress(30), live_label(0));
        let mut buf = SectorBuf::with_label(live_label(0));
        d.do_op(DiskAddress(30), SectorOp::READ, &mut buf).unwrap();
        assert_eq!(buf.data[0], 7);
    }

    #[test]
    fn allocation_costs_about_a_revolution() {
        // §3.3: "This scheme costs a disk revolution each time a page is
        // allocated or freed." The check pass and the label-write pass visit
        // the same sector, so the write pass — command set-up, then waiting
        // for the just-passed sector to come around again, then the
        // transfer — costs exactly one revolution on top of the check.
        let mut d = drive();
        let rev = d.timing().unwrap().revolution();
        let mut buf = SectorBuf::with_label(Label::FREE);
        d.do_op(DiskAddress(0), SectorOp::CHECK_LABEL, &mut buf)
            .unwrap();
        let after_check = d.clock().now();
        let mut buf = SectorBuf::with_label(live_label(0));
        buf.data = [7; crate::sector::DATA_WORDS];
        d.do_op(DiskAddress(0), SectorOp::WRITE_LABEL, &mut buf)
            .unwrap();
        assert_eq!(d.clock().now() - after_check, rev);
    }

    #[test]
    fn ordinary_write_costs_no_extra_revolution() {
        // "On any other write the label is checked, at no cost in time."
        let mut d = drive();
        allocate(&mut d, DiskAddress(0), live_label(0));
        let sector = d.timing().unwrap().sector_time;
        let rev = d.timing().unwrap().revolution();
        // Overwrite the data of a *different* sector on the same track so
        // there is no self-interference from just having passed it.
        allocate(&mut d, DiskAddress(6), live_label(1));
        let mut buf = SectorBuf::with_label(live_label(1));
        buf.data = [9; crate::sector::DATA_WORDS];
        let start = d.clock().now();
        d.do_op(DiskAddress(6), SectorOp::WRITE, &mut buf).unwrap();
        let dt = d.clock().now() - start;
        // A single pass: rotational wait (< one revolution) + one sector.
        assert!(dt < rev + sector);
        assert!(dt >= sector);
    }

    #[test]
    fn streaming_consecutive_sectors_has_no_rotational_loss() {
        let mut d = drive();
        // Pre-allocate sectors 0..12 (one full track).
        for i in 0..12u16 {
            allocate(&mut d, DiskAddress(i), live_label(i));
        }
        d.reset_stats();
        // Align to the slot-0 boundary and stream the track as one batch.
        let t = d.timing().unwrap();
        let wait = t.rotational_wait(d.clock().now(), 0);
        d.clock().advance(wait);
        let start = d.clock().now();
        let mut batch: Vec<crate::sched::BatchRequest> = (0..12u16)
            .map(|i| {
                crate::sched::BatchRequest::new(
                    DiskAddress(i),
                    SectorOp::READ,
                    SectorBuf::with_label(live_label(i)),
                )
            })
            .collect();
        for r in d.do_batch(&mut batch) {
            r.unwrap();
        }
        let elapsed = d.clock().now() - start;
        // Command set-up eats into slot 0, so the chain starts at slot 1
        // and wraps: one sector of alignment plus one revolution, with 11
        // of the 12 transfers chained at full disk rate.
        assert_eq!(elapsed, t.revolution() + t.sector_time);
        assert_eq!(d.stats().chained_transfers, 11);
        assert_eq!(d.stats().batches, 1);
        assert_eq!(d.stats().batched_ops, 12);
        // The only rotational loss is the initial alignment to slot 1.
        assert_eq!(
            d.stats().rotational_wait,
            t.sector_time - t.command_overhead
        );
    }

    #[test]
    fn issued_one_at_a_time_consecutive_sectors_lose_a_revolution_each() {
        // The ablation the batch path is measured against: each separately
        // issued command pays its own set-up, misses the next slot, and
        // waits out almost a full revolution (§4's motivation for command
        // chaining).
        let mut d = drive();
        for i in 0..12u16 {
            allocate(&mut d, DiskAddress(i), live_label(i));
        }
        let t = d.timing().unwrap();
        let wait = t.rotational_wait(d.clock().now(), 0);
        d.clock().advance(wait);
        let start = d.clock().now();
        for i in 0..12u16 {
            let mut buf = SectorBuf::with_label(live_label(i));
            d.do_op(DiskAddress(i), SectorOp::READ, &mut buf).unwrap();
        }
        let elapsed = d.clock().now() - start;
        // First op: overhead + (rev - overhead) wait + sector. Each later
        // op likewise lands just after its slot: rev + sector per sector.
        assert_eq!(elapsed, (t.revolution() + t.sector_time).scaled(12));
    }

    #[test]
    fn chained_write_still_aborts_on_label_mismatch() {
        // The chaining invariant: batching changes when sectors transfer,
        // never whether their checks run. A wild write in the middle of a
        // chain bounces off the label check; its neighbours proceed.
        let mut d = drive();
        for i in 0..3u16 {
            allocate(&mut d, DiskAddress(i), live_label(i));
        }
        let mut batch = Vec::new();
        for i in 0..3u16 {
            // Request 1 carries the wrong label (page number off by ten).
            let claimed = if i == 1 {
                live_label(11)
            } else {
                live_label(i)
            };
            let mut buf = SectorBuf::with_label(claimed);
            buf.data = [0xBEEF; crate::sector::DATA_WORDS];
            batch.push(crate::sched::BatchRequest::new(
                DiskAddress(i),
                SectorOp::WRITE,
                buf,
            ));
        }
        let results = d.do_batch(&mut batch);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DiskError::Check(_))));
        assert!(results[2].is_ok());
        assert_eq!(d.stats().failed_checks, 1);
        // Sector 1's data survived untouched; its neighbours were written.
        let pack = d.pack().unwrap();
        assert_eq!(pack.sector(DiskAddress(0)).unwrap().data[0], 0xBEEF);
        assert_eq!(pack.sector(DiskAddress(1)).unwrap().data[0], 7);
        assert_eq!(pack.sector(DiskAddress(2)).unwrap().data[0], 0xBEEF);
    }

    #[test]
    fn mid_chain_failure_reschedules_the_remainder() {
        // Regression: the scheduled path used to compute the rotational
        // schedule once and keep charging chain members on it after a
        // mid-chain failure. A failure halts the chain, so the unserved
        // remainder must be replanned under a fresh command set-up.
        let mut d = drive();
        for i in 0..3u16 {
            allocate(&mut d, DiskAddress(i), live_label(i));
        }
        let t = d.timing().unwrap();
        let wait = t.rotational_wait(d.clock().now(), 0);
        d.clock().advance(wait);
        let start = d.clock().now();
        let command_before = d.stats().command_time;
        let mut batch = Vec::new();
        for i in 0..3u16 {
            // Sector 1 is served first (set-up eats into slot 0) and its
            // request carries the wrong label, so the chain halts at once.
            let claimed = if i == 1 {
                live_label(11)
            } else {
                live_label(i)
            };
            batch.push(crate::sched::BatchRequest::new(
                DiskAddress(i),
                SectorOp::READ,
                SectorBuf::with_label(claimed),
            ));
        }
        let results = d.do_batch(&mut batch);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DiskError::Check(_))));
        assert!(results[2].is_ok());
        // Failing pass: set-up + align to slot 1 + one sector = 2 slots.
        // Fresh command for the remainder {0, 2}: its set-up eats into
        // slot 2, so sector 0 is soonest (10 slots away), then sector 2
        // lands 2 slots later. Total: 15 slots = one revolution + 3.
        assert_eq!(
            d.clock().now() - start,
            t.revolution() + t.sector_time.scaled(3)
        );
        // And the remainder paid a second command set-up.
        assert_eq!(
            d.stats().command_time - command_before,
            t.command_overhead.scaled(2)
        );
    }

    #[test]
    fn seek_charged_once_per_cylinder_move() {
        let mut d = drive();
        let g = d.geometry().unwrap();
        let far = g.from_chs(crate::geometry::Chs {
            cylinder: 100,
            head: 0,
            sector: 0,
        });
        let mut buf = SectorBuf::zeroed();
        d.do_op(far, SectorOp::READ_ALL, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
        assert_eq!(d.current_cylinder(), 100);
        // Same cylinder again: no seek.
        d.do_op(far, SectorOp::READ_ALL, &mut buf).unwrap();
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn failed_check_counted_and_costs_the_pass() {
        let mut d = drive();
        let mut buf = SectorBuf::with_label(live_label(0));
        let before = d.clock().now();
        let err = d.do_op(DiskAddress(50), SectorOp::READ, &mut buf);
        assert!(matches!(err, Err(DiskError::Check(_))));
        assert_eq!(d.stats().failed_checks, 1);
        // Time was still charged (the sector had to pass under the head).
        assert!(d.clock().now() > before);
    }

    #[test]
    fn damaged_sector_hard_errors_on_read() {
        let mut d = drive();
        allocate(&mut d, DiskAddress(70), live_label(0));
        d.pack_mut().unwrap().damage(DiskAddress(70));
        let mut buf = SectorBuf::with_label(live_label(0));
        let err = d.do_op(DiskAddress(70), SectorOp::READ, &mut buf);
        assert_eq!(
            err,
            Err(DiskError::HardError {
                da: DiskAddress(70),
                part: SectorPart::Value
            })
        );
        // The label was still readable, so the caller knows which page died.
        assert_eq!(buf.decoded_label(), live_label(0));
        // Label-only operations still work, so the Scavenger can quarantine.
        let mut buf = SectorBuf::with_label(Label::BAD);
        buf.data = [u16::MAX; crate::sector::DATA_WORDS];
        d.do_op(DiskAddress(70), SectorOp::WRITE_LABEL, &mut buf)
            .unwrap();
        assert!(d
            .pack()
            .unwrap()
            .sector(DiskAddress(70))
            .unwrap()
            .decoded_label()
            .is_bad());
    }

    #[test]
    fn transient_fault_counts_a_soft_error_and_clears() {
        let mut d = drive();
        allocate(&mut d, DiskAddress(20), live_label(0));
        d.injector_mut().arm_read(
            DiskAddress(20),
            crate::inject::FaultKind::SoftRead { attempts: 1 },
        );
        let mut buf = SectorBuf::with_label(live_label(0));
        let err = d.do_op(DiskAddress(20), SectorOp::READ, &mut buf);
        assert!(matches!(err, Err(DiskError::Transient { attempt: 1, .. })));
        assert_eq!(d.stats().soft_errors, 1);
        // Time was charged — the sector passed under the head — and the
        // fault cleared, so a plain re-issue succeeds.
        let mut buf = SectorBuf::with_label(live_label(0));
        d.do_op(DiskAddress(20), SectorOp::READ, &mut buf).unwrap();
        assert_eq!(buf.data[0], 7);
    }

    #[test]
    fn unload_and_reload_pack_preserves_contents() {
        let mut d = drive();
        allocate(&mut d, DiskAddress(10), live_label(0));
        let pack = d.unload_pack().unwrap();
        assert!(d.pack().is_none());
        let mut d2 = DiskDrive::new(d.clock.clone(), Trace::new());
        d2.load_pack(pack);
        let mut buf = SectorBuf::with_label(live_label(0));
        d2.do_op(DiskAddress(10), SectorOp::READ, &mut buf).unwrap();
        assert_eq!(buf.data[0], 7);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = drive();
        allocate(&mut d, DiskAddress(0), live_label(0));
        let s = d.stats();
        assert_eq!(s.ops, 2);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.label_writes, 1);
        assert!(s.busy_time() > SimTime::ZERO);
        d.reset_stats();
        assert_eq!(d.stats(), DriveStats::default());
    }

    /// `do_batch_read` must be `do_batch`-with-`READ_ALL` in every
    /// observable way except the missing copy-out: same simulated elapsed
    /// time, same stats, same results, same trace, same delivered words.
    #[test]
    fn batch_read_views_match_buffered_batch_exactly() {
        let das: Vec<DiskAddress> = (0..300).map(DiskAddress).collect();

        let mut buffered = drive();
        buffered.trace().set_enabled(true);
        buffered.pack_mut().unwrap().damage(DiskAddress(70));
        buffered.pack_mut().unwrap().damage(DiskAddress(200));
        let t0 = buffered.clock().now();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed()))
            .collect();
        let buffered_results = buffered.do_batch(&mut batch);
        let buffered_elapsed = buffered.clock().now() - t0;

        let mut viewed = drive();
        viewed.trace().set_enabled(true);
        viewed.pack_mut().unwrap().damage(DiskAddress(70));
        viewed.pack_mut().unwrap().damage(DiskAddress(200));
        let t0 = viewed.clock().now();
        let mut seen: Vec<(usize, [u16; 2], u16)> = Vec::new();
        let view_results = viewed.do_batch_read(&das, |i, v| {
            seen.push((i, *v.header(), v.data()[0]));
        });
        let view_elapsed = viewed.clock().now() - t0;

        assert_eq!(buffered_elapsed, view_elapsed);
        assert_eq!(buffered_results, view_results);
        assert_eq!(buffered.stats(), viewed.stats());
        assert_eq!(buffered.trace().events(), viewed.trace().events());
        // Every successful request was visited exactly once, with the same
        // words the buffered form copied out.
        assert_eq!(seen.len(), das.len() - 2);
        for &(i, header, word0) in &seen {
            assert!(buffered_results[i].is_ok());
            assert_eq!(header, batch[i].buf.header);
            assert_eq!(word0, batch[i].buf.data[0]);
        }
        for (i, r) in view_results.iter().enumerate() {
            if r.is_err() {
                assert!(!seen.iter().any(|&(j, _, _)| j == i), "visited failed {i}");
            }
        }
    }

    /// With the auditor attached the view read routes through the buffered
    /// `service` path — timing and stats must still match `do_batch`, and
    /// the auditor must observe a §3.3-clean run.
    #[test]
    fn batch_read_views_under_audit_match_and_stay_clean() {
        let das: Vec<DiskAddress> = (0..100).map(DiskAddress).collect();

        let mut buffered = drive();
        buffered.enable_audit();
        let t0 = buffered.clock().now();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed()))
            .collect();
        buffered.do_batch(&mut batch);
        let buffered_elapsed = buffered.clock().now() - t0;

        let mut viewed = drive();
        let auditor = viewed.enable_audit();
        let t0 = viewed.clock().now();
        let mut visits = 0usize;
        let results = viewed.do_batch_read(&das, |_, v| {
            std::hint::black_box(v.data()[0]);
            visits += 1;
        });
        let view_elapsed = viewed.clock().now() - t0;

        assert_eq!(buffered_elapsed, view_elapsed);
        assert_eq!(buffered.stats(), viewed.stats());
        assert_eq!(visits, das.len());
        assert!(results.iter().all(Result::is_ok));
        assert!(auditor.violations().is_empty());
    }

    /// Malformed addresses are rejected up front and never visited, like
    /// `do_batch`'s prechecks.
    #[test]
    fn batch_read_prechecks_out_of_range_addresses() {
        let mut d = drive();
        let das = vec![DiskAddress(0), DiskAddress(u16::MAX), DiskAddress(1)];
        let results = d.do_batch_read(&das, |i, _| assert_ne!(i, 1));
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DiskError::InvalidAddress(_))));
        assert!(results[2].is_ok());
    }

    /// `do_batch_write` must be `do_batch`-with-`WRITE` in every observable
    /// way except the staging copy: same simulated elapsed time, same stats,
    /// same results (including mid-batch check failures and the
    /// halt-and-replan that follows them), same trace, same platter words.
    #[test]
    fn batch_write_views_match_buffered_batch_exactly() {
        let das: Vec<DiskAddress> = (0..300).map(DiskAddress).collect();
        let datas: Vec<[u16; crate::sector::DATA_WORDS]> = (0..300)
            .map(|i| [i as u16; crate::sector::DATA_WORDS])
            .collect();
        // Two requests carry a label pattern that cannot match the free
        // label on the platter — a §3.3 check failure mid-chain.
        let bad_label: [u16; crate::label::LABEL_WORDS] = [5, 0, 0, 0, 0, 0, 0];
        let label_for = |i: usize| {
            if i == 70 || i == 200 {
                bad_label
            } else {
                [0; crate::label::LABEL_WORDS]
            }
        };

        let mut buffered = drive();
        buffered.trace().set_enabled(true);
        let t0 = buffered.clock().now();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .enumerate()
            .map(|(i, &da)| {
                let mut buf = SectorBuf::zeroed();
                buf.label = label_for(i);
                buf.data = datas[i];
                BatchRequest::new(da, SectorOp::WRITE, buf)
            })
            .collect();
        let buffered_results = buffered.do_batch(&mut batch);
        let buffered_elapsed = buffered.clock().now() - t0;

        let mut viewed = drive();
        viewed.trace().set_enabled(true);
        let t0 = viewed.clock().now();
        let mut seen: Vec<(usize, [u16; 2], [u16; crate::label::LABEL_WORDS], u16)> = Vec::new();
        let view_results = viewed.do_batch_write(
            &das,
            |i| WriteSource {
                header: [0, 0],
                label: label_for(i),
                data: &datas[i],
            },
            |i, v| seen.push((i, *v.header(), *v.label().words(), v.data()[0])),
        );
        let view_elapsed = viewed.clock().now() - t0;

        assert_eq!(buffered_elapsed, view_elapsed);
        assert_eq!(buffered_results, view_results);
        assert_eq!(buffered.stats(), viewed.stats());
        assert_eq!(buffered.trace().events(), viewed.trace().events());
        assert!(matches!(view_results[70], Err(DiskError::Check(_))));
        assert!(matches!(view_results[200], Err(DiskError::Check(_))));
        // Every successful request was visited exactly once, with the same
        // words the buffered form captured into its staging buffer.
        assert_eq!(seen.len(), das.len() - 2);
        for &(i, header, label, word0) in &seen {
            assert!(buffered_results[i].is_ok());
            assert_eq!(header, batch[i].buf.header);
            assert_eq!(label, batch[i].buf.label);
            assert_eq!(word0, batch[i].buf.data[0]);
        }
        // And the platters agree word for word.
        for &da in &das {
            let b = buffered.pack().unwrap().sector(da).unwrap();
            let v = viewed.pack().unwrap().sector(da).unwrap();
            assert_eq!(b.header, v.header);
            assert_eq!(b.label, v.label);
            assert_eq!(b.data, v.data, "data diverged at {da}");
        }
    }

    /// With the auditor attached the view write routes through the buffered
    /// `service` path — timing and stats must still match `do_batch`, and
    /// the auditor must observe a §3.3-clean run.
    #[test]
    fn batch_write_views_under_audit_match_and_stay_clean() {
        let das: Vec<DiskAddress> = (0..100).map(DiskAddress).collect();
        let datas: Vec<[u16; crate::sector::DATA_WORDS]> = (0..100)
            .map(|i| [i as u16; crate::sector::DATA_WORDS])
            .collect();

        let mut buffered = drive();
        buffered.enable_audit();
        let t0 = buffered.clock().now();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .enumerate()
            .map(|(i, &da)| {
                let mut buf = SectorBuf::zeroed();
                buf.data = datas[i];
                BatchRequest::new(da, SectorOp::WRITE, buf)
            })
            .collect();
        buffered.do_batch(&mut batch);
        let buffered_elapsed = buffered.clock().now() - t0;

        let mut viewed = drive();
        let auditor = viewed.enable_audit();
        let t0 = viewed.clock().now();
        let mut visits = 0usize;
        let results = viewed.do_batch_write(
            &das,
            |i| WriteSource {
                header: [0, 0],
                label: [0; crate::label::LABEL_WORDS],
                data: &datas[i],
            },
            |_, v| {
                std::hint::black_box(v.data()[0]);
                visits += 1;
            },
        );
        let view_elapsed = viewed.clock().now() - t0;

        assert_eq!(buffered_elapsed, view_elapsed);
        assert_eq!(buffered.stats(), viewed.stats());
        assert_eq!(visits, das.len());
        assert!(results.iter().all(Result::is_ok));
        assert!(auditor.violations().is_empty());
    }

    /// An armed fault injector forces the buffered fallback: the injected
    /// fault's semantics (here a silently dropped write) must land exactly
    /// as they do on the `do_batch` path.
    #[test]
    fn batch_write_views_with_armed_injector_match_buffered() {
        let das: Vec<DiskAddress> = (0..20).map(DiskAddress).collect();
        let datas: Vec<[u16; crate::sector::DATA_WORDS]> = (0..20)
            .map(|i| [i as u16 + 1; crate::sector::DATA_WORDS])
            .collect();

        let mut buffered = drive();
        buffered
            .injector_mut()
            .arm(DiskAddress(10), crate::inject::FaultKind::DropWrite);
        let t0 = buffered.clock().now();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .enumerate()
            .map(|(i, &da)| {
                let mut buf = SectorBuf::zeroed();
                buf.data = datas[i];
                BatchRequest::new(da, SectorOp::WRITE, buf)
            })
            .collect();
        let buffered_results = buffered.do_batch(&mut batch);
        let buffered_elapsed = buffered.clock().now() - t0;

        let mut viewed = drive();
        viewed
            .injector_mut()
            .arm(DiskAddress(10), crate::inject::FaultKind::DropWrite);
        let t0 = viewed.clock().now();
        let view_results = viewed.do_batch_write(
            &das,
            |i| WriteSource {
                header: [0, 0],
                label: [0; crate::label::LABEL_WORDS],
                data: &datas[i],
            },
            |_, _| {},
        );
        let view_elapsed = viewed.clock().now() - t0;

        assert_eq!(buffered_elapsed, view_elapsed);
        assert_eq!(buffered_results, view_results);
        assert_eq!(buffered.stats(), viewed.stats());
        for &da in &das {
            let b = buffered.pack().unwrap().sector(da).unwrap();
            let v = viewed.pack().unwrap().sector(da).unwrap();
            assert_eq!(b.data, v.data, "data diverged at {da}");
        }
        // The dropped write really dropped on both paths: the intended
        // words never landed.
        assert_ne!(
            viewed.pack().unwrap().sector(DiskAddress(10)).unwrap().data,
            datas[10]
        );
        assert_eq!(
            viewed.pack().unwrap().sector(DiskAddress(11)).unwrap().data,
            datas[11]
        );
    }

    /// Malformed addresses are rejected up front and never written or
    /// visited, like `do_batch`'s prechecks.
    #[test]
    fn batch_write_prechecks_out_of_range_addresses() {
        let mut d = drive();
        let das = vec![DiskAddress(0), DiskAddress(u16::MAX), DiskAddress(1)];
        let data = [9u16; crate::sector::DATA_WORDS];
        let results = d.do_batch_write(
            &das,
            |_| WriteSource {
                header: [0, 0],
                label: [0; crate::label::LABEL_WORDS],
                data: &data,
            },
            |i, _| assert_ne!(i, 1),
        );
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(DiskError::InvalidAddress(_))));
        assert!(results[2].is_ok());
        assert_eq!(d.pack().unwrap().sector(DiskAddress(0)).unwrap().data[0], 9);
    }
}
