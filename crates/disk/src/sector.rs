//! Sectors and sector operations.
//!
//! The physical representation of a page is a *sector* with three parts —
//! header, label, value (§3.3). A single disk operation performs a read,
//! check or write action independently on each part, in that order, with the
//! restriction that once a write is begun it must continue through the rest
//! of the sector. A check compares disk words against memory words, treating
//! a memory word of 0 as a wildcard that is replaced by the disk word; the
//! first mismatch aborts the entire operation before anything later is
//! written.
//!
//! This module implements those semantics as a pure state transformation
//! ([`apply`]); the drive adds geometry, timing and fault injection.

use crate::errors::{CheckFailure, DiskError, SectorPart};
use crate::geometry::DiskAddress;
use crate::label::{Label, LABEL_WORDS};

/// Number of data words in a sector's value part.
pub const DATA_WORDS: usize = 256;

/// Number of words in a sector's header part: pack number and disk address.
pub const HEADER_WORDS: usize = 2;

/// The on-disk contents of one sector.
///
/// `#[repr(C)]` fixes the part order (header, label, value) so the typed
/// views in [`crate::view`] can treat a sector as one contiguous word slab.
#[repr(C)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sector {
    /// Header words: `[pack_number, disk_address]`.
    pub header: [u16; HEADER_WORDS],
    /// The seven label words.
    pub label: [u16; LABEL_WORDS],
    /// The 256 data words.
    pub data: [u16; DATA_WORDS],
}

impl Sector {
    /// A freshly formatted sector: correct header, free (all-ones) label,
    /// all-ones data (§3.3 — freeing writes ones into label and value).
    pub fn formatted(pack_number: u16, da: DiskAddress) -> Sector {
        Sector {
            header: [pack_number, da.0],
            label: Label::FREE.encode(),
            data: [u16::MAX; DATA_WORDS],
        }
    }

    /// Decodes this sector's label.
    pub fn decoded_label(&self) -> Label {
        Label::decode(&self.label)
    }
}

/// The memory-side buffers involved in a sector operation.
///
/// Read actions fill these from the disk; check actions compare against them
/// (filling wildcard words); write actions copy them to the disk.
#[repr(C)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectorBuf {
    /// Header buffer.
    pub header: [u16; HEADER_WORDS],
    /// Label buffer.
    pub label: [u16; LABEL_WORDS],
    /// Data buffer.
    pub data: [u16; DATA_WORDS],
}

impl Default for SectorBuf {
    fn default() -> Self {
        SectorBuf::zeroed()
    }
}

impl SectorBuf {
    /// An all-zero buffer (every word a wildcard for check actions).
    pub fn zeroed() -> SectorBuf {
        SectorBuf {
            header: [0; HEADER_WORDS],
            label: [0; LABEL_WORDS],
            data: [0; DATA_WORDS],
        }
    }

    /// A buffer whose label part is set from `label` (header and data zero).
    pub fn with_label(label: Label) -> SectorBuf {
        SectorBuf {
            label: label.encode(),
            ..SectorBuf::zeroed()
        }
    }

    /// Decodes the label buffer.
    pub fn decoded_label(&self) -> Label {
        Label::decode(&self.label)
    }

    /// Sets the label buffer.
    pub fn set_label(&mut self, label: Label) {
        self.label = label.encode();
    }
}

/// The action performed on one part of a sector during an operation (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Transfer disk words to memory.
    Read,
    /// Compare disk words with memory words; a memory word of 0 is replaced
    /// by the disk word (pattern match); mismatch aborts the operation.
    Check,
    /// Transfer memory words to the disk.
    Write,
}

/// A complete sector operation: one action per part, applied in disk order
/// (header, then label, then value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectorOp {
    /// Action on the header part.
    pub header: Action,
    /// Action on the label part.
    pub label: Action,
    /// Action on the value part.
    pub value: Action,
}

impl SectorOp {
    /// Read everything: header, label and data to memory.
    pub const READ_ALL: SectorOp = SectorOp {
        header: Action::Read,
        label: Action::Read,
        value: Action::Read,
    };

    /// The normal page read: check header and label, read data.
    pub const READ: SectorOp = SectorOp {
        header: Action::Check,
        label: Action::Check,
        value: Action::Read,
    };

    /// The normal page write: check header and label, write data —
    /// "on any other write the label is checked, at no cost in time" (§3.3).
    pub const WRITE: SectorOp = SectorOp {
        header: Action::Check,
        label: Action::Check,
        value: Action::Write,
    };

    /// Rewrite label and data after checking the header and (via a prior
    /// check pass) the label: used to allocate, free, and change file length.
    pub const WRITE_LABEL: SectorOp = SectorOp {
        header: Action::Check,
        label: Action::Write,
        value: Action::Write,
    };

    /// Check the label only (reading it via wildcards), touching no data:
    /// the first pass of an allocate/free, and the Scavenger's scan step.
    pub const CHECK_LABEL: SectorOp = SectorOp {
        header: Action::Check,
        label: Action::Check,
        value: Action::Read,
    };

    /// Format pass: write all three parts.
    pub const WRITE_ALL: SectorOp = SectorOp {
        header: Action::Write,
        label: Action::Write,
        value: Action::Write,
    };

    /// Validates the hardware restriction that once a write is begun it must
    /// continue through the rest of the sector (§3.3).
    pub fn validate(&self) -> Result<(), DiskError> {
        let mut writing = false;
        for action in [self.header, self.label, self.value] {
            match action {
                Action::Write => writing = true,
                Action::Read | Action::Check if writing => {
                    return Err(DiskError::MalformedOp(
                        "read or check action after a write action",
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// True if any part of this operation writes the disk.
    pub fn writes(&self) -> bool {
        [self.header, self.label, self.value].contains(&Action::Write)
    }
}

/// The check action alone, against an immutably borrowed disk part — the
/// §3.3 wildcard pattern match shared by [`apply`] and the zero-copy write
/// path, which checks header and label in place before touching the value.
pub(crate) fn check_part(
    disk: &[u16],
    mem: &mut [u16],
    da: DiskAddress,
    part: SectorPart,
) -> Result<(), CheckFailure> {
    // Fast path: an exact match (no wildcards to capture, nothing to
    // report) is the steady state of §3.3 check-before-write, and a
    // single slice compare beats the word loop on every hot path.
    if mem == disk {
        return Ok(());
    }
    for (i, (m, d)) in mem.iter_mut().zip(disk.iter()).enumerate() {
        if *m == 0 {
            *m = *d; // wildcard: pattern-match and capture
        } else if *m != *d {
            return Err(CheckFailure {
                da,
                part,
                word_index: i,
                expected: *m,
                found: *d,
            });
        }
    }
    Ok(())
}

fn run_part(
    action: Action,
    disk: &mut [u16],
    mem: &mut [u16],
    da: DiskAddress,
    part: SectorPart,
) -> Result<(), CheckFailure> {
    match action {
        Action::Read => mem.copy_from_slice(disk),
        Action::Write => disk.copy_from_slice(mem),
        Action::Check => check_part(disk, mem, da, part)?,
    }
    Ok(())
}

/// Applies a sector operation to an on-disk sector and a memory buffer.
///
/// Parts are processed in disk order; a failed check aborts the remainder of
/// the operation, and because of the write-continuation rule (validated
/// here) no write can precede a check, so an aborted operation leaves the
/// disk unmodified.
pub fn apply(
    op: SectorOp,
    da: DiskAddress,
    sector: &mut Sector,
    buf: &mut SectorBuf,
) -> Result<(), DiskError> {
    op.validate()?;
    run_part(
        op.header,
        &mut sector.header,
        &mut buf.header,
        da,
        SectorPart::Header,
    )?;
    run_part(
        op.label,
        &mut sector.label,
        &mut buf.label,
        da,
        SectorPart::Label,
    )?;
    run_part(
        op.value,
        &mut sector.data,
        &mut buf.data,
        da,
        SectorPart::Value,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_sector() -> Sector {
        let mut s = Sector::formatted(1, DiskAddress(5));
        s.label = Label {
            fid: [10, 20],
            version: 1,
            page_number: 2,
            length: 512,
            next: DiskAddress(6),
            prev: DiskAddress(4),
        }
        .encode();
        s.data = [0x5A5A; DATA_WORDS];
        s
    }

    #[test]
    fn read_all_fills_buffers() {
        let mut s = live_sector();
        let mut b = SectorBuf::zeroed();
        apply(SectorOp::READ_ALL, DiskAddress(5), &mut s, &mut b).unwrap();
        assert_eq!(b.header, s.header);
        assert_eq!(b.label, s.label);
        assert_eq!(b.data, s.data);
    }

    #[test]
    fn check_with_exact_label_passes() {
        let mut s = live_sector();
        let mut b = SectorBuf::with_label(s.decoded_label());
        b.header = s.header;
        apply(SectorOp::READ, DiskAddress(5), &mut s, &mut b).unwrap();
        assert_eq!(b.data, [0x5A5A; DATA_WORDS]);
    }

    #[test]
    fn check_wildcards_capture_disk_words() {
        let mut s = live_sector();
        // Know only fid and page number; lengths and links are wildcards.
        let mut b = SectorBuf::zeroed();
        b.label = [10, 20, 1, 2, 0, 0, 0];
        apply(SectorOp::READ, DiskAddress(5), &mut s, &mut b).unwrap();
        // Wildcards were replaced by the disk's words (pattern match).
        assert_eq!(b.decoded_label(), s.decoded_label());
    }

    #[test]
    fn header_wildcard_acts_as_read() {
        let mut s = live_sector();
        let mut b = SectorBuf::with_label(s.decoded_label());
        apply(SectorOp::READ, DiskAddress(5), &mut s, &mut b).unwrap();
        assert_eq!(b.header, [1, 5]);
    }

    #[test]
    fn mismatched_check_aborts_before_write() {
        let mut s = live_sector();
        let original = s.clone();
        let mut wrong = s.decoded_label();
        wrong.page_number = 3; // stale hint: wrong page
        let mut b = SectorBuf::with_label(wrong);
        b.data = [0xDEAD; DATA_WORDS];
        let err = apply(SectorOp::WRITE, DiskAddress(5), &mut s, &mut b).unwrap_err();
        match err {
            DiskError::Check(c) => {
                assert_eq!(c.part, SectorPart::Label);
                assert_eq!(c.word_index, 3); // PN is label word 3
                assert_eq!(c.expected, 3);
                assert_eq!(c.found, 2);
            }
            other => panic!("expected check failure, got {other:?}"),
        }
        // Nothing was written: the disk is untouched.
        assert_eq!(s, original);
    }

    #[test]
    fn free_sector_rejects_file_reads() {
        let mut s = Sector::formatted(1, DiskAddress(9));
        let mut b = SectorBuf::with_label(Label {
            fid: [10, 20],
            version: 1,
            page_number: 0,
            length: 0, // wildcard is fine; fid mismatch hits first
            next: DiskAddress(0),
            prev: DiskAddress(0),
        });
        let err = apply(SectorOp::READ, DiskAddress(9), &mut s, &mut b).unwrap_err();
        assert!(matches!(err, DiskError::Check(c) if c.part == SectorPart::Label));
    }

    #[test]
    fn allocate_requires_free_label() {
        // The first write after allocation checks that the page is free.
        let mut s = Sector::formatted(1, DiskAddress(9));
        let mut b = SectorBuf::with_label(Label::FREE);
        b.header = [1, 9];
        apply(SectorOp::CHECK_LABEL, DiskAddress(9), &mut s, &mut b).unwrap();
        // Now write the proper label.
        let mut b2 = SectorBuf::with_label(Label {
            fid: [10, 20],
            version: 1,
            page_number: 0,
            length: 0,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        });
        b2.header = [1, 9];
        apply(SectorOp::WRITE_LABEL, DiskAddress(9), &mut s, &mut b2).unwrap();
        assert!(s.decoded_label().is_in_use());
    }

    #[test]
    fn allocate_fails_if_sector_is_busy() {
        let mut s = live_sector();
        let mut b = SectorBuf::with_label(Label::FREE);
        let err = apply(SectorOp::CHECK_LABEL, DiskAddress(5), &mut s, &mut b).unwrap_err();
        assert!(matches!(err, DiskError::Check(_)));
    }

    #[test]
    fn malformed_op_rejected() {
        let bad = SectorOp {
            header: Action::Write,
            label: Action::Check,
            value: Action::Write,
        };
        assert!(matches!(bad.validate(), Err(DiskError::MalformedOp(_))));
        let mut s = live_sector();
        let before = s.clone();
        let mut b = SectorBuf::zeroed();
        assert!(apply(bad, DiskAddress(5), &mut s, &mut b).is_err());
        assert_eq!(s, before);
    }

    #[test]
    fn standard_ops_are_well_formed() {
        for op in [
            SectorOp::READ_ALL,
            SectorOp::READ,
            SectorOp::WRITE,
            SectorOp::WRITE_LABEL,
            SectorOp::CHECK_LABEL,
            SectorOp::WRITE_ALL,
        ] {
            op.validate().unwrap();
        }
    }

    #[test]
    fn writes_predicate() {
        assert!(!SectorOp::READ.writes());
        assert!(SectorOp::WRITE.writes());
        assert!(SectorOp::WRITE_LABEL.writes());
        assert!(SectorOp::WRITE_ALL.writes());
        assert!(!SectorOp::CHECK_LABEL.writes());
    }

    #[test]
    fn formatted_sector_is_free_and_self_identifying() {
        let s = Sector::formatted(7, DiskAddress(100));
        assert_eq!(s.header, [7, 100]);
        assert!(s.decoded_label().is_free());
        assert!(s.data.iter().all(|&w| w == u16::MAX));
    }
}
