//! Ablation: a disk without check actions.
//!
//! DESIGN.md's key design decision #2 says the robustness of the system
//! comes from the drive enforcing check-before-write. [`UncheckedDisk`]
//! removes exactly that — every check action is downgraded to a read — so
//! the experiments can show what the paper's world looks like *without*
//! the label discipline: wild writes land, stale hints overwrite live
//! data, and the Scavenger has less truth to rebuild from.
//!
//! [`UnscheduledDisk`] is the second ablation, for the performance half of
//! the story: it forwards every operation unchanged but never chains —
//! each request in a batch is issued as a separate command, paying its own
//! set-up time and rotational latency. Benches mount a file system on it
//! to measure exactly what the [`crate::sched`] machinery buys.
//!
//! (Both are, incidentally, demonstrations of the openness thesis: the
//! disk object is an ordinary abstract object a user can wrap, even to
//! remove the safety — or the speed — the system was designed around.)

use alto_sim::{SimClock, Trace};

use crate::drive::Disk;
use crate::errors::DiskError;
use crate::geometry::{DiskAddress, DiskGeometry};
use crate::sched::BatchRequest;
use crate::sector::{Action, SectorBuf, SectorOp};

/// Wraps a disk, downgrading every check action to a read.
#[derive(Debug)]
pub struct UncheckedDisk<D: Disk> {
    inner: D,
    /// Check actions that *would* have run (and possibly failed).
    pub checks_elided: u64,
}

impl<D: Disk> UncheckedDisk<D> {
    /// Wraps `inner`. Stripping checks violates the §3.3 discipline *by
    /// design*, so any runtime auditor on the wrapped disk is switched off —
    /// the ablation measures the world without the discipline, not the
    /// auditor's opinion of it.
    pub fn new(mut inner: D) -> UncheckedDisk<D> {
        inner.set_audit_enabled(false);
        UncheckedDisk {
            inner,
            checks_elided: 0,
        }
    }

    /// The wrapped disk.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// The wrapped disk, borrowed.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Downgrades every check in `op`, then legalizes the result (a
    /// stripped check preceding a write becomes a write-through).
    fn strip_op(&mut self, op: SectorOp) -> SectorOp {
        let stripped = SectorOp {
            header: strip(op.header, &mut self.checks_elided),
            label: strip(op.label, &mut self.checks_elided),
            value: strip(op.value, &mut self.checks_elided),
        };
        // Read-before-write is not a legal hardware sequence; a stripped
        // check preceding a write becomes a write-through (the caller's
        // buffer wins — which is precisely the unsafety being modelled).
        match stripped.validate() {
            Ok(()) => stripped,
            Err(_) => SectorOp {
                header: if stripped.header == Action::Read && op_writes_after(stripped, 0) {
                    Action::Write
                } else {
                    stripped.header
                },
                label: if stripped.label == Action::Read && op_writes_after(stripped, 1) {
                    Action::Write
                } else {
                    stripped.label
                },
                value: stripped.value,
            },
        }
    }
}

fn strip(action: Action, count: &mut u64) -> Action {
    match action {
        Action::Check => {
            *count += 1;
            Action::Read
        }
        other => other,
    }
}

impl<D: Disk> Disk for UncheckedDisk<D> {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        self.inner.geometry()
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        self.inner.pack_number()
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        let stripped = self.strip_op(op);
        self.inner.do_op(da, stripped, buf)
    }

    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        // Strip each request, then let the inner disk schedule the chain.
        for req in batch.iter_mut() {
            req.op = self.strip_op(req.op);
        }
        self.inner.do_batch(batch)
    }

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.inner.note_readahead(hits, prefetched);
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.inner.note_write_behind(pages);
    }

    fn io_stats(&self) -> crate::drive::DriveStats {
        self.inner.io_stats()
    }

    fn write_epoch(&self) -> u64 {
        self.inner.write_epoch()
    }

    fn retry_limit(&self) -> u32 {
        self.inner.retry_limit()
    }

    fn retry_backoff(&self) -> alto_sim::SimTime {
        self.inner.retry_backoff()
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.inner.note_retry(retries, recovered);
    }

    // note_park / note_unpark / set_audit_enabled deliberately NOT
    // forwarded: the inner auditor is off for the lifetime of the wrapper.

    fn arm_count(&self) -> usize {
        self.inner.arm_count()
    }

    fn arm_of(&self, da: DiskAddress) -> usize {
        self.inner.arm_of(da)
    }

    fn arm_origin(&self, arm: usize) -> Option<DiskAddress> {
        self.inner.arm_origin(arm)
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn trace(&self) -> &Trace {
        self.inner.trace()
    }
}

/// Wraps a disk, forwarding operations unchanged but never chaining:
/// every request in a batch is issued as its own command.
///
/// This is the scheduler's ablation twin. A file system mounted on an
/// `UnscheduledDisk` runs the identical code paths — same checks, same
/// sectors, same order of page-level logic — but every batched transfer
/// decays to the one-command-at-a-time pattern that misses the next
/// sector and waits out a revolution per page.
#[derive(Debug)]
pub struct UnscheduledDisk<D: Disk> {
    inner: D,
}

impl<D: Disk> UnscheduledDisk<D> {
    /// Wraps `inner`.
    pub fn new(inner: D) -> UnscheduledDisk<D> {
        UnscheduledDisk { inner }
    }

    /// The wrapped disk.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// The wrapped disk, borrowed.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped disk, borrowed mutably.
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }
}

impl<D: Disk> Disk for UnscheduledDisk<D> {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        self.inner.geometry()
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        self.inner.pack_number()
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        self.inner.do_op(da, op, buf)
    }

    // No `do_batch` override: the trait's default issues the requests one
    // at a time through `do_op`, each paying its own command set-up.

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.inner.note_readahead(hits, prefetched);
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.inner.note_write_behind(pages);
    }

    fn io_stats(&self) -> crate::drive::DriveStats {
        self.inner.io_stats()
    }

    fn write_epoch(&self) -> u64 {
        self.inner.write_epoch()
    }

    fn retry_limit(&self) -> u32 {
        self.inner.retry_limit()
    }

    fn retry_backoff(&self) -> alto_sim::SimTime {
        self.inner.retry_backoff()
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.inner.note_retry(retries, recovered);
    }

    fn note_park(&mut self, da: DiskAddress, page: u16) {
        self.inner.note_park(da, page);
    }

    fn note_unpark(&mut self, da: DiskAddress, page: u16, outcome: crate::audit::UnparkOutcome) {
        self.inner.note_unpark(da, page, outcome);
    }

    fn set_audit_enabled(&mut self, enabled: bool) {
        self.inner.set_audit_enabled(enabled);
    }

    fn audit_violations(&self) -> u64 {
        self.inner.audit_violations()
    }

    fn arm_count(&self) -> usize {
        self.inner.arm_count()
    }

    fn arm_of(&self, da: DiskAddress) -> usize {
        self.inner.arm_of(da)
    }

    fn arm_origin(&self, arm: usize) -> Option<DiskAddress> {
        self.inner.arm_origin(arm)
    }

    fn clock(&self) -> &SimClock {
        self.inner.clock()
    }

    fn trace(&self) -> &Trace {
        self.inner.trace()
    }
}

/// True if any part after index `part` writes.
fn op_writes_after(op: SectorOp, part: usize) -> bool {
    let actions = [op.header, op.label, op.value];
    actions[part + 1..].contains(&Action::Write)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive::DiskDrive;
    use crate::geometry::DiskModel;
    use crate::label::Label;
    use crate::sector::DATA_WORDS;

    fn unchecked() -> UncheckedDisk<DiskDrive> {
        UncheckedDisk::new(DiskDrive::with_formatted_pack(
            SimClock::new(),
            Trace::new(),
            DiskModel::Diablo31,
            1,
        ))
    }

    fn live_label(page: u16) -> Label {
        Label {
            fid: [3, 4],
            version: 1,
            page_number: page,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    #[test]
    fn wild_writes_land_without_checks() {
        let mut d = unchecked();
        // Set up a live page through the normal (checked) interface first.
        {
            let inner = &mut d.inner;
            let mut buf = SectorBuf::with_label(Label::FREE);
            inner
                .do_op(DiskAddress(9), SectorOp::CHECK_LABEL, &mut buf)
                .unwrap();
            let mut buf = SectorBuf::with_label(live_label(0));
            buf.data = [1; DATA_WORDS];
            inner
                .do_op(DiskAddress(9), SectorOp::WRITE_LABEL, &mut buf)
                .unwrap();
        }
        // A wild write with a completely wrong label sails through.
        let mut buf = SectorBuf::with_label(live_label(7));
        buf.data = [0xDEAD; DATA_WORDS];
        d.do_op(DiskAddress(9), SectorOp::WRITE, &mut buf).unwrap();
        assert!(d.checks_elided >= 2);
        // The live page's data was destroyed — exactly what the label
        // discipline exists to prevent.
        let sector = d.inner().pack().unwrap().sector(DiskAddress(9)).unwrap();
        assert_eq!(sector.data, [0xDEAD; DATA_WORDS]);
    }

    #[test]
    fn reads_still_work() {
        let mut d = unchecked();
        let mut buf = SectorBuf::zeroed();
        d.do_op(DiskAddress(0), SectorOp::READ_ALL, &mut buf)
            .unwrap();
        assert!(buf.decoded_label().is_free());
    }

    #[test]
    fn checked_read_becomes_plain_read() {
        let mut d = unchecked();
        // READ with a nonsense label succeeds (no check to fail).
        let mut buf = SectorBuf::with_label(live_label(3));
        d.do_op(DiskAddress(5), SectorOp::READ, &mut buf).unwrap();
        // The buffer got the *disk's* label back (free), not a check error.
        assert!(buf.decoded_label().is_free());
    }
}
