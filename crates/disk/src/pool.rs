//! Recycled buffers for the steady-state I/O paths.
//!
//! Every batched disk operation needs a request vector, a result vector and
//! per-sector buffers. Allocating them per call dominated the wall-clock
//! profile (see `docs/PERFORMANCE.md`), so the hot paths draw them from
//! small thread-local free lists instead: a vector is taken with
//! [`batch_vec`]/[`results_vec`], used, and handed back with
//! the matching `recycle_*` call once its contents have been consumed. In
//! the steady state every list has a warm vector with grown capacity, so a
//! read or write costs zero heap allocations.
//!
//! Pooling is a *host-side* optimization: it never touches the simulated
//! clock, the trace contents, or §3.3 semantics — recycled vectors are
//! always cleared before reuse. [`set_enabled`] is the ablation switch the
//! wall-clock benchmark uses to measure exactly what pooling buys; disabled,
//! the take functions return fresh vectors and the recycle functions drop.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::errors::DiskError;
use crate::geometry::DiskAddress;
use crate::sched::BatchRequest;

/// Global pooling gate (on by default). Relaxed ordering suffices: the flag
/// only selects between two correct allocation strategies.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// True when the free lists are in use (the default).
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the free lists on or off, process-wide. Off, every take allocates
/// and every recycle drops — the benchmark's "seed allocation behavior"
/// ablation.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// How many vectors each free list retains per thread. Four covers the
/// deepest current nesting (a dual-drive batch inside an fs batch, with a
/// write-behind flush in flight); anything beyond the cap is simply dropped.
const PER_LIST: usize = 4;

struct FreeLists {
    batches: Vec<Vec<BatchRequest>>,
    results: Vec<Vec<Result<(), DiskError>>>,
    das: Vec<Vec<DiskAddress>>,
}

thread_local! {
    static LISTS: RefCell<FreeLists> = const {
        RefCell::new(FreeLists {
            batches: Vec::new(),
            results: Vec::new(),
            das: Vec::new(),
        })
    };
}

/// An empty request vector, recycled when possible.
pub fn batch_vec() -> Vec<BatchRequest> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().batches.pop())
        .unwrap_or_default()
}

/// Returns a request vector to the free list (contents are dropped).
pub fn recycle_batch(mut v: Vec<BatchRequest>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.batches.len() < PER_LIST {
            lists.batches.push(v);
        }
    });
}

/// An empty per-request result vector, recycled when possible.
pub fn results_vec() -> Vec<Result<(), DiskError>> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().results.pop())
        .unwrap_or_default()
}

/// Returns a result vector to the free list.
pub fn recycle_results(mut v: Vec<Result<(), DiskError>>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.results.len() < PER_LIST {
            lists.results.push(v);
        }
    });
}

/// An empty disk-address vector, recycled when possible — the zero-copy
/// batch paths take their address lists from here.
pub fn da_vec() -> Vec<DiskAddress> {
    if !enabled() {
        return Vec::new();
    }
    LISTS.with(|l| l.borrow_mut().das.pop()).unwrap_or_default()
}

/// Returns a disk-address vector to the free list.
pub fn recycle_das(mut v: Vec<DiskAddress>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.das.len() < PER_LIST {
            lists.das.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskAddress;
    use crate::sector::{SectorBuf, SectorOp};

    #[test]
    fn round_trip_reuses_capacity() {
        let mut v = batch_vec();
        for i in 0..8u16 {
            v.push(BatchRequest::new(
                DiskAddress(i),
                SectorOp::READ_ALL,
                SectorBuf::zeroed(),
            ));
        }
        let cap = v.capacity();
        recycle_batch(v);
        let v2 = batch_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap.min(8));
    }

    #[test]
    fn disabled_pool_hands_out_fresh_vectors() {
        set_enabled(false);
        let mut v = results_vec();
        v.push(Ok(()));
        recycle_results(v);
        let v2 = results_vec();
        assert_eq!(v2.capacity(), 0);
        set_enabled(true);
    }

    #[test]
    fn free_list_is_bounded() {
        for _ in 0..2 * PER_LIST {
            let mut v = results_vec();
            v.reserve(4);
            recycle_results(v);
        }
        let held = LISTS.with(|l| l.borrow().results.len());
        assert!(held <= PER_LIST);
    }
}
