//! Typed zero-copy views over sector word slabs.
//!
//! [`Sector`] and [`SectorBuf`] are `#[repr(C)]` with the parts in disk
//! order (header, label, value), so a sector can be treated as one
//! contiguous slab of `HEADER_WORDS + LABEL_WORDS + DATA_WORDS` words.
//! This module gives the hot paths typed accessors over those words
//! *without decoding*: a [`LabelView`] borrows the seven label words in
//! place and answers the common questions (is it free? which page? where is
//! the next link?) with direct word reads and slice compares, where the
//! older idiom built a full [`crate::Label`] struct word by word just to
//! classify the sector.
//!
//! The views are read-only borrows over plain `u16` slices — no transmutes,
//! no lifetimes beyond the borrow, and nothing here can touch the simulated
//! clock or the §3.3 semantics. The label discipline is enforced where it
//! always was: in [`crate::sector::apply`] and the drive.

use crate::geometry::DiskAddress;
use crate::label::{Label, LABEL_WORDS};
use crate::sector::{Sector, SectorBuf, DATA_WORDS, HEADER_WORDS};

/// Total words in one sector: header + label + value.
pub const SECTOR_WORDS: usize = HEADER_WORDS + LABEL_WORDS + DATA_WORDS;

/// The encoded free label (all ones), for direct slice comparison.
const FREE_WORDS: [u16; LABEL_WORDS] = [u16::MAX; LABEL_WORDS];

/// A borrowed, typed view of seven encoded label words.
///
/// Field offsets follow §3.1: `[fid0, fid1, version, page_number, length,
/// next, prev]`. All accessors are direct word reads; classification
/// predicates are slice compares against the encoded special labels, so a
/// scan over thousands of sectors (the Scavenger sweep, the free-page
/// census) never materializes a [`Label`] per sector.
#[derive(Debug, Clone, Copy)]
pub struct LabelView<'a> {
    words: &'a [u16; LABEL_WORDS],
}

impl<'a> LabelView<'a> {
    /// Views the given label words.
    pub fn new(words: &'a [u16; LABEL_WORDS]) -> LabelView<'a> {
        LabelView { words }
    }

    /// The raw words, in disk order.
    pub fn words(&self) -> &'a [u16; LABEL_WORDS] {
        self.words
    }

    /// `F`: the two-word file identifier.
    pub fn fid(&self) -> [u16; 2] {
        [self.words[0], self.words[1]]
    }

    /// `V`: the version word.
    pub fn version(&self) -> u16 {
        self.words[2]
    }

    /// `PN`: the page number.
    pub fn page_number(&self) -> u16 {
        self.words[3]
    }

    /// `L`: the byte count of this page.
    pub fn length(&self) -> u16 {
        self.words[4]
    }

    /// `NL`: hint address of the next page.
    pub fn next(&self) -> DiskAddress {
        DiskAddress(self.words[5])
    }

    /// `PL`: hint address of the previous page.
    pub fn prev(&self) -> DiskAddress {
        DiskAddress(self.words[6])
    }

    /// True if these are the free-sector words (all ones) — one 7-word
    /// compare, no decode.
    pub fn is_free(&self) -> bool {
        *self.words == FREE_WORDS
    }

    /// True if these words quarantine a permanently bad sector.
    pub fn is_bad(&self) -> bool {
        self.words[2] == Label::BAD_VERSION
            && self.words[0] == u16::MAX
            && self.words[1] == u16::MAX
    }

    /// True if the words belong to a live file page.
    pub fn is_in_use(&self) -> bool {
        !self.is_free() && !self.is_bad()
    }

    /// True if the absolute fields (`F`, `V`, `PN` — label words 0..4)
    /// match `intended` exactly. The software closure of the §3.3 check:
    /// absolutes that encode as 0 are hardware wildcards, so the fs layer
    /// re-verifies them after every successful check, and this compare is
    /// that verification without a decode.
    pub fn absolutes_match(&self, intended: &Label) -> bool {
        self.words[0] == intended.fid[0]
            && self.words[1] == intended.fid[1]
            && self.words[2] == intended.version
            && self.words[3] == intended.page_number
    }

    /// Decodes into an owned [`Label`] (for callers that need to keep it).
    pub fn decode(&self) -> Label {
        Label::decode(self.words)
    }
}

/// A borrowed, typed view of a whole sector's words — on-disk
/// ([`SectorView::new`]) or memory-side ([`SectorView::of_buf`]), so code
/// written against the view (the zero-copy batch read's visitor, say) works
/// identically whether the words were lent in place or staged through a
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct SectorView<'a> {
    header: &'a [u16; HEADER_WORDS],
    label: &'a [u16; LABEL_WORDS],
    data: &'a [u16; DATA_WORDS],
}

impl<'a> SectorView<'a> {
    /// Views the given sector.
    pub fn new(sector: &'a Sector) -> SectorView<'a> {
        SectorView {
            header: &sector.header,
            label: &sector.label,
            data: &sector.data,
        }
    }

    /// Views the given memory-side buffer through the same lens.
    pub fn of_buf(buf: &'a SectorBuf) -> SectorView<'a> {
        SectorView {
            header: &buf.header,
            label: &buf.label,
            data: &buf.data,
        }
    }

    /// The header words: `[pack_number, disk_address]`.
    pub fn header(&self) -> &'a [u16; HEADER_WORDS] {
        self.header
    }

    /// A typed view of the label words.
    pub fn label(&self) -> LabelView<'a> {
        LabelView::new(self.label)
    }

    /// The data words.
    pub fn data(&self) -> &'a [u16; DATA_WORDS] {
        self.data
    }
}

/// One write's memory-side words for the zero-copy batch write path
/// ([`crate::Disk::do_batch_write`]): the header and label patterns the
/// §3.3 check matches against the sector (owned — they are two and seven
/// words), and the data to write, borrowed from wherever the caller parks
/// dirty pages so the 256 words are never staged through an intermediate
/// buffer.
#[derive(Debug, Clone, Copy)]
pub struct WriteSource<'a> {
    /// Check pattern for the header words (`[pack_number, disk_address]`;
    /// 0 is the hardware wildcard).
    pub header: [u16; HEADER_WORDS],
    /// Check pattern for the label words (encoded; 0 words are wildcards).
    pub label: [u16; LABEL_WORDS],
    /// The data words to write once both checks pass.
    pub data: &'a [u16; DATA_WORDS],
}

/// A borrowed, typed view of a memory-side sector buffer.
#[derive(Debug, Clone, Copy)]
pub struct SectorBufView<'a> {
    buf: &'a SectorBuf,
}

impl<'a> SectorBufView<'a> {
    /// Views the given buffer.
    pub fn new(buf: &'a SectorBuf) -> SectorBufView<'a> {
        SectorBufView { buf }
    }

    /// The header words.
    pub fn header(&self) -> &'a [u16; HEADER_WORDS] {
        &self.buf.header
    }

    /// A typed view of the label words.
    pub fn label(&self) -> LabelView<'a> {
        LabelView::new(&self.buf.label)
    }

    /// The data words.
    pub fn data(&self) -> &'a [u16; DATA_WORDS] {
        &self.buf.data
    }
}

impl Sector {
    /// A typed view of this sector's label words (no decode).
    pub fn label_view(&self) -> LabelView<'_> {
        LabelView::new(&self.label)
    }
}

impl SectorBuf {
    /// A typed view of this buffer's label words (no decode).
    pub fn label_view(&self) -> LabelView<'_> {
        LabelView::new(&self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Label {
        Label {
            fid: [0x1234, 0x5678],
            version: 1,
            page_number: 3,
            length: 512,
            next: DiskAddress(99),
            prev: DiskAddress(97),
        }
    }

    #[test]
    fn view_reads_every_field_without_decoding() {
        let words = sample().encode();
        let v = LabelView::new(&words);
        assert_eq!(v.fid(), [0x1234, 0x5678]);
        assert_eq!(v.version(), 1);
        assert_eq!(v.page_number(), 3);
        assert_eq!(v.length(), 512);
        assert_eq!(v.next(), DiskAddress(99));
        assert_eq!(v.prev(), DiskAddress(97));
        assert_eq!(v.decode(), sample());
    }

    #[test]
    fn classification_matches_decoded_label() {
        for label in [sample(), Label::FREE, Label::BAD, Label::WILDCARD] {
            let words = label.encode();
            let v = LabelView::new(&words);
            assert_eq!(v.is_free(), label.is_free(), "{label:?}");
            assert_eq!(v.is_bad(), label.is_bad(), "{label:?}");
            assert_eq!(v.is_in_use(), label.is_in_use(), "{label:?}");
        }
    }

    #[test]
    fn absolutes_match_checks_only_the_absolute_words() {
        let intended = sample();
        let mut words = intended.encode();
        // Hints may differ: still a match.
        words[5] = 0xBEEF;
        words[6] = 0xF00D;
        assert!(LabelView::new(&words).absolutes_match(&intended));
        // An absolute differs: no match.
        words[3] = 4;
        assert!(!LabelView::new(&words).absolutes_match(&intended));
    }

    #[test]
    fn sector_views_expose_the_parts_in_place() {
        let mut s = Sector::formatted(7, DiskAddress(42));
        s.label = sample().encode();
        s.data[0] = 0xABCD;
        let v = SectorView::new(&s);
        assert_eq!(v.header(), &[7, 42]);
        assert_eq!(v.label().page_number(), 3);
        assert_eq!(v.data()[0], 0xABCD);
        assert_eq!(s.label_view().length(), 512);

        let mut b = SectorBuf::with_label(sample());
        b.header = [7, 42];
        b.data[1] = 0x5151;
        let bv = SectorBufView::new(&b);
        assert_eq!(bv.header(), &[7, 42]);
        assert!(bv.label().is_in_use());
        assert_eq!(bv.data()[1], 0x5151);
        assert_eq!(b.label_view().next(), DiskAddress(99));
    }

    #[test]
    fn repr_c_parts_are_contiguous() {
        // The #[repr(C)] layout guarantee the views (and any future slab
        // pool) rely on: header, label and value words sit back to back.
        assert_eq!(
            std::mem::size_of::<Sector>(),
            SECTOR_WORDS * std::mem::size_of::<u16>()
        );
        assert_eq!(
            std::mem::size_of::<SectorBuf>(),
            SECTOR_WORDS * std::mem::size_of::<u16>()
        );
    }
}
