//! Drive timing model: seeks, rotation, and sector transfers.
//!
//! The Diablo Model 31 parameters reproduce the paper's numbers: a 2.5 MB
//! pack that "can transfer 64k words in about one second" (§2), and the
//! one-revolution cost of re-visiting a sector just passed (which is what
//! makes page allocate/free cost a revolution, §3.3).
//!
//! The spindle is shared by all surfaces, so the rotational position is a
//! pure function of the simulated time: sector slot `k` is under the heads
//! during `[k·Tₛ, (k+1)·Tₛ)` modulo the revolution. A transfer must begin
//! exactly at a slot boundary; the drive waits for the target slot, then
//! spends one sector time on the transfer.
//!
//! Issuing a command is not free: each *separately issued* operation pays
//! [`TimingModel::command_overhead`] — the software's interrupt service and
//! command set-up time. Since a transfer ends exactly at a slot boundary,
//! any positive overhead means a separately issued follow-up *misses* the
//! next sector and waits almost a full revolution — which is why the paper's
//! disk controller "is designed so that the software can chain commands fast
//! enough to transfer consecutive sectors" (§4). Chained batches submitted
//! through [`crate::Disk::do_batch`] pay the overhead once and then stream:
//! consecutive sectors on a track complete with no rotational loss.

use alto_sim::SimTime;

use crate::geometry::DiskModel;

/// Timing parameters for a drive model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// Time for one sector slot to pass under the heads.
    pub sector_time: SimTime,
    /// Sectors per track (must match the geometry).
    pub sectors_per_track: u16,
    /// Seek time for a one-cylinder move.
    pub seek_min: SimTime,
    /// Seek time for a full-stroke move.
    pub seek_max: SimTime,
    /// Number of cylinders (for the full stroke).
    pub cylinders: u16,
    /// Software turnaround charged per separately issued command (interrupt
    /// service + command set-up). A chained batch pays it once.
    pub command_overhead: SimTime,
}

impl TimingModel {
    /// The timing model for a drive.
    pub fn for_model(model: DiskModel) -> TimingModel {
        match model {
            // Diablo 31: 40 ms/rev (1500 rpm), 12 sectors; seeks 15 ms
            // track-to-track, 135 ms full stroke.
            DiskModel::Diablo31 => TimingModel {
                sector_time: SimTime::from_nanos(3_333_333),
                sectors_per_track: 12,
                seek_min: SimTime::from_millis(15),
                seek_max: SimTime::from_millis(135),
                cylinders: 203,
                command_overhead: SimTime::from_micros(500),
            },
            // Diablo 44: same transfer rate, twice the cylinders.
            DiskModel::Diablo44 => TimingModel {
                sector_time: SimTime::from_nanos(3_333_333),
                sectors_per_track: 12,
                seek_min: SimTime::from_millis(15),
                seek_max: SimTime::from_millis(135),
                cylinders: 406,
                command_overhead: SimTime::from_micros(500),
            },
            // Trident: twice the sectors per revolution at the same spin
            // rate — twice the streaming rate — and a faster actuator.
            DiskModel::Trident => TimingModel {
                sector_time: SimTime::from_nanos(1_666_666),
                sectors_per_track: 24,
                seek_min: SimTime::from_millis(10),
                seek_max: SimTime::from_millis(100),
                cylinders: 203,
                command_overhead: SimTime::from_micros(250),
            },
        }
    }

    /// One full revolution.
    pub fn revolution(&self) -> SimTime {
        self.sector_time.scaled(self.sectors_per_track as u64)
    }

    /// Seek time to move the arm across `distance` cylinders (0 = no move).
    ///
    /// Linear interpolation between the track-to-track and full-stroke
    /// times, which is within a few percent of the published Diablo curve.
    pub fn seek(&self, distance: u16) -> SimTime {
        if distance == 0 {
            return SimTime::ZERO;
        }
        // Interpolate between distance 1 (seek_min) and the full stroke of
        // `cylinders - 1` (seek_max).
        let longest = (self.cylinders.max(3) as u64 - 1) - 1;
        let span = self.seek_max.as_nanos() - self.seek_min.as_nanos();
        let extra = span * (distance as u64 - 1) / longest;
        SimTime::from_nanos(self.seek_min.as_nanos() + extra)
    }

    /// The sector slot under the heads at simulated time `now`.
    pub fn slot_at(&self, now: SimTime) -> u16 {
        ((now.as_nanos() / self.sector_time.as_nanos()) % self.sectors_per_track as u64) as u16
    }

    /// Time to wait from `now` until the start of sector slot `target`.
    ///
    /// If `now` is exactly at the start of `target`'s slot the wait is zero;
    /// if the slot has just passed, the wait is nearly a full revolution —
    /// which is precisely the §3.3 cost of the check-then-write label
    /// discipline on allocation and free.
    pub fn rotational_wait(&self, now: SimTime, target: u16) -> SimTime {
        debug_assert!(target < self.sectors_per_track);
        let st = self.sector_time.as_nanos();
        let rev = self.revolution().as_nanos();
        let pos_in_rev = now.as_nanos() % rev;
        let target_start = target as u64 * st;
        let wait = if target_start >= pos_in_rev {
            target_start - pos_in_rev
        } else {
            rev - pos_in_rev + target_start
        };
        SimTime::from_nanos(wait)
    }

    /// Streaming transfer rate in 16-bit words per second (data words only).
    pub fn words_per_second(&self) -> f64 {
        let words_per_rev = self.sectors_per_track as f64 * crate::sector::DATA_WORDS as f64;
        words_per_rev / self.revolution().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diablo31_revolution_is_forty_ms() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        // 12 × 3.333333 ms = 39.999996 ms ≈ 40 ms.
        assert_eq!(t.revolution().as_nanos(), 39_999_996);
    }

    #[test]
    fn diablo31_streams_64k_words_in_about_a_second() {
        // §2: "can transfer 64k words in about one second".
        let t = TimingModel::for_model(DiskModel::Diablo31);
        let rate = t.words_per_second();
        let secs = 65_536.0 / rate;
        assert!((0.8..1.0).contains(&secs), "64K words took {secs} s");
    }

    #[test]
    fn trident_doubles_the_rate() {
        let d = TimingModel::for_model(DiskModel::Diablo31);
        let t = TimingModel::for_model(DiskModel::Trident);
        let ratio = t.words_per_second() / d.words_per_second();
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn seek_endpoints() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        assert_eq!(t.seek(0), SimTime::ZERO);
        assert_eq!(t.seek(1), SimTime::from_millis(15));
        assert_eq!(t.seek(202), SimTime::from_millis(135));
        // Monotone in distance.
        let mut last = SimTime::ZERO;
        for d in 1..=202 {
            let s = t.seek(d);
            assert!(s >= last);
            last = s;
        }
    }

    #[test]
    fn rotational_wait_zero_at_slot_start() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        let st = t.sector_time;
        assert_eq!(t.rotational_wait(SimTime::ZERO, 0), SimTime::ZERO);
        assert_eq!(t.rotational_wait(st, 1), SimTime::ZERO);
        assert_eq!(t.rotational_wait(st.scaled(5), 5), SimTime::ZERO);
    }

    #[test]
    fn rotational_wait_nearly_a_revolution_for_just_missed_slot() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        // At the end of slot 3's transfer we sit at the start of slot 4;
        // going back to slot 3 costs rev - sector_time... actually a full
        // revolution minus one sector time.
        let now = t.sector_time.scaled(4);
        let wait = t.rotational_wait(now, 3);
        assert_eq!(
            wait.as_nanos(),
            t.revolution().as_nanos() - t.sector_time.as_nanos()
        );
        // Re-reading the *same* slot just finished costs a full revolution
        // minus nothing: slot 4 start is now, so target 4 waits 0, but
        // target 3 (just passed) is the expensive case asserted above.
        assert_eq!(t.rotational_wait(now, 4), SimTime::ZERO);
    }

    #[test]
    fn slot_at_advances_with_time() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        assert_eq!(t.slot_at(SimTime::ZERO), 0);
        assert_eq!(t.slot_at(t.sector_time), 1);
        assert_eq!(t.slot_at(t.revolution()), 0);
        assert_eq!(t.slot_at(t.revolution() + t.sector_time.scaled(7)), 7);
    }

    #[test]
    fn wait_then_transfer_is_always_less_than_two_revolutions() {
        let t = TimingModel::for_model(DiskModel::Diablo31);
        for offset_us in [0u64, 1, 100, 3333, 40_000, 123_456] {
            let now = SimTime::from_micros(offset_us);
            for target in 0..12 {
                let wait = t.rotational_wait(now, target);
                assert!(wait < t.revolution());
            }
        }
    }
}
