//! N-arm drive arrays (§2, generalized).
//!
//! The paper's machine room grows one drive at a time: "one or two
//! moving-head disk drives", each an independent arm over its own pack.
//! [`DriveArray`] generalizes the two-drive adapter to N arms behind the
//! same abstract disk object (§2/§5.2): a *sharding layer* maps every
//! global disk address to exactly one arm and a local address on it, a
//! spanning batch is split into per-arm sub-batches, and the sub-batches
//! run on *overlapped simulated timelines* — every arm starts at the same
//! instant and the batch's elapsed time is the maximum over the arms, not
//! the sum, because each arm seeks and transfers independently.
//!
//! Two placement policies are selectable:
//!
//! * [`Placement::Range`] — arm `k` owns one contiguous span of the global
//!   address space (the two-drive layout, generalized; mixed geometries
//!   allowed). Consecutive addresses stay on one arm, so a single file
//!   streams from a single arm and *different* files parallelize.
//! * [`Placement::Hash`] — global address `a` lives on arm `a mod N` at
//!   local address `a div N` (uniform geometries required). Consecutive
//!   addresses interleave across all arms, so even one sequential chain
//!   parallelizes N ways.
//!
//! Large per-arm shares run on real host threads (scoped, one per arm
//! beyond the first) against private clocks and traces; the join restores
//! elapsed = max-of-arms and absorbs the private traces in arm order, so
//! the simulated outcome — results, timing, trace events — is bit-identical
//! to the serial replay. `set_overlap_enabled(false)` serializes the arms
//! on the shared timeline (the ablation), and a one-arm array degenerates
//! to a plain pass-through.

use alto_sim::{SimClock, SimTime, Trace};

use crate::drive::{Disk, DiskDrive, DriveStats};
use crate::errors::DiskError;
use crate::geometry::{DiskAddress, DiskGeometry};
use crate::pool;
use crate::sched::BatchRequest;
use crate::sector::{SectorBuf, SectorOp};

/// Minimum per-arm share before a spanning batch is worth real host
/// threads: the scoped spawn and join cost tens of microseconds of wall
/// time per batch, so small shares keep the serial replay (the simulated
/// outcome is bit-identical either way — see
/// [`DriveArray::set_threading_enabled`]).
const THREAD_MIN_SHARE: usize = 128;

/// How a global disk address is assigned to an arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Arm `k` owns one contiguous range of the global address space, in
    /// arm order — the two-drive layout generalized. Mixed geometries are
    /// allowed; each arm's span is its own pack's sector count.
    Range,
    /// Global address `a` maps to arm `a mod N`, local address `a div N`.
    /// Consecutive global addresses interleave across all arms (so one
    /// sequential chain engages every arm); requires uniform geometries.
    Hash,
}

/// N drives presented as one disk whose address space is the union of the
/// member packs, with batches that span arms served on overlapped
/// simulated timelines (elapsed = max over the arms).
#[derive(Debug)]
pub struct DriveArray {
    arms: Vec<DiskDrive>,
    placement: Placement,
    /// Cumulative span starts for [`Placement::Range`]: arm `k` owns global
    /// addresses `starts[k] .. starts[k + 1]`; `starts[N] == total`.
    starts: Vec<u32>,
    total: u32,
    shape: DiskGeometry,
    overlap: bool,
    threads: bool,
    overlap_batches: u64,
    threaded_batches: u64,
    overlap_saved: SimTime,
    /// Per-arm `(original indices, translated requests)` split storage,
    /// kept across batches so the steady state allocates nothing.
    scratch: Vec<(Vec<usize>, Vec<BatchRequest>)>,
    /// Per-arm `(original indices, local addresses)` split storage for
    /// zero-copy batch reads, likewise recycled across batches.
    read_scratch: Vec<(Vec<usize>, Vec<DiskAddress>)>,
    /// Per-arm result storage, likewise recycled across batches.
    sub_results: Vec<Vec<Result<(), DiskError>>>,
    elapsed: Vec<SimTime>,
    /// Persistent private per-arm timelines for threaded batches (clock and
    /// trace handles are shared cells, so clones swap in and out cheaply).
    private: Vec<(SimClock, Trace)>,
    originals: Vec<Option<(SimClock, Trace)>>,
}

impl DriveArray {
    /// Combines the given loaded drives into one array.
    ///
    /// Returns an error if there are no arms, any arm is empty, the
    /// combined address space does not fit 16-bit disk addresses, the
    /// member shapes cannot be presented as one composite geometry, or
    /// [`Placement::Hash`] is requested over mixed geometries.
    pub fn new(arms: Vec<DiskDrive>, placement: Placement) -> Result<DriveArray, DiskError> {
        if arms.is_empty() {
            return Err(DiskError::MalformedOp("drive array needs at least one arm"));
        }
        let mut starts = Vec::with_capacity(arms.len() + 1);
        let mut total = 0u32;
        let g0 = arms[0].geometry()?;
        for arm in &arms {
            let g = arm.geometry()?;
            if placement == Placement::Hash && g != g0 {
                return Err(DiskError::MalformedOp(
                    "hash placement requires uniform arm geometries",
                ));
            }
            starts.push(total);
            total += g.sector_count();
        }
        starts.push(total);
        if total >= u16::MAX as u32 {
            return Err(DiskError::MalformedOp(
                "drive-array address space exceeds 16-bit disk addresses",
            ));
        }
        // The composite shape keeps arm 0's track layout and stacks the
        // union as extra cylinders when the capacities divide evenly, so
        // CHS locality stays meaningful within each arm's span; otherwise
        // (mixed geometries that do not stack) the shape degenerates to one
        // sector per track — only the exact sector count matters to the
        // layers above.
        let per_cyl = g0.heads as u32 * g0.sectors as u32;
        let shape = if per_cyl > 0 && total.is_multiple_of(per_cyl) {
            DiskGeometry {
                cylinders: (total / per_cyl) as u16,
                heads: g0.heads,
                sectors: g0.sectors,
            }
        } else {
            DiskGeometry {
                cylinders: total as u16,
                heads: 1,
                sectors: 1,
            }
        };
        let count = arms.len();
        Ok(DriveArray {
            arms,
            placement,
            starts,
            total,
            shape,
            overlap: true,
            threads: true,
            overlap_batches: 0,
            threaded_batches: 0,
            overlap_saved: SimTime::ZERO,
            scratch: (0..count).map(|_| Default::default()).collect(),
            read_scratch: (0..count).map(|_| Default::default()).collect(),
            sub_results: (0..count).map(|_| Vec::new()).collect(),
            elapsed: vec![SimTime::ZERO; count],
            private: (0..count)
                .map(|_| (SimClock::new(), Trace::new()))
                .collect(),
            originals: (0..count).map(|_| None).collect(),
        })
    }

    /// Convenience: `count` freshly formatted packs of one model on a
    /// shared timeline, pack numbers `1 ..= count`.
    pub fn with_arms(
        count: usize,
        placement: Placement,
        clock: SimClock,
        trace: Trace,
        model: crate::geometry::DiskModel,
    ) -> DriveArray {
        let arms = (1..=count as u16)
            .map(|pack| DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), model, pack))
            .collect();
        DriveArray::new(arms, placement).expect("identical fresh packs")
    }

    /// The arm and local address for a global address (prechecked to be in
    /// range).
    fn route(&self, da: DiskAddress) -> (usize, DiskAddress) {
        let v = da.0 as u32;
        match self.placement {
            Placement::Hash => {
                let n = self.arms.len() as u32;
                ((v % n) as usize, DiskAddress((v / n) as u16))
            }
            Placement::Range => {
                let mut arm = self.arms.len() - 1;
                for k in 0..self.arms.len() {
                    if v < self.starts[k + 1] {
                        arm = k;
                        break;
                    }
                }
                (arm, DiskAddress((v - self.starts[arm]) as u16))
            }
        }
    }

    /// The global address of `local` on `arm` — [`DriveArray::route`]'s
    /// inverse.
    #[cfg(test)]
    fn unroute(&self, arm: usize, local: DiskAddress) -> DiskAddress {
        match self.placement {
            Placement::Hash => {
                DiskAddress((local.0 as u32 * self.arms.len() as u32 + arm as u32) as u16)
            }
            Placement::Range => DiskAddress((self.starts[arm] + local.0 as u32) as u16),
        }
    }

    /// The placement policy in effect.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// Access to one of the member drives.
    pub fn arm(&self, arm: usize) -> &DiskDrive {
        &self.arms[arm]
    }

    /// Mutable access to one of the member drives.
    pub fn arm_mut(&mut self, arm: usize) -> &mut DiskDrive {
        &mut self.arms[arm]
    }

    /// Enables or disables overlapped execution of batches that span two or
    /// more arms (enabled by default). Disabled, the arms run one after the
    /// other on the shared timeline — the serialized ablation.
    pub fn set_overlap_enabled(&mut self, enabled: bool) {
        self.overlap = enabled;
    }

    /// Enables or disables *host threads* for overlapped spanning batches
    /// (enabled by default). With threads on, each arm's share runs on its
    /// own scoped OS thread against a private clock and trace, and the join
    /// restores elapsed = max of the arms — the same simulated time, trace
    /// contents and results as the serial replay, bit for bit; the only
    /// difference is wall-clock. Small shares (< `THREAD_MIN_SHARE` per
    /// arm) always use the serial replay, since the spawn would cost more
    /// than it saves.
    pub fn set_threading_enabled(&mut self, enabled: bool) {
        self.threads = enabled;
    }

    /// How many spanning batches actually ran on real threads.
    pub fn threaded_batches(&self) -> u64 {
        self.threaded_batches
    }

    /// Sets the retry limit on every arm (see [`DiskDrive::set_retries`]).
    pub fn set_retries(&mut self, retries: u32) {
        for d in &mut self.arms {
            d.set_retries(retries);
        }
    }
}

impl Disk for DriveArray {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        Ok(self.shape)
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        self.arms[0].pack_number()
    }

    fn arm_count(&self) -> usize {
        self.arms.len()
    }

    fn arm_of(&self, da: DiskAddress) -> usize {
        if da.is_nil() || (da.0 as u32) >= self.total {
            0
        } else {
            self.route(da).0
        }
    }

    fn arm_origin(&self, arm: usize) -> Option<DiskAddress> {
        // Only range placement has per-arm contiguous spans worth steering
        // allocation toward; hash placement interleaves consecutive
        // addresses across arms by construction.
        if self.placement == Placement::Range && self.arms.len() > 1 && arm < self.arms.len() {
            Some(DiskAddress(self.starts[arm] as u16))
        } else {
            None
        }
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        if da.is_nil() || (da.0 as u32) >= self.total {
            return Err(DiskError::InvalidAddress(da));
        }
        let (arm, local) = self.route(da);
        // The physical sector self-identifies with its *pack's* number and
        // its *local* address; translate the caller's global view on the
        // way in (zero stays zero: it is the check wildcard) and back on
        // the way out.
        if buf.header[0] == self.arms[0].pack_number()? {
            buf.header[0] = self.arms[arm].pack_number()?;
        }
        if buf.header[1] == da.0 && da.0 != 0 {
            buf.header[1] = local.0;
        }
        let result = self.arms[arm].do_op(local, op, buf);
        if result.is_ok() && buf.header[1] == local.0 {
            buf.header[1] = da.0;
        }
        result
    }

    fn do_batch_read<F>(&mut self, das: &[DiskAddress], mut visit: F) -> Vec<Result<(), DiskError>>
    where
        F: FnMut(usize, crate::view::SectorView<'_>),
    {
        // Split the addresses by arm so each drive runs its own zero-copy
        // chain; results land back in the request's original order and the
        // visitor sees original indices. The shares run on overlapped
        // timelines exactly like `do_batch` (elapsed = max over the arms),
        // but always as the serial replay: the borrowed visitor cannot
        // cross host threads, and the simulated outcome is identical
        // either way. Views lend each arm's platter sectors directly, so
        // their headers carry the arm-local address — callers verify pages
        // by *label* (fv, page number), which is position-independent.
        let mut results = pool::results_vec();
        results.extend(das.iter().map(|_| Ok(())));
        let mut split = std::mem::take(&mut self.read_scratch);
        for (idxs, locals) in &mut split {
            idxs.clear();
            locals.clear();
        }
        for (i, &da) in das.iter().enumerate() {
            if da.is_nil() || (da.0 as u32) >= self.total {
                results[i] = Err(DiskError::InvalidAddress(da));
                continue;
            }
            let (arm, local) = self.route(da);
            split[arm].0.push(i);
            split[arm].1.push(local);
        }
        let occupied = split.iter().filter(|(idxs, _)| !idxs.is_empty()).count();
        let overlapped = self.overlap && occupied >= 2;
        let clock = self.arms[0].clock().clone();
        let t0 = clock.now();
        self.elapsed.clear();
        self.elapsed.resize(self.arms.len(), SimTime::ZERO);
        for (arm, (idxs, locals)) in split.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            if overlapped {
                clock.set(t0);
            }
            let sub = self.arms[arm].do_batch_read(locals, |j, view| visit(idxs[j], view));
            self.elapsed[arm] = clock.now() - t0;
            for (&i, &res) in idxs.iter().zip(sub.iter()) {
                results[i] = res;
            }
            pool::recycle_results(sub);
        }
        if overlapped {
            let longest = self.elapsed.iter().copied().max().unwrap_or(SimTime::ZERO);
            let saved = self.elapsed.iter().fold(SimTime::ZERO, |acc, &e| acc + e) - longest;
            clock.set(t0 + longest);
            self.overlap_batches += 1;
            self.overlap_saved += saved;
            let trace = self.arms[0].trace();
            trace.record_with(clock.now(), "disk.io.overlap", || {
                let counts = split
                    .iter()
                    .map(|(idxs, _)| idxs.len().to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                format!("{counts} read requests overlapped, {saved} saved")
            });
        }
        self.read_scratch = split;
        results
    }

    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        // Split the batch by arm so each drive schedules (and chains) its
        // own share; addresses and headers are translated exactly as in
        // `do_op`, and results land back in the batch's original order.
        // The result vector comes from the free lists and the split storage
        // is kept on the adapter, so the steady state allocates nothing.
        let mut results = pool::results_vec();
        results.extend(batch.iter().map(|_| Ok(())));
        let pack0 = self.arms[0].pack_number().ok();
        let mut split = std::mem::take(&mut self.scratch);
        for (idxs, sub) in &mut split {
            idxs.clear();
            sub.clear();
        }
        for (i, req) in batch.iter_mut().enumerate() {
            let da = req.da;
            if da.is_nil() || (da.0 as u32) >= self.total {
                results[i] = Err(DiskError::InvalidAddress(da));
                continue;
            }
            let (arm, local) = self.route(da);
            let mut buf = std::mem::take(&mut req.buf);
            if let (Some(p0), Some(pu)) = (pack0, self.arms[arm].pack_number().ok()) {
                if buf.header[0] == p0 {
                    buf.header[0] = pu;
                }
            }
            if buf.header[1] == da.0 && da.0 != 0 {
                buf.header[1] = local.0;
            }
            split[arm].0.push(i);
            split[arm].1.push(BatchRequest::new(local, req.op, buf));
        }

        // Every arm has its own head assembly and data path, so a batch
        // that spans arms runs the shares concurrently: each share runs
        // from the same start instant, then the clock is set to the *last*
        // finish (elapsed = max over the arms, not the sum). Large shares
        // run on scoped host threads against private clocks and traces;
        // small ones replay serially on the shared timeline — the simulated
        // outcome is identical. The ablation (`set_overlap_enabled(false)`)
        // keeps the serialized timeline.
        let occupied = split.iter().filter(|(idxs, _)| !idxs.is_empty()).count();
        let overlapped = self.overlap && occupied >= 2;
        let threaded = overlapped
            && self.threads
            && split
                .iter()
                .all(|(idxs, _)| idxs.is_empty() || idxs.len() >= THREAD_MIN_SHARE);
        let clock = self.arms[0].clock().clone();
        let t0 = clock.now();
        self.elapsed.clear();
        self.elapsed.resize(self.arms.len(), SimTime::ZERO);
        let mut sub_results = std::mem::take(&mut self.sub_results);
        if threaded {
            // Give each occupied arm a private timeline starting at the
            // shared instant and a private trace, so the threads never
            // contend; the handles are shared cells, so persistent private
            // clocks and traces swap in as cheap clones.
            let shared_trace = self.arms[0].trace().clone();
            let enabled = shared_trace.enabled();
            for (arm, slot) in self.originals.iter_mut().enumerate() {
                if split[arm].0.is_empty() {
                    continue;
                }
                let (pc, pt) = &self.private[arm];
                pc.set(t0);
                pt.clear();
                pt.set_enabled(enabled);
                let oc = self.arms[arm].swap_clock(pc.clone());
                let ot = self.arms[arm].swap_trace(pt.clone());
                *slot = Some((oc, ot));
            }
            // One scoped thread per occupied arm beyond the first, which
            // runs inline on this thread; the scope exit is the join, so
            // every share is done before anything below runs.
            std::thread::scope(|s| {
                let mut handles = Vec::with_capacity(self.arms.len());
                let mut inline: Option<(usize, &mut DiskDrive, &mut Vec<BatchRequest>)> = None;
                for ((arm, drive), (idxs, sub)) in
                    self.arms.iter_mut().enumerate().zip(split.iter_mut())
                {
                    if idxs.is_empty() {
                        continue;
                    }
                    match inline {
                        None => inline = Some((arm, drive, sub)),
                        Some(_) => handles.push((arm, s.spawn(move || drive.do_batch(sub)))),
                    }
                }
                if let Some((arm, drive, sub)) = inline {
                    sub_results[arm] = drive.do_batch(sub);
                }
                for (arm, handle) in handles {
                    sub_results[arm] = handle.join().expect("drive-array arm thread panicked");
                }
            });
            for (arm, slot) in self.originals.iter_mut().enumerate() {
                let Some((oc, ot)) = slot.take() else {
                    continue;
                };
                let pc = self.arms[arm].swap_clock(oc);
                let pt = self.arms[arm].swap_trace(ot);
                self.elapsed[arm] = pc.now() - t0;
                // Absorbing in arm order reproduces the exact event order
                // the serial replay records.
                shared_trace.absorb(&pt);
                pt.clear();
            }
            self.threaded_batches += 1;
        } else {
            for (arm, (idxs, sub)) in split.iter_mut().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                if overlapped {
                    clock.set(t0);
                }
                sub_results[arm] = self.arms[arm].do_batch(sub);
                self.elapsed[arm] = clock.now() - t0;
            }
        }
        for (arm, (idxs, sub)) in split.iter_mut().enumerate() {
            for ((&i, done), res) in idxs
                .iter()
                .zip(sub.iter_mut())
                .zip(sub_results[arm].drain(..))
            {
                let da = batch[i].da;
                if res.is_ok() && done.buf.header[1] == done.da.0 {
                    done.buf.header[1] = da.0;
                }
                batch[i].buf = std::mem::take(&mut done.buf);
                results[i] = res;
            }
        }
        if overlapped {
            let longest = self.elapsed.iter().copied().max().unwrap_or(SimTime::ZERO);
            let saved = self.elapsed.iter().fold(SimTime::ZERO, |acc, &e| acc + e) - longest;
            clock.set(t0 + longest);
            self.overlap_batches += 1;
            self.overlap_saved += saved;
            let trace = self.arms[0].trace();
            trace.record_with(clock.now(), "disk.io.overlap", || {
                let counts = split
                    .iter()
                    .map(|(idxs, _)| idxs.len().to_string())
                    .collect::<Vec<_>>()
                    .join("+");
                format!("{counts} requests overlapped, {saved} saved")
            });
        }
        for v in &mut sub_results {
            pool::recycle_results(std::mem::take(v));
        }
        self.sub_results = sub_results;
        self.scratch = split;
        results
    }

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.arms[0].note_readahead(hits, prefetched);
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.arms[0].note_write_behind(pages);
    }

    fn io_stats(&self) -> DriveStats {
        // Per-arm counters merge; the overlap accounting lives here, on
        // the adapter that does the overlapping.
        let mut s = self
            .arms
            .iter()
            .fold(DriveStats::default(), |acc, d| acc.merged(&d.stats()));
        s.overlap_batches = self.overlap_batches;
        s.overlap_saved = self.overlap_saved;
        s
    }

    fn write_epoch(&self) -> u64 {
        self.arms.iter().map(super::drive::Disk::write_epoch).sum()
    }

    // Every arm shares one retry policy (set via `set_retries`); arm 0
    // answers for it and collects the sequence outcomes.
    fn retry_limit(&self) -> u32 {
        self.arms[0].retry_limit()
    }

    fn retry_backoff(&self) -> SimTime {
        self.arms[0].retry_backoff()
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.arms[0].note_retry(retries, recovered);
    }

    // Park/drain accounting routes to the arm that owns the address, in
    // that arm's local address space — the same translation its sector
    // operations get, so its auditor sees consistent addresses.
    fn note_park(&mut self, da: DiskAddress, page: u16) {
        let (arm, local) = self.route(da);
        self.arms[arm].note_park(local, page);
    }

    fn note_unpark(&mut self, da: DiskAddress, page: u16, outcome: crate::audit::UnparkOutcome) {
        let (arm, local) = self.route(da);
        self.arms[arm].note_unpark(local, page, outcome);
    }

    fn set_audit_enabled(&mut self, enabled: bool) {
        for d in &mut self.arms {
            d.set_audit_enabled(enabled);
        }
    }

    fn audit_violations(&self) -> u64 {
        self.arms
            .iter()
            .map(super::drive::Disk::audit_violations)
            .sum()
    }

    fn clock(&self) -> &SimClock {
        self.arms[0].clock()
    }

    fn trace(&self) -> &Trace {
        self.arms[0].trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;
    use crate::label::Label;
    use crate::sector::DATA_WORDS;

    fn array(count: usize, placement: Placement) -> DriveArray {
        DriveArray::with_arms(
            count,
            placement,
            SimClock::new(),
            Trace::new(),
            DiskModel::Diablo31,
        )
    }

    fn live_label(page: u16) -> Label {
        Label {
            fid: [3, 4],
            version: 1,
            page_number: page,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    fn allocate(d: &mut DriveArray, da: DiskAddress, label: Label) {
        let mut buf = SectorBuf::with_label(Label::FREE);
        d.do_op(da, SectorOp::CHECK_LABEL, &mut buf).unwrap();
        let mut buf = SectorBuf::with_label(label);
        buf.data = [da.0; DATA_WORDS];
        d.do_op(da, SectorOp::WRITE_LABEL, &mut buf).unwrap();
    }

    #[test]
    fn every_address_routes_to_exactly_one_arm() {
        // The sharding invariant, both policies, K ∈ {1, 2, 4, 8}: routing
        // is total, the local address is in the arm's range, and unroute
        // inverts route — so each global address has exactly one home.
        for placement in [Placement::Range, Placement::Hash] {
            for k in [1usize, 2, 4, 8] {
                let d = array(k, placement);
                let total = d.geometry().unwrap().sector_count();
                assert_eq!(total, 4872 * k as u32);
                let mut per_arm = vec![0u32; k];
                for a in 0..total as u16 {
                    let (arm, local) = d.route(DiskAddress(a));
                    assert!(arm < k);
                    assert!(
                        (local.0 as u32) < d.arms[arm].geometry().unwrap().sector_count(),
                        "{placement:?} K={k} addr {a}"
                    );
                    assert_eq!(d.unroute(arm, local), DiskAddress(a));
                    assert_eq!(d.arm_of(DiskAddress(a)), arm);
                    per_arm[arm] += 1;
                }
                // Exact partition: the shares cover the space with no
                // overlap and no gap.
                assert_eq!(per_arm.iter().sum::<u32>(), total);
                for (arm, &n) in per_arm.iter().enumerate() {
                    assert_eq!(n, 4872, "{placement:?} K={k} arm {arm}");
                }
            }
        }
    }

    #[test]
    fn round_trip_across_arm_boundaries_is_bit_identical() {
        // Writes then reads spanning every arm, K ∈ {1, 2, 4, 8}, both
        // policies, with the §3.3 auditor armed on every arm: the data and
        // labels come back bit-identical through the global address space
        // and the audit stays clean.
        for placement in [Placement::Range, Placement::Hash] {
            for k in [1usize, 2, 4, 8] {
                let mut d = array(k, placement);
                d.set_audit_enabled(true);
                let total = d.geometry().unwrap().sector_count();
                // Addresses straddling each arm boundary plus a spread.
                let mut das: Vec<DiskAddress> = Vec::new();
                for arm in 1..k {
                    let boundary = (total as usize * arm / k) as u16;
                    das.push(DiskAddress(boundary - 1));
                    das.push(DiskAddress(boundary));
                }
                das.push(DiskAddress(1));
                das.push(DiskAddress(total as u16 - 1));
                for (i, &da) in das.iter().enumerate() {
                    allocate(&mut d, da, live_label(i as u16));
                }
                let mut batch: Vec<BatchRequest> = das
                    .iter()
                    .enumerate()
                    .map(|(i, &da)| {
                        BatchRequest::new(
                            da,
                            SectorOp::READ,
                            SectorBuf::with_label(live_label(i as u16)),
                        )
                    })
                    .collect();
                for r in d.do_batch(&mut batch) {
                    r.unwrap();
                }
                for (req, &da) in batch.iter().zip(&das) {
                    assert_eq!(req.buf.data, [da.0; DATA_WORDS], "{placement:?} K={k}");
                    assert_eq!(req.buf.header[1], da.0, "{placement:?} K={k}");
                }
                assert_eq!(d.audit_violations(), 0, "{placement:?} K={k}");
            }
        }
    }

    #[test]
    fn mixed_geometries_stack_under_range_placement() {
        // §2's "disk with about twice the size and performance" joins the
        // array: a Diablo arm and a Trident arm present one address space,
        // split at the Diablo's capacity.
        let clock = SimClock::new();
        let trace = Trace::new();
        let d0 =
            DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), DiskModel::Diablo31, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Trident, 2);
        let mut d = DriveArray::new(vec![d0, d1], Placement::Range).unwrap();
        assert_eq!(d.geometry().unwrap().sector_count(), 4872 + 9744);
        assert_eq!(d.arm_of(DiskAddress(4871)), 0);
        assert_eq!(d.arm_of(DiskAddress(4872)), 1);
        allocate(&mut d, DiskAddress(4871), live_label(0));
        allocate(&mut d, DiskAddress(4872 + 9000), live_label(1));
        let mut buf = SectorBuf::with_label(live_label(1));
        d.do_op(DiskAddress(4872 + 9000), SectorOp::READ, &mut buf)
            .unwrap();
        assert_eq!(buf.data, [(4872 + 9000) as u16; DATA_WORDS]);
        // The physical sector self-identifies with its pack and local
        // address.
        let s = d.arm(1).pack().unwrap().sector(DiskAddress(9000)).unwrap();
        assert_eq!(s.header, [2, 9000]);
    }

    #[test]
    fn hash_placement_requires_uniform_geometries() {
        let clock = SimClock::new();
        let d0 =
            DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Trident, 2);
        assert!(DriveArray::new(vec![d0, d1], Placement::Hash).is_err());
    }

    #[test]
    fn one_arm_array_degenerates_to_a_plain_drive() {
        // The ablation knob "arm-count = 1": routing is the identity, no
        // batch is ever overlapped, and placement hints vanish.
        for placement in [Placement::Range, Placement::Hash] {
            let mut d = array(1, placement);
            assert_eq!(d.arm_count(), 1);
            assert_eq!(d.arm_origin(0), None);
            assert_eq!(d.route(DiskAddress(123)), (0, DiskAddress(123)));
            let mut batch: Vec<BatchRequest> = (0..8u16)
                .map(|i| {
                    BatchRequest::new(DiskAddress(40 + i), SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            for r in d.do_batch(&mut batch) {
                r.unwrap();
            }
            let s = d.io_stats();
            assert_eq!(s.overlap_batches, 0);
            assert_eq!(d.threaded_batches(), 0);
        }
    }

    #[test]
    fn four_arms_overlap_a_spanning_batch() {
        use alto_sim::SimTime;
        // Hash placement interleaves consecutive addresses over all four
        // arms, so a sequential batch engages every arm at once: elapsed is
        // the longest arm's share, well under the serialized sum.
        let run = |overlap: bool| -> SimTime {
            let mut d = array(4, Placement::Hash);
            d.set_overlap_enabled(overlap);
            let mut batch: Vec<BatchRequest> = (0..64u16)
                .map(|a| BatchRequest::new(DiskAddress(a), SectorOp::READ_ALL, SectorBuf::zeroed()))
                .collect();
            let t0 = d.clock().now();
            for r in d.do_batch(&mut batch) {
                r.unwrap();
            }
            if overlap {
                let s = d.io_stats();
                assert_eq!(s.overlap_batches, 1);
                assert!(s.overlap_saved > SimTime::ZERO);
            }
            d.clock().now() - t0
        };
        let serial = run(false);
        let overlapped = run(true);
        // Four equal shares: at least 2.5× out of the ideal 4×.
        assert!(
            overlapped.as_nanos() * 10 <= serial.as_nanos() * 4,
            "overlapped {overlapped} vs serialized {serial}"
        );
    }

    #[test]
    fn hard_error_on_one_arm_still_charges_max_of_arms() {
        use alto_sim::SimTime;
        // Mid-batch media failure on one arm of four: the failed arm
        // reschedules its own remainder (every other request still
        // succeeds, exactly once) and the batch's elapsed time is still
        // the max over the arms — the error must not shear the merged
        // timeline.
        let damaged_global = DiskAddress(4 * 100 + 2); // arm 2, local 100
        let share = |d: &mut DriveArray, arm: u16| -> Vec<BatchRequest> {
            // Eight requests per arm, spread over cylinders; arm 2's share
            // contains the damaged sector in the middle.
            (0..8u16)
                .map(|i| {
                    let local = if arm == 2 && i == 3 {
                        100
                    } else {
                        200 + 37 * i
                    };
                    BatchRequest::new(
                        d.unroute(arm as usize, DiskAddress(local)),
                        SectorOp::READ_ALL,
                        SectorBuf::zeroed(),
                    )
                })
                .collect()
        };
        let elapsed = |which: Option<u16>| -> SimTime {
            let mut d = array(4, Placement::Hash);
            d.set_retries(0);
            d.arm_mut(2).pack_mut().unwrap().damage(DiskAddress(100));
            let mut batch = Vec::new();
            for arm in 0..4u16 {
                if which.is_none() || which == Some(arm) {
                    batch.extend(share(&mut d, arm));
                }
            }
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            for (req, res) in batch.iter().zip(&results) {
                if req.da == damaged_global {
                    assert!(matches!(res, Err(DiskError::HardError { .. })), "{res:?}");
                } else {
                    assert!(res.is_ok(), "{:?}: {res:?}", req.da);
                }
            }
            if which.is_none() {
                // Each arm serviced its own share exactly once — the
                // failure rescheduled only arm 2's remainder, on arm 2.
                for arm in 0..4 {
                    assert_eq!(d.arm(arm).stats().ops, 8, "arm {arm}");
                }
            }
            d.clock().now() - t0
        };
        let all = elapsed(None);
        let singles: Vec<SimTime> = (0..4).map(|arm| elapsed(Some(arm))).collect();
        let longest = singles.iter().copied().max().unwrap();
        assert!(
            singles[2] > singles[0],
            "the replanned arm pays for its rescheduling"
        );
        assert_eq!(all, longest);
    }

    #[test]
    fn threaded_array_batch_is_bit_identical_to_serial_replay() {
        // Same bar as the dual-drive shim, at K = 4: host threads must not
        // change results, simulated elapsed time, trace events or buffer
        // contents — bit for bit.
        let run = |threads: bool| {
            let mut d = array(4, Placement::Hash);
            d.set_threading_enabled(threads);
            let mut batch: Vec<BatchRequest> = (0..640u16)
                .map(|i| {
                    let local = 100 + 53 * (i / 4) % 4000;
                    let da = d.unroute((i % 4) as usize, DiskAddress(local));
                    BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            assert_eq!(d.threaded_batches(), u64::from(threads));
            let events: Vec<(SimTime, &str, String)> = d
                .trace()
                .events()
                .into_iter()
                .map(|e| (e.at, e.tag, e.detail.clone()))
                .collect();
            (d.clock().now() - t0, results, events, batch)
        };
        let (serial_dt, serial_results, serial_events, serial_batch) = run(false);
        let (threaded_dt, threaded_results, threaded_events, threaded_batch) = run(true);
        assert_eq!(threaded_dt, serial_dt);
        assert_eq!(threaded_results, serial_results);
        assert_eq!(threaded_events, serial_events);
        for (a, b) in serial_batch.iter().zip(&threaded_batch) {
            assert_eq!(a.buf.header, b.buf.header);
            assert_eq!(a.buf.label, b.buf.label);
            assert_eq!(a.buf.data, b.buf.data);
        }
    }

    #[test]
    fn range_placement_exposes_arm_origins() {
        let d = array(4, Placement::Range);
        for arm in 0..4u16 {
            assert_eq!(
                d.arm_origin(arm as usize),
                Some(DiskAddress(4872 * arm)),
                "arm {arm}"
            );
        }
        // Hash placement interleaves by construction: no origin hints.
        let h = array(4, Placement::Hash);
        for arm in 0..4 {
            assert_eq!(h.arm_origin(arm), None);
        }
    }

    /// A mixed two-arm array: a Diablo 31 plus a Trident on one timeline.
    fn mixed(first: DiskModel, second: DiskModel) -> DriveArray {
        let clock = SimClock::new();
        let trace = Trace::new();
        let d0 = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), first, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, trace, second, 2);
        DriveArray::new(vec![d0, d1], Placement::Range).expect("range placement takes mixed arms")
    }

    #[test]
    fn mixed_geometries_stack_or_degenerate() {
        // Diablo first: 14616 total sectors divide arm 0's 24-sector
        // cylinders evenly, so the composite keeps the Diablo track layout
        // and stacks the union as extra cylinders.
        let a = mixed(DiskModel::Diablo31, DiskModel::Trident);
        let g = a.geometry().expect("geometry");
        assert_eq!(g.sector_count(), 4872 + 9744);
        assert_eq!((g.heads, g.sectors), (2, 12));
        assert_eq!(g.cylinders, 609);
        // Trident first: the same total does not divide its 48-sector
        // cylinders, so the shape degenerates to one sector per track. Only
        // the exact sector count is promised to the layers above.
        let b = mixed(DiskModel::Trident, DiskModel::Diablo31);
        let g = b.geometry().expect("geometry");
        assert_eq!(g.sector_count(), 4872 + 9744);
        assert_eq!((g.heads, g.sectors), (1, 1));
        assert_eq!(g.cylinders, 14616);
    }

    #[test]
    fn mixed_route_unroute_cover_every_sector_in_both_stackings() {
        for (first, second) in [
            (DiskModel::Diablo31, DiskModel::Trident),
            (DiskModel::Trident, DiskModel::Diablo31),
        ] {
            let a = mixed(first, second);
            let total = a.geometry().expect("geometry").sector_count();
            let cap0 = a.arm(0).geometry().expect("arm 0").sector_count();
            let cap1 = a.arm(1).geometry().expect("arm 1").sector_count();
            let mut per_arm = [0u32; 2];
            for v in 0..total {
                let (arm, local) = a.route(DiskAddress(v as u16));
                let cap = if arm == 0 { cap0 } else { cap1 };
                assert!((local.0 as u32) < cap, "local {local} out of arm {arm}");
                assert_eq!(a.unroute(arm, local), DiskAddress(v as u16));
                per_arm[arm] += 1;
            }
            // Exhaustive and exact: every global address maps into exactly
            // one arm, and each arm receives exactly its capacity.
            assert_eq!(per_arm, [cap0, cap1]);
        }
    }

    #[test]
    fn mixed_batches_straddling_the_arm_boundary_are_served() {
        // Requests on both sides of the Diablo/Trident seam, interleaved so
        // the split-and-reassemble path has to preserve request order, in
        // both the buffered and the zero-copy read form.
        let mut a = mixed(DiskModel::Diablo31, DiskModel::Trident);
        let seam = a.arm(0).geometry().expect("arm 0").sector_count() as u16;
        let das: Vec<DiskAddress> = (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    DiskAddress(seam - 8 + i)
                } else {
                    DiskAddress(seam + 40 + i)
                }
            })
            .collect();
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed()))
            .collect();
        for r in a.do_batch(&mut batch) {
            r.unwrap();
        }
        // Headers prove each request reached the right physical arm (pack 1
        // below the seam, pack 2 above it) — and that the buffered path
        // translated the sector's local self-address back to the caller's
        // global view on the way out.
        for (req, &da) in batch.iter().zip(&das) {
            let (arm, _) = a.route(da);
            assert_eq!(req.buf.header, [arm as u16 + 1, da.0]);
        }
        // The zero-copy form lends each arm's platter sector directly, so
        // its header keeps the *arm-local* self-address (callers verify by
        // label, which is position-independent).
        let mut seen = vec![false; das.len()];
        let results = a.do_batch_read(&das, |i, view| {
            seen[i] = true;
            let (arm, local) = a_route(&das, i, seam);
            assert_eq!(*view.header(), [arm + 1, local]);
        });
        for r in &results {
            r.as_ref().unwrap();
        }
        assert!(seen.iter().all(|&s| s), "zero-copy visit missed a member");
        // Both arms actually serviced their four members of each batch.
        assert!(a.arm(0).io_stats().sectors_read >= 8);
        assert!(a.arm(1).io_stats().sectors_read >= 8);
    }

    /// Route recomputed from first principles for the straddle test's
    /// visitor (which cannot borrow the array while it is being driven).
    fn a_route(das: &[DiskAddress], i: usize, seam: u16) -> (u16, u16) {
        let v = das[i].0;
        if v < seam {
            (0, v)
        } else {
            (1, v - seam)
        }
    }
}
