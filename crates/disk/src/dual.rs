//! Two-drive configurations (§2).
//!
//! "…one or two moving-head disk drives, each of which can store 2.5
//! megabytes on a single removable pack." The Alto OS treated a two-drive
//! system as one file system twice the size: the top of the disk-address
//! space selects the drive. [`DualDrive`] is that adapter — another
//! implementation of the abstract disk object (§2), built out of two
//! [`DiskDrive`]s, with no special support needed anywhere above it.

use alto_sim::{SimClock, SimTime, Trace};

use crate::drive::{Disk, DiskDrive, DriveStats};
use crate::errors::DiskError;
use crate::geometry::{DiskAddress, DiskGeometry};
use crate::pool;
use crate::sched::BatchRequest;
use crate::sector::{SectorBuf, SectorOp};

/// Minimum per-unit share before a spanning batch is worth real host
/// threads: the handoff to the persistent worker costs a few microseconds
/// of wall time, so small shares keep the serial replay (the simulated
/// outcome is bit-identical either way — see
/// [`DualDrive::set_threading_enabled`]).
const THREAD_MIN_SHARE: usize = 24;

/// The persistent host thread that runs unit 1's share of threaded
/// spanning batches. Spawning an OS thread per batch would cost more than
/// most shares take to service, so the worker is spawned once, on the
/// first threaded batch, and then parks in `recv` between batches. The
/// unit-1 [`DiskDrive`] is *moved* through the channel for each batch —
/// shallow (the pack's sectors stay where they are on the heap) and safe:
/// the drive is back in the adapter before anything else can touch it.
/// A batch handed to the worker: the moved unit-1 drive and its share.
type Job = (DiskDrive, Vec<BatchRequest>);
/// The worker's reply: drive and share back, plus the per-op results.
type JobReply = (DiskDrive, Vec<BatchRequest>, Vec<Result<(), DiskError>>);

#[derive(Debug)]
struct Worker {
    to: Option<std::sync::mpsc::Sender<Job>>,
    from: std::sync::mpsc::Receiver<JobReply>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn spawn() -> Worker {
        let (to, job_rx) = std::sync::mpsc::channel::<(DiskDrive, Vec<BatchRequest>)>();
        let (reply_tx, from) = std::sync::mpsc::channel();
        let handle = std::thread::Builder::new()
            .name("alto-dual-worker".to_string())
            .spawn(move || {
                while let Ok((mut drive, mut sub)) = job_rx.recv() {
                    let results = drive.do_batch(&mut sub);
                    if reply_tx.send((drive, sub, results)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn dual-drive worker");
        Worker {
            to: Some(to),
            from,
            handle: Some(handle),
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Closing the job channel ends the worker's loop; join so the
        // thread never outlives the adapter.
        drop(self.to.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Two drives presented as one disk with twice the sectors.
///
/// Disk addresses `0 .. n` map to drive 0, `n .. 2n` to drive 1, where `n`
/// is the per-drive sector count. Both packs must share a geometry, and
/// the pack number reported is drive 0's (headers still self-identify per
/// pack, so the Scavenger works unchanged).
///
/// A batch that spans both halves of the address space executes the two
/// units' shares *overlapped*: each drive has its own arm and can seek and
/// transfer independently, so the batch's elapsed time is the maximum of
/// the two units' times, not the sum. [`DualDrive::set_overlap_enabled`]
/// restores the serialized one-unit-at-a-time execution as an ablation.
#[derive(Debug)]
pub struct DualDrive {
    drives: [DiskDrive; 2],
    per_drive: u32,
    overlap: bool,
    threads: bool,
    overlap_batches: u64,
    threaded_batches: u64,
    overlap_saved: SimTime,
    /// Per-unit `(original indices, translated requests)` split storage,
    /// kept across batches so the steady state allocates nothing.
    scratch: [(Vec<usize>, Vec<BatchRequest>); 2],
    /// The persistent unit-1 worker thread, spawned on first use.
    worker: Option<Worker>,
}

impl DualDrive {
    /// Combines two loaded drives.
    ///
    /// Returns an error if either drive is empty or the geometries differ.
    pub fn new(drive0: DiskDrive, drive1: DiskDrive) -> Result<DualDrive, DiskError> {
        let g0 = drive0.geometry()?;
        let g1 = drive1.geometry()?;
        if g0 != g1 {
            return Err(DiskError::MalformedOp(
                "dual-drive packs must share a geometry",
            ));
        }
        if g0.sector_count() * 2 >= u16::MAX as u32 {
            return Err(DiskError::MalformedOp(
                "dual-drive address space exceeds 16-bit disk addresses",
            ));
        }
        Ok(DualDrive {
            per_drive: g0.sector_count(),
            drives: [drive0, drive1],
            overlap: true,
            threads: true,
            overlap_batches: 0,
            threaded_batches: 0,
            overlap_saved: SimTime::ZERO,
            scratch: Default::default(),
            worker: None,
        })
    }

    /// Convenience: two freshly formatted packs on a shared timeline.
    pub fn with_formatted_packs(
        clock: SimClock,
        trace: Trace,
        model: crate::geometry::DiskModel,
    ) -> DualDrive {
        let d0 = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), model, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, trace, model, 2);
        DualDrive::new(d0, d1).expect("identical fresh packs")
    }

    /// The drive and local address for a global address.
    fn route(&self, da: DiskAddress) -> (usize, DiskAddress) {
        if (da.0 as u32) < self.per_drive {
            (0, da)
        } else {
            (1, DiskAddress((da.0 as u32 - self.per_drive) as u16))
        }
    }

    /// Access to one of the underlying drives (unit 0 or 1).
    pub fn unit(&self, unit: usize) -> &DiskDrive {
        &self.drives[unit]
    }

    /// Mutable access to one of the underlying drives.
    pub fn unit_mut(&mut self, unit: usize) -> &mut DiskDrive {
        &mut self.drives[unit]
    }

    /// Enables or disables overlapped execution of batches that span both
    /// units (enabled by default). Disabled, the units run one after the
    /// other on the shared timeline — the pre-overlap behaviour, kept
    /// runnable as an ablation like `UnscheduledDisk`.
    pub fn set_overlap_enabled(&mut self, enabled: bool) {
        self.overlap = enabled;
    }

    /// Enables or disables *host threads* for overlapped spanning batches
    /// (enabled by default). With threads on, each unit's share runs on its
    /// own OS thread against a private clock and trace, and the join
    /// restores elapsed = max of the arms — the same simulated time, trace
    /// contents and results as the serial replay, bit for bit; the only
    /// difference is wall-clock. Small shares (< `THREAD_MIN_SHARE` per
    /// unit) always use the serial replay, since thread spawn would cost
    /// more than it saves.
    pub fn set_threading_enabled(&mut self, enabled: bool) {
        self.threads = enabled;
    }

    /// How many spanning batches actually ran on real threads.
    pub fn threaded_batches(&self) -> u64 {
        self.threaded_batches
    }

    /// Sets the retry limit on both units (see [`DiskDrive::set_retries`]).
    pub fn set_retries(&mut self, retries: u32) {
        for d in &mut self.drives {
            d.set_retries(retries);
        }
    }
}

impl Disk for DualDrive {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        // Present double the cylinders: the linearized address space is
        // what matters to the file system; CHS locality stays meaningful
        // within each half.
        let g = self.drives[0].geometry()?;
        Ok(DiskGeometry {
            cylinders: g.cylinders * 2,
            heads: g.heads,
            sectors: g.sectors,
        })
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        self.drives[0].pack_number()
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        if da.is_nil() || (da.0 as u32) >= self.per_drive * 2 {
            return Err(DiskError::InvalidAddress(da));
        }
        let (unit, local) = self.route(da);
        // The physical sector self-identifies with its *pack's* number and
        // its *local* address; translate the caller's global view on the
        // way in (zero stays zero: it is the check wildcard) and back on
        // the way out.
        if buf.header[0] == self.drives[0].pack_number()? {
            buf.header[0] = self.drives[unit].pack_number()?;
        }
        if buf.header[1] == da.0 && da.0 != 0 {
            buf.header[1] = local.0;
        }
        let result = self.drives[unit].do_op(local, op, buf);
        if result.is_ok() && buf.header[1] == local.0 {
            buf.header[1] = da.0;
        }
        result
    }

    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        // Split the batch by unit so each drive schedules (and chains) its
        // own share; addresses and headers are translated exactly as in
        // `do_op`, and results land back in the batch's original order.
        // The result vector comes from the free lists and the split storage
        // is kept on the adapter, so the steady state allocates nothing.
        let mut results = pool::results_vec();
        results.extend(batch.iter().map(|_| Ok(())));
        let pack0 = self.drives[0].pack_number().ok();
        let packs = [
            self.drives[0].pack_number().ok(),
            self.drives[1].pack_number().ok(),
        ];
        let mut split = std::mem::take(&mut self.scratch);
        for (idxs, sub) in &mut split {
            idxs.clear();
            sub.clear();
        }
        for (i, req) in batch.iter_mut().enumerate() {
            let da = req.da;
            if da.is_nil() || (da.0 as u32) >= self.per_drive * 2 {
                results[i] = Err(DiskError::InvalidAddress(da));
                continue;
            }
            let (unit, local) = self.route(da);
            let mut buf = std::mem::take(&mut req.buf);
            if let (Some(p0), Some(pu)) = (pack0, packs[unit]) {
                if buf.header[0] == p0 {
                    buf.header[0] = pu;
                }
            }
            if buf.header[1] == da.0 && da.0 != 0 {
                buf.header[1] = local.0;
            }
            split[unit].0.push(i);
            split[unit].1.push(BatchRequest::new(local, req.op, buf));
        }

        // Each unit has its own arm and data path, so a batch that spans
        // both halves runs the two shares concurrently: each unit runs
        // from the same start instant, then the clock is set to the *later*
        // finish (elapsed = max of the units' times, not the sum). Large
        // shares run on real host threads against private clocks and
        // traces; small ones replay serially on the shared timeline — the
        // simulated outcome is identical. The ablation
        // (`set_overlap_enabled(false)`) keeps the serialized timeline.
        let overlapped = self.overlap && split.iter().all(|(idxs, _)| !idxs.is_empty());
        let threaded = overlapped
            && self.threads
            && split.iter().all(|(idxs, _)| idxs.len() >= THREAD_MIN_SHARE);
        let clock = self.drives[0].clock().clone();
        let t0 = clock.now();
        let mut elapsed = [SimTime::ZERO; 2];
        let mut sub_results: [Vec<Result<(), DiskError>>; 2] = [Vec::new(), Vec::new()];
        if threaded {
            // Give each unit a private timeline starting at the shared
            // instant and a private trace, so the workers never contend.
            let shared_trace = self.drives[0].trace().clone();
            let enabled = shared_trace.enabled();
            let mut originals: [Option<(SimClock, Trace)>; 2] = [None, None];
            for (unit, slot) in originals.iter_mut().enumerate() {
                let private_clock = SimClock::new();
                private_clock.set(t0);
                let private_trace = Trace::new();
                private_trace.set_enabled(enabled);
                let oc = self.drives[unit].swap_clock(private_clock);
                let ot = self.drives[unit].swap_trace(private_trace);
                *slot = Some((oc, ot));
            }
            // Ship unit 1 (drive and share, both owned) to the persistent
            // worker, run unit 0's share here, then take unit 1 back. The
            // recv is the join: both shares are done before anything below
            // runs.
            let worker = self.worker.get_or_insert_with(Worker::spawn);
            let d1 = std::mem::replace(
                &mut self.drives[1],
                DiskDrive::new(SimClock::new(), Trace::new()),
            );
            let sub1 = std::mem::take(&mut split[1].1);
            worker
                .to
                .as_ref()
                .expect("sender lives as long as the worker")
                .send((d1, sub1))
                .expect("dual-drive worker hung up");
            let r0 = self.drives[0].do_batch(&mut split[0].1);
            let (d1, sub1, r1) = worker.from.recv().expect("dual-drive worker panicked");
            self.drives[1] = d1;
            split[1].1 = sub1;
            sub_results = [r0, r1];
            for (unit, slot) in originals.iter_mut().enumerate() {
                let (oc, ot) = slot.take().expect("installed above");
                let private_clock = self.drives[unit].swap_clock(oc);
                let private_trace = self.drives[unit].swap_trace(ot);
                elapsed[unit] = private_clock.now() - t0;
                // Absorbing in unit order reproduces the exact event order
                // the serial replay records.
                shared_trace.absorb(&private_trace);
            }
            self.threaded_batches += 1;
        } else {
            for (unit, (idxs, sub)) in split.iter_mut().enumerate() {
                if idxs.is_empty() {
                    continue;
                }
                if overlapped {
                    clock.set(t0);
                }
                sub_results[unit] = self.drives[unit].do_batch(sub);
                elapsed[unit] = clock.now() - t0;
            }
        }
        for (unit, (idxs, sub)) in split.iter_mut().enumerate() {
            for ((&i, done), res) in idxs
                .iter()
                .zip(sub.iter_mut())
                .zip(sub_results[unit].drain(..))
            {
                let da = batch[i].da;
                let (_, local) = self.route(da);
                if res.is_ok() && done.buf.header[1] == local.0 {
                    done.buf.header[1] = da.0;
                }
                batch[i].buf = std::mem::take(&mut done.buf);
                results[i] = res;
            }
        }
        if overlapped {
            let saved = elapsed[0].min(elapsed[1]);
            clock.set(t0 + elapsed[0].max(elapsed[1]));
            self.overlap_batches += 1;
            self.overlap_saved += saved;
            let (n0, n1) = (split[0].0.len(), split[1].0.len());
            self.drives[0]
                .trace()
                .record_with(clock.now(), "disk.io.overlap", || {
                    format!("{n0}+{n1} requests overlapped, {saved} saved")
                });
        }
        let [r0, r1] = sub_results;
        pool::recycle_results(r0);
        pool::recycle_results(r1);
        self.scratch = split;
        results
    }

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.drives[0].note_readahead(hits, prefetched);
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.drives[0].note_write_behind(pages);
    }

    fn io_stats(&self) -> DriveStats {
        // Per-unit counters merge; the overlap accounting lives here, on
        // the adapter that does the overlapping.
        let mut s = self.drives[0].stats().merged(&self.drives[1].stats());
        s.overlap_batches = self.overlap_batches;
        s.overlap_saved = self.overlap_saved;
        s
    }

    fn write_epoch(&self) -> u64 {
        self.drives[0].write_epoch() + self.drives[1].write_epoch()
    }

    // Both units share one retry policy (set via `set_retries`); unit 0
    // answers for it and collects the sequence outcomes.
    fn retry_limit(&self) -> u32 {
        self.drives[0].retry_limit()
    }

    fn retry_backoff(&self) -> SimTime {
        self.drives[0].retry_backoff()
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.drives[0].note_retry(retries, recovered);
    }

    // Park/drain accounting routes to the unit that owns the address, in
    // that unit's local address space — the same translation its sector
    // operations get, so its auditor sees consistent addresses.
    fn note_park(&mut self, da: DiskAddress, page: u16) {
        let (unit, local) = self.route(da);
        self.drives[unit].note_park(local, page);
    }

    fn note_unpark(&mut self, da: DiskAddress, page: u16, outcome: crate::audit::UnparkOutcome) {
        let (unit, local) = self.route(da);
        self.drives[unit].note_unpark(local, page, outcome);
    }

    fn set_audit_enabled(&mut self, enabled: bool) {
        for d in &mut self.drives {
            d.set_audit_enabled(enabled);
        }
    }

    fn audit_violations(&self) -> u64 {
        self.drives[0].audit_violations() + self.drives[1].audit_violations()
    }

    fn clock(&self) -> &SimClock {
        self.drives[0].clock()
    }

    fn trace(&self) -> &Trace {
        self.drives[0].trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;
    use crate::label::Label;
    use crate::sector::DATA_WORDS;

    fn dual() -> DualDrive {
        DualDrive::with_formatted_packs(SimClock::new(), Trace::new(), DiskModel::Diablo31)
    }

    fn live_label(page: u16) -> Label {
        Label {
            fid: [3, 4],
            version: 1,
            page_number: page,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    fn allocate(d: &mut DualDrive, da: DiskAddress, label: Label) {
        let mut buf = SectorBuf::with_label(Label::FREE);
        d.do_op(da, SectorOp::CHECK_LABEL, &mut buf).unwrap();
        let mut buf = SectorBuf::with_label(label);
        buf.data = [7; DATA_WORDS];
        d.do_op(da, SectorOp::WRITE_LABEL, &mut buf).unwrap();
    }

    #[test]
    fn double_the_address_space() {
        let d = dual();
        let g = d.geometry().unwrap();
        assert_eq!(g.sector_count(), 2 * 4872);
    }

    #[test]
    fn low_addresses_hit_unit_0_high_hit_unit_1() {
        let mut d = dual();
        allocate(&mut d, DiskAddress(10), live_label(0));
        allocate(&mut d, DiskAddress(4872 + 10), live_label(1));
        // The physical sectors landed on the right packs, self-identified
        // with their local addresses.
        let s0 = d.unit(0).pack().unwrap().sector(DiskAddress(10)).unwrap();
        assert_eq!(s0.decoded_label().page_number, 0);
        assert_eq!(s0.header, [1, 10]);
        let s1 = d.unit(1).pack().unwrap().sector(DiskAddress(10)).unwrap();
        assert_eq!(s1.decoded_label().page_number, 1);
        assert_eq!(s1.header, [2, 10]);
    }

    #[test]
    fn reads_come_back_through_global_addresses() {
        let mut d = dual();
        let global = DiskAddress(4872 + 99);
        allocate(&mut d, global, live_label(3));
        let mut buf = SectorBuf::with_label(live_label(3));
        d.do_op(global, SectorOp::READ, &mut buf).unwrap();
        assert_eq!(buf.data, [7; DATA_WORDS]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = dual();
        let mut buf = SectorBuf::zeroed();
        assert!(matches!(
            d.do_op(DiskAddress(2 * 4872), SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(_))
        ));
        assert!(matches!(
            d.do_op(DiskAddress::NIL, SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(_))
        ));
    }

    #[test]
    fn mismatched_geometries_rejected() {
        let clock = SimClock::new();
        let d0 =
            DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Trident, 2);
        assert!(DualDrive::new(d0, d1).is_err());
    }

    #[test]
    fn check_semantics_survive_routing() {
        let mut d = dual();
        let global = DiskAddress(4872 + 50);
        allocate(&mut d, global, live_label(5));
        // Wrong label bounces, on the far drive too.
        let mut buf = SectorBuf::with_label(live_label(6));
        assert!(matches!(
            d.do_op(global, SectorOp::READ, &mut buf),
            Err(DiskError::Check(_))
        ));
    }

    #[test]
    fn straddling_batch_splits_at_the_drive_boundary() {
        // Regression: a single batch touching both halves of the address
        // space must execute every request exactly once, each on its own
        // drive in that drive's local geometry, with results (and header
        // translation) back in the batch's original order.
        let mut d = dual();
        let das: Vec<DiskAddress> = (0..8u16)
            .map(|i| {
                // Interleave the units request by request.
                if i % 2 == 0 {
                    DiskAddress(4868 + i / 2) // unit 0, near the top
                } else {
                    DiskAddress(4872 + i / 2) // unit 1, near the bottom
                }
            })
            .collect();
        for (i, &da) in das.iter().enumerate() {
            allocate(&mut d, da, live_label(i as u16));
        }
        let ops_before = [d.unit(0).stats().ops, d.unit(1).stats().ops];
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .enumerate()
            .map(|(i, &da)| {
                BatchRequest::new(
                    da,
                    SectorOp::READ,
                    SectorBuf::with_label(live_label(i as u16)),
                )
            })
            .collect();
        batch.push(BatchRequest::new(
            DiskAddress::NIL,
            SectorOp::READ,
            SectorBuf::zeroed(),
        ));
        let results = d.do_batch(&mut batch);
        for r in &results[..8] {
            assert!(r.is_ok());
        }
        assert!(matches!(results[8], Err(DiskError::InvalidAddress(_))));
        // Every valid request ran exactly once, 4 on each drive.
        assert_eq!(d.unit(0).stats().ops - ops_before[0], 4);
        assert_eq!(d.unit(1).stats().ops - ops_before[1], 4);
        for (i, req) in batch[..8].iter().enumerate() {
            // The data came back to the right slot, and the header was
            // translated back to the caller's global address.
            assert_eq!(req.buf.data, [7; DATA_WORDS], "request {i}");
            assert_eq!(req.buf.header[1], das[i].0, "request {i}");
        }
        // On the medium the sectors self-identify with *local* addresses.
        let s = d.unit(1).pack().unwrap().sector(DiskAddress(0)).unwrap();
        assert_eq!(s.header, [2, 0]);
    }

    #[test]
    fn spanning_batch_overlaps_the_two_arms() {
        use alto_sim::SimTime;
        // With one share per unit, both arms seek and transfer on their own
        // timelines: the batch takes max(d0, d1), not d0 + d1 — comfortably
        // under the 0.6× acceptance bound for a symmetric split.
        let run = |overlap: bool| -> SimTime {
            let mut d = dual();
            d.set_overlap_enabled(overlap);
            let mut batch: Vec<BatchRequest> = (0..24u16)
                .map(|i| {
                    let local = 200 + 37 * (i / 2); // spread over cylinders
                    let da = if i % 2 == 0 { local } else { 4872 + local };
                    BatchRequest::new(DiskAddress(da), SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let t0 = d.clock().now();
            for r in d.do_batch(&mut batch) {
                r.unwrap();
            }
            if overlap {
                let s = d.io_stats();
                assert_eq!(s.overlap_batches, 1);
                assert!(s.overlap_saved > SimTime::ZERO);
            }
            d.clock().now() - t0
        };
        let serial = run(false);
        let overlapped = run(true);
        assert!(
            overlapped.as_nanos() * 10 <= serial.as_nanos() * 6,
            "overlapped {overlapped} vs serialized {serial}"
        );
    }

    #[test]
    fn overlap_restores_the_longer_arm_when_one_arm_errors() {
        use alto_sim::SimTime;
        // Regression for the overlap error path: when one arm's share ends
        // in an error, `SimClock::set` must still restore elapsed =
        // max(arms), not the failing (shorter) arm's timeline. Run the same
        // spanning batch three ways — both shares, unit 0's share alone,
        // unit 1's share alone — from identical allocation histories and
        // pin the equality.
        let elapsed = |which: Option<usize>| -> SimTime {
            let mut d = dual();
            for i in 0..6u16 {
                allocate(&mut d, DiskAddress(200 + 37 * i), live_label(i));
            }
            allocate(&mut d, DiskAddress(4872 + 300), live_label(9));
            let mut batch = Vec::new();
            if which != Some(1) {
                // Unit 0's share: six requests spread over cylinders (the
                // long arm).
                for i in 0..6u16 {
                    batch.push(BatchRequest::new(
                        DiskAddress(200 + 37 * i),
                        SectorOp::READ,
                        SectorBuf::with_label(live_label(i)),
                    ));
                }
            }
            if which != Some(0) {
                // Unit 1's share: one request whose label claim is wrong,
                // so the short arm finishes in an error.
                batch.push(BatchRequest::new(
                    DiskAddress(4872 + 300),
                    SectorOp::READ,
                    SectorBuf::with_label(live_label(5)),
                ));
            }
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            if which != Some(0) {
                assert!(matches!(results.last(), Some(Err(DiskError::Check(_)))));
            }
            d.clock().now() - t0
        };
        let both = elapsed(None);
        let unit0 = elapsed(Some(0));
        let unit1 = elapsed(Some(1));
        assert!(unit1 < unit0, "the failing arm must be the shorter one");
        assert_eq!(both, unit0.max(unit1));
    }

    #[test]
    fn threaded_spanning_batch_is_bit_identical_to_serial_replay() {
        // The acceptance bar for host threading: same results, same
        // simulated elapsed time, and the same trace events in the same
        // order as the serial replay — bit for bit. Shares of 36 per unit
        // clear THREAD_MIN_SHARE so the threaded path really engages.
        let run = |threads: bool| {
            let mut d = dual();
            d.set_threading_enabled(threads);
            let mut batch: Vec<BatchRequest> = (0..72u16)
                .map(|i| {
                    let local = 100 + 53 * (i / 2) % 4000;
                    let da = if i % 2 == 0 { local } else { 4872 + local };
                    BatchRequest::new(DiskAddress(da), SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            assert_eq!(d.threaded_batches(), u64::from(threads));
            let events: Vec<(SimTime, &str, String)> = d
                .trace()
                .events()
                .into_iter()
                .map(|e| (e.at, e.tag, e.detail.clone()))
                .collect();
            (d.clock().now() - t0, results, events, batch)
        };
        let (serial_dt, serial_results, serial_events, serial_batch) = run(false);
        let (threaded_dt, threaded_results, threaded_events, threaded_batch) = run(true);
        assert_eq!(threaded_dt, serial_dt);
        assert_eq!(threaded_results, serial_results);
        assert_eq!(threaded_events, serial_events);
        for (a, b) in serial_batch.iter().zip(&threaded_batch) {
            assert_eq!(a.buf.header, b.buf.header);
            assert_eq!(a.buf.label, b.buf.label);
            assert_eq!(a.buf.data, b.buf.data);
        }
    }

    #[test]
    fn single_unit_batch_keeps_the_plain_timeline() {
        // No span, nothing to overlap: the clock only moves forward by the
        // one drive's elapsed time and no overlap is recorded.
        let mut d = dual();
        let mut batch: Vec<BatchRequest> = (0..4u16)
            .map(|i| {
                BatchRequest::new(DiskAddress(50 + i), SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        for r in d.do_batch(&mut batch) {
            r.unwrap();
        }
        assert_eq!(d.io_stats().overlap_batches, 0);
    }

    #[test]
    fn both_drives_share_the_timeline() {
        let mut d = dual();
        let t0 = d.clock().now();
        allocate(&mut d, DiskAddress(0), live_label(0));
        allocate(&mut d, DiskAddress(4872), live_label(1));
        assert!(d.clock().now() > t0);
        // Seeks on unit 1 do not move unit 0's arm.
        assert_eq!(d.unit(0).current_cylinder(), 0);
    }
}
