//! Two-drive configurations (§2).
//!
//! "…one or two moving-head disk drives, each of which can store 2.5
//! megabytes on a single removable pack." The Alto OS treated a two-drive
//! system as one file system twice the size: the top of the disk-address
//! space selects the drive. [`DualDrive`] is that adapter — historically
//! its own implementation, now a thin shim over a two-arm
//! [`DriveArray`] with [`Placement::Range`]: addresses `0 .. n` map to
//! drive 0, `n .. 2n` to drive 1, and batches that span the boundary run
//! the two shares on overlapped simulated timelines (elapsed = max of the
//! arms). See [`crate::array`] for the general machinery.

use alto_sim::{SimClock, SimTime, Trace};

use crate::array::{DriveArray, Placement};
use crate::drive::{Disk, DiskDrive, DriveStats};
use crate::errors::DiskError;
use crate::geometry::{DiskAddress, DiskGeometry};
use crate::sched::BatchRequest;
use crate::sector::{SectorBuf, SectorOp};

/// Two drives presented as one disk with twice the sectors.
///
/// Disk addresses `0 .. n` map to drive 0, `n .. 2n` to drive 1, where `n`
/// is the per-drive sector count. Both packs must share a geometry, and
/// the pack number reported is drive 0's (headers still self-identify per
/// pack, so the Scavenger works unchanged).
///
/// A batch that spans both halves of the address space executes the two
/// units' shares *overlapped*: each drive has its own arm and can seek and
/// transfer independently, so the batch's elapsed time is the maximum of
/// the two units' times, not the sum. [`DualDrive::set_overlap_enabled`]
/// restores the serialized one-unit-at-a-time execution as an ablation.
#[derive(Debug)]
pub struct DualDrive {
    array: DriveArray,
}

impl DualDrive {
    /// Combines two loaded drives.
    ///
    /// Returns an error if either drive is empty or the geometries differ.
    pub fn new(drive0: DiskDrive, drive1: DiskDrive) -> Result<DualDrive, DiskError> {
        let g0 = drive0.geometry()?;
        let g1 = drive1.geometry()?;
        if g0 != g1 {
            return Err(DiskError::MalformedOp(
                "dual-drive packs must share a geometry",
            ));
        }
        if g0.sector_count() * 2 >= u16::MAX as u32 {
            return Err(DiskError::MalformedOp(
                "dual-drive address space exceeds 16-bit disk addresses",
            ));
        }
        Ok(DualDrive {
            array: DriveArray::new(vec![drive0, drive1], Placement::Range)?,
        })
    }

    /// Convenience: two freshly formatted packs on a shared timeline.
    pub fn with_formatted_packs(
        clock: SimClock,
        trace: Trace,
        model: crate::geometry::DiskModel,
    ) -> DualDrive {
        let d0 = DiskDrive::with_formatted_pack(clock.clone(), trace.clone(), model, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, trace, model, 2);
        DualDrive::new(d0, d1).expect("identical fresh packs")
    }

    /// Access to one of the underlying drives (unit 0 or 1).
    pub fn unit(&self, unit: usize) -> &DiskDrive {
        self.array.arm(unit)
    }

    /// Mutable access to one of the underlying drives.
    pub fn unit_mut(&mut self, unit: usize) -> &mut DiskDrive {
        self.array.arm_mut(unit)
    }

    /// Enables or disables overlapped execution of batches that span both
    /// units (enabled by default). Disabled, the units run one after the
    /// other on the shared timeline — the pre-overlap behaviour, kept
    /// runnable as an ablation like `UnscheduledDisk`.
    pub fn set_overlap_enabled(&mut self, enabled: bool) {
        self.array.set_overlap_enabled(enabled);
    }

    /// Enables or disables *host threads* for overlapped spanning batches
    /// (enabled by default). See [`DriveArray::set_threading_enabled`]:
    /// the simulated outcome is bit-identical either way; only wall-clock
    /// differs.
    pub fn set_threading_enabled(&mut self, enabled: bool) {
        self.array.set_threading_enabled(enabled);
    }

    /// How many spanning batches actually ran on real threads.
    pub fn threaded_batches(&self) -> u64 {
        self.array.threaded_batches()
    }

    /// Sets the retry limit on both units (see [`DiskDrive::set_retries`]).
    pub fn set_retries(&mut self, retries: u32) {
        self.array.set_retries(retries);
    }
}

impl Disk for DualDrive {
    fn geometry(&self) -> Result<DiskGeometry, DiskError> {
        self.array.geometry()
    }

    fn pack_number(&self) -> Result<u16, DiskError> {
        self.array.pack_number()
    }

    fn do_op(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        buf: &mut SectorBuf,
    ) -> Result<(), DiskError> {
        self.array.do_op(da, op, buf)
    }

    fn do_batch(&mut self, batch: &mut [BatchRequest]) -> Vec<Result<(), DiskError>> {
        self.array.do_batch(batch)
    }

    fn do_batch_read<F>(&mut self, das: &[DiskAddress], visit: F) -> Vec<Result<(), DiskError>>
    where
        F: FnMut(usize, crate::view::SectorView<'_>),
    {
        self.array.do_batch_read(das, visit)
    }

    fn note_readahead(&mut self, hits: u64, prefetched: u64) {
        self.array.note_readahead(hits, prefetched);
    }

    fn note_write_behind(&mut self, pages: u64) {
        self.array.note_write_behind(pages);
    }

    fn io_stats(&self) -> DriveStats {
        self.array.io_stats()
    }

    fn write_epoch(&self) -> u64 {
        self.array.write_epoch()
    }

    fn retry_limit(&self) -> u32 {
        self.array.retry_limit()
    }

    fn retry_backoff(&self) -> SimTime {
        self.array.retry_backoff()
    }

    fn note_retry(&mut self, retries: u64, recovered: bool) {
        self.array.note_retry(retries, recovered);
    }

    fn note_park(&mut self, da: DiskAddress, page: u16) {
        self.array.note_park(da, page);
    }

    fn note_unpark(&mut self, da: DiskAddress, page: u16, outcome: crate::audit::UnparkOutcome) {
        self.array.note_unpark(da, page, outcome);
    }

    fn set_audit_enabled(&mut self, enabled: bool) {
        self.array.set_audit_enabled(enabled);
    }

    fn audit_violations(&self) -> u64 {
        self.array.audit_violations()
    }

    fn arm_count(&self) -> usize {
        self.array.arm_count()
    }

    fn arm_of(&self, da: DiskAddress) -> usize {
        self.array.arm_of(da)
    }

    fn arm_origin(&self, arm: usize) -> Option<DiskAddress> {
        self.array.arm_origin(arm)
    }

    fn clock(&self) -> &SimClock {
        self.array.clock()
    }

    fn trace(&self) -> &Trace {
        self.array.trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;
    use crate::label::Label;
    use crate::sector::DATA_WORDS;

    fn dual() -> DualDrive {
        DualDrive::with_formatted_packs(SimClock::new(), Trace::new(), DiskModel::Diablo31)
    }

    fn live_label(page: u16) -> Label {
        Label {
            fid: [3, 4],
            version: 1,
            page_number: page,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    fn allocate(d: &mut DualDrive, da: DiskAddress, label: Label) {
        let mut buf = SectorBuf::with_label(Label::FREE);
        d.do_op(da, SectorOp::CHECK_LABEL, &mut buf).unwrap();
        let mut buf = SectorBuf::with_label(label);
        buf.data = [7; DATA_WORDS];
        d.do_op(da, SectorOp::WRITE_LABEL, &mut buf).unwrap();
    }

    #[test]
    fn double_the_address_space() {
        let d = dual();
        let g = d.geometry().unwrap();
        assert_eq!(g.sector_count(), 2 * 4872);
    }

    #[test]
    fn two_range_arms() {
        let d = dual();
        assert_eq!(d.arm_count(), 2);
        assert_eq!(d.arm_of(DiskAddress(0)), 0);
        assert_eq!(d.arm_of(DiskAddress(4871)), 0);
        assert_eq!(d.arm_of(DiskAddress(4872)), 1);
        assert_eq!(d.arm_origin(0), Some(DiskAddress(0)));
        assert_eq!(d.arm_origin(1), Some(DiskAddress(4872)));
    }

    #[test]
    fn low_addresses_hit_unit_0_high_hit_unit_1() {
        let mut d = dual();
        allocate(&mut d, DiskAddress(10), live_label(0));
        allocate(&mut d, DiskAddress(4872 + 10), live_label(1));
        // The physical sectors landed on the right packs, self-identified
        // with their local addresses.
        let s0 = d.unit(0).pack().unwrap().sector(DiskAddress(10)).unwrap();
        assert_eq!(s0.decoded_label().page_number, 0);
        assert_eq!(s0.header, [1, 10]);
        let s1 = d.unit(1).pack().unwrap().sector(DiskAddress(10)).unwrap();
        assert_eq!(s1.decoded_label().page_number, 1);
        assert_eq!(s1.header, [2, 10]);
    }

    #[test]
    fn reads_come_back_through_global_addresses() {
        let mut d = dual();
        let global = DiskAddress(4872 + 99);
        allocate(&mut d, global, live_label(3));
        let mut buf = SectorBuf::with_label(live_label(3));
        d.do_op(global, SectorOp::READ, &mut buf).unwrap();
        assert_eq!(buf.data, [7; DATA_WORDS]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = dual();
        let mut buf = SectorBuf::zeroed();
        assert!(matches!(
            d.do_op(DiskAddress(2 * 4872), SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(_))
        ));
        assert!(matches!(
            d.do_op(DiskAddress::NIL, SectorOp::READ_ALL, &mut buf),
            Err(DiskError::InvalidAddress(_))
        ));
    }

    #[test]
    fn mismatched_geometries_rejected() {
        let clock = SimClock::new();
        let d0 =
            DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let d1 = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Trident, 2);
        assert!(DualDrive::new(d0, d1).is_err());
    }

    #[test]
    fn check_semantics_survive_routing() {
        let mut d = dual();
        let global = DiskAddress(4872 + 50);
        allocate(&mut d, global, live_label(5));
        // Wrong label bounces, on the far drive too.
        let mut buf = SectorBuf::with_label(live_label(6));
        assert!(matches!(
            d.do_op(global, SectorOp::READ, &mut buf),
            Err(DiskError::Check(_))
        ));
    }

    #[test]
    fn straddling_batch_splits_at_the_drive_boundary() {
        // Regression: a single batch touching both halves of the address
        // space must execute every request exactly once, each on its own
        // drive in that drive's local geometry, with results (and header
        // translation) back in the batch's original order.
        let mut d = dual();
        let das: Vec<DiskAddress> = (0..8u16)
            .map(|i| {
                // Interleave the units request by request.
                if i % 2 == 0 {
                    DiskAddress(4868 + i / 2) // unit 0, near the top
                } else {
                    DiskAddress(4872 + i / 2) // unit 1, near the bottom
                }
            })
            .collect();
        for (i, &da) in das.iter().enumerate() {
            allocate(&mut d, da, live_label(i as u16));
        }
        let ops_before = [d.unit(0).stats().ops, d.unit(1).stats().ops];
        let mut batch: Vec<BatchRequest> = das
            .iter()
            .enumerate()
            .map(|(i, &da)| {
                BatchRequest::new(
                    da,
                    SectorOp::READ,
                    SectorBuf::with_label(live_label(i as u16)),
                )
            })
            .collect();
        batch.push(BatchRequest::new(
            DiskAddress::NIL,
            SectorOp::READ,
            SectorBuf::zeroed(),
        ));
        let results = d.do_batch(&mut batch);
        for r in &results[..8] {
            assert!(r.is_ok());
        }
        assert!(matches!(results[8], Err(DiskError::InvalidAddress(_))));
        // Every valid request ran exactly once, 4 on each drive.
        assert_eq!(d.unit(0).stats().ops - ops_before[0], 4);
        assert_eq!(d.unit(1).stats().ops - ops_before[1], 4);
        for (i, req) in batch[..8].iter().enumerate() {
            // The data came back to the right slot, and the header was
            // translated back to the caller's global address.
            assert_eq!(req.buf.data, [7; DATA_WORDS], "request {i}");
            assert_eq!(req.buf.header[1], das[i].0, "request {i}");
        }
        // On the medium the sectors self-identify with *local* addresses.
        let s = d.unit(1).pack().unwrap().sector(DiskAddress(0)).unwrap();
        assert_eq!(s.header, [2, 0]);
    }

    #[test]
    fn spanning_batch_overlaps_the_two_arms() {
        use alto_sim::SimTime;
        // With one share per unit, both arms seek and transfer on their own
        // timelines: the batch takes max(d0, d1), not d0 + d1 — comfortably
        // under the 0.6× acceptance bound for a symmetric split.
        let run = |overlap: bool| -> SimTime {
            let mut d = dual();
            d.set_overlap_enabled(overlap);
            let mut batch: Vec<BatchRequest> = (0..24u16)
                .map(|i| {
                    let local = 200 + 37 * (i / 2); // spread over cylinders
                    let da = if i % 2 == 0 { local } else { 4872 + local };
                    BatchRequest::new(DiskAddress(da), SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let t0 = d.clock().now();
            for r in d.do_batch(&mut batch) {
                r.unwrap();
            }
            if overlap {
                let s = d.io_stats();
                assert_eq!(s.overlap_batches, 1);
                assert!(s.overlap_saved > SimTime::ZERO);
            }
            d.clock().now() - t0
        };
        let serial = run(false);
        let overlapped = run(true);
        assert!(
            overlapped.as_nanos() * 10 <= serial.as_nanos() * 6,
            "overlapped {overlapped} vs serialized {serial}"
        );
    }

    #[test]
    fn overlap_restores_the_longer_arm_when_one_arm_errors() {
        use alto_sim::SimTime;
        // Regression for the overlap error path: when one arm's share ends
        // in an error, `SimClock::set` must still restore elapsed =
        // max(arms), not the failing (shorter) arm's timeline. Run the same
        // spanning batch three ways — both shares, unit 0's share alone,
        // unit 1's share alone — from identical allocation histories and
        // pin the equality.
        let elapsed = |which: Option<usize>| -> SimTime {
            let mut d = dual();
            for i in 0..6u16 {
                allocate(&mut d, DiskAddress(200 + 37 * i), live_label(i));
            }
            allocate(&mut d, DiskAddress(4872 + 300), live_label(9));
            let mut batch = Vec::new();
            if which != Some(1) {
                // Unit 0's share: six requests spread over cylinders (the
                // long arm).
                for i in 0..6u16 {
                    batch.push(BatchRequest::new(
                        DiskAddress(200 + 37 * i),
                        SectorOp::READ,
                        SectorBuf::with_label(live_label(i)),
                    ));
                }
            }
            if which != Some(0) {
                // Unit 1's share: one request whose label claim is wrong,
                // so the short arm finishes in an error.
                batch.push(BatchRequest::new(
                    DiskAddress(4872 + 300),
                    SectorOp::READ,
                    SectorBuf::with_label(live_label(5)),
                ));
            }
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            if which != Some(0) {
                assert!(matches!(results.last(), Some(Err(DiskError::Check(_)))));
            }
            d.clock().now() - t0
        };
        let both = elapsed(None);
        let unit0 = elapsed(Some(0));
        let unit1 = elapsed(Some(1));
        assert!(unit1 < unit0, "the failing arm must be the shorter one");
        assert_eq!(both, unit0.max(unit1));
    }

    #[test]
    fn threaded_spanning_batch_is_bit_identical_to_serial_replay() {
        // The acceptance bar for host threading: same results, same
        // simulated elapsed time, and the same trace events in the same
        // order as the serial replay — bit for bit. Shares of 160 per unit
        // clear the array's thread threshold so the threaded path really
        // engages.
        let run = |threads: bool| {
            let mut d = dual();
            d.set_threading_enabled(threads);
            let mut batch: Vec<BatchRequest> = (0..320u16)
                .map(|i| {
                    let local = 100 + 53 * (i / 2) % 4000;
                    let da = if i % 2 == 0 { local } else { 4872 + local };
                    BatchRequest::new(DiskAddress(da), SectorOp::READ_ALL, SectorBuf::zeroed())
                })
                .collect();
            let t0 = d.clock().now();
            let results = d.do_batch(&mut batch);
            assert_eq!(d.threaded_batches(), u64::from(threads));
            let events: Vec<(SimTime, &str, String)> = d
                .trace()
                .events()
                .into_iter()
                .map(|e| (e.at, e.tag, e.detail.clone()))
                .collect();
            (d.clock().now() - t0, results, events, batch)
        };
        let (serial_dt, serial_results, serial_events, serial_batch) = run(false);
        let (threaded_dt, threaded_results, threaded_events, threaded_batch) = run(true);
        assert_eq!(threaded_dt, serial_dt);
        assert_eq!(threaded_results, serial_results);
        assert_eq!(threaded_events, serial_events);
        for (a, b) in serial_batch.iter().zip(&threaded_batch) {
            assert_eq!(a.buf.header, b.buf.header);
            assert_eq!(a.buf.label, b.buf.label);
            assert_eq!(a.buf.data, b.buf.data);
        }
    }

    #[test]
    fn single_unit_batch_keeps_the_plain_timeline() {
        // No span, nothing to overlap: the clock only moves forward by the
        // one drive's elapsed time and no overlap is recorded.
        let mut d = dual();
        let mut batch: Vec<BatchRequest> = (0..4u16)
            .map(|i| {
                BatchRequest::new(DiskAddress(50 + i), SectorOp::READ_ALL, SectorBuf::zeroed())
            })
            .collect();
        for r in d.do_batch(&mut batch) {
            r.unwrap();
        }
        assert_eq!(d.io_stats().overlap_batches, 0);
    }

    #[test]
    fn both_drives_share_the_timeline() {
        let mut d = dual();
        let t0 = d.clock().now();
        allocate(&mut d, DiskAddress(0), live_label(0));
        allocate(&mut d, DiskAddress(4872), live_label(1));
        assert!(d.clock().now() > t0);
        // Seeks on unit 1 do not move unit 0's arm.
        assert_eq!(d.unit(0).current_cylinder(), 0);
    }
}
