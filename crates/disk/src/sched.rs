//! Rotational-position-aware scheduling of chained multi-sector transfers.
//!
//! The paper's disk controller "is designed so that the software can chain
//! commands fast enough to transfer consecutive sectors" (§4). This module
//! is that chaining machinery: callers hand the drive a *batch* of sector
//! requests ([`BatchRequest`], executed by [`crate::Disk::do_batch`]) and
//! the drive services them in an order of its choosing:
//!
//! * **by cylinder** — an elevator sweep from the arm's current position
//!   (ascending, then the remainder descending), so each cylinder is
//!   visited once per batch; and
//! * **by rotational slot** — within a cylinder, always the pending sector
//!   whose slot comes under the heads soonest ([`TimingModel::slot_at`] /
//!   [`TimingModel::rotational_wait`]), so a full cylinder of requests is
//!   served in at most two revolutions plus the initial alignment.
//!
//! The whole batch pays the command set-up overhead
//! ([`TimingModel::command_overhead`]) **once**; requests that follow their
//! predecessor with no seek and no rotational wait are *chained transfers*,
//! and consecutive sectors of a track complete within one revolution.
//!
//! # The chaining invariant
//!
//! Chaining changes *when* sectors are transferred, never *whether* their
//! checks run: every request in a batch keeps the full §3.3 check-before-
//! write semantics of [`crate::Disk::do_op`], individually. A chained write
//! whose label check fails aborts **that sector** before any of its write
//! actions touch the platter — the slot is consumed, and the failure is
//! reported in that request's slot of the result vector. A failure also
//! *halts* command chaining (the controller stops at the failing sector),
//! so the unserved remainder of the batch is replanned from the arm's new
//! position under a fresh command set-up; in the failure-free case
//! scheduling is a pure timing optimization.
//!
//! ```
//! use alto_disk::{BatchRequest, Disk, DiskAddress, DiskDrive, DiskModel, SectorBuf, SectorOp};
//! use alto_sim::{SimClock, Trace};
//!
//! let mut drive =
//!     DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
//!
//! // Read one full track (sectors 0..12) as a single chained batch.
//! let mut batch: Vec<BatchRequest> = (0..12)
//!     .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
//!     .collect();
//! let t0 = drive.clock().now();
//! for result in drive.do_batch(&mut batch) {
//!     result.unwrap();
//! }
//! let elapsed = drive.clock().now() - t0;
//!
//! // One command set-up, at most one sector of alignment, then the track
//! // streams past in exactly one revolution: 11 of the 12 transfers chain.
//! let t = drive.timing().unwrap();
//! assert!(elapsed <= t.command_overhead + t.sector_time + t.revolution());
//! assert_eq!(drive.stats().chained_transfers, 11);
//!
//! // Issued one at a time, each read pays its own command set-up, misses
//! // the next slot, and waits a revolution — an order of magnitude slower.
//! let t0 = drive.clock().now();
//! for i in 0..12 {
//!     let mut buf = SectorBuf::zeroed();
//!     drive.do_op(DiskAddress(i), SectorOp::READ_ALL, &mut buf).unwrap();
//! }
//! assert!(drive.clock().now() - t0 > elapsed.scaled(8));
//! ```

use std::collections::BTreeMap;

use alto_sim::SimTime;

use crate::geometry::{DiskAddress, DiskGeometry};
use crate::sector::{SectorBuf, SectorOp};
use crate::timing::TimingModel;

/// One sector request inside a batch handed to [`crate::Disk::do_batch`].
///
/// The buffer is owned so the drive can service requests in any order; read
/// results are in `buf` after the batch returns.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The sector to operate on.
    pub da: DiskAddress,
    /// The per-part actions, with full check semantics.
    pub op: SectorOp,
    /// Memory for the transfer (checks read it, reads fill it).
    pub buf: SectorBuf,
}

impl BatchRequest {
    /// A request for `op` at `da` using `buf`.
    pub fn new(da: DiskAddress, op: SectorOp, buf: SectorBuf) -> BatchRequest {
        BatchRequest { da, op, buf }
    }
}

/// Computes the service order for a batch: indices into `das`, elevator
/// over cylinders from `start_cylinder`, greedy soonest-slot within each
/// cylinder starting from `start_time`.
///
/// The order is computable up front because every serviced request costs
/// seek + rotational wait + one sector time; a failed check still consumes
/// its slot (§3.3). The plan only holds *while the chain runs clean*,
/// though: a failure halts command chaining at the failing sector, so the
/// drive replans the unserved remainder from its new position.
pub fn plan(
    geometry: DiskGeometry,
    timing: TimingModel,
    start_cylinder: u16,
    start_time: SimTime,
    das: &[DiskAddress],
) -> Vec<usize> {
    // Group requests by cylinder; remember each one's rotational slot.
    let mut by_cyl: BTreeMap<u16, Vec<(usize, u16)>> = BTreeMap::new();
    for (i, &da) in das.iter().enumerate() {
        let chs = geometry.to_chs(da);
        by_cyl
            .entry(chs.cylinder)
            .or_default()
            .push((i, chs.sector));
    }

    // Elevator sweep: every cylinder at or above the arm in ascending
    // order, then the rest descending back toward the spindle.
    let mut sweep: Vec<u16> = by_cyl
        .keys()
        .copied()
        .filter(|&c| c >= start_cylinder)
        .collect();
    let mut below: Vec<u16> = by_cyl
        .keys()
        .copied()
        .filter(|&c| c < start_cylinder)
        .collect();
    below.reverse();
    sweep.extend(below);

    let mut order = Vec::with_capacity(das.len());
    let mut now = start_time;
    let mut cylinder = start_cylinder;
    for c in sweep {
        now += timing.seek(c.abs_diff(cylinder));
        cylinder = c;
        let mut pending = by_cyl.remove(&c).expect("cylinder came from the map");
        while !pending.is_empty() {
            // Greedy: whichever pending slot comes under the heads soonest.
            let k = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, slot))| timing.rotational_wait(now, slot).as_nanos())
                .map(|(k, _)| k)
                .expect("pending is non-empty");
            let (i, slot) = pending.swap_remove(k);
            now += timing.rotational_wait(now, slot) + timing.sector_time;
            order.push(i);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;

    fn setup() -> (DiskGeometry, TimingModel) {
        (
            DiskModel::Diablo31.geometry(),
            TimingModel::for_model(DiskModel::Diablo31),
        )
    }

    #[test]
    fn plan_returns_a_permutation() {
        let (g, t) = setup();
        let das: Vec<DiskAddress> = [400u16, 3, 99, 1200, 0, 4871, 77]
            .iter()
            .map(|&x| DiskAddress(x))
            .collect();
        let mut order = plan(g, t, 10, SimTime::ZERO, &das);
        order.sort_unstable();
        assert_eq!(order, (0..das.len()).collect::<Vec<_>>());
    }

    #[test]
    fn consecutive_track_is_served_in_disk_order() {
        let (g, t) = setup();
        // Sectors 0..12 of cylinder 0, requested scrambled, starting exactly
        // at the slot-0 boundary: the plan must visit them 0,1,2,…,11.
        let das: Vec<DiskAddress> = [5u16, 0, 11, 3, 7, 1, 9, 2, 10, 4, 8, 6]
            .iter()
            .map(|&x| DiskAddress(x))
            .collect();
        let order = plan(g, t, 0, SimTime::ZERO, &das);
        let served: Vec<u16> = order.iter().map(|&i| das[i].0).collect();
        assert_eq!(served, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn cylinders_are_swept_like_an_elevator() {
        let (g, t) = setup();
        let cyl = |c: u16| {
            g.from_chs(crate::geometry::Chs {
                cylinder: c,
                head: 0,
                sector: 0,
            })
        };
        let das = vec![cyl(5), cyl(190), cyl(60), cyl(2), cyl(120)];
        let order = plan(g, t, 50, SimTime::ZERO, &das);
        let cyls: Vec<u16> = order.iter().map(|&i| g.to_chs(das[i]).cylinder).collect();
        // Ascending from 50, then descending below it.
        assert_eq!(cyls, vec![60, 120, 190, 5, 2]);
    }

    #[test]
    fn full_cylinder_takes_at_most_two_revolutions_of_rotation() {
        let (g, t) = setup();
        // All 24 sectors of cylinder 3 (both heads share the spindle).
        let das: Vec<DiskAddress> = (0..24)
            .map(|i| {
                g.from_chs(crate::geometry::Chs {
                    cylinder: 3,
                    head: i / 12,
                    sector: i % 12,
                })
            })
            .collect();
        let start = SimTime::from_micros(123);
        let order = plan(g, t, 3, start, &das);
        // Replay the plan and add up the rotational waits it implies.
        let mut now = start;
        let mut wait_total = SimTime::ZERO;
        for &i in &order {
            let w = t.rotational_wait(now, g.to_chs(das[i]).sector);
            wait_total += w;
            now += w + t.sector_time;
        }
        // 24 sectors on two heads: two revolutions of transfers; the waits
        // (initial alignment + one head switch collision per slot) must not
        // add a third.
        assert!(
            wait_total < t.revolution(),
            "rotational waits {wait_total} exceed a revolution"
        );
    }
}
