//! Rotational-position-aware scheduling of chained multi-sector transfers.
//!
//! The paper's disk controller "is designed so that the software can chain
//! commands fast enough to transfer consecutive sectors" (§4). This module
//! is that chaining machinery: callers hand the drive a *batch* of sector
//! requests ([`BatchRequest`], executed by [`crate::Disk::do_batch`]) and
//! the drive services them in an order of its choosing:
//!
//! * **by cylinder** — an elevator sweep from the arm's current position
//!   (ascending, then the remainder descending), so each cylinder is
//!   visited once per batch; and
//! * **by rotational slot** — within a cylinder, always the pending sector
//!   whose slot comes under the heads soonest ([`TimingModel::slot_at`] /
//!   [`TimingModel::rotational_wait`]), so a full cylinder of requests is
//!   served in at most two revolutions plus the initial alignment.
//!
//! The whole batch pays the command set-up overhead
//! ([`TimingModel::command_overhead`]) **once**; requests that follow their
//! predecessor with no seek and no rotational wait are *chained transfers*,
//! and consecutive sectors of a track complete within one revolution.
//!
//! # The chaining invariant
//!
//! Chaining changes *when* sectors are transferred, never *whether* their
//! checks run: every request in a batch keeps the full §3.3 check-before-
//! write semantics of [`crate::Disk::do_op`], individually. A chained write
//! whose label check fails aborts **that sector** before any of its write
//! actions touch the platter — the slot is consumed, and the failure is
//! reported in that request's slot of the result vector. A failure also
//! *halts* command chaining (the controller stops at the failing sector),
//! so the unserved remainder of the batch is replanned from the arm's new
//! position under a fresh command set-up; in the failure-free case
//! scheduling is a pure timing optimization.
//!
//! ```
//! use alto_disk::{BatchRequest, Disk, DiskAddress, DiskDrive, DiskModel, SectorBuf, SectorOp};
//! use alto_sim::{SimClock, Trace};
//!
//! let mut drive =
//!     DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
//!
//! // Read one full track (sectors 0..12) as a single chained batch.
//! let mut batch: Vec<BatchRequest> = (0..12)
//!     .map(|i| BatchRequest::new(DiskAddress(i), SectorOp::READ_ALL, SectorBuf::zeroed()))
//!     .collect();
//! let t0 = drive.clock().now();
//! for result in drive.do_batch(&mut batch) {
//!     result.unwrap();
//! }
//! let elapsed = drive.clock().now() - t0;
//!
//! // One command set-up, at most one sector of alignment, then the track
//! // streams past in exactly one revolution: 11 of the 12 transfers chain.
//! let t = drive.timing().unwrap();
//! assert!(elapsed <= t.command_overhead + t.sector_time + t.revolution());
//! assert_eq!(drive.stats().chained_transfers, 11);
//!
//! // Issued one at a time, each read pays its own command set-up, misses
//! // the next slot, and waits a revolution — an order of magnitude slower.
//! let t0 = drive.clock().now();
//! for i in 0..12 {
//!     let mut buf = SectorBuf::zeroed();
//!     drive.do_op(DiskAddress(i), SectorOp::READ_ALL, &mut buf).unwrap();
//! }
//! assert!(drive.clock().now() - t0 > elapsed.scaled(8));
//! ```

use alto_sim::SimTime;

use crate::geometry::{Chs, DiskAddress, DiskGeometry};
use crate::sector::{SectorBuf, SectorOp};
use crate::timing::TimingModel;

/// One sector request inside a batch handed to [`crate::Disk::do_batch`].
///
/// The buffer is owned so the drive can service requests in any order; read
/// results are in `buf` after the batch returns.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// The sector to operate on.
    pub da: DiskAddress,
    /// The per-part actions, with full check semantics.
    pub op: SectorOp,
    /// Memory for the transfer (checks read it, reads fill it).
    pub buf: SectorBuf,
}

impl BatchRequest {
    /// A request for `op` at `da` using `buf`.
    pub fn new(da: DiskAddress, op: SectorOp, buf: SectorBuf) -> BatchRequest {
        BatchRequest { da, op, buf }
    }
}

/// Computes the service order for a batch: indices into `das`, elevator
/// over cylinders from `start_cylinder`, greedy soonest-slot within each
/// cylinder starting from `start_time`.
///
/// The order is computable up front because every serviced request costs
/// seek + rotational wait + one sector time; a failed check still consumes
/// its slot (§3.3). The plan only holds *while the chain runs clean*,
/// though: a failure halts command chaining at the failing sector, so the
/// drive replans the unserved remainder from its new position.
pub fn plan(
    geometry: DiskGeometry,
    timing: TimingModel,
    start_cylinder: u16,
    start_time: SimTime,
    das: &[DiskAddress],
) -> Vec<usize> {
    let chs: Vec<Chs> = das.iter().map(|&da| geometry.to_chs(da)).collect();
    let mut scratch = PlanScratch::default();
    let mut order = Vec::with_capacity(das.len());
    let mut waits = Vec::with_capacity(das.len());
    plan_into(
        timing,
        start_cylinder,
        start_time,
        &chs,
        &mut scratch,
        &mut order,
        &mut waits,
    );
    order
}

/// Reusable working storage for [`plan_into`], so the per-batch planning
/// pass allocates nothing in the steady state (the drive keeps one of these
/// and hands it back for every batch).
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// `(cylinder, slot, index)` per request, sorted by `(cylinder, index)`
    /// so each cylinder's requests are one contiguous run, in request order.
    items: Vec<(u16, u16, usize)>,
    /// One `(cylinder, start, end)` run per distinct cylinder, ascending;
    /// `start..end` indexes `items`.
    runs: Vec<(u16, usize, usize)>,
    /// The current cylinder's unserved requests: `(index, slot angle)`,
    /// where the angle is the slot's start offset within the revolution in
    /// nanoseconds (`slot * sector_time`), sorted by `(angle, index)`.
    pending: Vec<(usize, u64)>,
    /// Requests whose slot already passed under the heads this revolution,
    /// carried over to the next revolution pass.
    deferred: Vec<(usize, u64)>,
}

/// [`plan`] with caller-provided working storage and the requests'
/// already-computed geometry decomposition (`chs[i]` belongs to request
/// `i`): clears and fills `order` with the service order. Identical output
/// (the greedy selection, the sweep, and every tie-break match the
/// allocating form word for word — simulated time depends on it); the only
/// differences are where the working vectors live and who pays for the
/// address-to-CHS divisions.
///
/// `waits` is filled alongside `order`: `waits[k]` is the rotational wait
/// the drive will charge when it services `order[k]`, already computed
/// here by the greedy selection. The planner's timeline is *exactly* the
/// servicing timeline while the chain runs clean (a halt replans, which
/// refills both vectors), so the drive can charge `waits[k]` directly
/// instead of re-deriving it — the drive debug-asserts the equality.
pub fn plan_into(
    timing: TimingModel,
    start_cylinder: u16,
    start_time: SimTime,
    chs: &[Chs],
    scratch: &mut PlanScratch,
    order: &mut Vec<usize>,
    waits: &mut Vec<SimTime>,
) {
    order.clear();
    waits.clear();
    let PlanScratch {
        items,
        runs,
        pending,
        deferred,
    } = scratch;

    // Note each request's cylinder and rotational slot, then bucket by
    // cylinder: one sort by `(cylinder, index)` makes every cylinder's
    // requests a contiguous run *still in request order* (the tie-break
    // order the one-filter-scan-per-cylinder form had), so building a
    // cylinder's pending list is O(run), not O(batch).
    items.clear();
    for (i, c) in chs.iter().enumerate() {
        items.push((c.cylinder, c.sector, i));
    }
    items.sort_unstable_by_key(|&(c, _, i)| (c, i));
    runs.clear();
    let mut start = 0;
    while start < items.len() {
        let c = items[start].0;
        let end = start
            + items[start..]
                .iter()
                .position(|&(cc, _, _)| cc != c)
                .unwrap_or(items.len() - start);
        runs.push((c, start, end));
        start = end;
    }

    // Elevator sweep: every cylinder at or above the arm in ascending
    // order, then the rest descending back toward the spindle.
    let split = runs.partition_point(|&(c, _, _)| c < start_cylinder);
    let sweep = runs[split..].iter().chain(runs[..split].iter().rev());

    let st = timing.sector_time.as_nanos();
    let rev = timing.revolution().as_nanos();
    let mut now = start_time;
    let mut cylinder = start_cylinder;
    for &(c, run_start, run_end) in sweep {
        now += timing.seek(c.abs_diff(cylinder));
        cylinder = c;
        pending.clear();
        pending.extend(
            items[run_start..run_end]
                .iter()
                .map(|&(_, slot, i)| (i, slot as u64 * st)),
        );
        // Greedy soonest-slot selection, computed as revolution passes over
        // the requests sorted by slot angle: each pass serves, in angle
        // order, every request whose slot has not yet passed under the
        // heads; the rest carry to the next revolution. This is the same
        // service order a per-pick min-wait scan produces (the soonest
        // pending slot is always the next unserved angle at or after the
        // head), but costs one sort instead of a quadratic scan. Requests
        // for the *same* slot (the other head, or a duplicate address)
        // necessarily wait a full revolution apart; ties break toward the
        // earlier request in the batch. The waits are exactly
        // `timing.rotational_wait`'s — the drive debug-asserts as much.
        pending.sort_unstable_by_key(|&(i, target)| (target, i));
        // Head angle, in nanoseconds from the start of the revolution the
        // arm arrived in. One division on arrival; serving advances it
        // slot-aligned, and spinning into the next revolution subtracts
        // `rev` (signed so a pass can begin "behind" every request).
        let mut pos = (now.as_nanos() % rev) as i64;
        while !pending.is_empty() {
            let &(_, max_target) = pending.last().expect("pending is non-empty");
            if (max_target as i64) < pos {
                // Every remaining slot already passed: spin to the next
                // revolution and take them in angle order from the top.
                pos -= rev as i64;
                continue;
            }
            deferred.clear();
            for &(i, target) in pending.iter() {
                let t = target as i64;
                if t >= pos {
                    let wait = SimTime::from_nanos((t - pos) as u64);
                    now += wait + timing.sector_time;
                    pos = t + st as i64;
                    order.push(i);
                    waits.push(wait);
                } else {
                    deferred.push((i, target));
                }
            }
            std::mem::swap(pending, deferred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskModel;

    fn setup() -> (DiskGeometry, TimingModel) {
        (
            DiskModel::Diablo31.geometry(),
            TimingModel::for_model(DiskModel::Diablo31),
        )
    }

    #[test]
    fn plan_returns_a_permutation() {
        let (g, t) = setup();
        let das: Vec<DiskAddress> = [400u16, 3, 99, 1200, 0, 4871, 77]
            .iter()
            .map(|&x| DiskAddress(x))
            .collect();
        let mut order = plan(g, t, 10, SimTime::ZERO, &das);
        order.sort_unstable();
        assert_eq!(order, (0..das.len()).collect::<Vec<_>>());
    }

    #[test]
    fn consecutive_track_is_served_in_disk_order() {
        let (g, t) = setup();
        // Sectors 0..12 of cylinder 0, requested scrambled, starting exactly
        // at the slot-0 boundary: the plan must visit them 0,1,2,…,11.
        let das: Vec<DiskAddress> = [5u16, 0, 11, 3, 7, 1, 9, 2, 10, 4, 8, 6]
            .iter()
            .map(|&x| DiskAddress(x))
            .collect();
        let order = plan(g, t, 0, SimTime::ZERO, &das);
        let served: Vec<u16> = order.iter().map(|&i| das[i].0).collect();
        assert_eq!(served, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn cylinders_are_swept_like_an_elevator() {
        let (g, t) = setup();
        let cyl = |c: u16| {
            g.from_chs(crate::geometry::Chs {
                cylinder: c,
                head: 0,
                sector: 0,
            })
        };
        let das = vec![cyl(5), cyl(190), cyl(60), cyl(2), cyl(120)];
        let order = plan(g, t, 50, SimTime::ZERO, &das);
        let cyls: Vec<u16> = order.iter().map(|&i| g.to_chs(das[i]).cylinder).collect();
        // Ascending from 50, then descending below it.
        assert_eq!(cyls, vec![60, 120, 190, 5, 2]);
    }

    #[test]
    fn full_cylinder_takes_at_most_two_revolutions_of_rotation() {
        let (g, t) = setup();
        // All 24 sectors of cylinder 3 (both heads share the spindle).
        let das: Vec<DiskAddress> = (0..24)
            .map(|i| {
                g.from_chs(crate::geometry::Chs {
                    cylinder: 3,
                    head: i / 12,
                    sector: i % 12,
                })
            })
            .collect();
        let start = SimTime::from_micros(123);
        let order = plan(g, t, 3, start, &das);
        // Replay the plan and add up the rotational waits it implies.
        let mut now = start;
        let mut wait_total = SimTime::ZERO;
        for &i in &order {
            let w = t.rotational_wait(now, g.to_chs(das[i]).sector);
            wait_total += w;
            now += w + t.sector_time;
        }
        // 24 sectors on two heads: two revolutions of transfers; the waits
        // (initial alignment + one head switch collision per slot) must not
        // add a third.
        assert!(
            wait_total < t.revolution(),
            "rotational waits {wait_total} exceed a revolution"
        );
    }
}
