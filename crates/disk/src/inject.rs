//! Fault injection for robustness experiments (E8).
//!
//! The paper's robustness claims ("accidental overwriting of a page \[is\]
//! quite unlikely", §3.3; "full automatic recovery after a crash", §6) are
//! exercised by injecting the failures a real Alto suffered: torn writes
//! (power failed mid-sector), dropped writes (controller wrote nothing), and
//! label corruption (a wild program scribbled the medium while the OS's
//! in-memory structures were stale).
//!
//! Faults are *armed* one-shot against a disk address; the next matching
//! write operation through the drive triggers them. This keeps campaigns
//! deterministic — experiments arm faults from a seeded PRNG.

use std::collections::HashMap;

use crate::errors::DiskError;
use crate::geometry::DiskAddress;
use crate::sector::{apply, Action, Sector, SectorBuf, SectorOp, DATA_WORDS};

/// A kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write is torn: header/label actions complete, but only the first
    /// `words_written` data words reach the medium (power failure
    /// mid-sector). The operation *appears* to succeed.
    TornWrite {
        /// Number of data words that made it to the medium.
        words_written: usize,
    },
    /// The write is silently dropped: nothing reaches the medium but the
    /// operation appears to succeed (a lost write).
    DropWrite,
    /// The label is corrupted as it is written: the stored label word at
    /// `word` is XORed with `xor`.
    CorruptLabelWrite {
        /// Which of the seven label words to damage.
        word: usize,
        /// Bits to flip.
        xor: u16,
    },
}

/// One-shot fault injector consulted by the drive on every operation.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed: HashMap<u16, FaultKind>,
    /// Count of faults that have fired.
    fired: u64,
}

impl FaultInjector {
    /// Creates an injector with nothing armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms a one-shot fault against the next *write* operation at `da`.
    /// Re-arming replaces any previously armed fault at that address.
    pub fn arm(&mut self, da: DiskAddress, fault: FaultKind) {
        self.armed.insert(da.0, fault);
    }

    /// Disarms any fault at `da`.
    pub fn disarm(&mut self, da: DiskAddress) {
        self.armed.remove(&da.0);
    }

    /// Number of armed faults not yet fired.
    pub fn armed_count(&self) -> usize {
        self.armed.len()
    }

    /// Number of faults that have fired since creation.
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Called by the drive for every operation. Returns `Some(result)` if a
    /// fault fired and fully handled the operation, or `None` if the drive
    /// should apply the operation normally.
    pub fn apply(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        sector: &mut Sector,
        buf: &mut SectorBuf,
    ) -> Option<Result<(), DiskError>> {
        if !op.writes() {
            return None;
        }
        let fault = self.armed.remove(&da.0)?;
        self.fired += 1;
        Some(match fault {
            FaultKind::DropWrite => {
                // Perform reads/checks as normal but discard all writes: run
                // the op against a scratch copy of the sector.
                let mut scratch = sector.clone();
                apply(op, da, &mut scratch, buf)
            }
            FaultKind::TornWrite { words_written } => {
                let keep: Vec<u16> = sector.data[words_written.min(DATA_WORDS)..].to_vec();
                let result = apply(op, da, sector, buf);
                if result.is_ok() && op.value == Action::Write {
                    // Tail of the value part never reached the medium.
                    let cut = words_written.min(DATA_WORDS);
                    sector.data[cut..].copy_from_slice(&keep);
                }
                result
            }
            FaultKind::CorruptLabelWrite { word, xor } => {
                let result = apply(op, da, sector, buf);
                if result.is_ok() && op.label == Action::Write {
                    let w = word % crate::label::LABEL_WORDS;
                    sector.label[w] ^= xor;
                }
                result
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn live_label() -> Label {
        Label {
            fid: [1, 2],
            version: 1,
            page_number: 0,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    fn allocated_sector(da: DiskAddress) -> Sector {
        let mut s = Sector::formatted(1, da);
        s.label = live_label().encode();
        s.data = [1; DATA_WORDS];
        s
    }

    #[test]
    fn read_ops_never_trigger_faults() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        assert!(inj.apply(da, SectorOp::READ, &mut s, &mut b).is_none());
        assert_eq!(inj.armed_count(), 1);
        assert_eq!(inj.fired_count(), 0);
    }

    #[test]
    fn drop_write_loses_the_data_but_reports_success() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        assert_eq!(s.data, [1; DATA_WORDS], "medium unchanged");
        assert_eq!(inj.fired_count(), 1);
        assert_eq!(inj.armed_count(), 0);
    }

    #[test]
    fn torn_write_stops_mid_value() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::TornWrite { words_written: 100 });
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        assert!(s.data[..100].iter().all(|&w| w == 9));
        assert!(s.data[100..].iter().all(|&w| w == 1));
    }

    #[test]
    fn corrupt_label_write_flips_bits() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(
            da,
            FaultKind::CorruptLabelWrite {
                word: 3,
                xor: 0x0001,
            },
        );
        let mut s = Sector::formatted(1, da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        // Write the label as an allocation would.
        let op = SectorOp::WRITE_LABEL;
        let r = inj.apply(da, op, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        let stored = s.decoded_label();
        assert_eq!(stored.page_number, live_label().page_number ^ 1);
    }

    #[test]
    fn fault_is_one_shot() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        assert!(inj.apply(da, SectorOp::WRITE, &mut s, &mut b).is_some());
        // Second write goes through.
        assert!(inj.apply(da, SectorOp::WRITE, &mut s, &mut b).is_none());
    }

    #[test]
    fn torn_write_failing_check_writes_nothing() {
        // Even a torn write respects check-before-write: if the label check
        // fails, the medium is untouched and the tear is irrelevant.
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::TornWrite { words_written: 10 });
        let mut s = allocated_sector(da);
        let before = s.clone();
        let mut wrong = live_label();
        wrong.version = 9;
        let mut b = SectorBuf::with_label(wrong);
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_err());
        assert_eq!(s, before);
    }

    #[test]
    fn disarm_removes_fault() {
        let mut inj = FaultInjector::new();
        inj.arm(DiskAddress(1), FaultKind::DropWrite);
        inj.disarm(DiskAddress(1));
        assert_eq!(inj.armed_count(), 0);
    }
}
