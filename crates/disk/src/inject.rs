//! Fault injection for robustness experiments (E8, PR4).
//!
//! The paper's robustness claims ("accidental overwriting of a page \[is\]
//! quite unlikely", §3.3; "full automatic recovery after a crash", §6) are
//! exercised by injecting the failures a real Alto suffered: torn writes
//! (power failed mid-sector), dropped writes (controller wrote nothing),
//! label corruption (a wild program scribbled the medium while the OS's
//! in-memory structures were stale), and the *transient* errors the disk
//! routines were built to retry — soft read checksum errors, seek
//! mis-positions, drive not-ready.
//!
//! Faults are *armed* against a disk address, with separate read-side and
//! write-side matchers ([`FaultInjector::arm_read`] /
//! [`FaultInjector::arm`]); the next matching operation through the drive
//! triggers them. One-shot kinds fire once; transient kinds fire for N
//! consecutive attempts and then clear, modelling a fault that goes away
//! when the operation is simply re-issued. Campaigns stay deterministic —
//! either arm faults explicitly from a seeded PRNG, or turn on the built-in
//! campaign ([`FaultInjector::set_campaign`]) which conjures transients at a
//! configurable per-operation rate from its own seeded PRNG.

use std::collections::HashMap;

use alto_sim::SplitMix64;

use crate::errors::{DiskError, SectorPart};
use crate::geometry::DiskAddress;
use crate::sector::{apply, Action, Sector, SectorBuf, SectorOp, DATA_WORDS};

/// A kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write is torn: header/label actions complete, but only the first
    /// `words_written` data words reach the medium (power failure
    /// mid-sector). The operation *appears* to succeed.
    TornWrite {
        /// Number of data words that made it to the medium.
        words_written: usize,
    },
    /// The write is silently dropped: nothing reaches the medium but the
    /// operation appears to succeed (a lost write).
    DropWrite,
    /// The label is corrupted as it is written: the stored label word at
    /// `word` is XORed with `xor`.
    CorruptLabelWrite {
        /// Which of the seven label words to damage.
        word: usize,
        /// Bits to flip.
        xor: u16,
    },
    /// Transient soft checksum error in the value part: the transfer fails
    /// for `attempts` consecutive tries, then the sector reads cleanly. The
    /// medium is untouched.
    SoftRead {
        /// Consecutive tries that fail before the fault clears.
        attempts: u32,
    },
    /// Transient seek mis-position: the arm settles on the wrong track so
    /// the header cannot match, for `attempts` consecutive tries.
    SeekMisposition {
        /// Consecutive tries that fail before the fault clears.
        attempts: u32,
    },
    /// The drive reports not-ready for `attempts` consecutive tries (e.g.
    /// still spinning up, or a marginal sector pulse).
    NotReady {
        /// Consecutive tries that fail before the fault clears.
        attempts: u32,
    },
}

impl FaultKind {
    /// How many consecutive matching operations this fault consumes before
    /// it clears (one for the one-shot write kinds).
    fn total_attempts(self) -> u32 {
        match self {
            FaultKind::TornWrite { .. }
            | FaultKind::DropWrite
            | FaultKind::CorruptLabelWrite { .. } => 1,
            FaultKind::SoftRead { attempts }
            | FaultKind::SeekMisposition { attempts }
            | FaultKind::NotReady { attempts } => attempts.max(1),
        }
    }
}

/// An armed fault plus how many times it has fired so far.
#[derive(Debug, Clone, Copy)]
struct ArmedFault {
    kind: FaultKind,
    fired: u32,
}

/// A background campaign that conjures transient faults at a fixed
/// per-operation rate from a seeded PRNG.
#[derive(Debug)]
struct Campaign {
    rng: SplitMix64,
    num: u64,
    denom: u64,
}

/// Fault injector consulted by the drive on every operation.
///
/// Read-side and write-side faults are armed independently: an operation
/// consults the write matcher if any of its parts writes, and the read
/// matcher otherwise.
#[derive(Debug, Default)]
pub struct FaultInjector {
    armed_writes: HashMap<u16, ArmedFault>,
    armed_reads: HashMap<u16, ArmedFault>,
    campaign: Option<Campaign>,
    /// Count of fault firings (each failed transient attempt counts).
    fired: u64,
}

impl FaultInjector {
    /// Creates an injector with nothing armed.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Arms a fault against the next *write* operation(s) at `da`.
    /// Re-arming replaces any previously armed write fault at that address.
    pub fn arm(&mut self, da: DiskAddress, fault: FaultKind) {
        self.armed_writes.insert(
            da.0,
            ArmedFault {
                kind: fault,
                fired: 0,
            },
        );
    }

    /// Arms a fault against the next *read* operation(s) at `da` (any
    /// operation none of whose parts writes). Re-arming replaces any
    /// previously armed read fault at that address.
    pub fn arm_read(&mut self, da: DiskAddress, fault: FaultKind) {
        self.armed_reads.insert(
            da.0,
            ArmedFault {
                kind: fault,
                fired: 0,
            },
        );
    }

    /// Disarms any fault at `da`, on both matchers.
    pub fn disarm(&mut self, da: DiskAddress) {
        self.armed_writes.remove(&da.0);
        self.armed_reads.remove(&da.0);
    }

    /// Number of armed faults not yet cleared, across both matchers.
    pub fn armed_count(&self) -> usize {
        self.armed_writes.len() + self.armed_reads.len()
    }

    /// True when no fault can possibly fire: nothing armed and no campaign
    /// running. Hot paths use this to skip fault bookkeeping entirely.
    pub fn is_idle(&self) -> bool {
        self.campaign.is_none() && self.armed_writes.is_empty() && self.armed_reads.is_empty()
    }

    /// Number of fault firings since creation (each failed attempt of a
    /// transient fault counts separately).
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Turns on the background campaign: every operation rolls
    /// `num`/`denom` odds of suffering a conjured transient fault (a soft
    /// read error on reads, a not-ready on writes, lasting one or two
    /// attempts). The campaign PRNG is seeded, so runs are reproducible.
    pub fn set_campaign(&mut self, seed: u64, num: u64, denom: u64) {
        self.campaign = Some(Campaign {
            rng: SplitMix64::new(seed),
            num,
            denom,
        });
    }

    /// Turns the background campaign off. Explicitly armed faults remain.
    pub fn clear_campaign(&mut self) {
        self.campaign = None;
    }

    /// Called by the drive for every operation. Returns `Some(result)` if a
    /// fault fired and fully handled the operation, or `None` if the drive
    /// should apply the operation normally.
    pub fn apply(
        &mut self,
        da: DiskAddress,
        op: SectorOp,
        sector: &mut Sector,
        buf: &mut SectorBuf,
    ) -> Option<Result<(), DiskError>> {
        // Fast path for the fault-free drive: nothing armed and no campaign
        // means no fault can possibly fire, so skip the per-address map
        // probe (a hash per serviced sector, pure overhead on clean runs).
        if self.is_idle() {
            return None;
        }
        let writes = op.writes();
        let map = if writes {
            &mut self.armed_writes
        } else {
            &mut self.armed_reads
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(da.0) {
            // No explicit fault armed here: give the campaign its roll.
            let c = self.campaign.as_mut()?;
            if !c.rng.chance(c.num, c.denom) {
                return None;
            }
            let attempts = 1 + c.rng.next_below(2) as u32;
            let kind = if writes {
                FaultKind::NotReady { attempts }
            } else {
                FaultKind::SoftRead { attempts }
            };
            slot.insert(ArmedFault { kind, fired: 0 });
        }
        let entry = map.get_mut(&da.0).expect("armed above");
        entry.fired += 1;
        self.fired += 1;
        let kind = entry.kind;
        let attempt = entry.fired;
        if entry.fired >= kind.total_attempts() {
            map.remove(&da.0);
        }
        Some(match kind {
            FaultKind::DropWrite => {
                // Perform reads/checks as normal but discard all writes: run
                // the op against a scratch copy of the sector.
                let mut scratch = sector.clone();
                apply(op, da, &mut scratch, buf)
            }
            FaultKind::TornWrite { words_written } => {
                // Stack copy, not a Vec: faults fire inside hot retry loops
                // and the injector must not be an allocation source there.
                let cut = words_written.min(DATA_WORDS);
                let mut keep = [0u16; DATA_WORDS];
                keep[cut..].copy_from_slice(&sector.data[cut..]);
                let result = apply(op, da, sector, buf);
                if result.is_ok() && op.value == Action::Write {
                    // Tail of the value part never reached the medium.
                    sector.data[cut..].copy_from_slice(&keep[cut..]);
                }
                result
            }
            FaultKind::CorruptLabelWrite { word, xor } => {
                let result = apply(op, da, sector, buf);
                if result.is_ok() && op.label == Action::Write {
                    let w = word % crate::label::LABEL_WORDS;
                    sector.label[w] ^= xor;
                }
                result
            }
            // Transient kinds never touch the medium: the transfer simply
            // did not happen this time around.
            FaultKind::SoftRead { .. } => Err(DiskError::Transient {
                da,
                part: SectorPart::Value,
                attempt,
            }),
            FaultKind::SeekMisposition { .. } => Err(DiskError::Transient {
                da,
                part: SectorPart::Header,
                attempt,
            }),
            FaultKind::NotReady { .. } => Err(DiskError::Transient {
                da,
                part: SectorPart::Header,
                attempt,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn live_label() -> Label {
        Label {
            fid: [1, 2],
            version: 1,
            page_number: 0,
            length: 512,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
    }

    fn allocated_sector(da: DiskAddress) -> Sector {
        let mut s = Sector::formatted(1, da);
        s.label = live_label().encode();
        s.data = [1; DATA_WORDS];
        s
    }

    #[test]
    fn read_ops_never_trigger_write_faults() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        assert!(inj.apply(da, SectorOp::READ, &mut s, &mut b).is_none());
        assert_eq!(inj.armed_count(), 1);
        assert_eq!(inj.fired_count(), 0);
    }

    #[test]
    fn write_ops_never_trigger_read_faults() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm_read(da, FaultKind::SoftRead { attempts: 3 });
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        assert!(inj.apply(da, SectorOp::WRITE, &mut s, &mut b).is_none());
        assert_eq!(inj.armed_count(), 1);
        // ...but the read matcher fires for a read at the same address.
        assert!(inj.apply(da, SectorOp::READ, &mut s, &mut b).is_some());
    }

    #[test]
    fn drop_write_loses_the_data_but_reports_success() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        assert_eq!(s.data, [1; DATA_WORDS], "medium unchanged");
        assert_eq!(inj.fired_count(), 1);
        assert_eq!(inj.armed_count(), 0);
    }

    #[test]
    fn torn_write_stops_mid_value() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::TornWrite { words_written: 100 });
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        assert!(s.data[..100].iter().all(|&w| w == 9));
        assert!(s.data[100..].iter().all(|&w| w == 1));
    }

    #[test]
    fn corrupt_label_write_flips_bits() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(
            da,
            FaultKind::CorruptLabelWrite {
                word: 3,
                xor: 0x0001,
            },
        );
        let mut s = Sector::formatted(1, da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        // Write the label as an allocation would.
        let op = SectorOp::WRITE_LABEL;
        let r = inj.apply(da, op, &mut s, &mut b).unwrap();
        assert!(r.is_ok());
        let stored = s.decoded_label();
        assert_eq!(stored.page_number, live_label().page_number ^ 1);
    }

    #[test]
    fn fault_is_one_shot() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::DropWrite);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        b.header = [1, 5];
        b.data = [9; DATA_WORDS];
        assert!(inj.apply(da, SectorOp::WRITE, &mut s, &mut b).is_some());
        // Second write goes through.
        assert!(inj.apply(da, SectorOp::WRITE, &mut s, &mut b).is_none());
    }

    #[test]
    fn transient_fires_n_times_then_clears() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm_read(da, FaultKind::SoftRead { attempts: 2 });
        let mut s = allocated_sector(da);
        let before = s.clone();
        let mut b = SectorBuf::with_label(live_label());
        for want in 1..=2u32 {
            let r = inj.apply(da, SectorOp::READ, &mut s, &mut b).unwrap();
            assert_eq!(
                r,
                Err(DiskError::Transient {
                    da,
                    part: SectorPart::Value,
                    attempt: want,
                })
            );
        }
        // Third attempt: the fault has cleared, medium untouched throughout.
        assert!(inj.apply(da, SectorOp::READ, &mut s, &mut b).is_none());
        assert_eq!(s, before);
        assert_eq!(inj.fired_count(), 2);
        assert_eq!(inj.armed_count(), 0);
    }

    #[test]
    fn seek_misposition_and_not_ready_report_the_header_part() {
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        let mut s = allocated_sector(da);
        let mut b = SectorBuf::with_label(live_label());
        inj.arm_read(da, FaultKind::SeekMisposition { attempts: 1 });
        let r = inj.apply(da, SectorOp::READ, &mut s, &mut b).unwrap();
        assert!(matches!(
            r,
            Err(DiskError::Transient {
                part: SectorPart::Header,
                attempt: 1,
                ..
            })
        ));
        inj.arm(da, FaultKind::NotReady { attempts: 1 });
        b.header = [1, 5];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(matches!(
            r,
            Err(DiskError::Transient {
                part: SectorPart::Header,
                ..
            })
        ));
    }

    #[test]
    fn campaign_conjures_transients_deterministically() {
        let run = || {
            let mut inj = FaultInjector::new();
            inj.set_campaign(42, 1, 2);
            let da = DiskAddress(5);
            let mut s = allocated_sector(da);
            let mut b = SectorBuf::with_label(live_label());
            let mut pattern = Vec::new();
            for _ in 0..32 {
                pattern.push(inj.apply(da, SectorOp::READ, &mut s, &mut b).is_some());
            }
            (pattern, inj.fired_count())
        };
        let (a, fired_a) = run();
        let (b, fired_b) = run();
        assert_eq!(a, b, "same seed, same campaign");
        assert_eq!(fired_a, fired_b);
        assert!(fired_a > 0, "1-in-2 odds over 32 ops must fire");
        assert!(a.iter().any(|hit| !hit), "and must also miss");
    }

    #[test]
    fn torn_write_failing_check_writes_nothing() {
        // Even a torn write respects check-before-write: if the label check
        // fails, the medium is untouched and the tear is irrelevant.
        let mut inj = FaultInjector::new();
        let da = DiskAddress(5);
        inj.arm(da, FaultKind::TornWrite { words_written: 10 });
        let mut s = allocated_sector(da);
        let before = s.clone();
        let mut wrong = live_label();
        wrong.version = 9;
        let mut b = SectorBuf::with_label(wrong);
        b.data = [9; DATA_WORDS];
        let r = inj.apply(da, SectorOp::WRITE, &mut s, &mut b).unwrap();
        assert!(r.is_err());
        assert_eq!(s, before);
    }

    #[test]
    fn disarm_removes_faults_on_both_matchers() {
        let mut inj = FaultInjector::new();
        inj.arm(DiskAddress(1), FaultKind::DropWrite);
        inj.arm_read(DiskAddress(1), FaultKind::SoftRead { attempts: 1 });
        assert_eq!(inj.armed_count(), 2);
        inj.disarm(DiskAddress(1));
        assert_eq!(inj.armed_count(), 0);
    }
}
