//! The seven-word sector label (§3.1).
//!
//! The label carries the page's *absolute* name — file identifier `F`
//! (two words), version `V`, page number `PN` — plus the byte length `L`
//! and the *hint* links `NL`/`PL` to the next and previous pages of the
//! file. Free sectors carry an all-ones label so that any attempt to treat
//! them as part of a file fails with a label check error (§3.3).

use crate::geometry::DiskAddress;

/// Number of words in a sector label.
pub const LABEL_WORDS: usize = 7;

/// Maximum number of data bytes a page can hold (256 words).
pub const MAX_PAGE_BYTES: u16 = 512;

/// The in-memory form of a sector label.
///
/// Field classification per §3.1: `fid`, `version`, `page_number` and
/// `length` are *absolutes* (A); `next` and `prev` are *hints* (H),
/// reconstructible by the Scavenger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    /// `F`: two-word file identifier (a serial number).
    pub fid: [u16; 2],
    /// `V`: file version number.
    pub version: u16,
    /// `PN`: page number within the file (0 is the leader page).
    pub page_number: u16,
    /// `L`: number of data bytes in this page (0..=512).
    pub length: u16,
    /// `NL`: disk address of page `PN + 1`, or NIL.
    pub next: DiskAddress,
    /// `PL`: disk address of page `PN - 1`, or NIL.
    pub prev: DiskAddress,
}

impl Label {
    /// The label of a free sector: all ones (§3.3 — "ones are written into
    /// label and value").
    pub const FREE: Label = Label {
        fid: [u16::MAX, u16::MAX],
        version: u16::MAX,
        page_number: u16::MAX,
        length: u16::MAX,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    };

    /// The version value reserved to mark permanently bad pages so they are
    /// never used again (§3.5 — "marked in the label with a special value").
    pub const BAD_VERSION: u16 = 0xFFFE;

    /// The label that quarantines a permanently bad sector.
    pub const BAD: Label = Label {
        fid: [u16::MAX, u16::MAX],
        version: Label::BAD_VERSION,
        page_number: u16::MAX,
        length: u16::MAX,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    };

    /// True if this is the free-sector label.
    pub fn is_free(&self) -> bool {
        *self == Label::FREE
    }

    /// True if this label quarantines a bad sector.
    pub fn is_bad(&self) -> bool {
        self.version == Label::BAD_VERSION && self.fid == [u16::MAX, u16::MAX]
    }

    /// True if this label belongs to a live file page (neither free nor bad).
    pub fn is_in_use(&self) -> bool {
        !self.is_free() && !self.is_bad()
    }

    /// Encodes the label into its seven-word disk representation.
    pub fn encode(&self) -> [u16; LABEL_WORDS] {
        [
            self.fid[0],
            self.fid[1],
            self.version,
            self.page_number,
            self.length,
            self.next.0,
            self.prev.0,
        ]
    }

    /// Decodes a label from its seven-word disk representation.
    pub fn decode(words: &[u16; LABEL_WORDS]) -> Label {
        Label {
            fid: [words[0], words[1]],
            version: words[2],
            page_number: words[3],
            length: words[4],
            next: DiskAddress(words[5]),
            prev: DiskAddress(words[6]),
        }
    }

    /// A check pattern that matches *any* label (all wildcards).
    ///
    /// A memory word of 0 is a wildcard in a check action (§3.3), so the
    /// all-zero label pattern matches every label and is the "read the label,
    /// whatever it is" idiom used by the Scavenger.
    pub const WILDCARD: Label = Label {
        fid: [0, 0],
        version: 0,
        page_number: 0,
        length: 0,
        next: DiskAddress(0),
        prev: DiskAddress(0),
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Label {
        Label {
            fid: [0x1234, 0x5678],
            version: 1,
            page_number: 3,
            length: 512,
            next: DiskAddress(99),
            prev: DiskAddress(97),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = sample();
        assert_eq!(Label::decode(&l.encode()), l);
        assert_eq!(Label::decode(&Label::FREE.encode()), Label::FREE);
        assert_eq!(Label::decode(&Label::BAD.encode()), Label::BAD);
    }

    #[test]
    fn free_label_is_all_ones() {
        assert!(Label::FREE.encode().iter().all(|&w| w == u16::MAX));
    }

    #[test]
    fn classification() {
        assert!(Label::FREE.is_free());
        assert!(!Label::FREE.is_bad());
        assert!(!Label::FREE.is_in_use());
        assert!(Label::BAD.is_bad());
        assert!(!Label::BAD.is_free());
        assert!(!Label::BAD.is_in_use());
        assert!(sample().is_in_use());
        assert!(!sample().is_free());
        assert!(!sample().is_bad());
    }

    #[test]
    fn bad_label_differs_from_free_only_in_version() {
        let bad = Label::BAD.encode();
        let free = Label::FREE.encode();
        assert_ne!(bad[2], free[2]);
        assert_eq!(&bad[..2], &free[..2]);
        assert_eq!(&bad[3..], &free[3..]);
    }

    #[test]
    fn a_live_file_never_collides_with_bad_version() {
        // File systems must not assign version 0xFFFE; documented invariant.
        let mut l = sample();
        l.version = Label::BAD_VERSION;
        // Even so, is_bad also requires the all-ones fid, so a file page
        // with that version is not misclassified.
        assert!(!l.is_bad());
    }

    #[test]
    fn wildcard_is_all_zero() {
        assert!(Label::WILDCARD.encode().iter().all(|&w| w == 0));
    }
}
