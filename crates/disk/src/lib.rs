//! Sector-accurate simulation of the Alto disk subsystem.
//!
//! This crate models the moving-head disks of Lampson & Sproull's *An Open
//! Operating System for a Single-User Machine* (SOSP 1979) at the level the
//! paper's robustness argument depends on:
//!
//! * A **sector** has three parts — a 2-word *header* (pack number and disk
//!   address), a 7-word *label* (file id, version, page number, length, and
//!   forward/backward links) and a 256-word *value* (§3.1, §3.3).
//! * A single disk operation performs a **read, check or write action
//!   independently on each part**, with the restriction that once a write is
//!   begun it must continue through the rest of the sector (§3.3).
//! * A **check** compares disk words with memory words and aborts the whole
//!   operation on mismatch — except that a memory word of 0 is a wildcard
//!   that is replaced by the disk word, making check a simple pattern match
//!   (§3.3).
//!
//! Every operation charges seek time, rotational latency, transfer time and
//! a per-command set-up overhead to a shared [`alto_sim::SimClock`], using
//! published Diablo Model 31 parameters (40 ms/revolution, 12 sectors/track,
//! 203 cylinders × 2 heads — 2.5 MB per pack, ≈76.8 K words/s streaming).
//! The one-revolution cost of the label discipline on page allocate/free
//! (§3.3) falls out of the timing model rather than being hard-coded.
//!
//! Because a separately issued command always misses the next sector slot,
//! sequential transfers must be **chained**: [`Disk::do_batch`] takes a
//! whole batch of sector requests, pays the command set-up once, and the
//! [`sched`] module orders the batch by cylinder (elevator) and rotational
//! slot so consecutive sectors of a track stream in a single revolution —
//! the §4 controller design, recovered in simulation. Chaining never
//! weakens the label discipline: each request in a batch keeps the full
//! check-before-write semantics; a chained write whose check fails aborts
//! that sector alone, and the failure halts the chain so the remainder is
//! reissued as a fresh command (see [`sched`] for the invariant and a
//! worked example). [`ablation::UnscheduledDisk`] is the scheduler's
//! ablation twin for measuring exactly what chaining buys.
//!
//! Packs are removable and serializable ([`DiskPack::to_image`]), so file
//! systems survive across simulated machines — the openness property the
//! paper builds on. Fault injection ([`inject`]) supports the robustness
//! experiments: one-shot *write* faults — smashed labels, torn writes,
//! dropped writes — for the E8 crash/recovery campaigns, and *transient*
//! faults on reads as well as writes (soft checksum errors, seek
//! mis-positions, drive not-ready; [`DiskError::Transient`]) that the
//! bounded-retry layer above the drive absorbs and accounts
//! ([`DriveStats::soft_errors`], `retries`, `recovered`, `hard_failures`).

#![forbid(unsafe_code)]

pub mod ablation;
pub mod array;
pub mod audit;
pub mod drive;
pub mod dual;
pub mod errors;
pub mod geometry;
pub mod inject;
pub mod label;
pub mod pack;
pub mod pool;
pub mod sched;
pub mod sector;
pub mod timing;
pub mod view;

pub use ablation::{UncheckedDisk, UnscheduledDisk};
pub use array::{DriveArray, Placement};
pub use audit::{AuditRule, AuditViolation, Auditor, UnparkOutcome};
pub use drive::{Disk, DiskDrive, DriveStats};
pub use dual::DualDrive;
pub use errors::{CheckFailure, DiskError, SectorPart};
pub use geometry::{DiskAddress, DiskGeometry, DiskModel};
pub use inject::{FaultInjector, FaultKind};
pub use label::{Label, LABEL_WORDS};
pub use pack::{DiskPack, PackImageError};
pub use sched::BatchRequest;
pub use sector::{Action, Sector, SectorBuf, SectorOp, DATA_WORDS};
pub use timing::TimingModel;
pub use view::{LabelView, SectorBufView, SectorView, WriteSource, SECTOR_WORDS};
