//! Disk geometry: cylinders, heads, sectors, and disk addresses.
//!
//! A *disk address* (DA) is a single 16-bit word that uniquely names a
//! physical sector on a pack (§3.1: "an address — one word which uniquely
//! specifies a physical disk location"). The mapping from DA to
//! cylinder/head/sector is a property of the drive model and is recorded in
//! the *disk shape* portion of the disk descriptor so that the disk routines
//! can be parameterized for a particular model of disk (§3.3).

use std::fmt;

/// A one-word physical disk address.
///
/// Values `0 .. geometry.sector_count()` name sectors; [`DiskAddress::NIL`]
/// (all ones) is the distinguished "no such page" value used for the links
/// of the first and last pages of a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskAddress(pub u16);

impl DiskAddress {
    /// The distinguished nil address (no page).
    pub const NIL: DiskAddress = DiskAddress(u16::MAX);

    /// True if this is the nil address.
    pub const fn is_nil(self) -> bool {
        self.0 == u16::MAX
    }

    /// The raw word value.
    pub const fn word(self) -> u16 {
        self.0
    }
}

impl fmt::Display for DiskAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            write!(f, "DA[nil]")
        } else {
            write!(f, "DA[{}]", self.0)
        }
    }
}

/// Cylinder / head / sector coordinates of a disk address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chs {
    /// Cylinder (arm position), `0 .. cylinders`.
    pub cylinder: u16,
    /// Head (surface) within the cylinder.
    pub head: u16,
    /// Sector slot within the track.
    pub sector: u16,
}

/// The shape of a disk: how many cylinders, heads and sectors it has.
///
/// The shape is *absolute* information recorded in the disk descriptor
/// (§3.3) because software cannot discover it by reading labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Number of cylinders (arm positions).
    pub cylinders: u16,
    /// Number of heads (recording surfaces).
    pub heads: u16,
    /// Number of sectors per track.
    pub sectors: u16,
}

/// Number of words in the encoded disk-shape record.
pub const SHAPE_WORDS: usize = 3;

impl DiskGeometry {
    /// Total number of sectors on a pack of this shape.
    pub fn sector_count(&self) -> u32 {
        self.cylinders as u32 * self.heads as u32 * self.sectors as u32
    }

    /// Formatted capacity in data bytes (256 words × 2 bytes per sector).
    pub fn data_bytes(&self) -> u64 {
        self.sector_count() as u64 * crate::sector::DATA_WORDS as u64 * 2
    }

    /// True if `da` names a sector on this disk.
    pub fn contains(&self, da: DiskAddress) -> bool {
        !da.is_nil() && (da.0 as u32) < self.sector_count()
    }

    /// Decomposes a disk address into cylinder/head/sector.
    ///
    /// Consecutive DAs run around a track, then to the next head of the same
    /// cylinder, then to the next cylinder — the ordering that makes
    /// "consecutive" files fast to read (§3.5).
    ///
    /// # Panics
    ///
    /// Panics if `da` is nil or out of range; callers validate with
    /// [`DiskGeometry::contains`] first.
    pub fn to_chs(&self, da: DiskAddress) -> Chs {
        assert!(self.contains(da), "disk address {da} out of range");
        let v = da.0 as u32;
        let per_cyl = self.heads as u32 * self.sectors as u32;
        Chs {
            cylinder: (v / per_cyl) as u16,
            head: ((v % per_cyl) / self.sectors as u32) as u16,
            sector: (v % self.sectors as u32) as u16,
        }
    }

    /// Decomposes a whole batch of disk addresses at once, replacing the
    /// contents of `out` with `das`' coordinates (`out[i]` belongs to
    /// `das[i]`).
    ///
    /// Identical results to mapping [`DiskGeometry::to_chs`], but the
    /// divisions by the (runtime-valued) geometry dimensions are replaced
    /// with multiplications by precomputed reciprocals — exact for every
    /// 16-bit address because `m = ceil(2^32 / d)` satisfies
    /// `2^32 <= m*d < 2^32 + 2^16`, so `(v * m) >> 32 == v / d` for all
    /// `v < 2^16`. The drive's batch paths convert thousands of addresses
    /// per call; two hardware divisions per sector were a measurable slice
    /// of the per-op budget.
    ///
    /// # Panics
    ///
    /// Panics if any address is nil or out of range, like
    /// [`DiskGeometry::to_chs`].
    pub fn to_chs_batch(&self, das: &[DiskAddress], out: &mut Vec<Chs>) {
        out.clear();
        out.reserve(das.len());
        let count = self.sector_count();
        let per_cyl = self.heads as u32 * self.sectors as u32;
        let sectors = self.sectors as u32;
        // ceil(2^32 / d), computed without overflow as (2^32 - 1) / d + 1
        // (exact because d > 1 never divides 2^32 - 1... d == 1 would give
        // 2^32; fold that case into the u64 math below).
        let m_cyl = (u32::MAX as u64 / per_cyl as u64) + 1;
        let m_sec = (u32::MAX as u64 / sectors as u64) + 1;
        for &da in das {
            let v = da.0 as u32;
            assert!(!da.is_nil() && v < count, "disk address {da} out of range");
            let cylinder = ((v as u64 * m_cyl) >> 32) as u32;
            let in_cyl = v - cylinder * per_cyl;
            let head = ((in_cyl as u64 * m_sec) >> 32) as u32;
            let sector = in_cyl - head * sectors;
            out.push(Chs {
                cylinder: cylinder as u16,
                head: head as u16,
                sector: sector as u16,
            });
        }
    }

    /// Composes a disk address from cylinder/head/sector.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range for this geometry.
    pub fn from_chs(&self, chs: Chs) -> DiskAddress {
        assert!(
            chs.cylinder < self.cylinders && chs.head < self.heads && chs.sector < self.sectors,
            "CHS {chs:?} out of range for {self:?}"
        );
        let per_cyl = self.heads as u32 * self.sectors as u32;
        let v = chs.cylinder as u32 * per_cyl
            + chs.head as u32 * self.sectors as u32
            + chs.sector as u32;
        DiskAddress(v as u16)
    }

    /// Encodes the shape as words for the disk descriptor.
    pub fn encode(&self) -> [u16; SHAPE_WORDS] {
        [self.cylinders, self.heads, self.sectors]
    }

    /// Decodes a shape from disk-descriptor words.
    ///
    /// Returns `None` if the shape is degenerate (any dimension zero) or
    /// names more sectors than a 16-bit disk address can reach.
    pub fn decode(words: &[u16; SHAPE_WORDS]) -> Option<DiskGeometry> {
        let g = DiskGeometry {
            cylinders: words[0],
            heads: words[1],
            sectors: words[2],
        };
        if g.cylinders == 0 || g.heads == 0 || g.sectors == 0 {
            return None;
        }
        // DA = u16::MAX is reserved for NIL.
        if g.sector_count() >= u16::MAX as u32 {
            return None;
        }
        Some(g)
    }
}

/// The drive models the system supports (§2).
///
/// `Diablo31` is the standard 2.5 MB drive the paper's numbers refer to.
/// `Trident` stands in for the "disk with about twice the size and
/// performance" (§2). `Diablo44` is a double-capacity variant retained for
/// shape-parameterization tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskModel {
    /// Diablo Model 31: 203 cylinders × 2 heads × 12 sectors ≈ 2.5 MB,
    /// 40 ms/revolution.
    Diablo31,
    /// Diablo Model 44: twice the cylinders of the 31, same transfer rate.
    Diablo44,
    /// "Trident": twice the capacity *and* transfer rate of the Diablo 31.
    Trident,
}

impl DiskModel {
    /// The geometry of this model.
    pub fn geometry(self) -> DiskGeometry {
        match self {
            DiskModel::Diablo31 => DiskGeometry {
                cylinders: 203,
                heads: 2,
                sectors: 12,
            },
            DiskModel::Diablo44 => DiskGeometry {
                cylinders: 406,
                heads: 2,
                sectors: 12,
            },
            DiskModel::Trident => DiskGeometry {
                cylinders: 203,
                heads: 2,
                sectors: 24,
            },
        }
    }

    /// The timing model for this drive.
    pub fn timing(self) -> crate::timing::TimingModel {
        crate::timing::TimingModel::for_model(self)
    }

    /// Human-readable model name.
    pub fn name(self) -> &'static str {
        match self {
            DiskModel::Diablo31 => "Diablo 31",
            DiskModel::Diablo44 => "Diablo 44",
            DiskModel::Trident => "Trident",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diablo31_is_two_and_a_half_megabytes() {
        let g = DiskModel::Diablo31.geometry();
        assert_eq!(g.sector_count(), 4872);
        // 4872 sectors × 512 data bytes = 2,494,464 bytes ≈ 2.5 MB.
        assert_eq!(g.data_bytes(), 2_494_464);
    }

    #[test]
    fn trident_doubles_capacity() {
        let d = DiskModel::Diablo31.geometry();
        let t = DiskModel::Trident.geometry();
        assert_eq!(t.data_bytes(), 2 * d.data_bytes());
    }

    #[test]
    fn chs_round_trip_all_addresses() {
        let g = DiskModel::Diablo31.geometry();
        for da in 0..g.sector_count() as u16 {
            let da = DiskAddress(da);
            let chs = g.to_chs(da);
            assert_eq!(g.from_chs(chs), da);
        }
    }

    #[test]
    fn consecutive_das_stream_around_the_track() {
        let g = DiskModel::Diablo31.geometry();
        let a = g.to_chs(DiskAddress(0));
        let b = g.to_chs(DiskAddress(11));
        let c = g.to_chs(DiskAddress(12));
        let d = g.to_chs(DiskAddress(24));
        assert_eq!((a.cylinder, a.head, a.sector), (0, 0, 0));
        assert_eq!((b.cylinder, b.head, b.sector), (0, 0, 11));
        assert_eq!((c.cylinder, c.head, c.sector), (0, 1, 0));
        assert_eq!((d.cylinder, d.head, d.sector), (1, 0, 0));
    }

    #[test]
    fn chs_batch_matches_scalar_for_every_address() {
        for model in [DiskModel::Diablo31, DiskModel::Diablo44, DiskModel::Trident] {
            let g = model.geometry();
            let das: Vec<DiskAddress> = (0..g.sector_count() as u16).map(DiskAddress).collect();
            let mut batch = Vec::new();
            g.to_chs_batch(&das, &mut batch);
            assert_eq!(batch.len(), das.len());
            for (&da, &chs) in das.iter().zip(batch.iter()) {
                assert_eq!(chs, g.to_chs(da), "mismatch at {da} on {model:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chs_batch_rejects_out_of_range() {
        let g = DiskModel::Diablo31.geometry();
        g.to_chs_batch(&[DiskAddress(4872)], &mut Vec::new());
    }

    #[test]
    fn nil_address() {
        assert!(DiskAddress::NIL.is_nil());
        assert!(!DiskAddress(0).is_nil());
        let g = DiskModel::Diablo31.geometry();
        assert!(!g.contains(DiskAddress::NIL));
        assert!(g.contains(DiskAddress(0)));
        assert!(g.contains(DiskAddress(4871)));
        assert!(!g.contains(DiskAddress(4872)));
    }

    #[test]
    fn shape_encode_decode() {
        let g = DiskModel::Trident.geometry();
        let w = g.encode();
        assert_eq!(DiskGeometry::decode(&w), Some(g));
        assert_eq!(DiskGeometry::decode(&[0, 2, 12]), None);
        assert_eq!(DiskGeometry::decode(&[203, 0, 12]), None);
        assert_eq!(DiskGeometry::decode(&[203, 2, 0]), None);
        // Too many sectors for a 16-bit DA.
        assert_eq!(DiskGeometry::decode(&[6000, 2, 12]), None);
    }

    #[test]
    fn display() {
        assert_eq!(DiskAddress(17).to_string(), "DA[17]");
        assert_eq!(DiskAddress::NIL.to_string(), "DA[nil]");
    }

    #[test]
    fn model_names() {
        assert_eq!(DiskModel::Diablo31.name(), "Diablo 31");
        assert_eq!(DiskModel::Diablo44.name(), "Diablo 44");
        assert_eq!(DiskModel::Trident.name(), "Trident");
    }
}
