//! Runtime §3.3 invariant auditor — the dynamic half of the label-discipline
//! checker (the static half is `cargo xtask lint`).
//!
//! A [`Auditor`] is a shadow model attached to a [`crate::DiskDrive`]: every
//! serviced sector operation is mirrored against an *independent*
//! re-implementation of the §3.3 semantics, and a set of discipline
//! assertions is evaluated per observation:
//!
//! * **check-before-write** — an operation that writes the value part must
//!   check (or rewrite) the label in the same sector visit; a label rewrite
//!   must have been preceded by a successful label check of the same sector
//!   (the two-pass allocate/free protocol). Format-style full writes
//!   (header action = write) are the sanctioned exception.
//! * **model divergence** — the drive's outcome (result, medium state,
//!   memory buffer — including 0-wildcard capture) must equal the reference
//!   model's prediction. Fault-injected and damaged-medium operations are
//!   exempt: the model predicts the *clean* outcome.
//! * **epoch monotonicity** — [`crate::Disk::write_epoch`] must never move
//!   backwards, and must advance exactly when a write op is attempted: the
//!   hint cache's staleness gating depends on it.
//! * **park/drain accounting** — every dirty page parked by a write-behind
//!   buffer must reach the medium (an observed successful value write to its
//!   address) before the buffer reports it drained; a drain claim without a
//!   covering write is data loss.
//!
//! Violations are recorded, surfaced as `audit.violation` trace events, and
//! — in *strict* mode (`ALTO_AUDIT=1` in the environment, as CI sets it) —
//! turned into panics so any test run fails loudly.
//!
//! The auditor never touches the [`alto_sim::SimClock`]: simulated time with
//! the auditor enabled is bit-identical to time with it disabled, and when it
//! is disabled (the default) the drive pays a single `Option` test per
//! operation.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Mutex};

use alto_sim::{SimTime, Trace};

use crate::errors::{CheckFailure, DiskError, SectorPart};
use crate::geometry::DiskAddress;
use crate::sector::{Action, Sector, SectorBuf, SectorOp};

/// The invariant families the auditor enforces (ARCHITECTURE.md maps each to
/// its §3.3 sentence and to the static lint rule covering the same ground).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditRule {
    /// A value write with no label check in the same sector visit.
    CheckBeforeWrite,
    /// A label rewrite with no prior successful label check of that sector.
    UnverifiedLabelWrite,
    /// Drive outcome diverged from the §3.3 reference model.
    ModelDivergence,
    /// `write_epoch` regressed or failed to advance on a write.
    EpochRegression,
    /// A parked dirty page was reported drained without reaching the medium,
    /// or an unpark had no matching park.
    ParkAccounting,
}

impl fmt::Display for AuditRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AuditRule::CheckBeforeWrite => "check-before-write",
            AuditRule::UnverifiedLabelWrite => "unverified-label-write",
            AuditRule::ModelDivergence => "model-divergence",
            AuditRule::EpochRegression => "epoch-regression",
            AuditRule::ParkAccounting => "park-accounting",
        })
    }
}

/// One recorded violation.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Which invariant family was violated.
    pub rule: AuditRule,
    /// The sector involved.
    pub da: DiskAddress,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.da, self.detail)
    }
}

/// How a write-behind buffer disposed of a parked page (see
/// [`crate::Disk::note_unpark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnparkOutcome {
    /// The buffer claims the page reached the medium.
    Drained,
    /// The drain attempt failed and the page was parked again.
    Reparked,
    /// The buffer discarded the page without writing it.
    Dropped,
}

/// How the observed operation reached its outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Normal medium, no injected fault: the reference model must agree.
    Clean,
    /// A fault injector transformed the operation or its result.
    Injected,
    /// The sector is damaged; the drive served the header/label and hard-
    /// errored on the value.
    Damaged,
}

/// Everything the drive tells the auditor about one serviced operation.
#[derive(Debug)]
pub struct Observed<'a> {
    /// The sector address.
    pub da: DiskAddress,
    /// The operation as issued.
    pub op: SectorOp,
    /// Medium contents before the operation.
    pub sector_before: &'a Sector,
    /// Memory buffer before the operation.
    pub buf_before: &'a SectorBuf,
    /// Medium contents after the operation.
    pub sector_after: &'a Sector,
    /// Memory buffer after the operation.
    pub buf_after: &'a SectorBuf,
    /// The drive's result.
    pub result: &'a Result<(), DiskError>,
    /// Clean, injected, or damaged.
    pub provenance: Provenance,
    /// The drive's `write_epoch` after the operation.
    pub epoch: u64,
}

#[derive(Debug, Default)]
struct State {
    strict: bool,
    ops_observed: u64,
    last_epoch: u64,
    /// Sectors whose label was verified by a successful check and not yet
    /// invalidated by a label write or a failed check.
    verified: HashSet<u16>,
    /// Parked dirty pages by address: page number and whether a successful
    /// value write to the address has been observed since the park.
    parked: HashMap<u16, ParkEntry>,
    violations: Vec<AuditViolation>,
}

#[derive(Debug, Clone, Copy)]
struct ParkEntry {
    page: u16,
    covered: bool,
}

/// A cloneable handle to the audit state; the drive holds one and tests hold
/// clones to query violations afterwards.
#[derive(Debug, Clone, Default)]
pub struct Auditor {
    state: Arc<Mutex<State>>,
}

impl Auditor {
    /// Locks the shadow state. A panic while the lock is held can only come
    /// from a strict-mode violation, which is already a test failure;
    /// recovering the poisoned state keeps the remaining queries usable.
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Auditor {
    /// A fresh auditor. In `strict` mode every violation panics (after being
    /// recorded and traced), so an auditor-enabled test run fails loudly.
    pub fn new(strict: bool) -> Auditor {
        Auditor {
            state: Arc::new(Mutex::new(State {
                strict,
                ..State::default()
            })),
        }
    }

    /// The auditor the environment asks for: `ALTO_AUDIT=1` (or `true` /
    /// `strict`) enables a strict auditor on every new drive; anything else
    /// (including unset) disables auditing.
    pub fn from_env() -> Option<Auditor> {
        match std::env::var("ALTO_AUDIT") {
            Ok(v) if matches!(v.as_str(), "1" | "true" | "strict") => Some(Auditor::new(true)),
            _ => None,
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> Vec<AuditViolation> {
        self.lock().violations.clone()
    }

    /// Number of violations recorded so far.
    pub fn violation_count(&self) -> usize {
        self.lock().violations.len()
    }

    /// Sector operations mirrored so far.
    pub fn ops_observed(&self) -> u64 {
        self.lock().ops_observed
    }

    /// Parked dirty pages not yet drained or dropped. A quiesced system
    /// (all streams closed) should report zero.
    pub fn parked_outstanding(&self) -> usize {
        self.lock().parked.len()
    }

    /// Forgets the epoch baseline; the drive calls this from `reset_stats`
    /// (which rewinds the epoch counter legitimately).
    pub(crate) fn note_epoch_reset(&self) {
        self.lock().last_epoch = 0;
    }

    fn violate(
        &self,
        trace: &Trace,
        now: SimTime,
        rule: AuditRule,
        da: DiskAddress,
        detail: String,
    ) {
        let strict = {
            let mut st = self.lock();
            st.violations.push(AuditViolation {
                rule,
                da,
                detail: detail.clone(),
            });
            st.strict
        };
        trace.record(
            now,
            "audit.violation",
            format!("[{rule}] at {da}: {detail}"),
        );
        if strict {
            panic!("audit violation [{rule}] at {da}: {detail}");
        }
    }

    /// Mirror one serviced operation (called by the drive after the medium
    /// and buffer have settled).
    pub(crate) fn observe(&self, obs: &Observed<'_>, trace: &Trace, now: SimTime) {
        self.lock().ops_observed += 1;
        let op = obs.op;
        let da = obs.da;

        // Check-before-write: a value write whose label action is a plain
        // read never compared the label against what the software believes
        // is there — the §3.3 discipline is gone even if the bits happen to
        // match.
        if op.value == Action::Write && op.label == Action::Read {
            self.violate(
                trace,
                now,
                AuditRule::CheckBeforeWrite,
                da,
                format!("value write with label action Read ({op:?}) — no label check in this sector visit"),
            );
        }

        // Two-pass protocol: a label rewrite (that is not a format-style
        // full write) trusts a free/old label observed earlier; the §3.3
        // allocate/free protocol earns that trust with a label-check pass of
        // the same sector.
        // (the lock must drop before `violate` re-locks the state)
        let verified = self.lock().verified.contains(&da.0);
        if op.label == Action::Write && op.header != Action::Write && !verified {
            self.violate(
                trace,
                now,
                AuditRule::UnverifiedLabelWrite,
                da,
                format!(
                    "label rewrite ({op:?}) with no prior successful label check of this sector"
                ),
            );
        }

        // Shadow-model replay, clean operations only: the model predicts the
        // clean outcome, so injected faults and damaged media are exempt.
        if obs.provenance == Provenance::Clean {
            let (predicted, model_sector, model_buf) =
                predict(op, da, obs.sector_before, obs.buf_before);
            if !results_agree(&predicted, obs.result) {
                self.violate(
                    trace,
                    now,
                    AuditRule::ModelDivergence,
                    da,
                    format!(
                        "drive returned {:?}, reference model predicts {predicted:?} for {op:?}",
                        obs.result
                    ),
                );
            } else {
                if &model_sector != obs.sector_after {
                    self.violate(
                        trace,
                        now,
                        AuditRule::ModelDivergence,
                        da,
                        format!("medium state diverged from reference model after {op:?}"),
                    );
                }
                if &model_buf != obs.buf_after {
                    self.violate(
                        trace,
                        now,
                        AuditRule::ModelDivergence,
                        da,
                        format!(
                            "memory buffer diverged from reference model after {op:?} \
                             (0-wildcard capture semantics?)"
                        ),
                    );
                }
            }
        }

        // Epoch monotonicity: the epoch may never regress, and a write op
        // must advance it (it is counted at the attempt, before the check).
        {
            let last = self.lock().last_epoch;
            if obs.epoch < last {
                self.violate(
                    trace,
                    now,
                    AuditRule::EpochRegression,
                    da,
                    format!("write_epoch moved backwards: {} -> {}", last, obs.epoch),
                );
            } else if op.writes() && obs.epoch == last && self.lock().ops_observed > 1 {
                self.violate(
                    trace,
                    now,
                    AuditRule::EpochRegression,
                    da,
                    format!(
                        "write op {op:?} did not advance write_epoch (still {})",
                        obs.epoch
                    ),
                );
            }
            self.lock().last_epoch = obs.epoch;
        }

        // Track label verification for the two-pass protocol.
        {
            let mut st = self.lock();
            match obs.result {
                Ok(()) => match op.label {
                    Action::Check => {
                        st.verified.insert(da.0);
                    }
                    Action::Write => {
                        st.verified.remove(&da.0);
                    }
                    Action::Read => {}
                },
                Err(DiskError::Check(_)) => {
                    st.verified.remove(&da.0);
                }
                // A damaged value part still completes the label check (the
                // label precedes the value on the platter), so the two-pass
                // protocol may proceed to quarantine the sector.
                Err(DiskError::HardError {
                    part: SectorPart::Value,
                    ..
                }) if op.label == Action::Check => {
                    st.verified.insert(da.0);
                }
                Err(_) => {}
            }

            // Park coverage: a successful value write to a parked address is
            // the medium arrival its drain claim needs.
            if op.value == Action::Write && obs.result.is_ok() {
                if let Some(entry) = st.parked.get_mut(&da.0) {
                    entry.covered = true;
                }
            }
        }
    }

    /// A write-behind buffer parked a dirty page destined for `da`.
    pub(crate) fn note_park(&self, da: DiskAddress, page: u16) {
        self.lock().parked.insert(
            da.0,
            ParkEntry {
                page,
                covered: false,
            },
        );
    }

    /// A write-behind buffer disposed of the page parked at `da`.
    pub(crate) fn note_unpark(
        &self,
        da: DiskAddress,
        page: u16,
        outcome: UnparkOutcome,
        trace: &Trace,
        now: SimTime,
    ) {
        let entry = self.lock().parked.remove(&da.0);
        match (entry, outcome) {
            (Some(e), UnparkOutcome::Drained) => {
                if !e.covered {
                    self.violate(
                        trace,
                        now,
                        AuditRule::ParkAccounting,
                        da,
                        format!(
                            "page {page} reported drained but no successful value write \
                             reached {da} since it was parked — the dirty page was dropped"
                        ),
                    );
                }
            }
            (Some(e), UnparkOutcome::Reparked) => {
                // Back in the buffer, coverage starts over.
                self.lock().parked.insert(
                    da.0,
                    ParkEntry {
                        page: e.page,
                        covered: false,
                    },
                );
            }
            (Some(_), UnparkOutcome::Dropped) => {
                self.violate(
                    trace,
                    now,
                    AuditRule::ParkAccounting,
                    da,
                    format!("parked dirty page {page} discarded without a write"),
                );
            }
            (None, _) => {
                self.violate(
                    trace,
                    now,
                    AuditRule::ParkAccounting,
                    da,
                    format!("unpark ({outcome:?}) of page {page} that was never parked"),
                );
            }
        }
    }
}

/// `DiskError` equality for model comparison. `MalformedOp` carries a static
/// message that is an implementation detail; the *kind* is what must agree.
fn results_agree(a: &Result<(), DiskError>, b: &Result<(), DiskError>) -> bool {
    match (a, b) {
        (Err(DiskError::MalformedOp(_)), Err(DiskError::MalformedOp(_))) => true,
        _ => a == b,
    }
}

/// The §3.3 reference model, implemented independently of
/// [`crate::sector::apply`]: a single pass over the three parts in disk
/// order, with check-abort and 0-wildcard capture, on *copies* of the medium
/// and buffer. Returns the predicted result and final states.
fn predict(
    op: SectorOp,
    da: DiskAddress,
    sector: &Sector,
    buf: &SectorBuf,
) -> (Result<(), DiskError>, Sector, SectorBuf) {
    let mut s = sector.clone();
    let mut m = buf.clone();

    // Hardware rule: once a write is begun it continues through the rest of
    // the sector; a later read or check is malformed and nothing happens.
    let mut begun = false;
    for action in [op.header, op.label, op.value] {
        match action {
            Action::Write => begun = true,
            Action::Read | Action::Check if begun => {
                return (
                    Err(DiskError::MalformedOp("predicted: action after write")),
                    s,
                    m,
                );
            }
            _ => {}
        }
    }

    let parts: [(Action, SectorPart); 3] = [
        (op.header, SectorPart::Header),
        (op.label, SectorPart::Label),
        (op.value, SectorPart::Value),
    ];
    for (action, part) in parts {
        let (disk_words, mem_words): (&mut [u16], &mut [u16]) = match part {
            SectorPart::Header => (&mut s.header, &mut m.header),
            SectorPart::Label => (&mut s.label, &mut m.label),
            SectorPart::Value => (&mut s.data, &mut m.data),
        };
        match action {
            Action::Read => mem_words.copy_from_slice(disk_words),
            Action::Write => disk_words.copy_from_slice(mem_words),
            Action::Check => {
                for (i, (mem, disk)) in mem_words.iter_mut().zip(disk_words.iter()).enumerate() {
                    if *mem == 0 {
                        // 0-wildcard: pattern-match and capture the disk word.
                        *mem = *disk;
                    } else if *mem != *disk {
                        // First mismatch aborts the whole operation; because
                        // no write precedes a check, the medium is untouched.
                        return (
                            Err(DiskError::Check(CheckFailure {
                                da,
                                part,
                                word_index: i,
                                expected: *mem,
                                found: *disk,
                            })),
                            s,
                            m,
                        );
                    }
                }
            }
        }
    }
    (Ok(()), s, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use crate::sector::DATA_WORDS;

    fn live_sector() -> Sector {
        let mut s = Sector::formatted(1, DiskAddress(5));
        s.label = Label {
            fid: [10, 20],
            version: 1,
            page_number: 2,
            length: 512,
            next: DiskAddress(6),
            prev: DiskAddress(4),
        }
        .encode();
        s.data = [0x5A5A; DATA_WORDS];
        s
    }

    #[test]
    fn model_predicts_clean_read() {
        let s = live_sector();
        let mut b = SectorBuf::with_label(s.decoded_label());
        b.header = s.header;
        let (r, s2, b2) = predict(SectorOp::READ, DiskAddress(5), &s, &b);
        assert_eq!(r, Ok(()));
        assert_eq!(s2, s);
        assert_eq!(b2.data, s.data);
    }

    #[test]
    fn model_predicts_wildcard_capture() {
        let s = live_sector();
        let b = SectorBuf::zeroed();
        let (r, _, b2) = predict(SectorOp::READ, DiskAddress(5), &s, &b);
        assert_eq!(r, Ok(()));
        assert_eq!(b2.label, s.label);
        assert_eq!(b2.header, s.header);
    }

    #[test]
    fn model_predicts_check_abort_before_write() {
        let s = live_sector();
        let mut wrong = s.decoded_label();
        wrong.page_number = 9;
        let mut b = SectorBuf::with_label(wrong);
        b.data = [0xDEAD; DATA_WORDS];
        let (r, s2, _) = predict(SectorOp::WRITE, DiskAddress(5), &s, &b);
        assert!(matches!(r, Err(DiskError::Check(_))));
        assert_eq!(s2, s, "aborted op must leave the medium untouched");
    }

    #[test]
    fn model_rejects_malformed_op() {
        let bad = SectorOp {
            header: Action::Write,
            label: Action::Check,
            value: Action::Write,
        };
        let s = live_sector();
        let (r, s2, _) = predict(bad, DiskAddress(5), &s, &SectorBuf::zeroed());
        assert!(matches!(r, Err(DiskError::MalformedOp(_))));
        assert_eq!(s2, s);
    }

    #[test]
    fn park_then_covered_drain_is_clean() {
        let aud = Auditor::new(false);
        let trace = Trace::new();
        aud.note_park(DiskAddress(7), 3);
        // Simulate the covering write arriving.
        aud.lock().parked.get_mut(&7).unwrap().covered = true;
        aud.note_unpark(
            DiskAddress(7),
            3,
            UnparkOutcome::Drained,
            &trace,
            SimTime::ZERO,
        );
        assert_eq!(aud.violation_count(), 0);
        assert_eq!(aud.parked_outstanding(), 0);
    }

    #[test]
    fn uncovered_drain_claim_is_flagged() {
        let aud = Auditor::new(false);
        let trace = Trace::new();
        aud.note_park(DiskAddress(7), 3);
        aud.note_unpark(
            DiskAddress(7),
            3,
            UnparkOutcome::Drained,
            &trace,
            SimTime::ZERO,
        );
        assert_eq!(aud.violation_count(), 1);
        assert_eq!(aud.violations()[0].rule, AuditRule::ParkAccounting);
    }

    #[test]
    #[should_panic(expected = "audit violation")]
    fn strict_mode_panics() {
        let aud = Auditor::new(true);
        let trace = Trace::new();
        aud.note_park(DiskAddress(7), 3);
        aud.note_unpark(
            DiskAddress(7),
            3,
            UnparkOutcome::Dropped,
            &trace,
            SimTime::ZERO,
        );
    }
}
