//! Disk error types.

use crate::geometry::DiskAddress;
use std::fmt;

/// The three independently addressable parts of a sector (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SectorPart {
    /// Pack number and disk address.
    Header,
    /// The seven-word label.
    Label,
    /// The 256 data words.
    Value,
}

impl fmt::Display for SectorPart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SectorPart::Header => "header",
            SectorPart::Label => "label",
            SectorPart::Value => "value",
        })
    }
}

/// Details of a failed check action.
///
/// The check compared `expected` (the memory word, non-zero hence not a
/// wildcard) against `found` (the disk word) at `word_index` within `part`
/// and they differed, so the whole sector operation was aborted (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckFailure {
    /// Sector at which the check failed.
    pub da: DiskAddress,
    /// Which part of the sector mismatched.
    pub part: SectorPart,
    /// Word offset of the first mismatch within the part.
    pub word_index: usize,
    /// The memory word the check demanded.
    pub expected: u16,
    /// The word actually on the disk.
    pub found: u16,
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "label check error at {}: {} word {} is {:#06x}, expected {:#06x}",
            self.da, self.part, self.word_index, self.found, self.expected
        )
    }
}

/// Errors surfaced by the simulated drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskError {
    /// No pack is loaded in the drive.
    NoPack,
    /// The disk address does not exist on the loaded pack's geometry.
    InvalidAddress(DiskAddress),
    /// A check action found a mismatch and aborted the operation.
    Check(CheckFailure),
    /// The action sequence was malformed: a read or check followed a write,
    /// violating "once a write is begun, it must continue through the rest
    /// of the sector" (§3.3).
    MalformedOp(&'static str),
    /// An unrecoverable hardware read error (injected damage); the sector
    /// should be quarantined by the Scavenger.
    HardError {
        /// Sector that failed.
        da: DiskAddress,
        /// Part in which the failure occurred.
        part: SectorPart,
    },
    /// A transient failure — soft checksum error, seek mis-position, drive
    /// not ready — that is expected to clear if the operation is simply
    /// re-issued. The medium is untouched. The retry layer above the drive
    /// absorbs these (bounded attempts, one-revolution backoff) and
    /// escalates to [`DiskError::HardError`] only when they persist.
    Transient {
        /// Sector at which the failure occurred.
        da: DiskAddress,
        /// Part in which the failure manifested.
        part: SectorPart,
        /// How many consecutive times this fault has now fired (1-based).
        attempt: u32,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::NoPack => f.write_str("no pack loaded in drive"),
            DiskError::InvalidAddress(da) => write!(f, "invalid disk address {da}"),
            DiskError::Check(c) => c.fmt(f),
            DiskError::MalformedOp(why) => write!(f, "malformed sector operation: {why}"),
            DiskError::HardError { da, part } => {
                write!(f, "unrecoverable read error at {da} ({part})")
            }
            DiskError::Transient { da, part, attempt } => {
                write!(f, "transient error at {da} ({part}), attempt {attempt}")
            }
        }
    }
}

impl std::error::Error for DiskError {}

impl From<CheckFailure> for DiskError {
    fn from(c: CheckFailure) -> Self {
        DiskError::Check(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_check_failure() {
        let c = CheckFailure {
            da: DiskAddress(7),
            part: SectorPart::Label,
            word_index: 2,
            expected: 1,
            found: 0xFFFF,
        };
        let s = c.to_string();
        assert!(s.contains("DA[7]"));
        assert!(s.contains("label"));
        assert!(s.contains("word 2"));
    }

    #[test]
    fn display_errors() {
        assert!(DiskError::NoPack.to_string().contains("no pack"));
        assert!(DiskError::InvalidAddress(DiskAddress::NIL)
            .to_string()
            .contains("nil"));
        assert!(DiskError::MalformedOp("read after write")
            .to_string()
            .contains("read after write"));
        let h = DiskError::HardError {
            da: DiskAddress(3),
            part: SectorPart::Value,
        };
        assert!(h.to_string().contains("unrecoverable"));
        let t = DiskError::Transient {
            da: DiskAddress(3),
            part: SectorPart::Value,
            attempt: 2,
        };
        assert!(t.to_string().contains("transient"));
        assert!(t.to_string().contains("attempt 2"));
    }

    #[test]
    fn from_check_failure() {
        let c = CheckFailure {
            da: DiskAddress(1),
            part: SectorPart::Header,
            word_index: 0,
            expected: 5,
            found: 6,
        };
        assert_eq!(DiskError::from(c), DiskError::Check(c));
    }
}
