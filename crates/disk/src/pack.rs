//! Removable disk packs and their serialized image format.
//!
//! A pack is the removable medium: every sector's header carries the pack
//! number (different for each removable pack, §3.3). Packs serialize to a
//! self-describing byte image so that simulated file systems persist across
//! host runs and can be moved between simulated drives — the moral
//! equivalent of carrying a pack to another Alto.
//!
//! The image format is defined word-by-word here rather than via a generic
//! serializer because representation standardization below the software is
//! the paper's central policy (§1).

use std::fmt;
use std::path::Path;

use crate::geometry::{DiskAddress, DiskGeometry, DiskModel};
use crate::label::LABEL_WORDS;
use crate::sector::{Sector, DATA_WORDS, HEADER_WORDS};

/// Magic bytes identifying a pack image.
const MAGIC: &[u8; 8] = b"ALTOIMG1";

/// Errors decoding a pack image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackImageError {
    /// The image does not begin with the pack magic.
    BadMagic,
    /// The model tag is unknown.
    UnknownModel(u16),
    /// The image is shorter than its declared contents.
    Truncated,
    /// The declared sector count does not match the model's geometry.
    GeometryMismatch {
        /// Sector count declared in the image.
        declared: u32,
        /// Sector count implied by the model.
        expected: u32,
    },
    /// An I/O error reading or writing an image file.
    Io(String),
}

impl fmt::Display for PackImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackImageError::BadMagic => f.write_str("not a pack image (bad magic)"),
            PackImageError::UnknownModel(m) => write!(f, "unknown disk model tag {m}"),
            PackImageError::Truncated => f.write_str("pack image truncated"),
            PackImageError::GeometryMismatch { declared, expected } => write!(
                f,
                "pack image declares {declared} sectors but model has {expected}"
            ),
            PackImageError::Io(e) => write!(f, "pack image I/O error: {e}"),
        }
    }
}

impl std::error::Error for PackImageError {}

/// A removable disk pack: the medium, not the drive.
#[derive(Debug, Clone)]
pub struct DiskPack {
    model: DiskModel,
    pack_number: u16,
    sectors: Vec<Sector>,
    /// Sectors with unrecoverable media damage (value part unreadable).
    hard_damaged: std::collections::BTreeSet<u16>,
}

impl DiskPack {
    /// Creates a freshly formatted pack: every sector self-identifying in
    /// its header, with a free (all-ones) label and all-ones data.
    pub fn formatted(model: DiskModel, pack_number: u16) -> DiskPack {
        let geometry = model.geometry();
        let sectors = (0..geometry.sector_count() as u16)
            .map(|da| Sector::formatted(pack_number, DiskAddress(da)))
            .collect();
        DiskPack {
            model,
            pack_number,
            sectors,
            hard_damaged: Default::default(),
        }
    }

    /// The drive model this pack is formatted for.
    pub fn model(&self) -> DiskModel {
        self.model
    }

    /// The pack number written into every sector header.
    pub fn pack_number(&self) -> u16 {
        self.pack_number
    }

    /// The pack's geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.model.geometry()
    }

    /// Shared access to a sector (for inspection; the drive goes through
    /// [`DiskPack::sector_mut`] with full check semantics).
    pub fn sector(&self, da: DiskAddress) -> Option<&Sector> {
        self.sectors.get(da.0 as usize)
    }

    /// Mutable access to a sector.
    pub fn sector_mut(&mut self, da: DiskAddress) -> Option<&mut Sector> {
        self.sectors.get_mut(da.0 as usize)
    }

    /// Marks a sector as having unrecoverable media damage; value-part
    /// accesses through a drive will fail with a hard error until the
    /// Scavenger quarantines it.
    pub fn damage(&mut self, da: DiskAddress) {
        self.hard_damaged.insert(da.0);
    }

    /// True if the sector has unrecoverable media damage.
    pub fn is_damaged(&self, da: DiskAddress) -> bool {
        self.hard_damaged.contains(&da.0)
    }

    /// Iterates over `(address, sector)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (DiskAddress, &Sector)> {
        self.sectors
            .iter()
            .enumerate()
            .map(|(i, s)| (DiskAddress(i as u16), s))
    }

    /// Counts sectors whose labels are free / in use / bad (a formatting
    /// and test convenience; real software must go through the drive).
    pub fn label_census(&self) -> (usize, usize, usize) {
        let mut free = 0;
        let mut used = 0;
        let mut bad = 0;
        for s in &self.sectors {
            let l = s.decoded_label();
            if l.is_free() {
                free += 1;
            } else if l.is_bad() {
                bad += 1;
            } else {
                used += 1;
            }
        }
        (free, used, bad)
    }

    /// Serializes the pack to a byte image.
    pub fn to_image(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            MAGIC.len() + 8 + self.sectors.len() * (HEADER_WORDS + LABEL_WORDS + DATA_WORDS) * 2,
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&model_tag(self.model).to_le_bytes());
        out.extend_from_slice(&self.pack_number.to_le_bytes());
        out.extend_from_slice(&(self.sectors.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.hard_damaged.len() as u32).to_le_bytes());
        for &da in &self.hard_damaged {
            out.extend_from_slice(&da.to_le_bytes());
        }
        for s in &self.sectors {
            for w in s.header.iter().chain(s.label.iter()).chain(s.data.iter()) {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a pack from a byte image.
    pub fn from_image(bytes: &[u8]) -> Result<DiskPack, PackImageError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(PackImageError::BadMagic);
        }
        let model = model_from_tag(r.u16()?)?;
        let pack_number = r.u16()?;
        let declared = r.u32()?;
        let expected = model.geometry().sector_count();
        if declared != expected {
            return Err(PackImageError::GeometryMismatch { declared, expected });
        }
        let damaged_count = r.u32()?;
        let mut hard_damaged = std::collections::BTreeSet::new();
        for _ in 0..damaged_count {
            hard_damaged.insert(r.u16()?);
        }
        let mut sectors = Vec::with_capacity(declared as usize);
        for _ in 0..declared {
            let mut header = [0u16; HEADER_WORDS];
            let mut label = [0u16; LABEL_WORDS];
            let mut data = [0u16; DATA_WORDS];
            for w in &mut header {
                *w = r.u16()?;
            }
            for w in &mut label {
                *w = r.u16()?;
            }
            for w in &mut data {
                *w = r.u16()?;
            }
            sectors.push(Sector {
                header,
                label,
                data,
            });
        }
        Ok(DiskPack {
            model,
            pack_number,
            sectors,
            hard_damaged,
        })
    }

    /// Writes the pack image to a file.
    pub fn save(&self, path: &Path) -> Result<(), PackImageError> {
        std::fs::write(path, self.to_image()).map_err(|e| PackImageError::Io(e.to_string()))
    }

    /// Reads a pack image from a file.
    pub fn load(path: &Path) -> Result<DiskPack, PackImageError> {
        let bytes = std::fs::read(path).map_err(|e| PackImageError::Io(e.to_string()))?;
        DiskPack::from_image(&bytes)
    }
}

fn model_tag(model: DiskModel) -> u16 {
    match model {
        DiskModel::Diablo31 => 0,
        DiskModel::Diablo44 => 1,
        DiskModel::Trident => 2,
    }
}

fn model_from_tag(tag: u16) -> Result<DiskModel, PackImageError> {
    match tag {
        0 => Ok(DiskModel::Diablo31),
        1 => Ok(DiskModel::Diablo44),
        2 => Ok(DiskModel::Trident),
        other => Err(PackImageError::UnknownModel(other)),
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PackImageError> {
        let end = self.pos.checked_add(n).ok_or(PackImageError::Truncated)?;
        if end > self.bytes.len() {
            return Err(PackImageError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, PackImageError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, PackImageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    #[test]
    fn formatted_pack_census() {
        let pack = DiskPack::formatted(DiskModel::Diablo31, 42);
        let (free, used, bad) = pack.label_census();
        assert_eq!(free, 4872);
        assert_eq!(used, 0);
        assert_eq!(bad, 0);
        assert_eq!(pack.pack_number(), 42);
    }

    #[test]
    fn headers_are_self_identifying() {
        let pack = DiskPack::formatted(DiskModel::Diablo31, 7);
        for (da, s) in pack.iter() {
            assert_eq!(s.header, [7, da.0]);
        }
    }

    #[test]
    fn image_round_trip() {
        let mut pack = DiskPack::formatted(DiskModel::Diablo31, 5);
        // Scribble a recognizable sector.
        let s = pack.sector_mut(DiskAddress(100)).unwrap();
        s.label = Label {
            fid: [1, 2],
            version: 1,
            page_number: 0,
            length: 12,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        }
        .encode();
        s.data[0] = 0xCAFE;
        pack.damage(DiskAddress(200));

        let image = pack.to_image();
        let back = DiskPack::from_image(&image).unwrap();
        assert_eq!(back.model(), DiskModel::Diablo31);
        assert_eq!(back.pack_number(), 5);
        assert_eq!(
            back.sector(DiskAddress(100)).unwrap(),
            pack.sector(DiskAddress(100)).unwrap()
        );
        assert!(back.is_damaged(DiskAddress(200)));
        assert!(!back.is_damaged(DiskAddress(100)));
    }

    #[test]
    fn image_rejects_bad_magic() {
        let mut image = DiskPack::formatted(DiskModel::Diablo31, 1).to_image();
        image[0] = b'X';
        assert_eq!(
            DiskPack::from_image(&image).unwrap_err(),
            PackImageError::BadMagic
        );
    }

    #[test]
    fn image_rejects_truncation() {
        let image = DiskPack::formatted(DiskModel::Diablo31, 1).to_image();
        let cut = &image[..image.len() / 2];
        assert_eq!(
            DiskPack::from_image(cut).unwrap_err(),
            PackImageError::Truncated
        );
    }

    #[test]
    fn image_rejects_unknown_model() {
        let mut image = DiskPack::formatted(DiskModel::Diablo31, 1).to_image();
        image[8] = 99; // model tag low byte
        assert!(matches!(
            DiskPack::from_image(&image).unwrap_err(),
            PackImageError::UnknownModel(99)
        ));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("alto-disk-pack-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pack.img");
        let pack = DiskPack::formatted(DiskModel::Trident, 9);
        pack.save(&path).unwrap();
        let back = DiskPack::load(&path).unwrap();
        assert_eq!(back.model(), DiskModel::Trident);
        assert_eq!(back.pack_number(), 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_sector_access() {
        let pack = DiskPack::formatted(DiskModel::Diablo31, 1);
        assert!(pack.sector(DiskAddress(4871)).is_some());
        assert!(pack.sector(DiskAddress(4872)).is_none());
        assert!(pack.sector(DiskAddress::NIL).is_none());
    }
}
