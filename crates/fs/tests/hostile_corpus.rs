//! Regression corpus replay: every minimized hostile image that ever
//! broke recovery (plus hand-crafted mutants for specific invariants)
//! must keep passing the full [`alto_fs::hostile::exercise`] contract.
//!
//! Each `tests/corpus/*.case` file is a deterministic recipe in the
//! format of [`alto_fs::hostile::Case::to_text`]. Its leading comment
//! records the failure signature the case produced before the fix
//! landed. The replay accepts either a completed contract
//! (`Ok(Some(_))`) or the one sanctioned clean refusal (`Ok(None)`:
//! the descriptor leader's fixed sector is physically dead); anything
//! else — an error string or a panic — fails the suite.

use std::panic::{catch_unwind, AssertUnwindSafe};

use alto_fs::hostile::{run_case, Case};

#[test]
fn corpus_replays_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 12,
        "corpus unexpectedly small: {} cases",
        paths.len()
    );

    let mut failures = Vec::new();
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).expect("readable case file");
        let case = match Case::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("{name}: unparseable: {e}"));
                continue;
            }
        };
        match catch_unwind(AssertUnwindSafe(|| run_case(&case))) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => failures.push(format!("{name}: {e}")),
            Err(_) => failures.push(format!("{name}: panicked")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus case(s) regressed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The corpus text format round-trips: parse -> to_text -> parse.
#[test]
fn corpus_text_round_trips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus");
    for entry in std::fs::read_dir(dir).expect("corpus directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|x| x != "case") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable case file");
        let case = Case::parse(&text).expect("corpus case parses");
        let reparsed = Case::parse(&case.to_text()).expect("serialized case parses");
        assert_eq!(case, reparsed, "{} does not round-trip", path.display());
    }
}
