//! Scavenger property tests over targeted hostile images (ROADMAP 5a).
//!
//! The sweep in `bench --bin fuzz` samples the mutation space at random;
//! these tests pin the specific shapes the issue calls out — zero-length
//! files, truncated final pages, duplicate absolute names — on both the
//! single-drive and the K=4 [`DriveArray`] bases, and assert the full
//! [`exercise`] contract (never panic, §3.3 audit clean, second scavenge
//! a fixed point, stable bytes).

use alto_disk::{Auditor, DiskDrive, DiskModel, DriveArray, Placement};
use alto_fs::hostile::{
    apply_edit, build_array4, build_single, exercise, no_service, random_case, run_case, Edit,
    EditOp, LabelField,
};
use alto_fs::{dir, FileSystem};
use alto_sim::{SimClock, Trace};

/// A fresh single-drive fs holding only zero-length files (one never
/// written, several written with empty bodies), crashed with a stale map.
fn zero_length_single() -> DiskDrive {
    let drive =
        DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive).expect("format");
    let root = fs.root_dir();
    for i in 0..5u32 {
        let f = dir::create_named_file(&mut fs, root, &format!("empty{i}.dat")).expect("create");
        if i != 0 {
            fs.write_file(f, &[]).expect("write empty");
        }
    }
    fs.crash()
}

fn zero_length_array4() -> DriveArray {
    let array = DriveArray::with_arms(
        4,
        Placement::Range,
        SimClock::new(),
        Trace::new(),
        DiskModel::Diablo31,
    );
    let mut fs = FileSystem::format(array).expect("format");
    let root = fs.root_dir();
    for i in 0..5u32 {
        let f = dir::create_named_file(&mut fs, root, &format!("empty{i}.dat")).expect("create");
        if i != 0 {
            fs.write_file(f, &[]).expect("write empty");
        }
    }
    fs.crash()
}

#[test]
fn zero_length_files_reach_a_fixed_point_single() {
    let mut drive = zero_length_single();
    let auditors = vec![drive.enable_audit()];
    let out = exercise(drive, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

#[test]
fn zero_length_files_reach_a_fixed_point_array4() {
    let mut array = zero_length_array4();
    let auditors: Vec<Auditor> = (0..4).map(|k| array.arm_mut(k).enable_audit()).collect();
    let out = exercise(array, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

/// Finds, per arm, the local addresses of in-use final data pages
/// (`next == NIL`, `page > 0`): the sectors a torn write would leave
/// half-gone.
fn final_page_das(packs: &[&alto_disk::DiskPack]) -> Vec<(usize, u16)> {
    let mut out = Vec::new();
    for (arm, pack) in packs.iter().enumerate() {
        for da in 0..u16::MAX {
            let Some(sector) = pack.sector(alto_disk::DiskAddress(da)) else {
                break;
            };
            let label = sector.decoded_label();
            if label.is_in_use() && label.page_number > 0 && label.next.is_nil() {
                out.push((arm, da));
            }
        }
    }
    out
}

#[test]
fn truncated_final_pages_reach_a_fixed_point_single() {
    let mut drive = build_single(7).expect("base");
    let targets = {
        let pack = drive.pack().expect("pack");
        final_page_das(&[pack])
    };
    assert!(
        targets.len() >= 3,
        "population should have multi-page files"
    );
    let pack = drive.pack_mut().expect("pack");
    for (_, da) in targets.iter().take(3) {
        assert!(apply_edit(
            pack,
            &Edit {
                arm: 0,
                da: *da,
                op: EditOp::Damage,
            }
        ));
    }
    let auditors = vec![drive.enable_audit()];
    let out = exercise(drive, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

#[test]
fn truncated_final_pages_reach_a_fixed_point_array4() {
    let mut array = build_array4(7).expect("base");
    let targets = {
        let packs: Vec<&alto_disk::DiskPack> = (0..4).filter_map(|k| array.arm(k).pack()).collect();
        final_page_das(&packs)
    };
    assert!(
        targets.len() >= 3,
        "population should have multi-page files"
    );
    for (arm, da) in targets.iter().take(3) {
        let pack = array.arm_mut(*arm).pack_mut().expect("pack");
        assert!(apply_edit(
            pack,
            &Edit {
                arm: *arm,
                da: *da,
                op: EditOp::Damage,
            }
        ));
    }
    let auditors: Vec<Auditor> = (0..4).map(|k| array.arm_mut(k).enable_audit()).collect();
    let out = exercise(array, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

/// Finds, per arm, the local addresses and labels of regular-file leader
/// pages (`page == 0`, plain-file flag), skipping the fixed system files.
fn leader_das(packs: &[&alto_disk::DiskPack]) -> Vec<(usize, u16, alto_disk::Label)> {
    let mut out = Vec::new();
    for (arm, pack) in packs.iter().enumerate() {
        for da in 0..u16::MAX {
            let Some(sector) = pack.sector(alto_disk::DiskAddress(da)) else {
                break;
            };
            let label = sector.decoded_label();
            if label.is_in_use() && label.page_number == 0 && label.fid[0] == 0x4000 {
                out.push((arm, da, label));
            }
        }
    }
    out
}

/// Clones one leader's absolute name (fid + version) onto another
/// leader: two sectors now claim the same (serial, version, page 0).
/// The census must keep one chain and free the other; the second
/// scavenge must then find nothing left to repair.
#[test]
fn duplicate_fid_reaches_a_fixed_point_single() {
    let mut drive = build_single(11).expect("base");
    let leaders = {
        let pack = drive.pack().expect("pack");
        leader_das(&[pack])
    };
    assert!(leaders.len() >= 2, "population should have several files");
    let (_, _, src) = &leaders[0];
    let (_, dst_da, _) = &leaders[1];
    let pack = drive.pack_mut().expect("pack");
    for (field, value) in [
        (LabelField::Fid0, src.fid[0]),
        (LabelField::Fid1, src.fid[1]),
        (LabelField::Version, src.version),
    ] {
        assert!(apply_edit(
            pack,
            &Edit {
                arm: 0,
                da: *dst_da,
                op: EditOp::Field(field, value),
            }
        ));
    }
    let auditors = vec![drive.enable_audit()];
    let out = exercise(drive, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

#[test]
fn duplicate_fid_reaches_a_fixed_point_array4() {
    let mut array = build_array4(11).expect("base");
    let leaders = {
        let packs: Vec<&alto_disk::DiskPack> = (0..4).filter_map(|k| array.arm(k).pack()).collect();
        leader_das(&packs)
    };
    assert!(leaders.len() >= 2, "population should have several files");
    let (_, _, src) = leaders[0];
    let (dst_arm, dst_da, _) = leaders[1];
    let pack = array.arm_mut(dst_arm).pack_mut().expect("pack");
    for (field, value) in [
        (LabelField::Fid0, src.fid[0]),
        (LabelField::Fid1, src.fid[1]),
        (LabelField::Version, src.version),
    ] {
        assert!(apply_edit(
            pack,
            &Edit {
                arm: dst_arm,
                da: dst_da,
                op: EditOp::Field(field, value),
            }
        ));
    }
    let auditors: Vec<Auditor> = (0..4).map(|k| array.arm_mut(k).enable_audit()).collect();
    let out = exercise(array, &auditors, no_service).expect("contract");
    assert!(out.is_some(), "nothing here justifies a clean refusal");
}

/// A small fixed-seed smoke sweep in-process (the CI release-mode sweep
/// in `bench --bin fuzz` covers thousands); every sampled mutant must
/// satisfy the contract or refuse cleanly.
#[test]
fn fixed_seed_smoke_sweep() {
    let mut failures = Vec::new();
    for seed in 0xA170_5EED_u64..0xA170_5EED + 16 {
        let case = match random_case(seed) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("seed {seed:#x}: case derivation failed: {e}"));
                continue;
            }
        };
        if let Err(e) = run_case(&case) {
            failures.push(format!("seed {seed:#x}: {e}\n{}", case.to_text()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} smoke mutant(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
