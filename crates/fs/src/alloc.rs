//! The page allocation map (§3.3).
//!
//! The disk descriptor holds "the allocation map, a bit table indicating
//! which pages are free". The map is a **hint**: the absolute information
//! about which pages are free is in the labels. A page improperly marked
//! free costs a little extra one-time disk activity (the label check fails
//! and the allocator is called again); a page improperly marked busy is a
//! lost page until the Scavenger recovers it.

use alto_disk::DiskAddress;

/// A bit table over disk addresses. Set bit = busy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMap {
    bits: Vec<u64>,
    len: u32,
    free: u32,
}

impl BitMap {
    /// A map of `len` pages, all free.
    pub fn all_free(len: u32) -> BitMap {
        BitMap {
            bits: vec![0; (len as usize).div_ceil(64)],
            len,
            free: len,
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the map tracks no pages.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pages currently marked free.
    pub fn free_count(&self) -> u32 {
        self.free
    }

    /// True if `da` is marked busy.
    ///
    /// # Panics
    ///
    /// Panics if `da` is out of range.
    pub fn is_busy(&self, da: DiskAddress) -> bool {
        assert!((da.0 as u32) < self.len, "bitmap index {da} out of range");
        self.bits[da.0 as usize / 64] & (1 << (da.0 % 64)) != 0
    }

    /// Marks `da` busy; returns whether it was previously free.
    pub fn set_busy(&mut self, da: DiskAddress) -> bool {
        let was_free = !self.is_busy(da);
        if was_free {
            self.bits[da.0 as usize / 64] |= 1 << (da.0 % 64);
            self.free -= 1;
        }
        was_free
    }

    /// Marks `da` free; returns whether it was previously busy.
    pub fn set_free(&mut self, da: DiskAddress) -> bool {
        let was_busy = self.is_busy(da);
        if was_busy {
            self.bits[da.0 as usize / 64] &= !(1 << (da.0 % 64));
            self.free += 1;
        }
        was_busy
    }

    /// First free index in `[lo, hi)`, scanning whole `u64` words.
    fn first_free_in(&self, lo: u32, hi: u32) -> Option<u32> {
        let mut i = lo;
        while i < hi {
            let word_start = i / 64 * 64;
            let word_end = word_start + 64;
            let mut free = !self.bits[(i / 64) as usize] & (!0u64 << (i % 64));
            if hi < word_end {
                free &= (1u64 << (hi - word_start)) - 1;
            }
            if free != 0 {
                return Some(word_start + free.trailing_zeros());
            }
            i = word_end;
        }
        None
    }

    /// First index in `[lo, hi)` starting `run` consecutive free pages.
    /// All-free and all-busy words are stepped over 64 pages at a time.
    fn first_run_in(&self, lo: u32, hi: u32, run: u32) -> Option<u32> {
        let mut count = 0u32;
        let mut i = lo;
        while i < hi {
            if i.is_multiple_of(64) && i + 64 <= hi {
                let word = self.bits[(i / 64) as usize];
                if word == 0 {
                    count += 64;
                    if count >= run {
                        return Some(i + 64 - count);
                    }
                    i += 64;
                    continue;
                }
                if word == u64::MAX {
                    count = 0;
                    i += 64;
                    continue;
                }
            }
            if self.is_busy(DiskAddress(i as u16)) {
                count = 0;
            } else {
                count += 1;
                if count == run {
                    return Some(i + 1 - run);
                }
            }
            i += 1;
        }
        None
    }

    /// Finds the first free page at or after `start`, wrapping around.
    pub fn find_free_from(&self, start: DiskAddress) -> Option<DiskAddress> {
        if self.free == 0 {
            return None;
        }
        let n = self.len;
        let start = (start.0 as u32).min(n.saturating_sub(1));
        self.first_free_in(start, n)
            .or_else(|| self.first_free_in(0, start))
            .map(|i| DiskAddress(i as u16))
    }

    /// Finds a run of `run` consecutive free pages, searching from address
    /// 0; used by the compacting scavenger to place files consecutively.
    pub fn find_free_run(&self, run: u32) -> Option<DiskAddress> {
        if run == 0 || run > self.free {
            return None;
        }
        self.first_run_in(0, self.len, run)
            .map(|i| DiskAddress(i as u16))
    }

    /// Finds a run of `run` consecutive free pages at or after `start`,
    /// wrapping to address 0 when nothing fits in the tail; used by
    /// placement-aware allocation to lay fresh files down consecutively
    /// near the last allocation. Runs never span the wrap point.
    pub fn find_free_run_from(&self, start: DiskAddress, run: u32) -> Option<DiskAddress> {
        if run == 0 || run > self.free {
            return None;
        }
        let n = self.len;
        let start = (start.0 as u32).min(n.saturating_sub(1));
        self.first_run_in(start, n, run)
            .or_else(|| self.first_run_in(0, n, run))
            .map(|i| DiskAddress(i as u16))
    }

    /// Serializes to 16-bit words (for the descriptor file).
    pub fn to_words(&self) -> Vec<u16> {
        let word_count = (self.len as usize).div_ceil(16);
        (0..word_count)
            .map(|w| {
                let chunk = self.bits[w / 4];
                (chunk >> ((w % 4) * 16)) as u16
            })
            .collect()
    }

    /// Deserializes from 16-bit words.
    pub fn from_words(len: u32, words: &[u16]) -> BitMap {
        let mut map = BitMap::all_free(len);
        for i in 0..len {
            let w = words.get(i as usize / 16).copied().unwrap_or(0);
            if w & (1 << (i % 16)) != 0 {
                map.set_busy(DiskAddress(i as u16));
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_free() {
        let m = BitMap::all_free(100);
        assert_eq!(m.free_count(), 100);
        assert!(!m.is_busy(DiskAddress(0)));
        assert!(!m.is_busy(DiskAddress(99)));
    }

    #[test]
    fn busy_free_round_trip() {
        let mut m = BitMap::all_free(100);
        assert!(m.set_busy(DiskAddress(5)));
        assert!(m.is_busy(DiskAddress(5)));
        assert_eq!(m.free_count(), 99);
        // Idempotent.
        assert!(!m.set_busy(DiskAddress(5)));
        assert_eq!(m.free_count(), 99);
        assert!(m.set_free(DiskAddress(5)));
        assert_eq!(m.free_count(), 100);
        assert!(!m.set_free(DiskAddress(5)));
    }

    #[test]
    fn find_free_from_wraps() {
        let mut m = BitMap::all_free(10);
        for i in 3..10 {
            m.set_busy(DiskAddress(i));
        }
        // Searching from 5 wraps to 0.
        assert_eq!(m.find_free_from(DiskAddress(5)), Some(DiskAddress(0)));
        assert_eq!(m.find_free_from(DiskAddress(1)), Some(DiskAddress(1)));
    }

    #[test]
    fn find_free_from_full_map() {
        let mut m = BitMap::all_free(4);
        for i in 0..4 {
            m.set_busy(DiskAddress(i));
        }
        assert_eq!(m.find_free_from(DiskAddress(0)), None);
    }

    #[test]
    fn find_free_run_finds_gaps() {
        let mut m = BitMap::all_free(20);
        m.set_busy(DiskAddress(3));
        m.set_busy(DiskAddress(10));
        // Free runs: [0..3) len 3, [4..10) len 6, [11..20) len 9.
        assert_eq!(m.find_free_run(3), Some(DiskAddress(0)));
        assert_eq!(m.find_free_run(4), Some(DiskAddress(4)));
        assert_eq!(m.find_free_run(7), Some(DiskAddress(11)));
        assert_eq!(m.find_free_run(9), Some(DiskAddress(11)));
        assert_eq!(m.find_free_run(10), None);
        assert_eq!(m.find_free_run(0), None);
    }

    #[test]
    fn word_serialization_round_trip() {
        let mut m = BitMap::all_free(100);
        for i in [0u16, 15, 16, 17, 63, 64, 99] {
            m.set_busy(DiskAddress(i));
        }
        let words = m.to_words();
        assert_eq!(words.len(), 7); // ceil(100/16)
        let back = BitMap::from_words(100, &words);
        assert_eq!(back, m);
    }

    #[test]
    fn diablo31_sized_map() {
        let mut m = BitMap::all_free(4872);
        assert_eq!(m.to_words().len(), 305);
        m.set_busy(DiskAddress(4871));
        let back = BitMap::from_words(4872, &m.to_words());
        assert!(back.is_busy(DiskAddress(4871)));
        assert_eq!(back.free_count(), 4871);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        BitMap::all_free(10).is_busy(DiskAddress(10));
    }

    #[test]
    fn find_free_run_from_wraps_and_respects_start() {
        let mut m = BitMap::all_free(100);
        for i in 10..95 {
            m.set_busy(DiskAddress(i));
        }
        // Free: [0..10) and [95..100). From 20, the 5-run in the tail wins.
        assert_eq!(
            m.find_free_run_from(DiskAddress(20), 5),
            Some(DiskAddress(95))
        );
        // A 6-run only exists before the start: wrap to it.
        assert_eq!(
            m.find_free_run_from(DiskAddress(20), 6),
            Some(DiskAddress(0))
        );
        assert_eq!(m.find_free_run_from(DiskAddress(20), 11), None);
        assert_eq!(
            m.find_free_run_from(DiskAddress(0), 3),
            Some(DiskAddress(0))
        );
    }

    // ------------------------------------------------------------------
    // The word-level scans must agree exactly with the original
    // bit-at-a-time scans; these references pin that behaviour.
    // ------------------------------------------------------------------

    fn find_free_from_ref(m: &BitMap, start: DiskAddress) -> Option<DiskAddress> {
        if m.free_count() == 0 {
            return None;
        }
        let n = m.len();
        let start = (start.0 as u32).min(n.saturating_sub(1));
        for offset in 0..n {
            let i = ((start + offset) % n) as u16;
            if !m.is_busy(DiskAddress(i)) {
                return Some(DiskAddress(i));
            }
        }
        None
    }

    fn find_free_run_ref(m: &BitMap, run: u32) -> Option<DiskAddress> {
        if run == 0 || run > m.free_count() {
            return None;
        }
        let mut count = 0u32;
        for i in 0..m.len() {
            if m.is_busy(DiskAddress(i as u16)) {
                count = 0;
            } else {
                count += 1;
                if count == run {
                    return Some(DiskAddress((i + 1 - run) as u16));
                }
            }
        }
        None
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_map(len: u32, busy_percent: u64, seed: &mut u64) -> BitMap {
        let mut m = BitMap::all_free(len);
        for i in 0..len {
            if splitmix(seed) % 100 < busy_percent {
                m.set_busy(DiskAddress(i as u16));
            }
        }
        m
    }

    #[test]
    fn word_scan_matches_bit_scan_on_random_maps() {
        let mut seed = 0x5EED;
        for len in [1u32, 63, 64, 65, 127, 128, 130, 500, 4872] {
            for busy in [0u64, 10, 50, 90, 100] {
                let m = random_map(len, busy, &mut seed);
                for _ in 0..20 {
                    let start = DiskAddress((splitmix(&mut seed) % len as u64) as u16);
                    assert_eq!(
                        m.find_free_from(start),
                        find_free_from_ref(&m, start),
                        "find_free_from(len={len}, busy={busy}%, start={start})"
                    );
                }
                for run in [0u32, 1, 2, 3, 7, 17, 63, 64, 65, 200] {
                    assert_eq!(
                        m.find_free_run(run),
                        find_free_run_ref(&m, run),
                        "find_free_run(len={len}, busy={busy}%, run={run})"
                    );
                }
            }
        }
    }

    #[test]
    fn run_from_start_zero_matches_plain_run_scan() {
        let mut seed = 0xF00D;
        for len in [64u32, 129, 1000] {
            let m = random_map(len, 40, &mut seed);
            for run in 1..20 {
                assert_eq!(
                    m.find_free_run_from(DiskAddress(0), run),
                    m.find_free_run(run)
                );
            }
        }
    }
}
