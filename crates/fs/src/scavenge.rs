//! The Scavenger (§3.5).
//!
//! "By reading all the labels on the disk, we can check that all the links
//! are correct (reconstructing any that prove faulty), obtain full names
//! for all existing files, and produce a list of free pages." The scavenger
//! rebuilds *every hint* from the absolutes:
//!
//! 1. **Scan** every sector's label (quarantining unreadable pages with the
//!    special bad label).
//! 2. **Census**: group pages by `(FV)`, resolve duplicate `(FV, n)` pages,
//!    free headless chains (no page 0) and truncate files at gaps.
//! 3. **Repair links** so each file's next/prev hints are correct.
//! 4. **Rebuild the disk descriptor** at its standard address (evicting a
//!    squatter page if corruption put one there).
//! 5. **Verify directories**: every entry must point at page 0 of an
//!    existing file; addresses are fixed up, dangling entries dropped.
//! 6. **Adopt orphans**: a file with no directory entry anywhere is entered
//!    in the root directory under its leader name — "this is the sole
//!    function of the leader name."
//!
//! The in-core table is the paper's: **48 bits per sector** — the two
//! serial-number words and the page number, indexed by disk address (the
//! hint name is the index; §3.5: "a table with 48 bits per sector"). The
//! version and the links deliberately do not fit, so link checking is a
//! second pass over the live sectors in address order, re-reading each
//! label and rewriting only the faulty ones — which is exactly why the
//! paper's scavenge takes "about a minute": two sweeps of the platter.

use std::collections::{BTreeMap, BTreeSet};

use alto_disk::{Disk, DiskAddress, DiskError, Label, SectorBuf, SectorOp, DATA_WORDS};
use alto_sim::SimTime;

use crate::descriptor::{self, DiskDescriptor};
use crate::dir::{self, DirEntry};
use crate::errors::FsError;
use crate::file::FileSystem;
use crate::leader::LeaderPage;
use crate::names::{FileFullName, Fv, PageName, SerialNumber};
use crate::page;

/// What the scavenger did, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScavengeReport {
    /// Sectors whose labels were scanned.
    pub sectors_scanned: u32,
    /// Live file pages found.
    pub live_pages: u32,
    /// Free pages in the rebuilt map.
    pub free_pages: u32,
    /// Unreadable sectors quarantined with the bad label.
    pub bad_pages: u32,
    /// Pages freed because another page claimed the same absolute name.
    pub duplicate_pages_freed: u32,
    /// Pages freed because their file had no leader page.
    pub headless_pages_freed: u32,
    /// Pages freed because they lay beyond a gap in their file.
    pub truncated_pages_freed: u32,
    /// Labels rewritten to repair next/prev links.
    pub links_repaired: u32,
    /// Labels whose data-length word was normalized (over-long lengths
    /// clamped, non-final pages restored to a full page, §3.2).
    pub lengths_normalized: u32,
    /// Files found on the disk (after repair).
    pub files: u32,
    /// Directories read and verified.
    pub directories_checked: u32,
    /// Directory entries whose address hints were fixed.
    pub entries_fixed: u32,
    /// Directory entries dropped because they named no existing file.
    pub entries_dropped: u32,
    /// Files adopted into the root directory under their leader names.
    pub orphans_adopted: u32,
    /// True if the disk descriptor file had to be rebuilt from scratch.
    pub descriptor_rebuilt: bool,
    /// Simulated time the scavenge took.
    pub elapsed: SimTime,
}

/// One entry of the 48-bit-per-sector scan table: the serial-number words
/// and the page number. The disk address is the index into the table.
type TableEntry = ([u16; 2], u16);

/// Splits `das` (already in address order) into chained sweep batches. On a
/// single drive each batch is one cylinder-sized chunk, exactly the
/// original sweep. On a drive array the addresses are first partitioned by
/// arm and each batch takes one cylinder-sized chunk from *every* arm, so
/// the array services the K chunks on overlapped timelines — a full-platter
/// sweep costs about one arm's sweep in simulated time instead of K of
/// them. Order within an arm is preserved, so each arm still sees a
/// low-seek, address-ordered pass.
pub(crate) fn sweep_batches<D: Disk>(
    disk: &D,
    das: &[DiskAddress],
    per_cylinder: usize,
) -> Vec<Vec<DiskAddress>> {
    let per_cylinder = per_cylinder.max(1);
    let arms = disk.arm_count();
    if arms <= 1 {
        return das
            .chunks(per_cylinder)
            .map(<[DiskAddress]>::to_vec)
            .collect();
    }
    let mut streams: Vec<Vec<DiskAddress>> = vec![Vec::new(); arms];
    for &da in das {
        streams[disk.arm_of(da)].push(da);
    }
    let rounds = streams
        .iter()
        .map(|s| s.len().div_ceil(per_cylinder))
        .max()
        .unwrap_or(0);
    let mut batches = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let mut batch = Vec::new();
        for s in &streams {
            let start = r * per_cylinder;
            if start < s.len() {
                batch.extend_from_slice(&s[start..(start + per_cylinder).min(s.len())]);
            }
        }
        batches.push(batch);
    }
    batches
}

/// The scavenging procedure.
///
/// # Examples
///
/// ```
/// use alto_disk::{DiskDrive, DiskModel};
/// use alto_fs::{dir, FileSystem, Scavenger};
/// use alto_sim::{SimClock, Trace};
///
/// let drive = DiskDrive::with_formatted_pack(
///     SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
/// let mut fs = FileSystem::format(drive)?;
/// let root = fs.root_dir();
/// let f = dir::create_named_file(&mut fs, root, "survivor")?;
/// fs.write_file(f, b"still here")?;
///
/// // Crash without flushing the allocation map, then rebuild everything
/// // from the labels alone.
/// let disk = fs.crash();
/// let (mut fs, report) = Scavenger::rebuild(disk)?;
/// assert_eq!(report.headless_pages_freed, 0);
/// let root = fs.root_dir();
/// let f = dir::lookup(&mut fs, root, "survivor")?.unwrap();
/// assert_eq!(fs.read_file(f)?, b"still here");
/// # Ok::<(), alto_fs::FsError>(())
/// ```
pub struct Scavenger;

impl Scavenger {
    /// Scavenges a disk that may not even mount: reconstructs the whole
    /// file system state from the labels and returns a mounted system.
    pub fn rebuild<D: Disk>(disk: D) -> Result<(FileSystem<D>, ScavengeReport), FsError> {
        let geometry = disk.geometry()?;
        let pack = disk.pack_number()?;
        let desc = DiskDescriptor::fresh(geometry, pack);
        let mut fs = FileSystem::from_parts(disk, desc);
        let report = Scavenger::run(&mut fs)?;
        Ok((fs, report))
    }

    /// Scavenges a mounted file system in place, rebuilding its descriptor
    /// and repairing the disk.
    pub fn run<D: Disk>(fs: &mut FileSystem<D>) -> Result<ScavengeReport, FsError> {
        let mut report = ScavengeReport::default();
        let start = fs.disk().clock().now();
        let geometry = fs.disk().geometry()?;
        let sector_count = geometry.sector_count();

        // Phase 1: scan all labels into the 48-bit-per-sector table. The
        // sweep goes one cylinder at a time as a chained batch, so each
        // cylinder costs one command set-up plus a seek and the rotations —
        // this is what keeps the whole scavenge at "about a minute" (§3.5)
        // instead of a revolution per sector.
        let per_cylinder = (geometry.heads as u32 * geometry.sectors as u32).max(1);
        let mut table: Vec<Option<TableEntry>> = vec![None; sector_count as usize];
        let mut bad: Vec<DiskAddress> = Vec::new();
        let all: Vec<DiskAddress> = (0..sector_count).map(|i| DiskAddress(i as u16)).collect();
        for das in sweep_batches(fs.disk(), &all, per_cylinder as usize) {
            let results = page::read_raw_batch(fs.disk_mut(), &das);
            for (da, res) in das.into_iter().zip(results) {
                report.sectors_scanned += 1;
                let label = match res {
                    Ok((label, _)) => label,
                    Err(FsError::Disk(DiskError::HardError { .. })) => {
                        bad.push(da);
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                if label.is_free() || label.is_bad() {
                    if label.is_bad() {
                        bad.push(da);
                    }
                    continue;
                }
                if !SerialNumber::from_words(label.fid).looks_live() {
                    // Not a plausible file page (scribbled label): reclaim it.
                    free_raw(fs, da)?;
                    continue;
                }
                table[da.0 as usize] = Some((label.fid, label.page_number));
            }
        }

        // Quarantine unreadable sectors.
        for da in &bad {
            page::mark_bad(fs.disk_mut(), *da)?;
            report.bad_pages += 1;
        }

        // Group by serial ("sort it by absolute name", §3.5) and resolve
        // duplicate absolute names: keep the lower address, free the other.
        let mut groups: BTreeMap<[u16; 2], BTreeMap<u16, DiskAddress>> = BTreeMap::new();
        for (i, entry) in table.iter().enumerate() {
            let Some((fid, page)) = entry else { continue };
            let da = DiskAddress(i as u16);
            let pages = groups.entry(*fid).or_default();
            if pages.contains_key(page) {
                scav_free(fs, da, *fid, *page)?;
                report.duplicate_pages_freed += 1;
            } else {
                pages.insert(*page, da);
            }
        }
        drop(table);

        // Phase 2: census — drop headless chains and truncate at gaps.
        groups.retain(|fid, pages| {
            if pages.contains_key(&0) {
                return true;
            }
            for (page, da) in std::mem::take(pages) {
                // Errors freeing damaged strays are not fatal to recovery.
                if scav_free(fs, da, *fid, page).is_ok() {
                    report.headless_pages_freed += 1;
                }
            }
            false
        });
        for (fid, pages) in &mut groups {
            let mut cut: Vec<(u16, DiskAddress)> = Vec::new();
            for (expected, (&page, _)) in pages.iter().enumerate() {
                if page != expected as u16 {
                    cut.extend(pages.range(page..).map(|(&p, &d)| (p, d)));
                    break;
                }
            }
            for (page, da) in cut {
                pages.remove(&page);
                if scav_free(fs, da, *fid, page).is_ok() {
                    report.truncated_pages_freed += 1;
                }
            }
        }

        // Phase 3: the link-check pass. The 48-bit table holds no links, so
        // every live sector is re-read in address order; faulty links are
        // rewritten; page 0 yields the file's version. Lengths are
        // normalized here too (§3.2: every page except the last is full, no
        // page holds more than a sector) — a hostile length word would
        // otherwise survive repair and index past the data buffer later.
        let mut live: BTreeMap<u16, ([u16; 2], u16)> = BTreeMap::new();
        for (fid, pages) in &groups {
            for (&page, &da) in pages {
                live.insert(da.0, (*fid, page));
            }
        }
        let mut versions: BTreeMap<[u16; 2], u16> = BTreeMap::new();
        let mut page_versions: BTreeMap<([u16; 2], u16), u16> = BTreeMap::new();
        let live_das: Vec<DiskAddress> = live.keys().map(|&da0| DiskAddress(da0)).collect();
        // Address order means each chunk is one stretch of the platter; the
        // chained batch reads it in a couple of revolutions (one stretch per
        // arm, overlapped, on an array).
        for das in sweep_batches(fs.disk(), &live_das, per_cylinder as usize) {
            let results = page::read_raw_batch(fs.disk_mut(), &das);
            for (&da, res) in das.iter().zip(results) {
                let (fid, page) = live[&da.0];
                // A sector that scanned in phase 1 but fails to read now is
                // left alone (its census entry stands; link repair for its
                // neighbours still points at it) — a transient must not
                // abort recovery of the whole disk.
                let Ok((label, data)) = res else { continue };
                if page == 0 {
                    versions.insert(fid, label.version);
                }
                page_versions.insert((fid, page), label.version);
                let pages = &groups[&fid];
                let is_last = pages.keys().next_back() == Some(&page);
                let expected_next = pages.get(&(page + 1)).copied().unwrap_or(DiskAddress::NIL);
                let expected_prev = if page == 0 {
                    DiskAddress::NIL
                } else {
                    pages.get(&(page - 1)).copied().unwrap_or(DiskAddress::NIL)
                };
                let expected_len = if page == 0 || !is_last {
                    crate::file::PAGE_BYTES as u16
                } else {
                    label.length.min(crate::file::PAGE_BYTES as u16)
                };
                if label.next != expected_next
                    || label.prev != expected_prev
                    || label.length != expected_len
                {
                    let pn = PageName::new(Fv::from_label(&label), page, da);
                    let mut fixed = label;
                    fixed.next = expected_next;
                    fixed.prev = expected_prev;
                    fixed.length = expected_len;
                    if page::rewrite_label(fs.disk_mut(), pn, fixed, &data).is_err() {
                        continue;
                    }
                    if label.next != expected_next || label.prev != expected_prev {
                        report.links_repaired += 1;
                    }
                    if label.length != expected_len {
                        report.lengths_normalized += 1;
                    }
                }
            }
        }

        // A file's pages must all carry the leader's version: the 48-bit
        // table deliberately drops versions (§3.5), so a chain assembled by
        // serial alone can mix incarnations, and every later read would die
        // on the exact fs-layer version re-verification (0 is only a
        // *hardware* wildcard). Truncate each file at the first page whose
        // version disagrees with page 0's.
        for (fid, pages) in &mut groups {
            let Some(&v0) = versions.get(fid) else {
                continue;
            };
            let cut_from = pages
                .keys()
                .copied()
                .find(|&p| p > 0 && page_versions.get(&(*fid, p)).is_some_and(|&v| v != v0));
            let Some(cut_from) = cut_from else { continue };
            let cut: Vec<(u16, DiskAddress)> =
                pages.range(cut_from..).map(|(&p, &d)| (p, d)).collect();
            for (page, da) in cut {
                pages.remove(&page);
                if scav_free(fs, da, *fid, page).is_ok() {
                    report.truncated_pages_freed += 1;
                }
            }
            // The new tail was link-repaired above to point at the page
            // just freed; re-point it at NIL.
            if let Some((&tail_page, &tail_da)) = pages.iter().next_back() {
                let tail_version = page_versions.get(&(*fid, tail_page)).copied().unwrap_or(v0);
                let fv = Fv::new(SerialNumber::from_words(*fid), tail_version);
                let pn = PageName::new(fv, tail_page, tail_da);
                if let Ok((label, data)) = page::read_page(fs.disk_mut(), pn) {
                    if !label.next.is_nil() {
                        let mut fixed = label;
                        fixed.next = DiskAddress::NIL;
                        if page::rewrite_label(fs.disk_mut(), pn, fixed, &data).is_ok() {
                            report.links_repaired += 1;
                        }
                    }
                }
            }
        }

        // Assemble the file map with the versions learned in phase 3.
        let mut files: BTreeMap<Fv, Vec<DiskAddress>> = BTreeMap::new();
        for (fid, pages) in groups {
            let version = versions.get(&fid).copied().unwrap_or(1);
            let fv = Fv::new(SerialNumber::from_words(fid), version);
            files.insert(fv, pages.into_values().collect());
        }

        // Restore a missing page 1 for bare-leader files (every file has at
        // least one data page, §3.2).
        let bare: Vec<Fv> = files
            .iter()
            .filter(|(_, c)| c.len() == 1)
            .map(|(fv, _)| *fv)
            .collect();
        // Deferred: page 1 restoration needs an allocator, which needs the
        // bitmap; performed after Phase 4 builds it.

        report.live_pages = files.values().map(|c| c.len() as u32).sum();
        report.files = files.len() as u32;

        // Phase 4: rebuild the allocation map and descriptor.
        let mut desc = DiskDescriptor::fresh(geometry, fs.disk().pack_number()?);
        desc.bitmap.set_busy(descriptor::BOOT_PAGE_DA);
        desc.bitmap.set_busy(descriptor::DESCRIPTOR_LEADER_DA);
        for da in &bad {
            desc.bitmap.set_busy(*da);
        }
        let mut max_number = descriptor::FIRST_DYNAMIC_FILE_NUMBER - 1;
        for (fv, chain) in &files {
            max_number = max_number.max(fv.serial.number());
            for da in chain {
                desc.bitmap.set_busy(*da);
            }
        }
        // A hostile label can claim a serial at the top of the 30-bit
        // space; saturate there so the next create fails cleanly
        // (SerialsExhausted) instead of panicking in SerialNumber::new.
        desc.next_file_number = (max_number + 1).min(1 << 30);

        // Root directory: reuse it if it survived, else recreate it.
        let root_fv = files
            .keys()
            .copied()
            .find(|fv| {
                fv.serial.is_directory() && fv.serial.number() == descriptor::ROOT_DIR_FILE_NUMBER
            })
            .unwrap_or_else(descriptor::root_dir_fv);
        let root = files
            .get(&root_fv)
            .map(|chain| FileFullName::new(root_fv, chain[0]));
        desc.root_dir = root.unwrap_or(FileFullName::new(
            descriptor::root_dir_fv(),
            DiskAddress::NIL,
        ));
        *fs.descriptor_mut() = desc;

        // Rebuild the descriptor file at its standard address. Any previous
        // descriptor-file pages become free — at *every* version: a chain
        // carrying the descriptor's serial under a scribbled version is
        // still stale descriptor state, and relocating or adopting it would
        // leave two incarnations of one serial for the next census to
        // flag as duplicates (the census is version-blind by design, §3.5).
        let desc_fv = descriptor::descriptor_fv();
        let stale_desc: Vec<Fv> = files
            .keys()
            .copied()
            .filter(|fv| fv.serial.number() == descriptor::DESCRIPTOR_FILE_NUMBER)
            .collect();
        for fv in stale_desc {
            if let Some(chain) = files.remove(&fv) {
                for (i, da) in chain.iter().enumerate() {
                    // A page that cannot be freed (hard error) stays busy in
                    // the fresh map; losing a sector must not abort recovery.
                    // lint: allow(error-path-discard) — a hard-failed free
                    // leaves the sector busy in the rebuilt map, which the
                    // next census re-examines; aborting recovery over one
                    // sector would violate the never-panic contract (§3.5)
                    let _ = fs.free_page(PageName::new(fv, i as u16, *da));
                }
                report.files -= 1;
                report.live_pages -= chain.len() as u32;
            }
        }
        if let Some((fv, page_no, new_da)) =
            evict_squatter(fs, descriptor::DESCRIPTOR_LEADER_DA, &files)?
        {
            // Update our table so later phases see the new address.
            if let Some(chain) = files.get_mut(&fv) {
                let i = page_no as usize;
                if i < chain.len() {
                    chain[i] = new_da;
                    // Repair the neighbours' links around the move.
                    repair_around(fs, fv, chain, i)?;
                }
            }
        }
        fs.descriptor_mut()
            .bitmap
            .set_busy(descriptor::DESCRIPTOR_LEADER_DA);
        rebuild_descriptor_file(fs)?;
        report.descriptor_rebuilt = true;

        // Recreate the root directory if it did not survive.
        if fs.descriptor().root_dir.leader_da.is_nil() {
            let root_leader = LeaderPage::new(descriptor::ROOT_DIR_NAME, fs.now())?;
            let label = Label {
                fid: descriptor::root_dir_fv().serial.words(),
                version: 1,
                page_number: 0,
                length: crate::file::PAGE_BYTES as u16,
                next: DiskAddress::NIL,
                prev: DiskAddress::NIL,
            };
            let leader_da = fs.allocate_page(None, label, &root_leader.encode())?;
            let root = FileFullName::new(descriptor::root_dir_fv(), leader_da);
            fs.descriptor_mut().root_dir = root;
            // Give it its empty page 1 below (it is a bare leader).
            restore_page1(fs, root)?;
            files.insert(descriptor::root_dir_fv(), vec![leader_da]);
        }

        // Restore missing page 1 on bare-leader files now the allocator works.
        for fv in bare {
            if files.contains_key(&fv) {
                let leader_da = files[&fv][0];
                restore_page1(fs, FileFullName::new(fv, leader_da))?;
            }
        }

        // Phase 5: verify directories.
        let root = fs.descriptor().root_dir;
        let mut referenced: BTreeSet<Fv> = BTreeSet::new();
        referenced.insert(desc_fv); // rebuilt with a fresh root entry below
        let dir_list: Vec<(Fv, DiskAddress)> = files
            .iter()
            .filter(|(fv, _)| fv.serial.is_directory())
            .map(|(fv, chain)| (*fv, chain[0]))
            .collect();
        for (fv, leader_da) in dir_list {
            report.directories_checked += 1;
            let dir_name = FileFullName::new(fv, leader_da);
            let entries = match fs.read_file(dir_name) {
                Ok(bytes) => dir::parse_entries(&bytes),
                Err(_) => Vec::new(), // unreadable directory: treated as empty
            };
            let mut fixed = Vec::new();
            let mut changed = false;
            for entry in entries {
                // The descriptor file was rebuilt at its standard address
                // and is no longer in the table; keep its entry pointed
                // there.
                if entry.file.fv == desc_fv {
                    referenced.insert(desc_fv);
                    if entry.file.leader_da != descriptor::DESCRIPTOR_LEADER_DA {
                        report.entries_fixed += 1;
                        changed = true;
                    }
                    fixed.push(DirEntry {
                        name: entry.name,
                        file: FileFullName::new(desc_fv, descriptor::DESCRIPTOR_LEADER_DA),
                    });
                    continue;
                }
                match files.get(&entry.file.fv) {
                    Some(chain) => {
                        let actual = chain[0];
                        referenced.insert(entry.file.fv);
                        if entry.file.leader_da != actual {
                            report.entries_fixed += 1;
                            changed = true;
                        }
                        fixed.push(DirEntry {
                            name: entry.name,
                            file: FileFullName::new(entry.file.fv, actual),
                        });
                    }
                    None => {
                        report.entries_dropped += 1;
                        changed = true;
                    }
                }
            }
            if changed {
                fs.write_file(dir_name, &dir::encode_entries(&fixed))?;
            }
        }

        // Phase 6: adopt orphans into the root directory by leader name.
        let orphan_list: Vec<(Fv, DiskAddress)> = files
            .iter()
            .filter(|(fv, _)| !referenced.contains(fv))
            .map(|(fv, chain)| (*fv, chain[0]))
            .collect();
        for (fv, leader_da) in orphan_list {
            let file = FileFullName::new(fv, leader_da);
            // An unreadable leader loses only its name, not the file.
            let leader_name = match fs.read_page(file.leader_page()) {
                Ok((_, leader_data)) => LeaderPage::decode(&leader_data).name,
                Err(_) => String::new(),
            };
            let base = if leader_name.is_empty() {
                format!("scavenged.{}", fv.serial.number())
            } else {
                leader_name
            };
            // Never clobber an existing entry: `dir::insert` replaces a
            // same-name entry, which would orphan *that* file and make the
            // adoption chase its own tail on every re-scavenge. Uniquify
            // (UTF-8-boundary-safely — leader names may be multibyte) until
            // the name is free.
            let mut name = base.clone();
            let mut attempt = 0u32;
            while dir::lookup(fs, root, &name)?.is_some() {
                attempt += 1;
                let suffix = if attempt == 1 {
                    format!("!{}", fv.serial.number())
                } else {
                    format!("!{}.{attempt}", fv.serial.number())
                };
                name = compose_name(&base, &suffix);
                if attempt >= 64 {
                    // Serial numbers are unique, so this cannot collide
                    // forever with honest entries; a pathological directory
                    // beyond this budget loses the orphan's entry (the file
                    // itself stays on disk for the next scavenge).
                    break;
                }
            }
            if dir::lookup(fs, root, &name)?.is_some() {
                continue;
            }
            dir::insert(fs, root, &name, file)?;
            report.orphans_adopted += 1;
        }

        // Make sure the well-known files are listed.
        if dir::lookup(fs, root, descriptor::ROOT_DIR_NAME)?.is_none() {
            dir::insert(fs, root, descriptor::ROOT_DIR_NAME, root)?;
        }
        if dir::lookup(fs, root, descriptor::DESCRIPTOR_NAME)?.is_none() {
            dir::insert(
                fs,
                root,
                descriptor::DESCRIPTOR_NAME,
                FileFullName::new(desc_fv, descriptor::DESCRIPTOR_LEADER_DA),
            )?;
        }

        report.free_pages = fs.descriptor().bitmap.free_count();
        fs.flush_descriptor()?;
        report.elapsed = fs.disk().clock().now() - start;
        Ok(report)
    }
}

/// `base` + `suffix`, with `base` truncated at a UTF-8 boundary so the
/// whole name fits in a leader/directory name field. (A plain
/// `String::truncate` would panic when byte 39 of a recovered multibyte
/// leader name is mid-character.)
fn compose_name(base: &str, suffix: &str) -> String {
    let room = crate::leader::MAX_LEADER_NAME.saturating_sub(suffix.len());
    let mut cut = room.min(base.len());
    while cut > 0 && !base.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}{}", &base[..cut], suffix)
}

/// Frees a page named by the 48-bit table: the serial words and page
/// number are checked exactly; the version (not in the table) is a
/// wildcard. Ones are then written into label and value (§3.3).
fn scav_free<D: Disk>(
    fs: &mut FileSystem<D>,
    da: DiskAddress,
    fid: [u16; 2],
    page: u16,
) -> Result<(), FsError> {
    let check = Label {
        fid,
        version: 0, // wildcard: the table does not hold versions
        page_number: page,
        length: 0,
        next: DiskAddress(0),
        prev: DiskAddress(0),
    };
    let mut buf = SectorBuf::with_label(check);
    buf.header = [fs.disk().pack_number()?, da.0];
    page::retry_op(fs.disk_mut(), da, SectorOp::CHECK_LABEL, &mut buf)?;
    let mut buf = SectorBuf::with_label(Label::FREE);
    buf.header = [fs.disk().pack_number()?, da.0];
    buf.data = [u16::MAX; DATA_WORDS];
    page::retry_op(fs.disk_mut(), da, SectorOp::WRITE_LABEL, &mut buf)?;
    Ok(())
}

/// Frees a sector that carried an implausible (but in-use-looking) label.
fn free_raw<D: Disk>(fs: &mut FileSystem<D>, da: DiskAddress) -> Result<(), FsError> {
    // `mark_bad` then free: write the free label unconditionally.
    let mut buf = SectorBuf::with_label(Label::FREE);
    buf.header = [fs.disk().pack_number()?, da.0];
    buf.data = [u16::MAX; DATA_WORDS];
    page::retry_op(fs.disk_mut(), da, SectorOp::WRITE_ALL, &mut buf)?;
    Ok(())
}

/// If a live page of some other file occupies `home`, relocate it to a free
/// sector and return `(fv, page_number, new_da)`.
fn evict_squatter<D: Disk>(
    fs: &mut FileSystem<D>,
    home: DiskAddress,
    files: &BTreeMap<Fv, Vec<DiskAddress>>,
) -> Result<Option<(Fv, u16, DiskAddress)>, FsError> {
    // Find who (if anyone) sits at `home` in the rebuilt table.
    let squatter = files.iter().find_map(|(fv, chain)| {
        chain
            .iter()
            .position(|d| *d == home)
            .map(|page| (*fv, page as u16))
    });
    let Some((fv, page_no)) = squatter else {
        return Ok(None);
    };
    let pn = PageName::new(fv, page_no, home);
    let (label, data) = page::read_page(fs.disk_mut(), pn)?;
    let new_da = fs.allocate_page(None, label, &data)?;
    // Free the old sector on the medium; the map bit for `home` stays busy
    // because the caller is about to rebuild the descriptor there.
    page::free_page(fs.disk_mut(), pn)?;
    Ok(Some((fv, page_no, new_da)))
}

/// Repairs the links of `chain[i]`'s neighbours after `chain[i].da` moved.
fn repair_around<D: Disk>(
    fs: &mut FileSystem<D>,
    fv: Fv,
    chain: &mut [DiskAddress],
    i: usize,
) -> Result<(), FsError> {
    let das: Vec<DiskAddress> = chain.to_vec();
    let fix = |fs: &mut FileSystem<D>, idx: usize, das: &[DiskAddress]| -> Result<(), FsError> {
        let pn = PageName::new(fv, idx as u16, das[idx]);
        let (label, data) = page::read_page(fs.disk_mut(), pn)?;
        let mut fixed = label;
        fixed.next = das.get(idx + 1).copied().unwrap_or(DiskAddress::NIL);
        fixed.prev = if idx == 0 {
            DiskAddress::NIL
        } else {
            das[idx - 1]
        };
        if fixed.next != label.next || fixed.prev != label.prev {
            page::rewrite_label(fs.disk_mut(), pn, fixed, &data)?;
        }
        Ok(())
    };
    // The moved page itself plus both neighbours.
    if i > 0 {
        fix(fs, i - 1, &das)?;
    }
    fix(fs, i, &das)?;
    if i + 1 < das.len() {
        fix(fs, i + 1, &das)?;
    }
    Ok(())
}

/// Builds a fresh descriptor file (leader at the standard address plus data
/// pages) from the current in-memory descriptor.
fn rebuild_descriptor_file<D: Disk>(fs: &mut FileSystem<D>) -> Result<(), FsError> {
    let desc_fv = descriptor::descriptor_fv();
    let leader = LeaderPage::new(descriptor::DESCRIPTOR_NAME, fs.now())?;
    // The standard address must be free on the medium by now.
    let payload = crate::file::words_to_bytes(&fs.descriptor().encode());
    let leader_label = Label {
        fid: desc_fv.serial.words(),
        version: desc_fv.version,
        page_number: 0,
        length: crate::file::PAGE_BYTES as u16,
        next: DiskAddress::NIL,
        prev: DiskAddress::NIL,
    };
    page::allocate_at(
        fs.disk_mut(),
        descriptor::DESCRIPTOR_LEADER_DA,
        leader_label,
        &leader.encode(),
    )?;
    fs.chain_data_pages_for_scavenger(desc_fv, descriptor::DESCRIPTOR_LEADER_DA, leader, &payload)
}

/// Gives a bare-leader file its mandatory empty page 1.
fn restore_page1<D: Disk>(fs: &mut FileSystem<D>, file: FileFullName) -> Result<(), FsError> {
    let label = Label {
        fid: file.fv.serial.words(),
        version: file.fv.version,
        page_number: 1,
        length: 0,
        next: DiskAddress::NIL,
        prev: file.leader_da,
    };
    let da = fs.allocate_page(
        Some(DiskAddress(file.leader_da.0.wrapping_add(1))),
        label,
        &[0; DATA_WORDS],
    )?;
    let pn = file.leader_page();
    let (mut leader_label, leader_data) = fs.read_page(pn)?;
    leader_label.next = da;
    page::rewrite_label(fs.disk_mut(), pn, leader_label, &leader_data)?;
    let mut leader = LeaderPage::decode(&leader_data);
    leader.last_page = 1;
    leader.last_da = da;
    fs.write_page(pn, &leader.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel, FaultKind};
    use alto_sim::{SimClock, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    /// Scavenging a healthy disk is a no-op apart from the descriptor
    /// rebuild, and loses nothing.
    #[test]
    fn healthy_disk_survives_scavenge() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "keep.txt").unwrap();
        fs.write_file(f, b"precious bytes").unwrap();
        let free_before = fs.descriptor().bitmap.free_count();

        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.duplicate_pages_freed, 0);
        assert_eq!(report.headless_pages_freed, 0);
        assert_eq!(report.entries_dropped, 0);
        assert_eq!(report.orphans_adopted, 0);
        assert_eq!(report.free_pages, free_before);

        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "keep.txt")
        }
        .unwrap()
        .unwrap();
        assert_eq!(fs.read_file(g).unwrap(), b"precious bytes");
    }

    /// A crash that leaves the on-disk allocation map stale is healed.
    #[test]
    fn stale_map_after_crash_is_rebuilt() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "during.txt").unwrap();
        fs.write_file(f, &vec![7u8; 3000]).unwrap();
        // Crash without flushing: on-disk map predates the writes.
        let disk = fs.crash();
        let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "during.txt")
        }
        .unwrap()
        .unwrap();
        assert_eq!(fs.read_file(g).unwrap(), vec![7u8; 3000]);
        // And allocation still works.
        let root = fs.root_dir();
        let h = dir::create_named_file(&mut fs, root, "after.txt").unwrap();
        fs.write_file(h, b"ok").unwrap();
    }

    /// A lost directory loses names, not files: orphans are adopted under
    /// their leader names.
    #[test]
    fn orphans_are_adopted_by_leader_name() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "orphan.txt").unwrap();
        fs.write_file(f, b"still here").unwrap();
        // Destroy the directory entry (not the file).
        dir::remove(&mut fs, root, "orphan.txt").unwrap();

        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.orphans_adopted, 1);
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "orphan.txt")
        }
        .unwrap()
        .unwrap();
        assert_eq!(fs.read_file(g).unwrap(), b"still here");
    }

    /// Broken links are repaired from the absolutes.
    #[test]
    fn scrambled_links_are_repaired() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "chained.txt").unwrap();
        let bytes: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        fs.write_file(f, &bytes).unwrap();
        // Scramble the next link of page 1 directly on the medium.
        let leader_label = fs.read_page(f.leader_page()).unwrap().0;
        let page1_da = leader_label.next;
        {
            let pack = fs.disk_mut().pack_mut().unwrap();
            let sector = pack.sector_mut(page1_da).unwrap();
            let mut label = sector.decoded_label();
            label.next = DiskAddress(4000); // nonsense
            sector.label = label.encode();
        }
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert!(report.links_repaired >= 1);
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "chained.txt")
        }
        .unwrap()
        .unwrap();
        assert_eq!(fs.read_file(g).unwrap(), bytes);
    }

    /// An unreadable sector is quarantined and the file truncated there.
    #[test]
    fn damaged_page_is_quarantined() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "holed.txt").unwrap();
        fs.write_file(f, &vec![9u8; 2500]).unwrap(); // 5 pages
                                                     // Damage page 3's sector.
        let mut pn = f.leader_page();
        let mut da3 = DiskAddress::NIL;
        for _ in 0..3 {
            let (label, _) = fs.read_page(pn).unwrap();
            da3 = label.next;
            pn = PageName::new(f.fv, pn.page + 1, label.next);
        }
        fs.disk_mut().pack_mut().unwrap().damage(da3);

        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.bad_pages, 1);
        assert!(report.truncated_pages_freed >= 1);
        // The file survives, truncated before the damage.
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "holed.txt")
        }
        .unwrap()
        .unwrap();
        let bytes = fs.read_file(g).unwrap();
        assert_eq!(bytes, vec![9u8; 1024]); // pages 1-2 survive
                                            // The bad sector is never allocated again.
        assert!(fs.descriptor().bitmap.is_busy(da3));
        let label = fs
            .disk()
            .pack()
            .unwrap()
            .sector(da3)
            .unwrap()
            .decoded_label();
        assert!(label.is_bad());
    }

    /// Headless chains (no leader) are reclaimed as free space.
    #[test]
    fn headless_chain_is_reclaimed() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "beheaded.txt").unwrap();
        fs.write_file(f, &vec![1u8; 1500]).unwrap();
        // Smash the leader's label on the medium.
        {
            let pack = fs.disk_mut().pack_mut().unwrap();
            let sector = pack.sector_mut(f.leader_da).unwrap();
            sector.label = Label::FREE.encode();
        }
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert!(report.headless_pages_freed >= 3);
        // The name is gone (the entry pointed at a nonexistent file).
        assert_eq!(report.entries_dropped, 1);
        assert_eq!(
            {
                let root = fs.root_dir();
                dir::lookup(&mut fs, root, "beheaded.txt")
            }
            .unwrap(),
            None
        );
    }

    /// Stale directory address hints are fixed in place.
    #[test]
    fn stale_entry_addresses_are_fixed() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "moved.txt").unwrap();
        fs.write_file(f, b"content").unwrap();
        // Corrupt the entry's DA hint by inserting a wrong full name.
        dir::insert(
            &mut fs,
            root,
            "moved.txt",
            FileFullName::new(f.fv, DiskAddress(4000)),
        )
        .unwrap();
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert!(report.entries_fixed >= 1);
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "moved.txt")
        }
        .unwrap()
        .unwrap();
        assert_eq!(g.leader_da, f.leader_da);
        assert_eq!(fs.read_file(g).unwrap(), b"content");
    }

    /// A torn multi-page write leaves a consistent prefix after scavenge.
    #[test]
    fn torn_write_recovers_to_consistency() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = dir::create_named_file(&mut fs, root, "torn.txt").unwrap();
        fs.write_file(f, &vec![1u8; 2000]).unwrap();
        // Arm a torn write against page 2's sector, then overwrite.
        let (l1, _) = fs.read_page(f.leader_page()).unwrap();
        let (l2, _) = fs.read_page(PageName::new(f.fv, 1, l1.next)).unwrap();
        fs.disk_mut()
            .injector_mut()
            .arm(l2.next, FaultKind::TornWrite { words_written: 50 });
        fs.write_file(f, &vec![2u8; 2000]).unwrap();
        let disk = fs.crash();
        let (mut fs, _report) = Scavenger::rebuild(disk).unwrap();
        let g = {
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "torn.txt")
        }
        .unwrap()
        .unwrap();
        let bytes = fs.read_file(g).unwrap();
        // The file is structurally sound (right length); page 2 carries a
        // mixture of old and new data — the torn write is data loss the
        // label discipline does not (and cannot) hide, but nothing else is
        // damaged.
        assert_eq!(bytes.len(), 2000);
        assert!(bytes[..512].iter().all(|&b| b == 2));
    }

    /// The scavenger finishes in about the time the paper reports.
    #[test]
    fn scavenge_time_is_tens_of_seconds() {
        let fs = fresh_fs();
        let disk = fs.unmount().unwrap();
        let (_, report) = Scavenger::rebuild(disk).unwrap();
        let secs = report.elapsed.as_secs_f64();
        assert!(
            (5.0..90.0).contains(&secs),
            "scavenge took {secs} simulated seconds"
        );
    }

    /// On a 4-arm array the scavenger sweeps all four packs on overlapped
    /// timelines: markedly faster than the serialized ablation, recovering
    /// the same files, with every arm's §3.3 auditor staying clean.
    #[test]
    fn array_scavenge_overlaps_arms_and_stays_audit_clean() {
        use alto_disk::{DriveArray, Placement};
        let run = |overlap: bool| {
            let mut array = DriveArray::with_arms(
                4,
                Placement::Range,
                SimClock::new(),
                Trace::new(),
                DiskModel::Diablo31,
            );
            array.set_overlap_enabled(overlap);
            let mut fs = FileSystem::format(array).unwrap();
            for i in 0..6u8 {
                let root = fs.root_dir();
                let f = dir::create_named_file(&mut fs, root, &format!("f{i}")).unwrap();
                fs.write_file(f, &vec![i; 2000]).unwrap();
            }
            // Crash, then audit the §3.3 discipline of the scavenge itself,
            // per arm.
            let mut disk = fs.crash();
            let auditors: Vec<_> = (0..4).map(|k| disk.arm_mut(k).enable_audit()).collect();
            let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
            for (k, a) in auditors.iter().enumerate() {
                assert!(a.violations().is_empty(), "arm {k} saw violations");
                assert!(a.ops_observed() > 0, "arm {k} was never swept");
            }
            for i in 0..6u8 {
                let root = fs.root_dir();
                let f = dir::lookup(&mut fs, root, &format!("f{i}"))
                    .unwrap()
                    .unwrap();
                assert_eq!(fs.read_file(f).unwrap(), vec![i; 2000]);
            }
            (report.elapsed, fs.disk().io_stats().overlap_batches)
        };
        let (serial, serial_overlaps) = run(false);
        let (overlapped, overlaps) = run(true);
        assert_eq!(serial_overlaps, 0);
        assert!(overlaps > 0, "no batch spanned two arms");
        assert!(
            serial >= overlapped.scaled(2),
            "4-arm sweep should be at least 2x the serialized scavenge: \
             serial {serial}, overlapped {overlapped}"
        );
    }
}
