//! Recycled fs-side working vectors.
//!
//! [`crate::FileSystem::write_file`] rewrites a file in guessed-consecutive
//! batches: each batch stages its page images in a chunk vector and collects
//! a per-page result vector from [`crate::page::write_pages_guessed`]. Under
//! a steady rewrite workload (the fault-campaign bench, a §4.1 world swap)
//! those two vectors used to be the last per-call heap traffic on the write
//! path. They now come from small thread-local free lists, following
//! [`alto_disk::pool`]'s pattern, so a warm rewrite touches the heap zero
//! times.
//!
//! This is a host-side optimization only: it never touches the simulated
//! clock or the §3.3 semantics, and recycled vectors are always cleared
//! before reuse. The lists share the disk pool's
//! [`alto_disk::pool::enabled`] ablation gate so the wall-clock benchmark's
//! `pooling` switch measures every layer together.

use std::cell::RefCell;

use alto_disk::{Label, DATA_WORDS};

use crate::errors::FsError;

/// How many vectors each free list retains per thread. `write_file` holds
/// one chunk vector and one result vector at a time; a little headroom
/// covers nested filesystems (e.g. a disk descriptor rewrite inside a user
/// write). Anything beyond the cap is simply dropped.
const PER_LIST: usize = 4;

struct FreeLists {
    chunks: Vec<Vec<[u16; DATA_WORDS]>>,
    labels: Vec<Vec<Result<Label, FsError>>>,
}

thread_local! {
    static LISTS: RefCell<FreeLists> = const {
        RefCell::new(FreeLists {
            chunks: Vec::new(),
            labels: Vec::new(),
        })
    };
}

fn enabled() -> bool {
    alto_disk::pool::enabled()
}

/// An empty page-image vector, recycled when possible.
pub fn chunks_vec() -> Vec<[u16; DATA_WORDS]> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().chunks.pop())
        .unwrap_or_default()
}

/// Returns a page-image vector to the free list (contents are dropped).
pub fn recycle_chunks(mut v: Vec<[u16; DATA_WORDS]>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.chunks.len() < PER_LIST {
            lists.chunks.push(v);
        }
    });
}

/// An empty guessed-write result vector, recycled when possible.
pub fn labels_vec() -> Vec<Result<Label, FsError>> {
    if !enabled() {
        return Vec::new();
    }
    LISTS
        .with(|l| l.borrow_mut().labels.pop())
        .unwrap_or_default()
}

/// Returns a guessed-write result vector to the free list.
pub fn recycle_labels(mut v: Vec<Result<Label, FsError>>) {
    if !enabled() || v.capacity() == 0 {
        return;
    }
    v.clear();
    LISTS.with(|l| {
        let mut lists = l.borrow_mut();
        if lists.labels.len() < PER_LIST {
            lists.labels.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reuses_capacity() {
        alto_disk::pool::set_enabled(true);
        let mut v = chunks_vec();
        v.push([0; DATA_WORDS]);
        let cap = v.capacity();
        recycle_chunks(v);
        let v2 = chunks_vec();
        assert!(v2.is_empty());
        assert!(v2.capacity() >= cap.min(1));
    }

    #[test]
    fn free_lists_are_bounded() {
        alto_disk::pool::set_enabled(true);
        for _ in 0..2 * PER_LIST {
            let mut v = labels_vec();
            v.reserve(4);
            recycle_labels(v);
        }
        let held = LISTS.with(|l| l.borrow().labels.len());
        assert!(held <= PER_LIST);
    }
}
