//! The leader page: page 0 of every file (§3.2).
//!
//! The leader contains all the properties of the file other than its length
//! and its data: the dates of creation, last write and last read
//! (absolutes); the *leader name*, a string by which the file can be
//! located even if every directory entry for it is destroyed (absolute —
//! this is what makes orphan adoption possible during scavenging, §3.5);
//! and two hints — the page number and disk address of the last page, and a
//! *maybe consecutive* flag.

use alto_disk::{DiskAddress, DATA_WORDS};

use crate::dates::AltoDate;
use crate::errors::FsError;

/// Maximum leader-name length in bytes.
pub const MAX_LEADER_NAME: usize = 39;

// Leader page word layout.
const CREATED: usize = 0; // 2 words
const WRITTEN: usize = 2; // 2 words
const READ: usize = 4; // 2 words
const NAME_LEN: usize = 6; // 1 word
const NAME_BYTES: usize = 7; // 20 words = 40 bytes
const LAST_PAGE: usize = 27; // 1 word (hint)
const LAST_DA: usize = 28; // 1 word (hint)
const CONSECUTIVE: usize = 29; // 1 word (hint)
/// First word of the property space available to user programs (§3.6's
/// installed hints are commonly parked here by convention).
pub const PROPERTY_BASE: usize = 32;

/// Decoded contents of a leader page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaderPage {
    /// Date the file was created (absolute).
    pub created: AltoDate,
    /// Date of the last write (absolute).
    pub written: AltoDate,
    /// Date of the last read (absolute).
    pub read: AltoDate,
    /// The leader name (absolute): the file's recoverable string name.
    pub name: String,
    /// Hint: the page number of the last page.
    pub last_page: u16,
    /// Hint: the disk address of the last page.
    pub last_da: DiskAddress,
    /// Hint: true if the file's pages may be consecutively allocated.
    pub maybe_consecutive: bool,
    /// The user property space (words `PROPERTY_BASE..256`).
    pub properties: Vec<u16>,
}

impl LeaderPage {
    /// A fresh leader for a file created now.
    pub fn new(name: &str, now: AltoDate) -> Result<LeaderPage, FsError> {
        if name.len() > MAX_LEADER_NAME {
            return Err(FsError::NameTooLong(name.len()));
        }
        Ok(LeaderPage {
            created: now,
            written: now,
            read: now,
            name: name.to_string(),
            last_page: 0,
            last_da: DiskAddress::NIL,
            maybe_consecutive: false,
            properties: vec![0; DATA_WORDS - PROPERTY_BASE],
        })
    }

    /// Encodes the leader into a 256-word page image.
    pub fn encode(&self) -> [u16; DATA_WORDS] {
        let mut w = [0u16; DATA_WORDS];
        w[CREATED..CREATED + 2].copy_from_slice(&self.created.words());
        w[WRITTEN..WRITTEN + 2].copy_from_slice(&self.written.words());
        w[READ..READ + 2].copy_from_slice(&self.read.words());
        let bytes = self.name.as_bytes();
        w[NAME_LEN] = bytes.len() as u16;
        for (i, &b) in bytes.iter().enumerate() {
            let word = NAME_BYTES + i / 2;
            if i % 2 == 0 {
                w[word] |= (b as u16) << 8;
            } else {
                w[word] |= b as u16;
            }
        }
        w[LAST_PAGE] = self.last_page;
        w[LAST_DA] = self.last_da.0;
        w[CONSECUTIVE] = self.maybe_consecutive as u16;
        let n = self.properties.len().min(DATA_WORDS - PROPERTY_BASE);
        w[PROPERTY_BASE..PROPERTY_BASE + n].copy_from_slice(&self.properties[..n]);
        w
    }

    /// Decodes a leader from a 256-word page image.
    ///
    /// A garbled name length or non-UTF-8 bytes yield an empty name rather
    /// than an error: the Scavenger must be able to decode every leader it
    /// meets, however damaged.
    pub fn decode(w: &[u16; DATA_WORDS]) -> LeaderPage {
        let len = (w[NAME_LEN] as usize).min(MAX_LEADER_NAME);
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let word = w[NAME_BYTES + i / 2];
            bytes.push(if i % 2 == 0 {
                (word >> 8) as u8
            } else {
                word as u8
            });
        }
        let name = String::from_utf8(bytes).unwrap_or_default();
        LeaderPage {
            created: AltoDate::from_words([w[CREATED], w[CREATED + 1]]),
            written: AltoDate::from_words([w[WRITTEN], w[WRITTEN + 1]]),
            read: AltoDate::from_words([w[READ], w[READ + 1]]),
            name,
            last_page: w[LAST_PAGE],
            last_da: DiskAddress(w[LAST_DA]),
            maybe_consecutive: w[CONSECUTIVE] != 0,
            properties: w[PROPERTY_BASE..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LeaderPage {
        let mut l = LeaderPage::new("memo.txt", AltoDate(1000)).unwrap();
        l.written = AltoDate(2000);
        l.read = AltoDate(3000);
        l.last_page = 7;
        l.last_da = DiskAddress(123);
        l.maybe_consecutive = true;
        l.properties[0] = 0xAAAA;
        l.properties[10] = 0x5555;
        l
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = sample();
        assert_eq!(LeaderPage::decode(&l.encode()), l);
    }

    #[test]
    fn empty_and_max_names() {
        let e = LeaderPage::new("", AltoDate(1)).unwrap();
        assert_eq!(LeaderPage::decode(&e.encode()).name, "");
        let name39 = "a".repeat(39);
        let m = LeaderPage::new(&name39, AltoDate(1)).unwrap();
        assert_eq!(LeaderPage::decode(&m.encode()).name, name39);
    }

    #[test]
    fn overlong_name_rejected() {
        let err = LeaderPage::new(&"x".repeat(40), AltoDate(1)).unwrap_err();
        assert_eq!(err, FsError::NameTooLong(40));
    }

    #[test]
    fn odd_length_name_round_trips() {
        let l = LeaderPage::new("abc", AltoDate(1)).unwrap();
        assert_eq!(LeaderPage::decode(&l.encode()).name, "abc");
    }

    #[test]
    fn garbled_name_decodes_as_empty() {
        let mut w = sample().encode();
        w[NAME_LEN] = 9999; // length clamped
        w[NAME_BYTES] = 0xFFFF; // invalid UTF-8
        let l = LeaderPage::decode(&w);
        assert_eq!(l.name, "");
        // Other fields still decode.
        assert_eq!(l.last_page, 7);
    }

    #[test]
    fn new_leader_has_nil_hints() {
        let l = LeaderPage::new("f", AltoDate(5)).unwrap();
        assert_eq!(l.last_page, 0);
        assert!(l.last_da.is_nil());
        assert!(!l.maybe_consecutive);
        assert_eq!(l.created, l.written);
    }

    #[test]
    fn property_space_is_preserved() {
        let mut l = sample();
        l.properties = vec![3; DATA_WORDS - PROPERTY_BASE];
        let back = LeaderPage::decode(&l.encode());
        assert!(back.properties.iter().all(|&w| w == 3));
        assert_eq!(back.properties.len(), DATA_WORDS - PROPERTY_BASE);
    }

    #[test]
    fn name_bytes_are_big_endian_packed() {
        let l = LeaderPage::new("AB", AltoDate(1)).unwrap();
        let w = l.encode();
        assert_eq!(w[NAME_BYTES], ((b'A' as u16) << 8) | b'B' as u16);
    }
}
