//! Directory journaling: the user-written package the paper invites
//! (§3.5).
//!
//! "As we have noted, scavenging cannot fully reconstruct lost
//! directories. This could be accomplished by writing a journal of all
//! changes to directories and taking an occasional snapshot of all the
//! directories. By applying the changes in the journal to the snapshot we
//! would get back the current state … For the reasons already mentioned,
//! we do not consider our directories important enough to warrant such
//! attentions. If the user disagrees, he is free to modify the
//! system-provided procedures for managing directories, or to write his
//! own."
//!
//! This module is that user's package: a drop-in layer over [`crate::dir`]
//! that journals every insert and remove, takes snapshots of the whole
//! directory graph, and can restore directory *contents* (which the
//! Scavenger, by design, cannot — it only restores directory *structure*
//! and adopts orphans under their leader names).
//!
//! Journal record format (words): `op(1)`, dir serial (2), dir version,
//! name length + packed bytes, target serial (2), target version, target
//! leader DA. Snapshot format: per directory, its full name and raw
//! content bytes.

use std::collections::BTreeSet;

use alto_disk::{Disk, DiskAddress};

use crate::dir::{self, DirEntry};
use crate::errors::FsError;
use crate::file::{bytes_to_words, words_to_bytes, FileSystem};
use crate::names::{FileFullName, Fv, SerialNumber};

/// Conventional name of the journal file.
pub const JOURNAL_NAME: &str = "DirJournal";
/// Conventional name of the snapshot file.
pub const SNAPSHOT_NAME: &str = "DirSnapshot";

const JOURNAL_MAGIC: u16 = 0xA30A;
const SNAPSHOT_MAGIC: u16 = 0xA305;

/// One journaled directory change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// `name -> file` was inserted into `dir`.
    Insert {
        /// The directory changed.
        dir: Fv,
        /// The entry name.
        name: String,
        /// The entry target.
        file: FileFullName,
    },
    /// `name` was removed from `dir`.
    Remove {
        /// The directory changed.
        dir: Fv,
        /// The entry name.
        name: String,
    },
}

/// The journaling layer: holds the journal and snapshot file names.
#[derive(Debug, Clone, Copy)]
pub struct DirJournal {
    journal: FileFullName,
    snapshot: FileFullName,
}

impl DirJournal {
    /// Installs (or reopens) the journal and snapshot files in the root
    /// directory and takes an initial snapshot.
    pub fn install<D: Disk>(fs: &mut FileSystem<D>) -> Result<DirJournal, FsError> {
        let root = fs.root_dir();
        let journal = match dir::lookup(fs, root, JOURNAL_NAME)? {
            Some(f) => f,
            None => {
                let f = dir::create_named_file(fs, root, JOURNAL_NAME)?;
                fs.write_file(f, &words_to_bytes(&[JOURNAL_MAGIC, 0]))?;
                f
            }
        };
        let snapshot = match dir::lookup(fs, root, SNAPSHOT_NAME)? {
            Some(f) => f,
            None => dir::create_named_file(fs, root, SNAPSHOT_NAME)?,
        };
        let j = DirJournal { journal, snapshot };
        j.take_snapshot(fs)?;
        Ok(j)
    }

    /// Reopens an installed journal (e.g. after a crash).
    pub fn open<D: Disk>(fs: &mut FileSystem<D>) -> Result<DirJournal, FsError> {
        let root = fs.root_dir();
        let journal = dir::lookup(fs, root, JOURNAL_NAME)?
            .ok_or_else(|| FsError::NameNotFound(JOURNAL_NAME.into()))?;
        let snapshot = dir::lookup(fs, root, SNAPSHOT_NAME)?
            .ok_or_else(|| FsError::NameNotFound(SNAPSHOT_NAME.into()))?;
        Ok(DirJournal { journal, snapshot })
    }

    // ------------------------------------------------------------------
    // Journaled directory operations.
    // ------------------------------------------------------------------

    /// `dir::insert`, journaled.
    pub fn insert<D: Disk>(
        &self,
        fs: &mut FileSystem<D>,
        directory: FileFullName,
        name: &str,
        file: FileFullName,
    ) -> Result<(), FsError> {
        // Journal first (write-ahead), then apply.
        self.append(
            fs,
            &JournalRecord::Insert {
                dir: directory.fv,
                name: name.to_string(),
                file,
            },
        )?;
        dir::insert(fs, directory, name, file)
    }

    /// `dir::remove`, journaled.
    pub fn remove<D: Disk>(
        &self,
        fs: &mut FileSystem<D>,
        directory: FileFullName,
        name: &str,
    ) -> Result<Option<FileFullName>, FsError> {
        self.append(
            fs,
            &JournalRecord::Remove {
                dir: directory.fv,
                name: name.to_string(),
            },
        )?;
        dir::remove(fs, directory, name)
    }

    fn append<D: Disk>(
        &self,
        fs: &mut FileSystem<D>,
        record: &JournalRecord,
    ) -> Result<(), FsError> {
        let mut words = bytes_to_words(&fs.read_file(self.journal)?);
        if words.first() != Some(&JOURNAL_MAGIC) {
            words = vec![JOURNAL_MAGIC, 0];
        }
        encode_record(record, &mut words);
        words[1] = words[1].wrapping_add(1); // record count
        fs.write_file(self.journal, &words_to_bytes(&words))
    }

    /// The journal's records since the last snapshot.
    pub fn records<D: Disk>(&self, fs: &mut FileSystem<D>) -> Result<Vec<JournalRecord>, FsError> {
        let words = bytes_to_words(&fs.read_file(self.journal)?);
        decode_records(&words)
    }

    // ------------------------------------------------------------------
    // Snapshot and recovery.
    // ------------------------------------------------------------------

    /// Snapshots every root-reachable directory's contents and truncates
    /// the journal ("taking an occasional snapshot of all the
    /// directories").
    pub fn take_snapshot<D: Disk>(&self, fs: &mut FileSystem<D>) -> Result<usize, FsError> {
        let dirs = reachable_directories(fs)?;
        let mut words = vec![SNAPSHOT_MAGIC, dirs.len() as u16];
        for d in &dirs {
            let content = fs.read_file(*d)?;
            let s = d.fv.serial.words();
            words.push(s[0]);
            words.push(s[1]);
            words.push(d.fv.version);
            words.push(d.leader_da.0);
            words.push((content.len() >> 16) as u16);
            words.push(content.len() as u16);
            words.extend(bytes_to_words(&content));
        }
        fs.write_file(self.snapshot, &words_to_bytes(&words))?;
        fs.write_file(self.journal, &words_to_bytes(&[JOURNAL_MAGIC, 0]))?;
        Ok(dirs.len())
    }

    /// Recovers directory contents: restores each snapshotted directory
    /// that still exists as a file, then replays the journal on top.
    /// Returns `(directories restored, records replayed)`.
    ///
    /// Directories whose files were destroyed entirely are skipped — their
    /// *files* are beyond this package's remit (the Scavenger handles
    /// storage; this package handles naming).
    pub fn recover<D: Disk>(&self, fs: &mut FileSystem<D>) -> Result<(usize, usize), FsError> {
        let words = bytes_to_words(&fs.read_file(self.snapshot)?);
        if words.first() != Some(&SNAPSHOT_MAGIC) {
            return Err(FsError::NotFormatted("not a directory snapshot"));
        }
        let count = *words.get(1).unwrap_or(&0) as usize;
        let mut i = 2usize;
        let mut restored = 0usize;
        let mut snapshotted: Vec<(Fv, FileFullName)> = Vec::new();
        for _ in 0..count {
            let get = |k: usize| -> Result<u16, FsError> {
                words
                    .get(k)
                    .copied()
                    .ok_or(FsError::NotFormatted("snapshot truncated"))
            };
            let serial = SerialNumber::from_words([get(i)?, get(i + 1)?]);
            let version = get(i + 2)?;
            let da = DiskAddress(get(i + 3)?);
            let len = ((get(i + 4)? as usize) << 16) | get(i + 5)? as usize;
            i += 6;
            let content_words = len.div_ceil(2);
            let content = words
                .get(i..i + content_words)
                .ok_or(FsError::NotFormatted("snapshot truncated"))?;
            i += content_words;
            let fv = Fv::new(serial, version);
            let file = FileFullName::new(fv, da);
            // Restore only if the directory file still exists (the hint
            // address may be stale; read through the leader check and fall
            // back to nothing — recovery is best-effort by design).
            let target = resolve_file(fs, file)?;
            if let Some(target) = target {
                let mut bytes = words_to_bytes(content);
                bytes.truncate(len);
                fs.write_file(target, &bytes)?;
                snapshotted.push((fv, target));
                restored += 1;
            }
        }
        // Replay the journal.
        let records = self.records(fs)?;
        let mut replayed = 0usize;
        for record in &records {
            let dir_fv = match record {
                JournalRecord::Insert { dir, .. } | JournalRecord::Remove { dir, .. } => *dir,
            };
            let Some((_, target)) = snapshotted.iter().find(|(fv, _)| *fv == dir_fv) else {
                continue;
            };
            match record {
                JournalRecord::Insert { name, file, .. } => {
                    dir::insert(fs, *target, name, *file)?;
                }
                JournalRecord::Remove { name, .. } => {
                    dir::remove(fs, *target, name)?;
                }
            }
            replayed += 1;
        }
        Ok((restored, replayed))
    }
}

/// Finds a file by full name, tolerating a stale leader-address hint by
/// falling back to a root scan of reachable directories.
fn resolve_file<D: Disk>(
    fs: &mut FileSystem<D>,
    file: FileFullName,
) -> Result<Option<FileFullName>, FsError> {
    if fs.read_page(file.leader_page()).is_ok() {
        return Ok(Some(file));
    }
    // The hint is stale: look for the serial in the root directory.
    let root = fs.root_dir();
    if file.fv == root.fv {
        return Ok(Some(root));
    }
    for e in dir::list(fs, root)? {
        if e.file.fv == file.fv {
            return Ok(Some(e.file));
        }
    }
    Ok(None)
}

/// All directories reachable from the root (cycle-safe).
fn reachable_directories<D: Disk>(fs: &mut FileSystem<D>) -> Result<Vec<FileFullName>, FsError> {
    let root = fs.root_dir();
    let mut seen: BTreeSet<Fv> = BTreeSet::new();
    let mut queue = vec![root];
    let mut out = Vec::new();
    while let Some(d) = queue.pop() {
        if !seen.insert(d.fv) {
            continue;
        }
        out.push(d);
        for e in dir::list(fs, d)? {
            if e.file.is_directory() && !seen.contains(&e.file.fv) {
                queue.push(e.file);
            }
        }
    }
    Ok(out)
}

fn encode_record(record: &JournalRecord, words: &mut Vec<u16>) {
    fn push_name(words: &mut Vec<u16>, name: &str) {
        let bytes = name.as_bytes();
        words.push(bytes.len() as u16);
        for chunk in bytes.chunks(2) {
            let hi = (chunk[0] as u16) << 8;
            let lo = chunk.get(1).map_or(0, |&b| b as u16);
            words.push(hi | lo);
        }
    }
    match record {
        JournalRecord::Insert { dir, name, file } => {
            words.push(1);
            let s = dir.serial.words();
            words.extend_from_slice(&[s[0], s[1], dir.version]);
            push_name(words, name);
            let t = file.fv.serial.words();
            words.extend_from_slice(&[t[0], t[1], file.fv.version, file.leader_da.0]);
        }
        JournalRecord::Remove { dir, name } => {
            words.push(2);
            let s = dir.serial.words();
            words.extend_from_slice(&[s[0], s[1], dir.version]);
            push_name(words, name);
        }
    }
}

fn decode_records(words: &[u16]) -> Result<Vec<JournalRecord>, FsError> {
    if words.first() != Some(&JOURNAL_MAGIC) {
        return Err(FsError::NotFormatted("not a directory journal"));
    }
    let mut out = Vec::new();
    let mut i = 2usize;
    let get = |k: usize| -> Result<u16, FsError> {
        words
            .get(k)
            .copied()
            .ok_or(FsError::NotFormatted("journal truncated"))
    };
    while i < words.len() {
        let op = get(i)?;
        if op == 0 {
            break; // padding from the byte/word round-trip
        }
        let serial = SerialNumber::from_words([get(i + 1)?, get(i + 2)?]);
        let version = get(i + 3)?;
        let dir = Fv::new(serial, version);
        let name_len = get(i + 4)? as usize;
        if name_len > crate::leader::MAX_LEADER_NAME {
            return Err(FsError::NotFormatted("journal name too long"));
        }
        let name_words = name_len.div_ceil(2);
        let mut bytes = Vec::with_capacity(name_len);
        for k in 0..name_len {
            let w = get(i + 5 + k / 2)?;
            bytes.push(if k % 2 == 0 { (w >> 8) as u8 } else { w as u8 });
        }
        let name = String::from_utf8(bytes)
            .map_err(|_| FsError::NotFormatted("journal name not UTF-8"))?;
        i += 5 + name_words;
        match op {
            1 => {
                let t_serial = SerialNumber::from_words([get(i)?, get(i + 1)?]);
                let t_version = get(i + 2)?;
                let t_da = DiskAddress(get(i + 3)?);
                i += 4;
                out.push(JournalRecord::Insert {
                    dir,
                    name,
                    file: FileFullName::new(Fv::new(t_serial, t_version), t_da),
                });
            }
            2 => out.push(JournalRecord::Remove { dir, name }),
            _ => return Err(FsError::NotFormatted("unknown journal record")),
        }
    }
    Ok(out)
}

/// Convenience: list entries the way `dir::list` does (journaling changes
/// nothing about reading).
pub fn list<D: Disk>(
    fs: &mut FileSystem<D>,
    directory: FileFullName,
) -> Result<Vec<DirEntry>, FsError> {
    dir::list(fs, directory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    #[test]
    fn journaled_ops_behave_like_plain_ops() {
        let mut fs = fresh_fs();
        let j = DirJournal::install(&mut fs).unwrap();
        let root = fs.root_dir();
        let f = fs.create_file("a.txt").unwrap();
        j.insert(&mut fs, root, "a.txt", f).unwrap();
        assert_eq!(dir::lookup(&mut fs, root, "a.txt").unwrap(), Some(f));
        assert_eq!(j.remove(&mut fs, root, "a.txt").unwrap(), Some(f));
        assert_eq!(dir::lookup(&mut fs, root, "a.txt").unwrap(), None);
        // Both changes are in the journal.
        let records = j.records(&mut fs).unwrap();
        assert_eq!(records.len(), 2);
        assert!(matches!(&records[0], JournalRecord::Insert { name, .. } if name == "a.txt"));
        assert!(matches!(&records[1], JournalRecord::Remove { name, .. } if name == "a.txt"));
    }

    #[test]
    fn snapshot_truncates_the_journal() {
        let mut fs = fresh_fs();
        let j = DirJournal::install(&mut fs).unwrap();
        let root = fs.root_dir();
        let f = fs.create_file("x").unwrap();
        j.insert(&mut fs, root, "x", f).unwrap();
        assert_eq!(j.records(&mut fs).unwrap().len(), 1);
        let dirs = j.take_snapshot(&mut fs).unwrap();
        assert!(dirs >= 1);
        assert_eq!(j.records(&mut fs).unwrap().len(), 0);
    }

    /// The headline: a destroyed directory's *contents* come back — the
    /// thing the paper says plain scavenging cannot do.
    #[test]
    fn recovery_restores_destroyed_directory_contents() {
        let mut fs = fresh_fs();
        let j = DirJournal::install(&mut fs).unwrap();
        let root = fs.root_dir();
        // Build state: two files via the journaled interface.
        let a = fs.create_file("alpha.txt").unwrap();
        fs.write_file(a, b"alpha").unwrap();
        j.insert(&mut fs, root, "alpha.txt", a).unwrap();
        j.take_snapshot(&mut fs).unwrap();
        // More changes after the snapshot: these live only in the journal.
        let b = fs.create_file("beta.txt").unwrap();
        fs.write_file(b, b"beta").unwrap();
        j.insert(&mut fs, root, "beta.txt", b).unwrap();

        // Disaster: the root directory's contents are destroyed. (Write
        // garbage the way a wild program would.)
        fs.write_file(root, &[0xEE; 80]).unwrap();
        assert_eq!(dir::lookup(&mut fs, root, "alpha.txt").unwrap(), None);

        // But the journal/snapshot files are unreachable now! Recovery in
        // real life starts with a scavenge (adopting them as orphans), so
        // do exactly that.
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = crate::scavenge::Scavenger::rebuild(disk).unwrap();
        assert!(report.orphans_adopted >= 2);

        let j = DirJournal::open(&mut fs).unwrap();
        let (restored, replayed) = j.recover(&mut fs).unwrap();
        assert!(restored >= 1);
        assert_eq!(replayed, 1); // the beta insert
        let root = fs.root_dir();
        let ra = dir::lookup(&mut fs, root, "alpha.txt").unwrap().unwrap();
        assert_eq!(fs.read_file(ra).unwrap(), b"alpha");
        let rb = dir::lookup(&mut fs, root, "beta.txt").unwrap().unwrap();
        assert_eq!(fs.read_file(rb).unwrap(), b"beta");
    }

    #[test]
    fn recovery_covers_subdirectories() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let sub = dir::create_directory(&mut fs, root, "projects").unwrap();
        let f = fs.create_file("plan.txt").unwrap();
        let j = DirJournal::install(&mut fs).unwrap();
        j.insert(&mut fs, sub, "plan.txt", f).unwrap();
        j.take_snapshot(&mut fs).unwrap();
        // Destroy the subdirectory's contents.
        fs.write_file(sub, &[0xDD; 40]).unwrap();
        assert_eq!(dir::lookup(&mut fs, sub, "plan.txt").unwrap(), None);
        let (restored, _) = j.recover(&mut fs).unwrap();
        assert!(restored >= 2);
        assert_eq!(dir::lookup(&mut fs, sub, "plan.txt").unwrap(), Some(f));
    }

    #[test]
    fn journal_survives_crash_and_reopen() {
        let mut fs = fresh_fs();
        let j = DirJournal::install(&mut fs).unwrap();
        let root = fs.root_dir();
        let f = fs.create_file("persisted").unwrap();
        j.insert(&mut fs, root, "persisted", f).unwrap();
        let disk = fs.crash();
        let (mut fs, _) = crate::scavenge::Scavenger::rebuild(disk).unwrap();
        let j = DirJournal::open(&mut fs).unwrap();
        assert_eq!(j.records(&mut fs).unwrap().len(), 1);
    }

    #[test]
    fn bad_journal_rejected() {
        let mut fs = fresh_fs();
        let _ = DirJournal::install(&mut fs).unwrap();
        let root = fs.root_dir();
        let jf = dir::lookup(&mut fs, root, JOURNAL_NAME).unwrap().unwrap();
        fs.write_file(jf, b"garbage!").unwrap();
        let j = DirJournal::open(&mut fs).unwrap();
        assert!(j.records(&mut fs).is_err());
    }
}
