//! The in-core hint cache (§3.6 made systemic).
//!
//! The paper's discipline for hints — "cheap to keep, verified on use,
//! safely discarded when wrong" — is applied here to the two hottest
//! structures in the system: directory contents and leader pages. Both are
//! kept in core as *hints about the disk*:
//!
//! * a **directory name index**: the parsed entries of each directory,
//!   plus a casefolded-name map, built lazily on the first full scan and
//!   refreshed in place when the directory package rewrites the file;
//! * a **leader-page cache**: the label and decoded contents of each
//!   file's page 0, filled by every leader read or write.
//!
//! Nothing cached here is ever *believed*. A snapshot is only served while
//! the disk's [`write_epoch`](alto_disk::Disk::write_epoch) still equals
//! the value captured when it was taken — any write to the medium, through
//! the file system or behind its back, silently retires it — and a
//! positive name-index hit is additionally verified against the target's
//! leader label before the caller sees it (the §3.3 check). A stale hit
//! therefore costs a fallback to the linear scan; it can never corrupt.
//!
//! The cache can be disabled wholesale
//! ([`set_hint_cache_enabled`](crate::FileSystem::set_hint_cache_enabled))
//! for ablation experiments,
//! the same pattern as `UnscheduledDisk`. Placement-aware allocation rides
//! the same switch: with hints off, the allocator degrades to the original
//! fixed-origin scan.

use std::collections::BTreeMap;

use alto_disk::{DiskAddress, Label};

use crate::dir::DirEntry;
use crate::leader::LeaderPage;
use crate::names::{FileFullName, Fv};

/// Casefolds a directory name the way entry matching does (ASCII).
pub(crate) fn casefold(name: &str) -> String {
    name.to_ascii_lowercase()
}

/// Counters for cache behaviour; every hit, miss, verification failure and
/// invalidation is observable (and traced as `fs.cache_hit` /
/// `fs.cache_miss` / `fs.cache_invalidate`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Name lookups (or directory listings) answered from a fresh index.
    pub name_hits: u64,
    /// Name lookups that had to scan the directory file.
    pub name_misses: u64,
    /// Leader reads answered from the leader cache.
    pub leader_hits: u64,
    /// Leader reads that went to the disk.
    pub leader_misses: u64,
    /// Index hits whose label verification failed (fell back to the scan).
    pub verify_failures: u64,
    /// Cached snapshots retired because the epoch or directory moved on.
    pub invalidations: u64,
}

/// A cached snapshot of one directory's parsed entries.
#[derive(Debug, Clone)]
struct DirIndex {
    /// The directory leader address the snapshot was read through.
    leader_da: DiskAddress,
    /// [`Disk::write_epoch`](alto_disk::Disk::write_epoch) at snapshot time.
    epoch: u64,
    /// The per-directory epoch at snapshot time (see [`HintCache::bump_dir`]).
    generation: u64,
    entries: Vec<DirEntry>,
    /// Casefolded name → index of the *first* matching entry (directories
    /// may hold duplicates after adoption; lookup returns the first).
    by_name: BTreeMap<String, usize>,
}

/// A cached leader page: label plus decoded contents.
#[derive(Debug, Clone)]
struct CachedLeader {
    leader_da: DiskAddress,
    epoch: u64,
    label: Label,
    leader: LeaderPage,
}

/// The unified in-core hint cache carried by every mounted file system.
#[derive(Debug)]
pub(crate) struct HintCache {
    enabled: bool,
    dirs: BTreeMap<Fv, DirIndex>,
    /// Per-directory epochs, bumped on every insert/remove/rewrite through
    /// the directory package; they outlive the snapshots they invalidate.
    generations: BTreeMap<Fv, u64>,
    leaders: BTreeMap<Fv, CachedLeader>,
    pub(crate) stats: CacheStats,
}

impl HintCache {
    pub(crate) fn new() -> HintCache {
        HintCache {
            enabled: true,
            dirs: BTreeMap::new(),
            generations: BTreeMap::new(),
            leaders: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns the cache on or off; disabling discards everything held.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.dirs.clear();
            self.leaders.clear();
        }
    }

    fn generation(&self, dir: Fv) -> u64 {
        self.generations.get(&dir).copied().unwrap_or(0)
    }

    /// Bumps the per-directory epoch, retiring any snapshot of `dir`.
    pub(crate) fn bump_dir(&mut self, dir: Fv) {
        *self.generations.entry(dir).or_insert(0) += 1;
        if self.dirs.remove(&dir).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// The fresh entries of `dir`, or None. A snapshot taken at another
    /// write epoch, another directory generation, or through another
    /// leader address is retired on sight.
    pub(crate) fn dir_entries(&mut self, dir: FileFullName, epoch: u64) -> Option<&[DirEntry]> {
        if !self.enabled {
            return None;
        }
        let generation = self.generation(dir.fv);
        let fresh = match self.dirs.get(&dir.fv) {
            Some(idx) => {
                idx.epoch == epoch && idx.generation == generation && idx.leader_da == dir.leader_da
            }
            None => return None,
        };
        if !fresh {
            self.dirs.remove(&dir.fv);
            self.stats.invalidations += 1;
            return None;
        }
        self.dirs.get(&dir.fv).map(|idx| idx.entries.as_slice())
    }

    /// Looks `folded` up in a fresh index of `dir`. `None` = no fresh
    /// index; `Some(None)` = fresh index, name absent (a verified
    /// negative); `Some(Some(file))` = candidate hit, to be verified
    /// against the target's leader label by the caller.
    pub(crate) fn lookup_name(
        &mut self,
        dir: FileFullName,
        folded: &str,
        epoch: u64,
    ) -> Option<Option<FileFullName>> {
        let idx = {
            self.dir_entries(dir, epoch)?;
            self.dirs.get(&dir.fv)?
        };
        Some(idx.by_name.get(folded).map(|&i| idx.entries[i].file))
    }

    /// Installs a snapshot of `dir`'s entries taken at `epoch`.
    pub(crate) fn install_dir(&mut self, dir: FileFullName, epoch: u64, entries: Vec<DirEntry>) {
        if !self.enabled {
            return;
        }
        let mut by_name = BTreeMap::new();
        for (i, e) in entries.iter().enumerate() {
            by_name.entry(casefold(&e.name)).or_insert(i);
        }
        let generation = self.generation(dir.fv);
        self.dirs.insert(
            dir.fv,
            DirIndex {
                leader_da: dir.leader_da,
                epoch,
                generation,
                entries,
                by_name,
            },
        );
    }

    /// Drops the snapshot of `dir` (a verification failure found it lying).
    pub(crate) fn drop_dir(&mut self, dir: Fv) {
        if self.dirs.remove(&dir).is_some() {
            self.stats.invalidations += 1;
        }
    }

    /// The fresh cached leader of `file`, or None.
    pub(crate) fn leader(&mut self, file: FileFullName, epoch: u64) -> Option<(Label, LeaderPage)> {
        if !self.enabled {
            return None;
        }
        let fresh = match self.leaders.get(&file.fv) {
            Some(c) => c.epoch == epoch && c.leader_da == file.leader_da,
            None => return None,
        };
        if !fresh {
            self.leaders.remove(&file.fv);
            self.stats.invalidations += 1;
            return None;
        }
        self.leaders
            .get(&file.fv)
            .map(|c| (c.label, c.leader.clone()))
    }

    /// Like [`Self::leader`], but *moves* the cached entry out instead of
    /// cloning it. The write path takes the leader, mutates it in place, and
    /// reinstalls it by value via the post-write install — a whole
    /// read-modify-write cycle with zero heap traffic on a warm cache.
    pub(crate) fn take_leader(
        &mut self,
        file: FileFullName,
        epoch: u64,
    ) -> Option<(Label, LeaderPage)> {
        if !self.enabled {
            return None;
        }
        match self.leaders.remove(&file.fv) {
            Some(c) if c.epoch == epoch && c.leader_da == file.leader_da => {
                Some((c.label, c.leader))
            }
            Some(_) => {
                self.stats.invalidations += 1;
                None
            }
            None => None,
        }
    }

    /// Installs `file`'s leader, as read from (or just written to) the disk
    /// at `epoch`.
    pub(crate) fn install_leader(
        &mut self,
        file: FileFullName,
        epoch: u64,
        label: Label,
        leader: LeaderPage,
    ) {
        if !self.enabled {
            return;
        }
        self.leaders.insert(
            file.fv,
            CachedLeader {
                leader_da: file.leader_da,
                epoch,
                label,
                leader,
            },
        );
    }

    /// Drops the cached leader of `fv` (the file was deleted).
    pub(crate) fn forget_leader(&mut self, fv: Fv) {
        self.leaders.remove(&fv);
    }
}
