//! Files and the mounted file system (§3.2–§3.4).
//!
//! A file is a set of pages with absolute names `(FV, 0) .. (FV, n)`;
//! page 0 is the leader page, pages 1..n carry the data bytes, all pages
//! but the last are full (512 bytes) and the last has `L < 512`. Every
//! structural change follows the §3.3 label discipline:
//!
//! * allocating or freeing a page checks the old label and rewrites it —
//!   one disk revolution each;
//! * changing the length of the file rewrites the last page's label — one
//!   revolution;
//! * ordinary data reads and writes check the label *at no cost in time*.
//!
//! The allocation map is a hint: [`FileSystem::allocate_page`] trusts it
//! only until the free-label check fails, then simply tries another page
//! (§3.3). The descriptor is flushed on [`FileSystem::unmount`]; a crash
//! leaves a stale map on disk, which is exactly the state the Scavenger
//! (and the label checks in the meantime) are designed to survive.

use alto_disk::{Disk, DiskAddress, DiskError, Label, DATA_WORDS};

use crate::cache::{casefold, CacheStats, HintCache};
use crate::dates::AltoDate;
use crate::descriptor::{self, DiskDescriptor};
use crate::dir::DirEntry;
use crate::errors::FsError;
use crate::leader::LeaderPage;
use crate::names::{FileFullName, Fv, PageName, SerialNumber};
use crate::page;
use crate::pool;

/// Bytes per page.
pub const PAGE_BYTES: usize = DATA_WORDS * 2;

/// Pages per chained batch on the consecutive fast paths. One Diablo
/// cylinder holds 24 sectors, so a window this size keeps the scheduler
/// busy across a cylinder boundary without guessing far past a stale hint.
const GUESS_WINDOW: u16 = 32;

/// Opening window for guessed reads of a file whose layout is *not*
/// provably straight-line: a failed check halts the command chain (§3.3),
/// so a blind full-window batch across a layout seam pays a rescheduled
/// command per wrong guess. Each fully verified batch doubles the window
/// back up to [`GUESS_WINDOW`].
const GUESS_RAMP: u16 = 4;

/// Counters for allocator behaviour (experiment E4 reports these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Pages successfully allocated.
    pub pages_allocated: u64,
    /// Pages freed.
    pub pages_freed: u64,
    /// Allocation attempts that failed the free-label check because the
    /// map was stale ("a little extra one-time disk activity", §3.3).
    pub alloc_retries: u64,
}

/// A mounted Alto file system over any [`Disk`] implementation.
///
/// # Examples
///
/// ```
/// use alto_disk::{DiskDrive, DiskModel};
/// use alto_fs::{dir, FileSystem};
/// use alto_sim::{SimClock, Trace};
///
/// let drive = DiskDrive::with_formatted_pack(
///     SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
/// let mut fs = FileSystem::format(drive)?;
/// let root = fs.root_dir();
/// let memo = dir::create_named_file(&mut fs, root, "memo.txt")?;
/// fs.write_file(memo, b"self-identifying pages")?;
/// assert_eq!(fs.read_file(memo)?, b"self-identifying pages");
/// # Ok::<(), alto_fs::FsError>(())
/// ```
#[derive(Debug)]
pub struct FileSystem<D: Disk> {
    disk: D,
    desc: DiskDescriptor,
    stats: FsStats,
    cache: HintCache,
}

/// What the name index had to say about a lookup (see
/// [`FileSystem::cached_lookup`]).
pub(crate) enum CacheLookup {
    /// A verified answer (positive or negative) from a fresh index.
    Hit(Option<FileFullName>),
    /// No fresh index, or a hit that failed verification: scan the file.
    Miss,
}

impl<D: Disk> FileSystem<D> {
    /// Formats the loaded pack and mounts the new, empty file system.
    ///
    /// Lays down the well-known structure: DA 0 reserved for the boot file,
    /// the disk descriptor at DA 1, and the root directory `SysDir` at
    /// DA 2 with one empty data page.
    pub fn format(disk: D) -> Result<FileSystem<D>, FsError> {
        let geometry = disk.geometry()?;
        let pack = disk.pack_number()?;
        let desc = DiskDescriptor::fresh(geometry, pack);
        let mut fs = FileSystem {
            disk,
            desc,
            stats: FsStats::default(),
            cache: HintCache::new(),
        };
        let now = fs.now();

        // Reserve every well-known address first: the boot page (its label
        // stays free until the OS installs a boot file, but it must never be
        // allocated to an ordinary file) and the two fixed leader pages.
        fs.desc.bitmap.set_busy(descriptor::BOOT_PAGE_DA);
        fs.desc.bitmap.set_busy(descriptor::DESCRIPTOR_LEADER_DA);
        fs.desc.bitmap.set_busy(descriptor::ROOT_DIR_LEADER_DA);

        // Root directory: leader at the standard DA 2 plus one empty page.
        let root_fv = descriptor::root_dir_fv();
        let root_leader = LeaderPage::new(descriptor::ROOT_DIR_NAME, now)?;
        fs.build_file_at(root_fv, descriptor::ROOT_DIR_LEADER_DA, root_leader, &[])?;

        // Descriptor file: leader at the standard DA 1 plus enough pages to
        // hold the encoded descriptor (the encoding length is fixed by the
        // shape, so flushing later rewrites these pages in place).
        let desc_fv = descriptor::descriptor_fv();
        let desc_leader = LeaderPage::new(descriptor::DESCRIPTOR_NAME, now)?;
        let payload = words_to_bytes(&fs.desc.encode());
        fs.build_file_at(
            desc_fv,
            descriptor::DESCRIPTOR_LEADER_DA,
            desc_leader,
            &payload,
        )?;

        // Enter the well-known files in the root directory, so that every
        // file on a healthy disk has at least one directory entry (the
        // Scavenger adopts entry-less files as orphans).
        let root = fs.root_dir();
        crate::dir::insert(&mut fs, root, descriptor::ROOT_DIR_NAME, root)?;
        crate::dir::insert(
            &mut fs,
            root,
            descriptor::DESCRIPTOR_NAME,
            FileFullName::new(desc_fv, descriptor::DESCRIPTOR_LEADER_DA),
        )?;

        // The builds allocated pages and changed the bitmap; flush so the
        // on-disk descriptor is coherent.
        fs.flush_descriptor()?;
        Ok(fs)
    }

    /// Assembles a file system from a disk and an in-memory descriptor.
    ///
    /// Used by the Scavenger, which reconstructs the descriptor from the
    /// labels rather than trusting anything on disk.
    pub(crate) fn from_parts(disk: D, desc: DiskDescriptor) -> FileSystem<D> {
        FileSystem {
            disk,
            desc,
            stats: FsStats::default(),
            cache: HintCache::new(),
        }
    }

    /// Mounts an already formatted pack by reading the disk descriptor.
    pub fn mount(mut disk: D) -> Result<FileSystem<D>, FsError> {
        let desc_name = FileFullName::new(
            descriptor::descriptor_fv(),
            descriptor::DESCRIPTOR_LEADER_DA,
        );
        let bytes = read_file_with(&mut disk, desc_name)
            .map_err(|_| FsError::NotFormatted("cannot read disk descriptor"))?;
        let desc = DiskDescriptor::decode(&bytes_to_words(&bytes))?;
        if desc.shape != disk.geometry()? {
            return Err(FsError::NotFormatted("descriptor shape mismatch"));
        }
        Ok(FileSystem {
            disk,
            desc,
            stats: FsStats::default(),
            cache: HintCache::new(),
        })
    }

    /// Flushes the descriptor and returns the disk.
    pub fn unmount(mut self) -> Result<D, FsError> {
        self.flush_descriptor()?;
        Ok(self.disk)
    }

    /// Abandons the file system *without* flushing the descriptor — the
    /// simulated crash used by robustness experiments: the on-disk
    /// allocation map is left stale, exactly as after a power failure.
    pub fn crash(self) -> D {
        self.disk
    }

    /// The underlying disk (open access, §5.2).
    pub fn disk(&self) -> &D {
        &self.disk
    }

    /// Mutable access to the underlying disk.
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// The in-memory disk descriptor.
    pub fn descriptor(&self) -> &DiskDescriptor {
        &self.desc
    }

    /// Mutable access to the descriptor (the Scavenger rebuilds it).
    pub fn descriptor_mut(&mut self) -> &mut DiskDescriptor {
        &mut self.desc
    }

    /// Allocator statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Hint-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// True if the in-core hint cache (and placement-aware allocation) is
    /// enabled.
    pub fn hint_cache_enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// Turns the in-core hint cache on or off. Disabling it — the ablation
    /// of the experiments — discards everything held and also reverts the
    /// allocator to the original fixed-origin scan.
    pub fn set_hint_cache_enabled(&mut self, enabled: bool) {
        self.cache.set_enabled(enabled);
    }

    fn trace_cache(&self, tag: &'static str, detail: impl FnOnce() -> String) {
        let now = self.disk.clock().now();
        self.disk.trace().record_with(now, tag, detail);
    }

    /// The fresh cached entries of `dir`, counted and traced as a hit.
    pub(crate) fn cached_dir_entries(&mut self, dir: FileFullName) -> Option<Vec<DirEntry>> {
        let epoch = self.disk.write_epoch();
        // lint: allow(hint-reverify) — the snapshot is epoch-gated, not stale:
        // dir_entries returns None unless the disk write epoch still matches
        // the one captured when the full directory read installed it
        let entries = self.cache.dir_entries(dir, epoch)?.to_vec();
        self.cache.stats.name_hits += 1;
        self.trace_cache("fs.cache_hit", || {
            format!("dir {} listed from index", dir.fv)
        });
        Some(entries)
    }

    /// Installs a directory snapshot read (in full) from the disk just now.
    pub(crate) fn install_dir_snapshot(&mut self, dir: FileFullName, entries: &[DirEntry]) {
        if self.cache.enabled() {
            let epoch = self.disk.write_epoch();
            self.cache.install_dir(dir, epoch, entries.to_vec());
        }
    }

    /// Notes that the directory package rewrote `dir` so its contents are
    /// now exactly `entries`: retires the old snapshot and installs the new
    /// one, keeping the index warm across its own mutations.
    pub(crate) fn dir_rewritten(&mut self, dir: FileFullName, entries: Vec<DirEntry>) {
        self.cache.bump_dir(dir.fv);
        if self.cache.enabled() {
            let epoch = self.disk.write_epoch();
            self.cache.install_dir(dir, epoch, entries);
        }
    }

    /// Answers a name lookup from the index if a fresh snapshot exists.
    /// A positive hit is verified against the target's leader label before
    /// it is returned (§3.6: hints are checked on use, never believed); the
    /// verification read doubles as a leader-cache fill, so the open that
    /// usually follows costs nothing extra.
    pub(crate) fn cached_lookup(&mut self, dir: FileFullName, name: &str) -> CacheLookup {
        if !self.cache.enabled() {
            return CacheLookup::Miss;
        }
        let epoch = self.disk.write_epoch();
        let found = match self.cache.lookup_name(dir, &casefold(name), epoch) {
            Some(Some(file)) => file,
            Some(None) => {
                // Fresh index, name absent: a verified negative (the epoch
                // check proves the directory has not changed underneath).
                self.cache.stats.name_hits += 1;
                self.trace_cache("fs.cache_hit", || format!("{name} absent from {}", dir.fv));
                return CacheLookup::Hit(None);
            }
            None => {
                self.cache.stats.name_misses += 1;
                self.trace_cache("fs.cache_miss", || format!("{name} in {}", dir.fv));
                return CacheLookup::Miss;
            }
        };
        match page::read_page(&mut self.disk, found.leader_page()) {
            Ok((label, data)) => {
                self.cache.stats.name_hits += 1;
                self.trace_cache("fs.cache_hit", || format!("{name} -> {}", found.fv));
                let epoch = self.disk.write_epoch();
                self.cache
                    .install_leader(found, epoch, label, LeaderPage::decode(&data));
                CacheLookup::Hit(Some(found))
            }
            Err(_) => {
                // The entry lied: retire the snapshot and let the caller
                // fall back to the linear scan. Never corrupts.
                self.cache.stats.verify_failures += 1;
                self.cache.drop_dir(dir.fv);
                self.trace_cache("fs.cache_invalidate", || {
                    format!("{name} -> {} failed the label check", found.fv)
                });
                CacheLookup::Miss
            }
        }
    }

    /// The root directory's full name.
    pub fn root_dir(&self) -> FileFullName {
        self.desc.root_dir
    }

    /// The current date on this machine's clock.
    pub fn now(&self) -> AltoDate {
        AltoDate::from_sim_time(self.disk.clock().now())
    }

    /// Writes the in-memory descriptor to the descriptor file.
    pub fn flush_descriptor(&mut self) -> Result<(), FsError> {
        let desc_name = FileFullName::new(
            descriptor::descriptor_fv(),
            descriptor::DESCRIPTOR_LEADER_DA,
        );
        let payload = words_to_bytes(&self.desc.encode());
        // The descriptor's size is fixed, so this rewrites data pages in
        // place with ordinary writes (no allocation, no label rewrites).
        let (leader_label, leader) = self.open_leader(desc_name)?;
        self.overwrite_in_place(desc_name, &payload, leader_label, &leader)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Page-level interface (§3.1): the small component, fully exposed.
    // ------------------------------------------------------------------

    /// Allocates a free page near `near` (or the allocation rotor), writing
    /// `label` and `data`. Retries transparently when the allocation map
    /// proves stale. Returns where the page landed.
    pub fn allocate_page(
        &mut self,
        near: Option<DiskAddress>,
        label: Label,
        data: &[u16; DATA_WORDS],
    ) -> Result<DiskAddress, FsError> {
        let mut start = near.unwrap_or(self.desc.rotor);
        loop {
            let candidate = self
                .desc
                .bitmap
                .find_free_from(start)
                .ok_or(FsError::DiskFull)?;
            self.desc.bitmap.set_busy(candidate);
            match page::allocate_at(&mut self.disk, candidate, label, data) {
                Ok(()) => {
                    self.stats.pages_allocated += 1;
                    self.desc.rotor = DiskAddress(candidate.0.wrapping_add(1));
                    return Ok(candidate);
                }
                Err(FsError::Disk(DiskError::Check(_))) => {
                    // Stale map: the label says busy. Keep the bit busy and
                    // try the next candidate (§3.3).
                    self.stats.alloc_retries += 1;
                    start = DiskAddress(candidate.0.wrapping_add(1));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Picks where a chain of `pages` new pages should start: the nearest
    /// run of that many free pages at or after `near`, so fresh files come
    /// out consecutive and the §3.6 consecutive-guess machinery hits on
    /// first read, without waiting for the compactor. The map is only a
    /// hint — the per-page label checks in [`FileSystem::allocate_page`]
    /// still arbitrate — and with the hint cache disabled (the ablation)
    /// the allocator keeps its original fixed-origin behaviour.
    fn placement_run(&self, near: DiskAddress, pages: u32) -> Option<DiskAddress> {
        if !self.cache.enabled() || pages <= 1 {
            return None;
        }
        self.desc.bitmap.find_free_run_from(near, pages)
    }

    /// Placement across a drive array: successive new files start in
    /// rotating arms (file number mod the arm count), so a working set of
    /// hot files spreads over the arms and a batch touching several of them
    /// overlaps their timelines. Returns `None` — keep the rotor — on a
    /// single-arm disk, under hash placement (where consecutive addresses
    /// already interleave over the arms), or with the hint cache disabled
    /// (the ablation keeps the original fixed-origin behaviour).
    fn arm_spread_origin(&self, number: u32) -> Option<DiskAddress> {
        if !self.cache.enabled() {
            return None;
        }
        let arms = self.disk.arm_count();
        if arms <= 1 {
            return None;
        }
        self.disk.arm_origin(number as usize % arms)
    }

    /// Frees the page named `pn` (label checked; ones written; §3.3).
    pub fn free_page(&mut self, pn: PageName) -> Result<Label, FsError> {
        let old = page::free_page(&mut self.disk, pn)?;
        self.desc.bitmap.set_free(pn.da);
        self.stats.pages_freed += 1;
        Ok(old)
    }

    /// Reads the page named `pn` (checked by full name).
    pub fn read_page(&mut self, pn: PageName) -> Result<(Label, [u16; DATA_WORDS]), FsError> {
        page::read_page(&mut self.disk, pn)
    }

    /// Writes the data of the page named `pn` (ordinary write; label
    /// checked at no cost, not modified).
    pub fn write_page(&mut self, pn: PageName, data: &[u16; DATA_WORDS]) -> Result<Label, FsError> {
        page::write_page(&mut self.disk, pn, data)
    }

    // ------------------------------------------------------------------
    // File-level interface (§3.2).
    // ------------------------------------------------------------------

    /// Creates a new empty file with the given leader name: a leader page
    /// and one empty data page. Does *not* enter it in any directory — that
    /// is a separate mechanism (§3.4); see [`crate::dir::insert`].
    pub fn create_file(&mut self, leader_name: &str) -> Result<FileFullName, FsError> {
        self.create_file_kind(leader_name, false)
    }

    /// Creates a file whose serial number carries the directory flag.
    pub fn create_directory_file(&mut self, leader_name: &str) -> Result<FileFullName, FsError> {
        self.create_file_kind(leader_name, true)
    }

    fn create_file_kind(
        &mut self,
        leader_name: &str,
        directory: bool,
    ) -> Result<FileFullName, FsError> {
        let number = self.desc.assign_file_number();
        if number >= 1 << 30 {
            // A scavenged hostile image can leave the counter saturated at
            // the top of the 30-bit space (§3.1); creating must fail
            // cleanly, not panic in SerialNumber::new.
            return Err(FsError::SerialsExhausted);
        }
        let fv = Fv::new(SerialNumber::new(number, directory), 1);
        let leader = LeaderPage::new(leader_name, self.now())?;
        let leader_label = Label {
            fid: fv.serial.words(),
            version: fv.version,
            page_number: 0,
            length: PAGE_BYTES as u16,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        };
        let leader_da = self.allocate_page(
            self.arm_spread_origin(number),
            leader_label,
            &leader.encode(),
        )?;
        self.chain_data_pages(fv, leader_da, leader, &[])?;
        Ok(FileFullName::new(fv, leader_da))
    }

    /// Lays down a file whose leader must land at a *fixed* address (the
    /// well-known files created at format time). The caller has already
    /// marked `leader_da` busy in the map.
    fn build_file_at(
        &mut self,
        fv: Fv,
        leader_da: DiskAddress,
        leader: LeaderPage,
        bytes: &[u8],
    ) -> Result<(), FsError> {
        let leader_label = Label {
            fid: fv.serial.words(),
            version: fv.version,
            page_number: 0,
            length: PAGE_BYTES as u16,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        };
        page::allocate_at(&mut self.disk, leader_da, leader_label, &leader.encode())?;
        self.stats.pages_allocated += 1;
        self.chain_data_pages(fv, leader_da, leader, bytes)
    }

    /// The Scavenger's entry point to [`FileSystem::chain_data_pages`] when
    /// rebuilding the descriptor file at its standard address.
    pub(crate) fn chain_data_pages_for_scavenger(
        &mut self,
        fv: Fv,
        leader_da: DiskAddress,
        leader: LeaderPage,
        bytes: &[u8],
    ) -> Result<(), FsError> {
        self.stats.pages_allocated += 1; // the leader the caller laid down
        self.chain_data_pages(fv, leader_da, leader, bytes)
    }

    /// Allocates and chains the data pages of a fresh file whose leader is
    /// already on disk with nil links, fixing each predecessor's next link
    /// and finally recording the last-page hints in the leader data.
    fn chain_data_pages(
        &mut self,
        fv: Fv,
        leader_da: DiskAddress,
        mut leader: LeaderPage,
        bytes: &[u8],
    ) -> Result<(), FsError> {
        let pages = bytes.len().div_ceil(PAGE_BYTES).max(1) as u16;
        let mut prev_da = leader_da;
        let mut last_da = leader_da;
        // The predecessor's label and data are tracked in memory, so fixing
        // its next link is one label rewrite (one revolution) with no extra
        // read pass.
        let mut prev_label = Label {
            fid: fv.serial.words(),
            version: fv.version,
            page_number: 0,
            length: PAGE_BYTES as u16,
            next: DiskAddress::NIL,
            prev: DiskAddress::NIL,
        };
        let mut prev_data = leader.encode();
        // Placement: open the whole chain in one consecutive free run when
        // the map offers one near the leader.
        let first_near = self
            .placement_run(DiskAddress(leader_da.0.wrapping_add(1)), pages as u32)
            .unwrap_or(DiskAddress(leader_da.0.wrapping_add(1)));
        for n in 1..=pages {
            let start = (n as usize - 1) * PAGE_BYTES;
            let chunk = &bytes[start.min(bytes.len())..bytes.len().min(start + PAGE_BYTES)];
            let mut data = [0u16; DATA_WORDS];
            pack_bytes(chunk, &mut data);
            let label = Label {
                fid: fv.serial.words(),
                version: fv.version,
                page_number: n,
                length: chunk.len() as u16,
                next: DiskAddress::NIL,
                prev: prev_da,
            };
            let near = if n == 1 {
                first_near
            } else {
                DiskAddress(prev_da.0.wrapping_add(1))
            };
            let da = self.allocate_page(Some(near), label, &data)?;
            // Fix the predecessor's next link (one revolution, §3.3).
            let prev_pn = PageName::new(fv, n - 1, prev_da);
            prev_label.next = da;
            page::rewrite_label(&mut self.disk, prev_pn, prev_label, &prev_data)?;
            prev_da = da;
            last_da = da;
            prev_label = label;
            prev_data = data;
        }
        leader.last_page = pages;
        leader.last_da = last_da;
        leader.maybe_consecutive = last_da.0 == leader_da.0.wrapping_add(pages);
        self.write_page(PageName::new(fv, 0, leader_da), &leader.encode())?;
        Ok(())
    }

    /// Reads and decodes the leader page of `file`.
    pub fn read_leader(&mut self, file: FileFullName) -> Result<LeaderPage, FsError> {
        Ok(self.open_leader(file)?.1)
    }

    /// The leader label and decoded leader page of `file`, served from the
    /// leader cache when a fresh copy is held (skipping a disk revolution)
    /// and filling it otherwise. A hit is exactly equivalent to re-reading:
    /// entries are only held while the disk's write epoch stands still, so
    /// the read that installed them would still succeed, unchanged.
    pub fn open_leader(&mut self, file: FileFullName) -> Result<(Label, LeaderPage), FsError> {
        let epoch = self.disk.write_epoch();
        if let Some((label, leader)) = self.cache.leader(file, epoch) {
            self.cache.stats.leader_hits += 1;
            self.trace_cache("fs.cache_hit", || format!("leader {}", file.fv));
            return Ok((label, leader));
        }
        if self.cache.enabled() {
            self.cache.stats.leader_misses += 1;
            self.trace_cache("fs.cache_miss", || format!("leader {}", file.fv));
        }
        let (label, data) = self.read_page(file.leader_page())?;
        let leader = LeaderPage::decode(&data);
        self.cache
            .install_leader(file, epoch, label, leader.clone());
        Ok((label, leader))
    }

    /// Rewrites the leader page's *data* (dates, name, hints); the leader's
    /// label is checked but unchanged, so this is an ordinary write.
    pub fn write_leader(&mut self, file: FileFullName, leader: &LeaderPage) -> Result<(), FsError> {
        self.write_leader_install(file, leader.clone())
    }

    /// [`Self::write_leader`] taking the leader by value: the post-write
    /// cache install moves it instead of cloning, so read-modify-write
    /// cycles that own their leader stay heap-free.
    pub fn write_leader_install(
        &mut self,
        file: FileFullName,
        leader: LeaderPage,
    ) -> Result<(), FsError> {
        let label = self.write_page(file.leader_page(), &leader.encode())?;
        // The write bumped the epoch; re-install what is now on disk so the
        // next open of this file is a hit.
        let epoch = self.disk.write_epoch();
        self.cache.install_leader(file, epoch, label, leader);
        Ok(())
    }

    /// Opens the leader of `file` for update: a cache hit *moves* the entry
    /// out (zero heap traffic), a miss reads and decodes it from the disk
    /// without installing — the caller is about to rewrite the leader and
    /// will reinstall the updated copy via [`Self::write_leader_install`].
    fn take_leader(&mut self, file: FileFullName) -> Result<(Label, LeaderPage), FsError> {
        let epoch = self.disk.write_epoch();
        if let Some(hit) = self.cache.take_leader(file, epoch) {
            self.cache.stats.leader_hits += 1;
            self.trace_cache("fs.cache_hit", || format!("leader {} (take)", file.fv));
            return Ok(hit);
        }
        if self.cache.enabled() {
            self.cache.stats.leader_misses += 1;
            self.trace_cache("fs.cache_miss", || format!("leader {} (take)", file.fv));
        }
        let (label, data) = self.read_page(file.leader_page())?;
        Ok((label, LeaderPage::decode(&data)))
    }

    /// The file's length in data bytes, computed from the last page's label
    /// (the leader hint is used and validated).
    pub fn file_length(&mut self, file: FileFullName) -> Result<u64, FsError> {
        let (last_pn, last_label) = self.locate_last_page(file)?;
        Ok((last_pn.page as u64 - 1) * PAGE_BYTES as u64 + last_label.length as u64)
    }

    /// Reads the entire contents of `file`.
    pub fn read_file(&mut self, file: FileFullName) -> Result<Vec<u8>, FsError> {
        read_file_with(&mut self.disk, file)
    }

    /// Replaces the entire contents of `file` with `bytes`, reusing pages
    /// in place, extending or truncating as needed, and updating the
    /// leader's written date and last-page hints.
    pub fn write_file(&mut self, file: FileFullName, bytes: &[u8]) -> Result<(), FsError> {
        // Take the leader out of the cache (a move, not a clone), rewrite
        // the pages, then write the updated leader back and reinstall it by
        // value: the whole cycle is heap-free on a warm cache.
        let (leader_label, mut leader) = self.take_leader(file)?;
        let (consecutive, last_da) = self.overwrite_in_place(file, bytes, leader_label, &leader)?;
        leader.written = self.now();
        // The rewrite walked every page, so the tail hints come for free —
        // no separate link chase to locate the last page.
        leader.last_page = bytes.len().div_ceil(PAGE_BYTES).max(1) as u16;
        leader.last_da = last_da;
        // The rewrite just walked every link: record whether guessed
        // consecutive batches will pay off on this file from now on.
        leader.maybe_consecutive = consecutive;
        self.write_leader_install(file, leader)
    }

    /// Writes words into the leader page's user property space (§3.6's
    /// installed programs park hints there). `offset` is relative to
    /// [`crate::leader::PROPERTY_BASE`].
    pub fn write_leader_properties(
        &mut self,
        file: FileFullName,
        offset: usize,
        words: &[u16],
    ) -> Result<(), FsError> {
        let mut leader = self.read_leader(file)?;
        let end = offset
            .checked_add(words.len())
            .filter(|&e| e <= leader.properties.len())
            .ok_or(FsError::BadLength(words.len() as u16))?;
        leader.properties[offset..end].copy_from_slice(words);
        self.write_leader(file, &leader)
    }

    /// Reads words from the leader page's user property space.
    pub fn read_leader_properties(
        &mut self,
        file: FileFullName,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u16>, FsError> {
        let leader = self.read_leader(file)?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= leader.properties.len())
            .ok_or(FsError::BadLength(len as u16))?;
        Ok(leader.properties[offset..end].to_vec())
    }

    /// Records a read access in the leader's read date (§3.2). Programs
    /// that care call this; reads themselves stay cheap.
    pub fn touch_read(&mut self, file: FileFullName) -> Result<(), FsError> {
        let mut leader = self.read_leader(file)?;
        leader.read = self.now();
        self.write_leader(file, &leader)
    }

    /// Deletes the entire file, freeing every page (§3.2).
    pub fn delete_file(&mut self, file: FileFullName) -> Result<(), FsError> {
        // Collect the chain first (labels are the source of truth).
        let mut chain = vec![];
        let mut pn = file.leader_page();
        let mut budget = self.chain_budget()?;
        loop {
            let (label, _) = self.read_page(pn)?;
            chain.push(pn);
            if label.next.is_nil() {
                break;
            }
            if budget == 0 {
                return Err(FsError::Corrupt {
                    da: pn.da,
                    what: "link cycle",
                });
            }
            budget -= 1;
            pn = PageName::new(file.fv, pn.page + 1, label.next);
        }
        for pn in chain {
            self.free_page(pn)?;
        }
        self.cache.forget_leader(file.fv);
        Ok(())
    }

    /// Walks to the last page, preferring the leader hint and falling back
    /// to a link chase from the leader.
    fn locate_last_page(&mut self, file: FileFullName) -> Result<(PageName, Label), FsError> {
        let (leader_label, leader) = self.open_leader(file)?;
        // Try the hint.
        if leader.last_page > 0 && !leader.last_da.is_nil() {
            let pn = PageName::new(file.fv, leader.last_page, leader.last_da);
            if let Ok((label, _)) = self.read_page(pn) {
                if label.next.is_nil() {
                    return Ok((pn, label));
                }
            }
        }
        // Chase links from the leader.
        let mut pn = PageName::new(file.fv, 1, leader_label.next);
        let mut budget = self.chain_budget()?;
        loop {
            let (label, _) = self.read_page(pn)?;
            if label.next.is_nil() {
                return Ok((pn, label));
            }
            if budget == 0 {
                return Err(FsError::Corrupt {
                    da: pn.da,
                    what: "link cycle",
                });
            }
            budget -= 1;
            pn = PageName::new(file.fv, pn.page + 1, label.next);
        }
    }

    /// Step budget for a link chase: a well-formed chain can never be
    /// longer than the disk has sectors, so any walk that exceeds this is
    /// structurally cyclic and must surface as corruption instead of
    /// spinning (the §3.3 page-number check already terminates honest
    /// chains; this is the belt to that suspender).
    fn chain_budget(&self) -> Result<u32, FsError> {
        Ok(self.disk.geometry()?.sector_count() + 2)
    }

    /// Rewrites file contents page by page. Ordinary writes where the label
    /// (length, links) is unchanged; label rewrites only where the length
    /// or links change; allocation/free only where the page count changes.
    ///
    /// Full pages along a consecutive chain go to the disk in chained
    /// batches at guessed addresses (the §3.6 discipline: a wrong guess
    /// fails its label check before anything is written); the last page,
    /// length changes, extension and truncation take the per-page path.
    ///
    /// Takes the leader (label and decoded page) the caller already holds;
    /// the leader page itself is never touched here.
    ///
    /// Returns `(consecutive, last_da)`: whether the data pages it walked
    /// were (nearly) consecutive on the disk — the caller records this in
    /// the leader so future reads and rewrites know guessed batches are
    /// worth issuing — and the disk address of the file's last page, so the
    /// caller can update the leader's tail hints without a link chase.
    fn overwrite_in_place(
        &mut self,
        file: FileFullName,
        bytes: &[u8],
        leader_label: Label,
        leader: &LeaderPage,
    ) -> Result<(bool, DiskAddress), FsError> {
        let new_pages = bytes.len().div_ceil(PAGE_BYTES).max(1) as u16;
        let mut n: u16 = 1;
        let mut prev_da = file.leader_da;
        let mut da = leader_label.next; // page 1's address
                                        // The previous iteration's final label and data, so extension can
                                        // fix the predecessor's next link without re-reading it.
        let mut prev_state: Option<(Label, [u16; DATA_WORDS])> = None;
        // Links that depart from address-consecutive (a handful is fine —
        // the guessed batches just restart from the real link there).
        let mut jumps: u32 = 0;
        // Placement for the extension path: chosen once, when the first new
        // page is allocated, sized to everything still to be laid down.
        let mut extended = false;

        // Batched fast path. A zero serial low word would wildcard the
        // label check and let a wrong guess through, so such files (and
        // non-consecutive ones) take the per-page path below.
        if leader.maybe_consecutive && file.fv.serial.words()[1] != 0 {
            // Staging and result vectors are pooled and reused across
            // batches: a warm rewrite allocates nothing here.
            let mut chunks = pool::chunks_vec();
            'batched: while n < new_pages && !da.is_nil() {
                // Only full, already-existing pages belong in a batch:
                // clamp to the page before the last new one and to the old
                // file's tail hint.
                let mut count = (new_pages - n).min(GUESS_WINDOW);
                if leader.last_page >= n {
                    count = count.min(leader.last_page - n + 1);
                }
                if count == 0 {
                    break;
                }
                chunks.clear();
                for j in 0..count {
                    let start = (n + j - 1) as usize * PAGE_BYTES;
                    let mut data = [0u16; DATA_WORDS];
                    pack_bytes(&bytes[start..start + PAGE_BYTES], &mut data);
                    chunks.push(data);
                }
                let labels = page::write_pages_guessed(
                    &mut self.disk,
                    file.fv,
                    PageName::new(file.fv, n, da),
                    &chunks,
                )?;
                // True when the batch ended on a good link and the next
                // batch should be issued from `da`; false diverts to the
                // per-page path below.
                let mut resume = false;
                for (j, res) in labels.iter().enumerate() {
                    let j = j as u16;
                    let this_da = DiskAddress(da.0.wrapping_add(j));
                    match res {
                        Ok(captured) => {
                            if captured.length as usize != PAGE_BYTES {
                                // The old file's tail: the data landed but
                                // the length must change. Redo this page on
                                // the per-page path (idempotent write).
                                n += j;
                                da = this_da;
                                prev_state = None;
                                break;
                            }
                            if captured.next.is_nil() {
                                // Old chain ends here; the rest extends.
                                n += j + 1;
                                prev_da = this_da;
                                da = DiskAddress::NIL;
                                prev_state = Some((*captured, chunks[j as usize]));
                                break;
                            }
                            let guessed = DiskAddress(this_da.0.wrapping_add(1));
                            if captured.next != guessed || j + 1 == count {
                                if captured.next != guessed {
                                    jumps += 1;
                                }
                                n += j + 1;
                                prev_da = this_da;
                                da = captured.next;
                                prev_state = Some((*captured, chunks[j as usize]));
                                resume = true;
                                break;
                            }
                        }
                        // Entry 0's address came from the real chain; later
                        // entries only fail when the predecessor's link said
                        // they were consecutive. Either way the per-page
                        // path below reproduces the failure or the page.
                        Err(_) => {
                            n += j;
                            da = this_da;
                            prev_state = None;
                            break;
                        }
                    }
                }
                pool::recycle_labels(labels);
                if !resume {
                    // The last entry always diverts (length change, chain
                    // end, or link jump), so falling out of the member loop
                    // without a resume means the per-page path takes over.
                    break 'batched;
                }
            }
            pool::recycle_chunks(chunks);
        }

        while n <= new_pages {
            let chunk_start = (n as usize - 1) * PAGE_BYTES;
            let chunk =
                &bytes[chunk_start.min(bytes.len())..bytes.len().min(chunk_start + PAGE_BYTES)];
            let mut data = [0u16; DATA_WORDS];
            pack_bytes(chunk, &mut data);
            let new_len = chunk.len() as u16;
            let is_last = n == new_pages;

            if da.is_nil() {
                // Extend: allocate page n.
                let label = Label {
                    fid: file.fv.serial.words(),
                    version: file.fv.version,
                    page_number: n,
                    length: new_len,
                    next: DiskAddress::NIL,
                    prev: prev_da,
                };
                let near = if extended {
                    DiskAddress(prev_da.0.wrapping_add(1))
                } else {
                    extended = true;
                    let remaining = (new_pages - n + 1) as u32;
                    self.placement_run(DiskAddress(prev_da.0.wrapping_add(1)), remaining)
                        .unwrap_or(DiskAddress(prev_da.0.wrapping_add(1)))
                };
                let new_da = self.allocate_page(Some(near), label, &data)?;
                if n > 1 && new_da.0 != prev_da.0.wrapping_add(1) {
                    jumps += 1;
                }
                // Fix the previous page's next link (a length change in the
                // §3.3 sense: one revolution). The predecessor's contents
                // are still in memory from the previous iteration.
                let prev_pn = PageName::new(file.fv, n - 1, prev_da);
                let (mut prev_label, prev_data) = match prev_state.take() {
                    Some(state) => state,
                    None => self.read_page(prev_pn)?,
                };
                prev_label.next = new_da;
                page::rewrite_label(&mut self.disk, prev_pn, prev_label, &prev_data)?;
                prev_da = new_da;
                da = DiskAddress::NIL;
                prev_state = Some((label, data));
            } else {
                let pn = PageName::new(file.fv, n, da);
                // Write the data in a single pass; the label check's
                // wildcards capture the current label, telling us the old
                // length and the next link without a separate read. This
                // is what lets a same-size rewrite (e.g. a world swap,
                // §4.1) stream at full disk speed.
                let current = self.write_page(pn, &data)?;
                let next_after = current.next;
                if !is_last && !next_after.is_nil() && next_after.0 != da.0.wrapping_add(1) {
                    jumps += 1;
                }
                let mut final_label = current;
                if current.length != new_len || (is_last && !current.next.is_nil()) {
                    // Length or links change: the §3.3 label rewrite, one
                    // revolution.
                    final_label.length = new_len;
                    if is_last {
                        final_label.next = DiskAddress::NIL;
                    }
                    page::rewrite_label(&mut self.disk, pn, final_label, &data)?;
                }
                prev_da = da;
                da = if is_last {
                    DiskAddress::NIL
                } else {
                    next_after
                };
                prev_state = Some((final_label, data));
                // Truncate: free any remaining old pages.
                if is_last && !next_after.is_nil() {
                    self.free_chain(file.fv, n + 1, next_after)?;
                }
            }
            n += 1;
        }
        Ok((jumps <= 1 + new_pages as u32 / 16, prev_da))
    }

    /// Frees the chain of pages starting at `(fv, first_page)` @ `da`.
    fn free_chain(&mut self, fv: Fv, first_page: u16, da: DiskAddress) -> Result<(), FsError> {
        let mut pn = PageName::new(fv, first_page, da);
        let mut budget = self.chain_budget()?;
        loop {
            let old = self.free_page(pn)?;
            if old.next.is_nil() {
                return Ok(());
            }
            if budget == 0 {
                return Err(FsError::Corrupt {
                    da: pn.da,
                    what: "link cycle",
                });
            }
            budget -= 1;
            pn = PageName::new(fv, pn.page + 1, old.next);
        }
    }
}

/// Reads a whole file through a bare disk (used by `mount`, before a
/// `FileSystem` exists).
///
/// When the leader hints that the file may be consecutively laid out, the
/// pages are fetched in chained batches at guessed consecutive addresses
/// (§3.6); the labels returned by each batch steer the next one, and any
/// wrong guess falls back to the one-page-at-a-time link chase.
pub(crate) fn read_file_with<D: Disk>(
    disk: &mut D,
    file: FileFullName,
) -> Result<Vec<u8>, FsError> {
    let (leader_label, leader_data) = page::read_page(disk, file.leader_page())?;
    let leader = LeaderPage::decode(&leader_data);
    let mut bytes = Vec::new();
    let mut pn = PageName::new(file.fv, 1, leader_label.next);

    if leader.maybe_consecutive {
        // Two batches in a row that only yield their first page mean the
        // hint is a lie; stop wasting guesses and chase links instead.
        let mut strikes = 0u8;
        // A straight-line layout — the last page exactly where page 1 plus
        // `last_page − 1` lands — earns the full window at once. Any other
        // "consecutive" file has a seam somewhere, and every guess past the
        // seam is a halted chain plus a rescheduled command, so open small
        // and let verified batches grow the window back.
        let straight =
            leader.last_page >= 1 && leader.last_da.0 == pn.da.0.wrapping_add(leader.last_page - 1);
        let mut window = if straight { GUESS_WINDOW } else { GUESS_RAMP };
        'batched: loop {
            // Clamp the window with the leader's last-page hint so a batch
            // does not guess far past the end of the file.
            let count = if leader.last_page >= pn.page {
                (leader.last_page - pn.page + 1).min(window)
            } else {
                window
            };
            let pages = page::read_pages_guessed(disk, file.fv, pn, count)?;
            for (j, res) in pages.into_iter().enumerate() {
                let j = j as u16;
                match res {
                    Ok((label, data)) => {
                        if label.length as usize > PAGE_BYTES {
                            return Err(FsError::BadLength(label.length));
                        }
                        bytes.extend_from_slice(&unpack_bytes(&data)[..label.length as usize]);
                        if label.next.is_nil() {
                            return Ok(bytes);
                        }
                        let guessed = DiskAddress(pn.da.0.wrapping_add(j + 1));
                        if label.next != guessed || j + 1 == count {
                            // The chain departs from the guesses (or the
                            // window is spent): restart from the real link.
                            window = if label.next == guessed {
                                (window * 2).min(GUESS_WINDOW)
                            } else {
                                GUESS_RAMP
                            };
                            pn = PageName::new(file.fv, pn.page + j + 1, label.next);
                            if j == 0 && label.next != guessed {
                                strikes += 1;
                                if strikes >= 2 {
                                    break 'batched;
                                }
                            } else {
                                strikes = 0;
                            }
                            continue 'batched;
                        }
                    }
                    // Entry 0 is the real chain address: its failure is the
                    // file's failure. Later entries only fail here when the
                    // predecessor's link *said* they were consecutive, so
                    // re-issuing the read below reproduces the error.
                    Err(e) if j == 0 => return Err(e),
                    Err(_) => {
                        pn = PageName::new(
                            file.fv,
                            pn.page + j,
                            DiskAddress(pn.da.0.wrapping_add(j)),
                        );
                        break 'batched;
                    }
                }
            }
            break 'batched;
        }
    }

    let mut budget = disk.geometry()?.sector_count() + 2;
    loop {
        let (label, data) = page::read_page(disk, pn)?;
        if label.length as usize > PAGE_BYTES {
            return Err(FsError::BadLength(label.length));
        }
        bytes.extend_from_slice(&unpack_bytes(&data)[..label.length as usize]);
        if label.next.is_nil() {
            return Ok(bytes);
        }
        if budget == 0 {
            return Err(FsError::Corrupt {
                da: pn.da,
                what: "link cycle",
            });
        }
        budget -= 1;
        pn = PageName::new(file.fv, pn.page + 1, label.next);
    }
}

/// Packs bytes into page words, big-endian (byte 0 in the high byte).
/// Whole-word pairs move by slice, not per-byte dispatch; words past the
/// byte run are left untouched.
pub fn pack_bytes(bytes: &[u8], words: &mut [u16; DATA_WORDS]) {
    let n = bytes.len().min(PAGE_BYTES);
    let mut pairs = bytes[..n].chunks_exact(2);
    for (w, pair) in words.iter_mut().zip(pairs.by_ref()) {
        *w = u16::from_be_bytes([pair[0], pair[1]]);
    }
    if let [last] = pairs.remainder() {
        words[n / 2] = (*last as u16) << 8;
    }
}

/// Unpacks page words into bytes.
pub fn unpack_bytes(words: &[u16; DATA_WORDS]) -> [u8; PAGE_BYTES] {
    let mut out = [0u8; PAGE_BYTES];
    for (pair, &w) in out.chunks_exact_mut(2).zip(words.iter()) {
        pair.copy_from_slice(&w.to_be_bytes());
    }
    out
}

/// Converts a word vector to bytes (for word-structured file payloads).
pub fn words_to_bytes(words: &[u16]) -> Vec<u8> {
    let mut out = vec![0u8; words.len() * 2];
    for (pair, &w) in out.chunks_exact_mut(2).zip(words.iter()) {
        pair.copy_from_slice(&w.to_be_bytes());
    }
    out
}

/// Converts bytes back to words (odd trailing byte is high-padded).
pub fn bytes_to_words(bytes: &[u8]) -> Vec<u16> {
    bytes
        .chunks(2)
        .map(|c| u16::from_be_bytes([c[0], c.get(1).copied().unwrap_or(0)]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    #[test]
    fn format_lays_down_the_well_known_structure() {
        let fs = fresh_fs();
        let pack = fs.disk().pack().unwrap();
        // DA 0 reserved (free label, busy in map).
        assert!(pack
            .sector(descriptor::BOOT_PAGE_DA)
            .unwrap()
            .decoded_label()
            .is_free());
        assert!(fs.descriptor().bitmap.is_busy(descriptor::BOOT_PAGE_DA));
        // Descriptor leader at DA 1, root dir leader at DA 2.
        let desc_label = pack
            .sector(descriptor::DESCRIPTOR_LEADER_DA)
            .unwrap()
            .decoded_label();
        assert_eq!(Fv::from_label(&desc_label), descriptor::descriptor_fv());
        let root_label = pack
            .sector(descriptor::ROOT_DIR_LEADER_DA)
            .unwrap()
            .decoded_label();
        assert_eq!(Fv::from_label(&root_label), descriptor::root_dir_fv());
        assert!(root_label.fid[0] & 0x8000 != 0, "directory flag in label");
    }

    #[test]
    fn mount_round_trip() {
        let fs = fresh_fs();
        let free_before = fs.descriptor().bitmap.free_count();
        let disk = fs.unmount().unwrap();
        let fs2 = FileSystem::mount(disk).unwrap();
        assert_eq!(fs2.descriptor().bitmap.free_count(), free_before);
        assert_eq!(fs2.root_dir().leader_da, descriptor::ROOT_DIR_LEADER_DA);
    }

    #[test]
    fn mount_unformatted_disk_fails() {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        assert!(matches!(
            FileSystem::mount(drive),
            Err(FsError::NotFormatted(_))
        ));
    }

    #[test]
    fn create_empty_file() {
        let mut fs = fresh_fs();
        let f = fs.create_file("empty.txt").unwrap();
        assert_eq!(fs.file_length(f).unwrap(), 0);
        assert_eq!(fs.read_file(f).unwrap(), Vec::<u8>::new());
        let leader = fs.read_leader(f).unwrap();
        assert_eq!(leader.name, "empty.txt");
        assert_eq!(leader.last_page, 1);
    }

    #[test]
    fn write_and_read_small_file() {
        let mut fs = fresh_fs();
        let f = fs.create_file("hello").unwrap();
        fs.write_file(f, b"Hello, Alto!").unwrap();
        assert_eq!(fs.read_file(f).unwrap(), b"Hello, Alto!");
        assert_eq!(fs.file_length(f).unwrap(), 12);
    }

    #[test]
    fn new_files_spread_across_the_arms_of_an_array() {
        use alto_disk::{DriveArray, Placement};
        let array = DriveArray::with_arms(
            4,
            Placement::Range,
            SimClock::new(),
            Trace::new(),
            DiskModel::Diablo31,
        );
        let mut fs = FileSystem::format(array).unwrap();
        let mut arms_hit = [false; 4];
        for i in 0..8 {
            let f = fs.create_file(&format!("file-{i}")).unwrap();
            fs.write_file(f, &[0x55u8; 3000]).unwrap();
            let arm = fs.disk().arm_of(f.leader_da);
            arms_hit[arm] = true;
            // The chained data pages follow their leader into the same arm.
            let leader = fs.read_leader(f).unwrap();
            assert_eq!(fs.disk().arm_of(leader.last_da), arm, "file {i}");
            // Round-trip through the placement.
            assert_eq!(fs.read_file(f).unwrap(), vec![0x55u8; 3000]);
        }
        assert!(
            arms_hit.iter().all(|&h| h),
            "8 consecutive files should rotate over all 4 arms: {arms_hit:?}"
        );
    }

    #[test]
    fn write_and_read_multi_page_file() {
        let mut fs = fresh_fs();
        let f = fs.create_file("big").unwrap();
        let bytes: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        fs.write_file(f, &bytes).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), bytes);
        assert_eq!(fs.file_length(f).unwrap(), 5000);
        // 5000 bytes = 9 full pages + 1 partial.
        let (last_pn, last_label) = {
            let leader = fs.read_leader(f).unwrap();
            (leader.last_page, leader.last_da)
        };
        assert_eq!(last_pn, 10);
        let (l, _) = fs.read_page(PageName::new(f.fv, 10, last_label)).unwrap();
        assert_eq!(l.length as usize, 5000 - 9 * PAGE_BYTES);
    }

    #[test]
    fn exact_page_boundary_file() {
        let mut fs = fresh_fs();
        let f = fs.create_file("exact").unwrap();
        let bytes = vec![7u8; PAGE_BYTES * 2];
        fs.write_file(f, &bytes).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), bytes);
        assert_eq!(fs.file_length(f).unwrap(), (PAGE_BYTES * 2) as u64);
        // Last page is full: L = 512 and the page after it does not exist.
        let leader = fs.read_leader(f).unwrap();
        assert_eq!(leader.last_page, 2);
    }

    #[test]
    fn shrink_file_frees_pages() {
        let mut fs = fresh_fs();
        let f = fs.create_file("shrink").unwrap();
        fs.write_file(f, &vec![1u8; 4000]).unwrap();
        let free_mid = fs.descriptor().bitmap.free_count();
        fs.write_file(f, b"tiny").unwrap();
        assert!(fs.descriptor().bitmap.free_count() > free_mid);
        assert_eq!(fs.read_file(f).unwrap(), b"tiny");
        // Grow again.
        fs.write_file(f, &vec![2u8; 2000]).unwrap();
        assert_eq!(fs.read_file(f).unwrap(), vec![2u8; 2000]);
    }

    #[test]
    fn delete_file_frees_everything() {
        let mut fs = fresh_fs();
        let before = fs.descriptor().bitmap.free_count();
        let f = fs.create_file("doomed").unwrap();
        fs.write_file(f, &vec![9u8; 3000]).unwrap();
        fs.delete_file(f).unwrap();
        assert_eq!(fs.descriptor().bitmap.free_count(), before);
        // The leader is gone: reads fail with a check error.
        assert!(fs.read_page(f.leader_page()).is_err());
        // 3000 bytes = 6 data pages, plus the leader.
        assert_eq!(fs.stats().pages_freed, 7);
    }

    #[test]
    fn files_get_distinct_serials() {
        let mut fs = fresh_fs();
        let a = fs.create_file("a").unwrap();
        let b = fs.create_file("b").unwrap();
        assert_ne!(a.fv, b.fv);
        assert!(!a.is_directory());
        let d = fs.create_directory_file("d").unwrap();
        assert!(d.is_directory());
    }

    #[test]
    fn stale_bitmap_allocation_retries() {
        let mut fs = fresh_fs();
        // Lie in the map: mark a busy page (the root leader) free.
        fs.descriptor_mut()
            .bitmap
            .set_free(descriptor::ROOT_DIR_LEADER_DA);
        fs.descriptor_mut().rotor = descriptor::ROOT_DIR_LEADER_DA;
        let f = fs.create_file("resilient").unwrap();
        // Allocation succeeded elsewhere, after at least one retry.
        assert!(fs.stats().alloc_retries >= 1);
        assert_ne!(f.leader_da, descriptor::ROOT_DIR_LEADER_DA);
        // The lie is corrected (bit busy again).
        assert!(fs
            .descriptor()
            .bitmap
            .is_busy(descriptor::ROOT_DIR_LEADER_DA));
    }

    #[test]
    fn disk_full() {
        let mut fs = fresh_fs();
        // Exhaust the map artificially.
        let n = fs.descriptor().bitmap.len();
        for i in 0..n {
            fs.descriptor_mut().bitmap.set_busy(DiskAddress(i as u16));
        }
        assert!(matches!(fs.create_file("nope"), Err(FsError::DiskFull)));
    }

    #[test]
    fn leader_dates_update_on_write() {
        let mut fs = fresh_fs();
        let f = fs.create_file("dated").unwrap();
        let created = fs.read_leader(f).unwrap().created;
        fs.disk().clock().advance(alto_sim::SimTime::from_secs(100));
        fs.write_file(f, b"data").unwrap();
        let leader = fs.read_leader(f).unwrap();
        assert_eq!(leader.created, created);
        assert!(leader.written > created);
    }

    #[test]
    fn byte_packing_round_trip() {
        let mut words = [0u16; DATA_WORDS];
        let bytes: Vec<u8> = (0..PAGE_BYTES as u32).map(|i| (i % 256) as u8).collect();
        pack_bytes(&bytes, &mut words);
        assert_eq!(unpack_bytes(&words).to_vec(), bytes);
        // Odd-length chunk.
        let mut words = [0u16; DATA_WORDS];
        pack_bytes(&[1, 2, 3], &mut words);
        assert_eq!(words[0], 0x0102);
        assert_eq!(words[1], 0x0300);
    }

    #[test]
    fn words_bytes_round_trip() {
        let words = vec![0x1234, 0xABCD, 0x0001];
        assert_eq!(bytes_to_words(&words_to_bytes(&words)), words);
    }

    #[test]
    fn descriptor_flush_is_ordinary_writes() {
        let mut fs = fresh_fs();
        let before = fs.disk().stats().label_writes;
        fs.flush_descriptor().unwrap();
        let after = fs.disk().stats().label_writes;
        assert_eq!(before, after, "flush must not rewrite labels");
    }

    #[test]
    fn leader_property_space_round_trips() {
        let mut fs = fresh_fs();
        let f = fs.create_file("props").unwrap();
        fs.write_leader_properties(f, 4, &[0xAA, 0xBB, 0xCC])
            .unwrap();
        assert_eq!(
            fs.read_leader_properties(f, 4, 3).unwrap(),
            vec![0xAA, 0xBB, 0xCC]
        );
        // Other properties untouched.
        assert_eq!(fs.read_leader_properties(f, 0, 4).unwrap(), vec![0; 4]);
        // Out of range rejected.
        assert!(fs.write_leader_properties(f, 300, &[1]).is_err());
        assert!(fs.read_leader_properties(f, 0, 10_000).is_err());
        // Properties survive content rewrites.
        fs.write_file(f, &vec![7u8; 2000]).unwrap();
        assert_eq!(fs.read_leader_properties(f, 4, 1).unwrap(), vec![0xAA]);
    }

    #[test]
    fn touch_read_updates_the_read_date() {
        let mut fs = fresh_fs();
        let f = fs.create_file("dated").unwrap();
        let before = fs.read_leader(f).unwrap().read;
        fs.disk().clock().advance(alto_sim::SimTime::from_secs(30));
        fs.touch_read(f).unwrap();
        let after = fs.read_leader(f).unwrap().read;
        assert!(after > before);
    }
}
