//! File-system error types.

use alto_disk::{DiskAddress, DiskError};
use std::fmt;

use crate::names::{Fv, PageName};

/// Errors surfaced by the file-system layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// The underlying disk failed (including label-check errors a caller
    /// did not expect).
    Disk(DiskError),
    /// The disk is not (or no longer) a formatted Alto file system.
    NotFormatted(&'static str),
    /// No free page could be allocated.
    DiskFull,
    /// A page that should exist could not be located even after following
    /// the hint ladder.
    PageNotFound(PageName),
    /// A file that should exist could not be located.
    FileNotFound(Fv),
    /// The name looked up in a directory has no entry.
    NameNotFound(String),
    /// A leader name or directory name exceeds the on-disk limit.
    NameTooLong(usize),
    /// The file addressed as a directory is not one (its serial number
    /// lacks the directory flag).
    NotADirectory(Fv),
    /// A structural invariant was violated on disk (corruption the caller
    /// should hand to the Scavenger).
    Corrupt {
        /// Where the inconsistency was observed.
        da: DiskAddress,
        /// What was wrong.
        what: &'static str,
    },
    /// An operation was attempted past the end of a file.
    PastEnd {
        /// The page number requested.
        page: u16,
        /// The file's last page number.
        last: u16,
    },
    /// Page data lengths must be 0..=512 bytes.
    BadLength(u16),
    /// The 30-bit file serial-number space is used up, so no new file can
    /// be created (reachable only on a hostile image whose labels claim
    /// the top of the space).
    SerialsExhausted,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::Disk(e) => write!(f, "disk error: {e}"),
            FsError::NotFormatted(what) => write!(f, "not an Alto file system: {what}"),
            FsError::DiskFull => f.write_str("disk full"),
            FsError::PageNotFound(p) => write!(f, "page not found: {p}"),
            FsError::FileNotFound(fv) => write!(f, "file not found: {fv}"),
            FsError::NameNotFound(n) => write!(f, "no directory entry for \"{n}\""),
            FsError::NameTooLong(n) => write!(f, "name too long ({n} bytes, max 39)"),
            FsError::NotADirectory(fv) => write!(f, "{fv} is not a directory"),
            FsError::Corrupt { da, what } => write!(f, "corrupt structure at {da}: {what}"),
            FsError::PastEnd { page, last } => {
                write!(
                    f,
                    "page {page} is past the end of the file (last page {last})"
                )
            }
            FsError::BadLength(n) => write!(f, "bad page data length {n} (max 512 bytes)"),
            FsError::SerialsExhausted => f.write_str("file serial numbers exhausted"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DiskError> for FsError {
    fn from(e: DiskError) -> Self {
        FsError::Disk(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::SerialNumber;

    #[test]
    fn displays_are_informative() {
        let fv = Fv::new(SerialNumber::new(3, false), 1);
        assert!(FsError::FileNotFound(fv).to_string().contains("S3v1"));
        assert!(FsError::NameNotFound("foo.txt".into())
            .to_string()
            .contains("foo.txt"));
        assert!(FsError::PastEnd { page: 9, last: 4 }
            .to_string()
            .contains("page 9"));
        assert!(FsError::DiskFull.to_string().contains("full"));
        assert!(FsError::BadLength(600).to_string().contains("600"));
        assert!(FsError::NameTooLong(64).to_string().contains("64"));
        assert!(FsError::NotADirectory(fv)
            .to_string()
            .contains("not a directory"));
        assert!(FsError::NotFormatted("bad descriptor")
            .to_string()
            .contains("bad descriptor"));
        assert!(FsError::Corrupt {
            da: DiskAddress(3),
            what: "link cycle"
        }
        .to_string()
        .contains("link cycle"));
    }

    #[test]
    fn disk_error_converts() {
        let e: FsError = DiskError::NoPack.into();
        assert_eq!(e, FsError::Disk(DiskError::NoPack));
    }
}
