//! Page-level operations (§3.1, §3.3).
//!
//! "Disk pages are always accessed by their full names": every operation
//! here takes a [`PageName`] — absolute name plus hint address — builds the
//! check pattern from the absolutes, and issues a sector operation whose
//! label check guarantees the hint actually leads to the named page.
//!
//! One hardware subtlety is handled in software: a memory word of 0 is a
//! *wildcard* in a check action, so absolute fields that happen to encode as
//! 0 (a page number of 0, a serial low word of 0) are not checked by the
//! hardware. After every successful check we verify the captured words
//! against the intended absolutes and synthesize the same check error the
//! hardware would have produced. This closes the check, at zero simulated
//! cost, without weakening the §3.3 discipline.

use alto_disk::{
    pool, BatchRequest, CheckFailure, Disk, DiskAddress, DiskError, Label, SectorBuf, SectorOp,
    SectorPart, SectorView, WriteSource, DATA_WORDS,
};

use crate::errors::FsError;
use crate::names::{Fv, PageName};

/// Verifies that a captured label carries exactly the intended absolutes.
fn verify_absolutes(da: DiskAddress, fv: Fv, page: u16, got: &Label) -> Result<(), FsError> {
    let intended = fv.check_label(page);
    let fields = [
        (0usize, intended.fid[0], got.fid[0]),
        (1, intended.fid[1], got.fid[1]),
        (2, intended.version, got.version),
        (3, intended.page_number, got.page_number),
    ];
    for (word_index, expected, found) in fields {
        if expected != found {
            return Err(FsError::Disk(DiskError::Check(CheckFailure {
                da,
                part: SectorPart::Label,
                word_index,
                expected,
                found,
            })));
        }
    }
    Ok(())
}

/// Captures and verifies the label of a checked access in one step: the
/// absolutes are compared in place through [`alto_disk::LabelView`] (no
/// decode on the matching path, which is the steady state); a mismatch
/// falls back to [`verify_absolutes`] so the error is exactly the one the
/// hardware check would have produced.
fn verified_label(da: DiskAddress, fv: Fv, page: u16, buf: &SectorBuf) -> Result<Label, FsError> {
    let intended = fv.check_label(page);
    let view = buf.label_view();
    if view.absolutes_match(&intended) {
        return Ok(view.decode());
    }
    let got = view.decode();
    verify_absolutes(da, fv, page, &got)?;
    Ok(got)
}

/// [`verified_label`] over a lent [`SectorView`] — the zero-copy batch
/// paths verify straight off the borrowed sector words, with no staging
/// buffer to point at.
fn verified_label_view(
    da: DiskAddress,
    fv: Fv,
    page: u16,
    view: SectorView<'_>,
) -> Result<Label, FsError> {
    let intended = fv.check_label(page);
    let lv = view.label();
    if lv.absolutes_match(&intended) {
        return Ok(lv.decode());
    }
    let got = lv.decode();
    verify_absolutes(da, fv, page, &got)?;
    Ok(got)
}

/// Builds the memory buffer for a checked access to `pn`.
fn checked_buf<D: Disk>(disk: &D, pn: PageName) -> Result<SectorBuf, FsError> {
    let mut buf = SectorBuf::with_label(pn.fv.check_label(pn.page));
    buf.header = [disk.pack_number()?, pn.da.0];
    Ok(buf)
}

/// Issues one sector operation under the bounded-retry discipline: a
/// [`DiskError::Transient`] failure is re-issued up to
/// [`Disk::retry_limit`] times, waiting out [`Disk::retry_backoff`] (one
/// revolution on a real drive — the sector has to come around again)
/// before each attempt, and escalates to [`DiskError::HardError`] if it
/// never clears. Every other result passes through untouched, so a zero
/// retry limit recovers the old abort-on-first-error behavior.
pub fn retry_op<D: Disk>(
    disk: &mut D,
    da: DiskAddress,
    op: SectorOp,
    buf: &mut SectorBuf,
) -> Result<(), DiskError> {
    match disk.do_op(da, op, buf) {
        Err(e @ DiskError::Transient { .. }) => complete_with_retry(disk, da, op, buf, e),
        other => other,
    }
}

/// Finishes an operation whose first issue just failed with `first`, a
/// transient error — the retry half of [`retry_op`], shared with the batch
/// paths so a failed chain member can be retried sector-at-a-time without
/// re-running the members that already completed.
pub fn complete_with_retry<D: Disk>(
    disk: &mut D,
    da: DiskAddress,
    op: SectorOp,
    buf: &mut SectorBuf,
    first: DiskError,
) -> Result<(), DiskError> {
    let DiskError::Transient { mut part, .. } = first else {
        return Err(first);
    };
    let limit = u64::from(disk.retry_limit());
    let mut retries: u64 = 0;
    loop {
        if retries >= limit {
            disk.note_retry(retries, false);
            return Err(DiskError::HardError { da, part });
        }
        // lint: allow(clock-discipline) — the bounded-retry layer charges the
        // one-revolution backoff the hardware burns between attempts (§3.3);
        // this is the single sanctioned clock mutation in the fs crate
        disk.clock().advance(disk.retry_backoff());
        retries += 1;
        disk.trace()
            .record_with(disk.clock().now(), "disk.retry.attempt", || {
                format!("{op:?} at {da}, retry {retries} of {limit}")
            });
        match disk.do_op(da, op, buf) {
            Err(DiskError::Transient { part: p, .. }) => part = p,
            other => {
                disk.note_retry(retries, other.is_ok());
                return other;
            }
        }
    }
}

/// Runs a batch through [`Disk::do_batch`], then retries any transiently
/// failed member sector-at-a-time: the drive halted its chain at the
/// failure and already serviced (or rescheduled) every other member, so
/// only the failed request is re-issued — completed chain members are
/// never re-run.
pub fn batch_with_retry<D: Disk>(
    disk: &mut D,
    batch: &mut [BatchRequest],
) -> Vec<Result<(), DiskError>> {
    let mut results = disk.do_batch(batch);
    for (req, res) in batch.iter_mut().zip(results.iter_mut()) {
        if let Err(e @ DiskError::Transient { .. }) = *res {
            *res = complete_with_retry(disk, req.da, req.op, &mut req.buf, e);
        }
    }
    results
}

/// Reads the data and label of the page named `pn`, using its hint address.
///
/// Fails with a check error if the sector at the hint address is not the
/// named page — the caller then climbs the hint ladder (§3.6).
pub fn read_page<D: Disk>(
    disk: &mut D,
    pn: PageName,
) -> Result<(Label, [u16; DATA_WORDS]), FsError> {
    let mut buf = checked_buf(disk, pn)?;
    retry_op(disk, pn.da, SectorOp::READ, &mut buf)?;
    let label = verified_label(pn.da, pn.fv, pn.page, &buf)?;
    Ok((label, buf.data))
}

/// Writes the data of the page named `pn` (an ordinary data write: the
/// label is checked "at no cost in time" but not modified, §3.3).
///
/// Returns the page's label as captured by the check.
pub fn write_page<D: Disk>(
    disk: &mut D,
    pn: PageName,
    data: &[u16; DATA_WORDS],
) -> Result<Label, FsError> {
    let mut buf = checked_buf(disk, pn)?;
    buf.data = *data;
    retry_op(disk, pn.da, SectorOp::WRITE, &mut buf)?;
    verified_label(pn.da, pn.fv, pn.page, &buf)
}

/// Reads the raw header, label and data of an arbitrary sector with no
/// checking at all — the Scavenger's scan primitive.
pub fn read_raw<D: Disk>(
    disk: &mut D,
    da: DiskAddress,
) -> Result<(Label, [u16; DATA_WORDS]), FsError> {
    let mut buf = SectorBuf::zeroed();
    retry_op(disk, da, SectorOp::READ_ALL, &mut buf)?;
    Ok((buf.decoded_label(), buf.data))
}

/// One page's outcome within a batch: its verified label and data.
pub type PageResult = Result<(Label, [u16; DATA_WORDS]), FsError>;

/// What [`drain_and_prefetch`] hands back: the parked writes' captured
/// labels (in `writes` order) and the guessed reads' results (in page
/// order).
pub type DrainOutcome = (Vec<Result<Label, FsError>>, Vec<PageResult>);

/// Reads many raw sectors as one chained batch — the Scavenger's sweep
/// primitive. Passing a whole cylinder's sectors lets the drive service
/// them in rotational order, in about two revolutions instead of one
/// revolution per sector.
pub fn read_raw_batch<D: Disk>(disk: &mut D, das: &[DiskAddress]) -> Vec<PageResult> {
    let mut batch = pool::batch_vec();
    batch.extend(
        das.iter()
            .map(|&da| BatchRequest::new(da, SectorOp::READ_ALL, SectorBuf::zeroed())),
    );
    let mut results = batch_with_retry(disk, &mut batch);
    let out = results
        .drain(..)
        .zip(batch.drain(..))
        .map(|(res, req)| {
            res.map_err(FsError::from)
                .map(|()| (req.buf.decoded_label(), req.buf.data))
        })
        .collect();
    pool::recycle_results(results);
    pool::recycle_batch(batch);
    out
}

/// Reads pages `start.page ..` of one file as a chained batch, *guessing*
/// that they sit at consecutive disk addresses after `start.da` (§3.6:
/// transfers start with a guessed address; the label check catches a wrong
/// guess before any harm is done). Entry 0 uses `start`'s own hint, so its
/// failure is authoritative; later entries are pure guesses.
///
/// Returns one result per page, in page order, each carrying the verified
/// label and data.
pub fn read_pages_guessed<D: Disk>(
    disk: &mut D,
    fv: Fv,
    start: PageName,
    count: u16,
) -> Result<Vec<PageResult>, FsError> {
    let pack = disk.pack_number()?;
    let mut batch = pool::batch_vec();
    for j in 0..count {
        let da = DiskAddress(start.da.0.wrapping_add(j));
        let mut buf = SectorBuf::with_label(fv.check_label(start.page + j));
        buf.header = [pack, da.0];
        batch.push(BatchRequest::new(da, SectorOp::READ, buf));
    }
    let mut results = batch_with_retry(disk, &mut batch);
    let out = results
        .drain(..)
        .zip(batch.drain(..))
        .enumerate()
        .map(|(j, (res, req))| {
            let da = DiskAddress(start.da.0.wrapping_add(j as u16));
            res.map_err(FsError::from).and_then(|()| {
                let label = verified_label(da, fv, start.page + j as u16, &req.buf)?;
                Ok((label, req.buf.data))
            })
        })
        .collect();
    pool::recycle_results(results);
    pool::recycle_batch(batch);
    Ok(out)
}

/// Reads a set of named pages — possibly belonging to many files — as one
/// chained zero-copy batch at their hinted addresses, lending each page's
/// platter sector to `visit` instead of copying it into a staging buffer.
///
/// This is the §3.6 hint discipline on the view path: every page's label
/// is *software re-verified* against its full name `(fv, page)` straight
/// off the borrowed sector words before `visit` sees it, so a stale hint
/// yields a check error for that entry (never someone else's data) and the
/// caller climbs the hint ladder. `visit(i, label, view)` runs at most
/// once per entry, only for pages that verified.
///
/// Transient failures are retried sector-at-a-time under the bounded-retry
/// discipline (the drive halted its chain there and rescheduled the rest,
/// so only the failed member re-issues, through a private staging buffer).
///
/// Returns one verified label (or error) per entry, in entry order, in a
/// pooled vector — recycle it with [`crate::pool::recycle_labels`]. This
/// is the page-service hot path: the Alto-as-file-server request loop
/// feeds every client's reads into one call, sorted by disk address.
pub fn read_pages_zero_copy<D, V>(
    disk: &mut D,
    reads: &[PageName],
    mut visit: V,
) -> Vec<Result<Label, FsError>>
where
    D: Disk,
    V: FnMut(usize, Label, SectorView<'_>),
{
    let mut das = pool::da_vec();
    das.extend(reads.iter().map(|r| r.da));
    let mut out = crate::pool::labels_vec();
    // Placeholder, overwritten below: the visitor fills verified entries
    // and the result pass fills every failed one.
    out.resize_with(reads.len(), || Err(FsError::Disk(DiskError::NoPack)));
    let results = disk.do_batch_read(&das, |i, view| {
        let r = &reads[i];
        out[i] = verified_label_view(r.da, r.fv, r.page, view).inspect(|&label| {
            visit(i, label, view);
        });
    });
    for (i, res) in results.iter().enumerate() {
        match res {
            Ok(()) => {}
            Err(e @ DiskError::Transient { .. }) => {
                let r = &reads[i];
                let mut buf = SectorBuf::zeroed();
                out[i] = complete_with_retry(disk, r.da, SectorOp::READ_ALL, &mut buf, *e)
                    .map_err(FsError::from)
                    .and_then(|()| {
                        let label =
                            verified_label_view(r.da, r.fv, r.page, SectorView::of_buf(&buf))?;
                        visit(i, label, SectorView::of_buf(&buf));
                        Ok(label)
                    });
            }
            Err(e) => out[i] = Err(FsError::from(*e)),
        }
    }
    pool::recycle_results(results);
    pool::recycle_das(das);
    out
}

/// Writes full data pages `start.page ..` of one file as a chained batch
/// at guessed consecutive addresses — the write-side twin of
/// [`read_pages_guessed`]. Each request is an ordinary data write whose
/// label check must pass before the value is touched, so a wrong guess
/// writes nothing (§3.3). Returns each page's captured label.
///
/// The caller must ensure the check pattern has teeth: guessed writes are
/// only safe when the file's serial low word is non-zero (a zero word is
/// a check wildcard), which [`crate::descriptor`]'s serial assigner
/// guarantees for ordinary files.
pub fn write_pages_guessed<D: Disk>(
    disk: &mut D,
    fv: Fv,
    start: PageName,
    chunks: &[[u16; DATA_WORDS]],
) -> Result<Vec<Result<Label, FsError>>, FsError> {
    let pack = disk.pack_number()?;
    let mut batch = pool::batch_vec();
    for (j, chunk) in chunks.iter().enumerate() {
        let da = DiskAddress(start.da.0.wrapping_add(j as u16));
        let mut buf = SectorBuf::with_label(fv.check_label(start.page + j as u16));
        buf.header = [pack, da.0];
        buf.data = *chunk;
        batch.push(BatchRequest::new(da, SectorOp::WRITE, buf));
    }
    let mut results = batch_with_retry(disk, &mut batch);
    let mut out = crate::pool::labels_vec();
    out.extend(
        results
            .drain(..)
            .zip(batch.drain(..))
            .enumerate()
            .map(|(j, (res, req))| {
                let da = DiskAddress(start.da.0.wrapping_add(j as u16));
                res.map_err(FsError::from)
                    .and_then(|()| verified_label(da, fv, start.page + j as u16, &req.buf))
            }),
    );
    pool::recycle_results(results);
    pool::recycle_batch(batch);
    Ok(out)
}

/// Drains a write-behind buffer and refills a readahead buffer in one
/// chained batch: the parked dirty pages are written back at their *known*
/// addresses (ordinary data writes, each label checked before the value is
/// touched, §3.3) while the `read_count` pages from `read_start` on are
/// read at guessed-consecutive addresses — one command set-up and one
/// rotational schedule cover both directions, which is what makes delayed
/// writes cheap.
///
/// Unlike [`write_pages_guessed`] the write addresses are not guesses (the
/// stream verified each page's label when it loaded it), so this is safe
/// for any file; the check still arbitrates if the medium changed since.
/// Returns the writes' captured labels in `writes` order and the reads'
/// results in page order. An empty `writes` or a zero `read_count` simply
/// shrinks the batch.
pub fn drain_and_prefetch<D: Disk>(
    disk: &mut D,
    fv: Fv,
    writes: &[(u16, DiskAddress, [u16; DATA_WORDS])],
    read_start: Option<PageName>,
    read_count: u16,
) -> Result<DrainOutcome, FsError> {
    let mut write_out = Vec::with_capacity(writes.len());
    let mut read_out = Vec::with_capacity(read_count as usize);
    drain_and_prefetch_into(
        disk,
        fv,
        writes,
        read_start,
        read_count,
        &mut write_out,
        &mut read_out,
    )?;
    Ok((write_out, read_out))
}

/// [`drain_and_prefetch`] with caller-provided output storage: clears and
/// fills `write_out` and `read_out` instead of allocating them, so a stream
/// that drains every few pages can reuse the same vectors forever (the
/// request batch itself comes from [`pool`]). Same semantics otherwise.
#[allow(clippy::too_many_arguments)]
pub fn drain_and_prefetch_into<D: Disk>(
    disk: &mut D,
    fv: Fv,
    writes: &[(u16, DiskAddress, [u16; DATA_WORDS])],
    read_start: Option<PageName>,
    read_count: u16,
    write_out: &mut Vec<Result<Label, FsError>>,
    read_out: &mut Vec<PageResult>,
) -> Result<(), FsError> {
    write_out.clear();
    read_out.clear();
    let pack = disk.pack_number()?;
    let reads = match read_start {
        Some(_) => read_count,
        None => 0,
    };
    if reads == 0 {
        // A pure drain has nothing to copy out, so the dirty pages go down
        // the borrowed-buffer path: the drive checks each label in place
        // and takes the 256 data words straight from the parked page.
        return drain_writes_zero_copy(disk, fv, pack, writes, write_out);
    }
    let mut batch = pool::batch_vec();
    for &(page, da, ref data) in writes {
        let mut buf = SectorBuf::with_label(fv.check_label(page));
        buf.header = [pack, da.0];
        buf.data = *data;
        batch.push(BatchRequest::new(da, SectorOp::WRITE, buf));
    }
    if let Some(start) = read_start {
        for j in 0..reads {
            let da = DiskAddress(start.da.0.wrapping_add(j));
            let mut buf = SectorBuf::with_label(fv.check_label(start.page + j));
            buf.header = [pack, da.0];
            batch.push(BatchRequest::new(da, SectorOp::READ, buf));
        }
    }
    // Selective retry: the parked writes and the authoritative first read
    // are retried sector-at-a-time, but a transient on a *guessed follower*
    // read is left in place — the readahead above degrades to a shorter
    // prefetch rather than paying retry revolutions for speculation.
    let mut results = disk.do_batch(&mut batch);
    for (req, res) in batch
        .iter_mut()
        .zip(results.iter_mut())
        .take(writes.len() + 1)
    {
        if let Err(e @ DiskError::Transient { .. }) = *res {
            *res = complete_with_retry(disk, req.da, req.op, &mut req.buf, e);
        }
    }
    for (k, (res, req)) in results.drain(..).zip(batch.drain(..)).enumerate() {
        if k < writes.len() {
            let (page, da, _) = writes[k];
            write_out.push(
                res.map_err(FsError::from)
                    .and_then(|()| verified_label(da, fv, page, &req.buf)),
            );
        } else {
            // lint: allow(diskerror-unwrap) — Option, not a DiskError: the
            // read half of the batch is built from `read_start` above, so a
            // read request at index k proves the start exists
            let start = read_start.expect("read requests imply a start");
            let j = (k - writes.len()) as u16;
            let da = DiskAddress(start.da.0.wrapping_add(j));
            read_out.push(res.map_err(FsError::from).and_then(|()| {
                let label = verified_label(da, fv, start.page + j, &req.buf)?;
                Ok((label, req.buf.data))
            }));
        }
    }
    pool::recycle_results(results);
    pool::recycle_batch(batch);
    Ok(())
}

/// The write half of [`drain_and_prefetch_into`] via
/// [`Disk::do_batch_write`]: same chained schedule, same §3.3 checks, same
/// bounded-retry discipline, but the data words are borrowed from the
/// parked pages instead of being staged through per-request buffers, and
/// each captured label is verified through the lent [`SectorView`].
fn drain_writes_zero_copy<D: Disk>(
    disk: &mut D,
    fv: Fv,
    pack: u16,
    writes: &[(u16, DiskAddress, [u16; DATA_WORDS])],
    write_out: &mut Vec<Result<Label, FsError>>,
) -> Result<(), FsError> {
    let mut das = pool::da_vec();
    das.extend(writes.iter().map(|&(_, da, _)| da));
    // Placeholders only: every slot is overwritten — visited (successful)
    // requests from the visitor, failed ones from the result loop below.
    write_out.extend(writes.iter().map(|_| Err(FsError::Disk(DiskError::NoPack))));
    let mut results = disk.do_batch_write(
        &das,
        |i| {
            let (page, da, data) = &writes[i];
            WriteSource {
                header: [pack, da.0],
                label: fv.check_label(*page).encode(),
                data,
            }
        },
        |i, view| {
            let (page, da, _) = writes[i];
            write_out[i] = verified_label_view(da, fv, page, view);
        },
    );
    for (i, res) in results.iter_mut().enumerate() {
        if let Err(e @ DiskError::Transient { .. }) = *res {
            // The retry re-issues through the buffered single-sector path —
            // cold by construction, so staging one buffer costs nothing
            // that matters.
            let (page, da, data) = &writes[i];
            let mut buf = SectorBuf::with_label(fv.check_label(*page));
            buf.header = [pack, da.0];
            buf.data = *data;
            *res = complete_with_retry(disk, *da, SectorOp::WRITE, &mut buf, e);
            if res.is_ok() {
                write_out[i] = verified_label(*da, fv, *page, &buf);
            }
        }
    }
    for (i, res) in results.drain(..).enumerate() {
        if let Err(e) = res {
            write_out[i] = Err(FsError::from(e));
        }
    }
    pool::recycle_results(results);
    pool::recycle_das(das);
    Ok(())
}

/// Allocates the free sector `da` as the page with `label`, writing `data`.
///
/// Two passes, as §3.3 prescribes: first the label is checked to be free,
/// then the proper label (and the first data) is written — costing one
/// disk revolution. Fails with a check error if the sector is not actually
/// free (a stale allocation map); the allocator then retries elsewhere.
pub fn allocate_at<D: Disk>(
    disk: &mut D,
    da: DiskAddress,
    label: Label,
    data: &[u16; DATA_WORDS],
) -> Result<(), FsError> {
    let mut buf = SectorBuf::with_label(Label::FREE);
    buf.header = [disk.pack_number()?, da.0];
    retry_op(disk, da, SectorOp::CHECK_LABEL, &mut buf)?;
    let mut buf = SectorBuf::with_label(label);
    buf.header = [disk.pack_number()?, da.0];
    buf.data = *data;
    retry_op(disk, da, SectorOp::WRITE_LABEL, &mut buf)?;
    Ok(())
}

/// Rewrites the label (and data) of the existing page `pn` — the length
/// change of §3.3: "the label of the last page is read and checked. Then it
/// is rewritten, possibly with new values of L and NL."
///
/// Returns the old label. Costs one disk revolution (check pass + write
/// pass on the same sector).
pub fn rewrite_label<D: Disk>(
    disk: &mut D,
    pn: PageName,
    new_label: Label,
    data: &[u16; DATA_WORDS],
) -> Result<Label, FsError> {
    let mut buf = checked_buf(disk, pn)?;
    retry_op(disk, pn.da, SectorOp::CHECK_LABEL, &mut buf)?;
    let old = buf.decoded_label();
    verify_absolutes(pn.da, pn.fv, pn.page, &old)?;
    let mut buf = SectorBuf::with_label(new_label);
    buf.header = [disk.pack_number()?, pn.da.0];
    buf.data = *data;
    retry_op(disk, pn.da, SectorOp::WRITE_LABEL, &mut buf)?;
    Ok(old)
}

/// Frees the page named `pn`: checks its label, then writes ones into label
/// and value "to ensure that any attempt to treat the page as part of a
/// file will fail with a label check error" (§3.3).
///
/// Returns the old label (whose links the caller may need). Costs one disk
/// revolution.
pub fn free_page<D: Disk>(disk: &mut D, pn: PageName) -> Result<Label, FsError> {
    rewrite_label(disk, pn, Label::FREE, &[u16::MAX; DATA_WORDS])
}

/// Quarantines a permanently bad sector with the special bad label (§3.5).
///
/// No check pass: the sector may be unreadable; the label is simply
/// overwritten.
pub fn mark_bad<D: Disk>(disk: &mut D, da: DiskAddress) -> Result<(), FsError> {
    let mut buf = SectorBuf::with_label(Label::BAD);
    buf.header = [disk.pack_number()?, da.0];
    buf.data = [u16::MAX; DATA_WORDS];
    retry_op(disk, da, SectorOp::WRITE_ALL, &mut buf)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names::SerialNumber;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    fn drive() -> DiskDrive {
        DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1)
    }

    fn fv() -> Fv {
        Fv::new(SerialNumber::new(0x20, false), 1)
    }

    fn label_for(page: u16, next: DiskAddress, prev: DiskAddress) -> Label {
        Label {
            fid: fv().serial.words(),
            version: 1,
            page_number: page,
            length: 512,
            next,
            prev,
        }
    }

    #[test]
    fn allocate_read_write_cycle() {
        let mut d = drive();
        let da = DiskAddress(40);
        let label = label_for(1, DiskAddress::NIL, DiskAddress(39));
        allocate_at(&mut d, da, label, &[3; DATA_WORDS]).unwrap();

        let pn = PageName::new(fv(), 1, da);
        let (l, data) = read_page(&mut d, pn).unwrap();
        assert_eq!(l, label);
        assert_eq!(data, [3; DATA_WORDS]);

        write_page(&mut d, pn, &[4; DATA_WORDS]).unwrap();
        let (_, data) = read_page(&mut d, pn).unwrap();
        assert_eq!(data, [4; DATA_WORDS]);
    }

    #[test]
    fn read_with_wrong_hint_fails_without_damage() {
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[3; DATA_WORDS],
        )
        .unwrap();
        // Hint points at a different (free) sector.
        let stale = PageName::new(fv(), 1, DiskAddress(41));
        assert!(matches!(
            read_page(&mut d, stale),
            Err(FsError::Disk(DiskError::Check(_)))
        ));
        // The real page is untouched.
        let (l, _) = read_page(&mut d, PageName::new(fv(), 1, da)).unwrap();
        assert_eq!(l.page_number, 1);
    }

    #[test]
    fn software_verify_catches_zero_wildcard_page_number() {
        // Allocate page 5 at `da`; then ask for page 0 (leader) at the same
        // address. The hardware check pattern carries page_number = 0,
        // a wildcard — only the software verification can catch this.
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(5, DiskAddress::NIL, DiskAddress::NIL),
            &[3; DATA_WORDS],
        )
        .unwrap();
        let wrong = PageName::new(fv(), 0, da);
        let err = read_page(&mut d, wrong).unwrap_err();
        match err {
            FsError::Disk(DiskError::Check(c)) => {
                assert_eq!(c.word_index, 3); // page number
                assert_eq!(c.expected, 0);
                assert_eq!(c.found, 5);
            }
            other => panic!("expected check failure, got {other:?}"),
        }
    }

    #[test]
    fn allocate_refuses_busy_sector() {
        let mut d = drive();
        let da = DiskAddress(40);
        let label = label_for(1, DiskAddress::NIL, DiskAddress::NIL);
        allocate_at(&mut d, da, label, &[1; DATA_WORDS]).unwrap();
        let err = allocate_at(&mut d, da, label, &[2; DATA_WORDS]).unwrap_err();
        assert!(matches!(err, FsError::Disk(DiskError::Check(_))));
        // Original data intact.
        let (_, data) = read_page(&mut d, PageName::new(fv(), 1, da)).unwrap();
        assert_eq!(data, [1; DATA_WORDS]);
    }

    #[test]
    fn free_page_writes_ones_and_blocks_reads() {
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[1; DATA_WORDS],
        )
        .unwrap();
        let pn = PageName::new(fv(), 1, da);
        let old = free_page(&mut d, pn).unwrap();
        assert_eq!(old.page_number, 1);
        // Any attempt to treat the page as part of a file fails.
        assert!(read_page(&mut d, pn).is_err());
        // The sector really is all ones.
        let (l, data) = read_raw(&mut d, da).unwrap();
        assert!(l.is_free());
        assert!(data.iter().all(|&w| w == u16::MAX));
    }

    #[test]
    fn free_requires_the_right_full_name() {
        // "When the page is freed — its full name must be given, and the
        // check is that the label is the right one."
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[1; DATA_WORDS],
        )
        .unwrap();
        let wrong_fv = Fv::new(SerialNumber::new(0x21, false), 1);
        let err = free_page(&mut d, PageName::new(wrong_fv, 1, da)).unwrap_err();
        assert!(matches!(err, FsError::Disk(DiskError::Check(_))));
        // Page survives.
        assert!(read_page(&mut d, PageName::new(fv(), 1, da)).is_ok());
    }

    #[test]
    fn rewrite_label_changes_length_and_links() {
        let mut d = drive();
        let da = DiskAddress(40);
        let label = label_for(1, DiskAddress::NIL, DiskAddress::NIL);
        allocate_at(&mut d, da, label, &[1; DATA_WORDS]).unwrap();
        let mut new_label = label;
        new_label.length = 100;
        new_label.next = DiskAddress(41);
        let pn = PageName::new(fv(), 1, da);
        let old = rewrite_label(&mut d, pn, new_label, &[1; DATA_WORDS]).unwrap();
        assert_eq!(old, label);
        let (l, _) = read_page(&mut d, pn).unwrap();
        assert_eq!(l, new_label);
    }

    #[test]
    fn rewrite_label_costs_a_revolution() {
        let mut d = drive();
        let da = DiskAddress(40);
        let label = label_for(1, DiskAddress::NIL, DiskAddress::NIL);
        allocate_at(&mut d, da, label, &[1; DATA_WORDS]).unwrap();
        let timing = d.timing().unwrap();
        let start = d.clock().now();
        rewrite_label(&mut d, PageName::new(fv(), 1, da), label, &[1; DATA_WORDS]).unwrap();
        let elapsed = d.clock().now() - start;
        // Check pass + one-revolution wait + write pass: at least a full
        // revolution, at most a revolution plus the initial rotational wait.
        assert!(elapsed >= timing.revolution());
        assert!(elapsed < timing.revolution().scaled(2) + timing.sector_time);
    }

    #[test]
    fn drain_and_prefetch_is_one_batch_both_directions() {
        let mut d = drive();
        // Four consecutive pages of one file.
        for i in 0..4u16 {
            let next = if i == 3 {
                DiskAddress::NIL
            } else {
                DiskAddress(41 + i)
            };
            let prev = if i == 0 {
                DiskAddress::NIL
            } else {
                DiskAddress(39 + i)
            };
            allocate_at(
                &mut d,
                DiskAddress(40 + i),
                label_for(i + 1, next, prev),
                &[i; DATA_WORDS],
            )
            .unwrap();
        }
        d.reset_stats();
        // Write back pages 1-2 and prefetch pages 3-4, all as one batch.
        let writes = [
            (1u16, DiskAddress(40), [0xAAu16; DATA_WORDS]),
            (2u16, DiskAddress(41), [0xBBu16; DATA_WORDS]),
        ];
        let start = PageName::new(fv(), 3, DiskAddress(42));
        let (wrote, read) = drain_and_prefetch(&mut d, fv(), &writes, Some(start), 2).unwrap();
        assert!(wrote.iter().all(std::result::Result::is_ok));
        let (l3, d3) = read[0].as_ref().unwrap();
        assert_eq!(l3.page_number, 3);
        assert_eq!(d3[0], 2);
        assert!(read[1].is_ok());
        assert_eq!(d.stats().batches, 1);
        assert_eq!(d.stats().batched_ops, 4);
        // The writes landed.
        let (_, data) = read_page(&mut d, PageName::new(fv(), 1, DiskAddress(40))).unwrap();
        assert_eq!(data, [0xAA; DATA_WORDS]);
    }

    #[test]
    fn pure_drain_is_zero_copy_and_matches_the_audited_fallback() {
        // A drain with no prefetch takes the borrowed-buffer write path.
        // Run it twin against a drive with the §3.3 auditor attached (which
        // forces the buffered fallback inside `do_batch_write`): outcomes,
        // platter words and simulated elapsed time must be identical, and
        // the audited run must observe a clean §3.3 protocol.
        let run = |audit: bool| {
            let mut d = drive();
            for i in 0..3u16 {
                allocate_at(
                    &mut d,
                    DiskAddress(40 + i),
                    label_for(i + 1, DiskAddress::NIL, DiskAddress::NIL),
                    &[i; DATA_WORDS],
                )
                .unwrap();
            }
            let auditor = if audit { Some(d.enable_audit()) } else { None };
            d.reset_stats();
            let t0 = d.clock().now();
            let writes = [
                (1u16, DiskAddress(40), [0xA1u16; DATA_WORDS]),
                (2u16, DiskAddress(41), [0xA2u16; DATA_WORDS]),
                (3u16, DiskAddress(42), [0xA3u16; DATA_WORDS]),
            ];
            let (wrote, read) = drain_and_prefetch(&mut d, fv(), &writes, None, 0).unwrap();
            let elapsed = d.clock().now() - t0;
            assert!(read.is_empty());
            let labels: Vec<Label> = wrote.into_iter().map(std::result::Result::unwrap).collect();
            let violations = auditor.map_or(0, |a| a.violations().len());
            assert_eq!(d.stats().batches, 1);
            assert_eq!(d.stats().batched_ops, 3);
            let mut words = Vec::new();
            for i in 0..3u16 {
                let pn = PageName::new(fv(), i + 1, DiskAddress(40 + i));
                let (_, data) = read_page(&mut d, pn).unwrap();
                words.push(data[0]);
            }
            (elapsed, labels, words, violations)
        };
        let (dt0, labels0, words0, v0) = run(false);
        let (dt1, labels1, words1, v1) = run(true);
        assert_eq!(dt0, dt1);
        assert_eq!(labels0, labels1);
        assert_eq!(words0, [0xA1, 0xA2, 0xA3]);
        assert_eq!(words0, words1);
        assert_eq!(v0, 0);
        assert_eq!(v1, 0);
        assert_eq!(labels0[1].page_number, 2);
    }

    #[test]
    fn pure_drain_retries_a_transient_write_sector_at_a_time() {
        use alto_disk::FaultKind;
        let mut d = drive();
        for i in 0..2u16 {
            allocate_at(
                &mut d,
                DiskAddress(40 + i),
                label_for(i + 1, DiskAddress::NIL, DiskAddress::NIL),
                &[i; DATA_WORDS],
            )
            .unwrap();
        }
        d.reset_stats();
        d.injector_mut()
            .arm(DiskAddress(41), FaultKind::NotReady { attempts: 1 });
        let writes = [
            (1u16, DiskAddress(40), [0xB1u16; DATA_WORDS]),
            (2u16, DiskAddress(41), [0xB2u16; DATA_WORDS]),
        ];
        let (wrote, _) = drain_and_prefetch(&mut d, fv(), &writes, None, 0).unwrap();
        assert!(wrote.iter().all(std::result::Result::is_ok));
        assert_eq!(wrote[1].as_ref().unwrap().page_number, 2);
        let s = d.stats();
        assert_eq!(s.retries, 1);
        assert_eq!(s.recovered, 1);
        let (_, data) = read_page(&mut d, PageName::new(fv(), 2, DiskAddress(41))).unwrap();
        assert_eq!(data, [0xB2; DATA_WORDS]);
    }

    #[test]
    fn retry_recovers_a_transient_with_one_revolution_backoff() {
        use alto_disk::FaultKind;
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[3; DATA_WORDS],
        )
        .unwrap();
        d.reset_stats();
        d.injector_mut()
            .arm_read(da, FaultKind::SoftRead { attempts: 2 });
        let rev = d.timing().unwrap().revolution();
        let start = d.clock().now();
        let (_, data) = read_page(&mut d, PageName::new(fv(), 1, da)).unwrap();
        assert_eq!(data, [3; DATA_WORDS]);
        let s = d.stats();
        assert_eq!(s.soft_errors, 2);
        assert_eq!(s.retries, 2);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.hard_failures, 0);
        // Each retry waited out a full revolution before re-issuing.
        assert!(d.clock().now() - start >= rev.scaled(2));
    }

    #[test]
    fn retry_exhaustion_escalates_to_a_hard_error() {
        use alto_disk::FaultKind;
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[3; DATA_WORDS],
        )
        .unwrap();
        d.reset_stats();
        d.injector_mut()
            .arm_read(da, FaultKind::SoftRead { attempts: 100 });
        let err = read_page(&mut d, PageName::new(fv(), 1, da)).unwrap_err();
        assert!(matches!(
            err,
            FsError::Disk(DiskError::HardError {
                part: SectorPart::Value,
                ..
            })
        ));
        let s = d.stats();
        assert_eq!(s.retries, 3, "default limit is three re-issues");
        assert_eq!(s.soft_errors, 4, "first issue plus three retries");
        assert_eq!(s.hard_failures, 1);
        assert_eq!(s.recovered, 0);
    }

    #[test]
    fn set_retries_zero_is_the_abort_immediately_ablation() {
        use alto_disk::FaultKind;
        let mut d = drive();
        let da = DiskAddress(40);
        allocate_at(
            &mut d,
            da,
            label_for(1, DiskAddress::NIL, DiskAddress::NIL),
            &[3; DATA_WORDS],
        )
        .unwrap();
        d.set_retries(0);
        d.reset_stats();
        d.injector_mut()
            .arm_read(da, FaultKind::SoftRead { attempts: 1 });
        let err = read_page(&mut d, PageName::new(fv(), 1, da)).unwrap_err();
        assert!(matches!(err, FsError::Disk(DiskError::HardError { .. })));
        let s = d.stats();
        assert_eq!(s.retries, 0, "no re-issue happened");
        assert_eq!(s.soft_errors, 1);
        assert_eq!(s.hard_failures, 1);
        // The one-attempt fault fired and cleared, so a re-read succeeds.
        assert!(read_page(&mut d, PageName::new(fv(), 1, da)).is_ok());
    }

    #[test]
    fn batch_retry_completes_only_the_failed_member() {
        use alto_disk::FaultKind;
        // Three chained writes with a transient on the middle sector: the
        // drive halts at the failure and reschedules the rest, then the
        // retry layer re-issues just the failed member — the completed
        // members are never re-run.
        let mut d = drive();
        for i in 0..3u16 {
            allocate_at(
                &mut d,
                DiskAddress(40 + i),
                label_for(i + 1, DiskAddress::NIL, DiskAddress::NIL),
                &[1; DATA_WORDS],
            )
            .unwrap();
        }
        d.reset_stats();
        d.injector_mut()
            .arm(DiskAddress(41), FaultKind::NotReady { attempts: 1 });
        let chunks = [
            [0xA1u16; DATA_WORDS],
            [0xA2; DATA_WORDS],
            [0xA3; DATA_WORDS],
        ];
        let start = PageName::new(fv(), 1, DiskAddress(40));
        let wrote = write_pages_guessed(&mut d, fv(), start, &chunks).unwrap();
        assert!(wrote.iter().all(std::result::Result::is_ok));
        let s = d.stats();
        // 3 batched services + exactly 1 retry re-issue; the two clean
        // members were not re-run.
        assert_eq!(s.ops, 4);
        assert_eq!(s.retries, 1);
        assert_eq!(s.recovered, 1);
        for i in 0..3u16 {
            let (_, data) =
                read_page(&mut d, PageName::new(fv(), i + 1, DiskAddress(40 + i))).unwrap();
            assert_eq!(data[0], 0xA1 + i);
        }
    }

    #[test]
    fn mark_bad_quarantines() {
        let mut d = drive();
        let da = DiskAddress(40);
        d.pack_mut().unwrap().damage(da);
        mark_bad(&mut d, da).unwrap();
        let label = d.pack().unwrap().sector(da).unwrap().decoded_label();
        assert!(label.is_bad());
        assert!(!label.is_free());
    }

    #[test]
    fn read_raw_reads_anything() {
        let mut d = drive();
        let (l, data) = read_raw(&mut d, DiskAddress(0)).unwrap();
        assert!(l.is_free());
        assert!(data.iter().all(|&w| w == u16::MAX));
    }
}
