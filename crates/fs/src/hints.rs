//! Using hints (§3.6).
//!
//! "If a program possesses the full name `(FV, i)` of a file page and the
//! hint address, it can access the page directly without going through a
//! directory lookup and without scanning down the chain of data blocks."
//! When the direct access fails, the program climbs a ladder of recoveries:
//!
//! 1. follow links from another known-good portion of the file (typically
//!    the leader page, possibly accelerated by hints kept for every k-th
//!    page);
//! 2. look up the `FV` in a directory to obtain the proper disk address;
//! 3. look up the *string name* in a directory to obtain a new `FV` and
//!    address (the file may have been recreated);
//! 4. invoke the Scavenger and retry.
//!
//! The paper laments that programs too often printed "Hint failed, please
//! reinstall" instead of climbing the ladder; [`resolve_page`] is the
//! automatic recovery done right, and [`HintStats`] lets the experiments
//! report the cost of each rung (experiment E5).
//!
//! The same module provides the consecutive-file guess of §3.6: "a program
//! is free to assume that a file is consecutive and, knowing the address
//! `aᵢ` of page `i`, to compute the address of page `j` as `aᵢ + j - i`.
//! The label check will prevent any incorrect overwriting of data."

use alto_disk::{Disk, DiskAddress, DATA_WORDS};
use alto_sim::SimTime;

use crate::dir;
use crate::errors::FsError;
use crate::file::FileSystem;
use crate::names::{FileFullName, Fv, PageName};
use crate::scavenge::Scavenger;

/// Which rung of the ladder finally produced the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintOutcome {
    /// The hint address was correct: one disk access.
    DirectHit,
    /// Recovered by following links from a known-good page.
    LinkChase {
        /// Number of link hops followed.
        hops: u32,
    },
    /// Recovered via an `FV` lookup in the directory.
    DirectoryLookup,
    /// Recovered via a string-name lookup (new `FV`).
    StringLookup,
    /// Recovered only by running the Scavenger.
    Scavenged,
}

/// Cumulative ladder statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintStats {
    /// Accesses satisfied by the hint directly.
    pub direct_hits: u64,
    /// Accesses recovered by link chasing (and total hops).
    pub link_chases: u64,
    /// Total link hops across all chases.
    pub link_hops: u64,
    /// Accesses recovered by `FV` directory lookup.
    pub dir_lookups: u64,
    /// Accesses recovered by string lookup.
    pub string_lookups: u64,
    /// Accesses that required a scavenge.
    pub scavenges: u64,
    /// Simulated time spent inside the ladder.
    pub time: SimTime,
}

impl HintStats {
    fn record(&mut self, outcome: HintOutcome) {
        match outcome {
            HintOutcome::DirectHit => self.direct_hits += 1,
            HintOutcome::LinkChase { hops } => {
                self.link_chases += 1;
                self.link_hops += hops as u64;
            }
            HintOutcome::DirectoryLookup => self.dir_lookups += 1,
            HintOutcome::StringLookup => self.string_lookups += 1,
            HintOutcome::Scavenged => self.scavenges += 1,
        }
    }
}

/// A program's remembered hints for one file, as written to a state file by
/// an install phase (§3.6: "they create the necessary files and store hints
/// for them in a data structure that is then written onto a state file").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageHints {
    /// The file's full name (the leader hint).
    pub file: FileFullName,
    /// The directory the file is catalogued in.
    pub directory: FileFullName,
    /// The string name under which it is catalogued.
    pub name: String,
    /// Hint addresses kept for every `k`-th page ("hint addresses can also
    /// be kept for every k-th page of the file to reduce the number of
    /// links that must be followed").
    pub every_kth: Vec<(u16, DiskAddress)>,
    /// The `k` used for `every_kth` (0 = none kept).
    pub k: u16,
}

impl PageHints {
    /// Hints consisting only of the file's full name.
    pub fn bare(file: FileFullName, directory: FileFullName, name: &str) -> PageHints {
        PageHints {
            file,
            directory,
            name: name.to_string(),
            every_kth: Vec::new(),
            k: 0,
        }
    }

    /// Builds hints for every `k`-th page by walking the file once.
    pub fn install<D: Disk>(
        fs: &mut FileSystem<D>,
        directory: FileFullName,
        name: &str,
        k: u16,
    ) -> Result<PageHints, FsError> {
        let file = dir::lookup(fs, directory, name)?
            .ok_or_else(|| FsError::NameNotFound(name.to_string()))?;
        let mut every_kth = vec![(0u16, file.leader_da)];
        if k > 0 {
            // The lookup's verification read primed the leader cache, so
            // this costs no disk revolution on the warm path.
            let (leader_label, _) = fs.open_leader(file)?;
            let mut label = leader_label;
            let mut page = 0u16;
            loop {
                if label.next.is_nil() {
                    break;
                }
                page += 1;
                let pn = PageName::new(file.fv, page, label.next);
                if page.is_multiple_of(k) {
                    every_kth.push((page, label.next));
                }
                let (l, _) = fs.read_page(pn)?;
                label = l;
            }
        }
        Ok(PageHints {
            file,
            directory,
            name: name.to_string(),
            every_kth,
            k,
        })
    }

    /// The best starting point at or below `page`: the highest hinted page
    /// not beyond it.
    fn best_start(&self, page: u16) -> (u16, DiskAddress) {
        self.every_kth
            .iter()
            .copied()
            .filter(|(p, _)| *p <= page)
            .max_by_key(|(p, _)| *p)
            .unwrap_or((0, self.file.leader_da))
    }

    /// Serializes the hints to words for a state file.
    pub fn encode(&self) -> Vec<u16> {
        let mut w = Vec::new();
        let s = self.file.fv.serial.words();
        w.extend_from_slice(&[s[0], s[1], self.file.fv.version, self.file.leader_da.0]);
        let d = self.directory.fv.serial.words();
        w.extend_from_slice(&[
            d[0],
            d[1],
            self.directory.fv.version,
            self.directory.leader_da.0,
        ]);
        w.push(self.k);
        let name = self.name.as_bytes();
        w.push(name.len() as u16);
        for chunk in name.chunks(2) {
            let hi = (chunk[0] as u16) << 8;
            let lo = chunk.get(1).map_or(0, |&b| b as u16);
            w.push(hi | lo);
        }
        w.push(self.every_kth.len() as u16);
        for (p, da) in &self.every_kth {
            w.push(*p);
            w.push(da.0);
        }
        w
    }

    /// Deserializes hints from state-file words.
    pub fn decode(words: &[u16]) -> Option<PageHints> {
        let mut it = words.iter().copied();
        let mut next = || it.next();
        let fid = [next()?, next()?];
        let version = next()?;
        let da = DiskAddress(next()?);
        let did = [next()?, next()?];
        let dversion = next()?;
        let dda = DiskAddress(next()?);
        let k = next()?;
        let name_len = next()? as usize;
        let mut name_bytes = Vec::with_capacity(name_len);
        for i in 0..name_len {
            if i % 2 == 0 {
                let w = next()?;
                name_bytes.push((w >> 8) as u8);
                if i + 1 < name_len {
                    name_bytes.push(w as u8);
                }
            }
        }
        let name = String::from_utf8(name_bytes).ok()?;
        let count = next()? as usize;
        let mut every_kth = Vec::with_capacity(count);
        for _ in 0..count {
            every_kth.push((next()?, DiskAddress(next()?)));
        }
        Some(PageHints {
            file: FileFullName::new(
                Fv::new(crate::names::SerialNumber::from_words(fid), version),
                da,
            ),
            directory: FileFullName::new(
                Fv::new(crate::names::SerialNumber::from_words(did), dversion),
                dda,
            ),
            name,
            every_kth,
            k,
        })
    }
}

/// Reads page `page` of the hinted file, climbing the §3.6 ladder as far as
/// necessary. Returns the data, the page's now-correct full name, and which
/// rung succeeded. Updates `hints` in place with what was learned.
pub fn resolve_page<D: Disk>(
    fs: &mut FileSystem<D>,
    hints: &mut PageHints,
    page: u16,
    da_hint: DiskAddress,
    stats: &mut HintStats,
) -> Result<([u16; DATA_WORDS], PageName, HintOutcome), FsError> {
    let start = fs.disk().clock().now();
    let result = resolve_inner(fs, hints, page, da_hint);
    stats.time += fs.disk().clock().now() - start;
    if let Ok((_, _, outcome)) = &result {
        stats.record(*outcome);
    }
    result
}

fn resolve_inner<D: Disk>(
    fs: &mut FileSystem<D>,
    hints: &mut PageHints,
    page: u16,
    da_hint: DiskAddress,
) -> Result<([u16; DATA_WORDS], PageName, HintOutcome), FsError> {
    // Rung 0: the direct hint.
    if !da_hint.is_nil() {
        let pn = PageName::new(hints.file.fv, page, da_hint);
        if let Ok((_, data)) = fs.read_page(pn) {
            return Ok((data, pn, HintOutcome::DirectHit));
        }
    }

    // Rung 1: follow links from a known-good portion of the file.
    if let Ok(Some((data, pn, hops))) = chase_links(fs, hints, page) {
        return Ok((data, pn, HintOutcome::LinkChase { hops }));
    }

    // Rung 2: FV lookup in the directory (fixes a stale leader address).
    // Warm through the name index like every other directory access.
    if let Ok(Some(found)) = dir::lookup_fv(fs, hints.directory, hints.file.fv) {
        hints.file = found;
        hints.every_kth = vec![(0, found.leader_da)];
        if let Ok(Some((data, pn, _))) = chase_links(fs, hints, page) {
            return Ok((data, pn, HintOutcome::DirectoryLookup));
        }
    }

    // Rung 3: string lookup — the file may have a new FV entirely.
    if let Ok(Some(found)) = dir::lookup(fs, hints.directory, &hints.name.clone()) {
        if found.fv != hints.file.fv || found.leader_da != hints.file.leader_da {
            hints.file = found;
            hints.every_kth = vec![(0, found.leader_da)];
            if let Ok(Some((data, pn, _))) = chase_links(fs, hints, page) {
                return Ok((data, pn, HintOutcome::StringLookup));
            }
        }
    }

    // Rung 4: the Scavenger, then one more try through the directories.
    Scavenger::run(fs)?;
    let root = fs.root_dir();
    let dir_to_search = if dir::list(fs, hints.directory).is_ok() {
        hints.directory
    } else {
        root
    };
    hints.directory = dir_to_search;
    if let Some(found) = dir::lookup(fs, dir_to_search, &hints.name.clone())? {
        hints.file = found;
        hints.every_kth = vec![(0, found.leader_da)];
        if let Some((data, pn, _)) = chase_links(fs, hints, page)? {
            return Ok((data, pn, HintOutcome::Scavenged));
        }
    }
    Err(FsError::PageNotFound(PageName::new(
        hints.file.fv,
        page,
        da_hint,
    )))
}

/// Follows links from the best hinted starting page to `page`.
fn chase_links<D: Disk>(
    fs: &mut FileSystem<D>,
    hints: &PageHints,
    page: u16,
) -> Result<Option<([u16; DATA_WORDS], PageName, u32)>, FsError> {
    let (mut at, mut da) = hints.best_start(page);
    let mut hops = 0u32;
    loop {
        let pn = PageName::new(hints.file.fv, at, da);
        match fs.read_page(pn) {
            Ok((label, data)) => {
                if at == page {
                    return Ok(Some((data, pn, hops)));
                }
                if label.next.is_nil() {
                    return Ok(None); // past the end
                }
                at += 1;
                da = label.next;
                hops += 1;
            }
            Err(_) => return Ok(None),
        }
    }
}

/// The §3.6 consecutive-file guess: compute page `j`'s address from page
/// `i`'s as `aᵢ + (j - i)` and try it; the label check makes a wrong guess
/// harmless. Returns the data if the guess was right.
pub fn guess_consecutive<D: Disk>(
    fs: &mut FileSystem<D>,
    fv: Fv,
    known: (u16, DiskAddress),
    target: u16,
) -> Result<Option<[u16; DATA_WORDS]>, FsError> {
    let (i, ai) = known;
    let guessed = ai.0 as i32 + target as i32 - i as i32;
    if guessed < 0 || guessed >= u16::MAX as i32 {
        return Ok(None);
    }
    let pn = PageName::new(fv, target, DiskAddress(guessed as u16));
    match fs.read_page(pn) {
        Ok((_, data)) => Ok(Some(data)),
        Err(FsError::Disk(alto_disk::DiskError::Check(_))) => Ok(None),
        Err(FsError::Disk(alto_disk::DiskError::InvalidAddress(_))) => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    fn file_with_pages(fs: &mut FileSystem<DiskDrive>, name: &str, pages: usize) -> FileFullName {
        let root = fs.root_dir();
        let f = dir::create_named_file(fs, root, name).unwrap();
        fs.write_file(f, &vec![0xAB; pages * 512 - 10]).unwrap();
        f
    }

    #[test]
    fn direct_hit_with_good_hint() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 10);
        let root = fs.root_dir();
        let mut hints = PageHints::bare(f, root, "f.dat");
        let mut stats = HintStats::default();
        // Learn page 5's address, then hit it directly.
        let (_, pn, outcome) =
            resolve_page(&mut fs, &mut hints, 5, DiskAddress::NIL, &mut stats).unwrap();
        assert!(matches!(outcome, HintOutcome::LinkChase { .. }));
        let (_, _, outcome) = resolve_page(&mut fs, &mut hints, 5, pn.da, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::DirectHit);
        assert_eq!(stats.direct_hits, 1);
        assert_eq!(stats.link_chases, 1);
    }

    #[test]
    fn link_chase_hop_count() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 10);
        let root = fs.root_dir();
        let mut hints = PageHints::bare(f, root, "f.dat");
        let mut stats = HintStats::default();
        let (_, _, outcome) =
            resolve_page(&mut fs, &mut hints, 7, DiskAddress::NIL, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::LinkChase { hops: 7 });
    }

    #[test]
    fn every_kth_hints_bound_the_chase() {
        let mut fs = fresh_fs();
        file_with_pages(&mut fs, "f.dat", 20);
        let root = fs.root_dir();
        let mut hints = PageHints::install(&mut fs, root, "f.dat", 4).unwrap();
        let mut stats = HintStats::default();
        let (_, _, outcome) =
            resolve_page(&mut fs, &mut hints, 18, DiskAddress::NIL, &mut stats).unwrap();
        // Best start is page 16 (a multiple of 4): 2 hops, not 18.
        assert_eq!(outcome, HintOutcome::LinkChase { hops: 2 });
    }

    #[test]
    fn stale_leader_hint_recovers_via_directory() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 5);
        let root = fs.root_dir();
        // Hints with a bogus leader address: rung 1 fails, rung 2 succeeds.
        let mut hints = PageHints::bare(FileFullName::new(f.fv, DiskAddress(4000)), root, "f.dat");
        let mut stats = HintStats::default();
        let (_, _, outcome) =
            resolve_page(&mut fs, &mut hints, 2, DiskAddress::NIL, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::DirectoryLookup);
        // The hints were repaired in passing.
        assert_eq!(hints.file.leader_da, f.leader_da);
    }

    #[test]
    fn recreated_file_recovers_via_string_lookup() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 5);
        let root = fs.root_dir();
        let mut hints = PageHints::bare(f, root, "f.dat");
        // Delete and recreate under the same name: new FV.
        dir::remove(&mut fs, root, "f.dat").unwrap();
        fs.delete_file(f).unwrap();
        let g = dir::create_named_file(&mut fs, root, "f.dat").unwrap();
        fs.write_file(g, &vec![0xCD; 2000]).unwrap();
        assert_ne!(f.fv, g.fv);
        let mut stats = HintStats::default();
        let (_, pn, outcome) =
            resolve_page(&mut fs, &mut hints, 2, DiskAddress::NIL, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::StringLookup);
        assert_eq!(pn.fv, g.fv);
        assert_eq!(hints.file, g);
    }

    #[test]
    fn scavenge_is_the_last_resort() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 5);
        let root = fs.root_dir();
        let mut hints = PageHints::bare(f, root, "f.dat");
        // Scramble the directory so no lookup works: overwrite the root
        // directory's contents with garbage (entries lost, file intact).
        fs.write_file(root, &[0xFF; 64]).unwrap();
        let mut stats = HintStats::default();
        // Also give the ladder a stale leader hint.
        hints.file = FileFullName::new(f.fv, DiskAddress(4000));
        let (_, _, outcome) =
            resolve_page(&mut fs, &mut hints, 1, DiskAddress::NIL, &mut stats).unwrap();
        assert_eq!(outcome, HintOutcome::Scavenged);
        assert_eq!(stats.scavenges, 1);
        // The file is catalogued again (adopted by leader name).
        assert!({
            let root = fs.root_dir();
            dir::lookup(&mut fs, root, "f.dat")
        }
        .unwrap()
        .is_some());
    }

    #[test]
    fn missing_page_is_an_error_not_a_loop() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "f.dat", 3);
        let root = fs.root_dir();
        let mut hints = PageHints::bare(f, root, "f.dat");
        let mut stats = HintStats::default();
        let err = resolve_page(&mut fs, &mut hints, 40, DiskAddress::NIL, &mut stats);
        assert!(matches!(err, Err(FsError::PageNotFound(_))));
    }

    #[test]
    fn consecutive_guess_hits_on_consecutive_files() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "c.dat", 8);
        // Freshly written files allocate near-consecutively; find page 1
        // and guess page 4 from it.
        let (l0, _) = fs.read_page(f.leader_page()).unwrap();
        let p1 = PageName::new(f.fv, 1, l0.next);
        let (l1, _) = fs.read_page(p1).unwrap();
        // Verify the premise (consecutive layout) before asserting on it.
        assert_eq!(l1.next.0, p1.da.0 + 1, "fresh file should be consecutive");
        let hit = guess_consecutive(&mut fs, f.fv, (1, p1.da), 4).unwrap();
        assert!(hit.is_some());
    }

    #[test]
    fn consecutive_guess_misses_safely() {
        let mut fs = fresh_fs();
        let f = file_with_pages(&mut fs, "c.dat", 3);
        // Guess far past the file: lands on some other sector; the label
        // check rejects it and nothing is damaged.
        let miss = guess_consecutive(&mut fs, f.fv, (1, DiskAddress(100)), 2000).unwrap();
        assert!(miss.is_none());
        // Out-of-range guesses are also safe.
        let miss = guess_consecutive(&mut fs, f.fv, (1, DiskAddress(60000)), 10000).unwrap();
        assert!(miss.is_none());
    }

    #[test]
    fn hints_encode_decode_round_trip() {
        let mut fs = fresh_fs();
        file_with_pages(&mut fs, "f.dat", 12);
        let root = fs.root_dir();
        let hints = PageHints::install(&mut fs, root, "f.dat", 3).unwrap();
        let words = hints.encode();
        let back = PageHints::decode(&words).unwrap();
        assert_eq!(back, hints);
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut fs = fresh_fs();
        file_with_pages(&mut fs, "f.dat", 4);
        let root = fs.root_dir();
        let hints = PageHints::install(&mut fs, root, "f.dat", 2).unwrap();
        let words = hints.encode();
        for cut in [0, 3, words.len() - 1] {
            assert!(PageHints::decode(&words[..cut]).is_none());
        }
    }

    #[test]
    fn install_records_every_kth_page() {
        let mut fs = fresh_fs();
        file_with_pages(&mut fs, "f.dat", 10);
        let root = fs.root_dir();
        let hints = PageHints::install(&mut fs, root, "f.dat", 3).unwrap();
        let pages: Vec<u16> = hints.every_kth.iter().map(|(p, _)| *p).collect();
        assert_eq!(pages, vec![0, 3, 6, 9]);
    }
}
