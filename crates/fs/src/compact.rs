//! The compacting scavenger (§3.5).
//!
//! "We have also written a more elaborate scavenger that does an in-place
//! permutation of the file pages on the disk so that the pages of each file
//! are in consecutive sectors. This arrangement typically increases the
//! speed with which the files can be read sequentially by an order of
//! magnitude over what is possible if the pages have become scattered."
//!
//! The compactor computes a target layout (descriptor pinned at its
//! standard address, then every file's pages in file order), then realizes
//! it as an in-place permutation, following each cycle with a single page
//! buffer in memory. Labels are rewritten wholesale with the links of the
//! *new* layout; leader pages get fresh last-page hints and the
//! `maybe_consecutive` flag; directories are rewritten with the new leader
//! addresses; and the descriptor is rebuilt.
//!
//! Experiment E3 measures the order-of-magnitude sequential-read speedup
//! this buys.

use std::collections::BTreeMap;

use alto_disk::{Disk, DiskAddress, Label, SectorBuf, SectorOp, DATA_WORDS};
use alto_sim::SimTime;

use crate::descriptor;
use crate::dir;
use crate::errors::FsError;
use crate::file::FileSystem;
use crate::leader::LeaderPage;
use crate::names::{FileFullName, Fv, PageName};
use crate::scavenge::Scavenger;

/// What the compactor did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Files laid out.
    pub files: u32,
    /// Pages that had to move.
    pub pages_moved: u32,
    /// Pages already in place.
    pub pages_in_place: u32,
    /// Permutation cycles performed.
    pub cycles: u32,
    /// Files whose pages are now perfectly consecutive.
    pub consecutive_files: u32,
    /// Simulated time taken.
    pub elapsed: SimTime,
}

/// The compacting scavenger.
pub struct Compactor;

/// A file's scanned pages: `(page number, current address, byte length)`.
type ScannedPages = Vec<(u16, DiskAddress, u16)>;

#[derive(Debug, Clone, Copy)]
struct Placement {
    fv: Fv,
    page: u16,
    old_da: DiskAddress,
    new_da: DiskAddress,
    length: u16,
}

impl Compactor {
    /// Compacts the file system in place so every file's pages are
    /// consecutive. Runs a (plain) scavenge first so the page table is
    /// trustworthy, and leaves a fully consistent, freshly scavenged disk.
    pub fn run<D: Disk>(fs: &mut FileSystem<D>) -> Result<CompactReport, FsError> {
        // A scavenge gives us repaired chains and a correct bitmap.
        Scavenger::run(fs)?;
        let start = fs.disk().clock().now();
        let mut report = CompactReport::default();

        // Walk every file (via the root-reachable table the scavenger left:
        // the labels themselves) and record current page positions.
        let geometry = fs.disk().geometry()?;
        let mut files: BTreeMap<Fv, ScannedPages> = BTreeMap::new();
        let mut bad: Vec<DiskAddress> = Vec::new();
        // The scan is the scavenger's sweep shape: chained cylinder batches,
        // one chunk per arm per batch so an array overlaps its timelines.
        let per_cylinder = (geometry.heads as usize * geometry.sectors as usize).max(1);
        let all: Vec<DiskAddress> = (0..geometry.sector_count())
            .map(|i| DiskAddress(i as u16))
            .collect();
        for das in crate::scavenge::sweep_batches(fs.disk(), &all, per_cylinder) {
            let results = crate::page::read_raw_batch(fs.disk_mut(), &das);
            for (da, res) in das.into_iter().zip(results) {
                match res {
                    Ok((label, _)) => {
                        if label.is_bad() {
                            bad.push(da);
                        } else if label.is_in_use() {
                            files.entry(Fv::from_label(&label)).or_default().push((
                                label.page_number,
                                da,
                                label.length,
                            ));
                        }
                    }
                    Err(FsError::Disk(alto_disk::DiskError::HardError { .. })) => bad.push(da),
                    Err(e) => return Err(e),
                }
            }
        }
        for pages in files.values_mut() {
            pages.sort_unstable();
        }

        // Target layout: walk addresses in order, skipping bad sectors and
        // the two pinned addresses, assigning each file's pages in file
        // order. The descriptor leader stays pinned at DA 1; a boot file's
        // page 1 stays pinned at DA 0.
        let desc_fv = descriptor::descriptor_fv();
        let boot_present = files.get(&descriptor::boot_fv()).is_some_and(|pages| {
            pages
                .iter()
                .any(|(p, da, _)| *p == 1 && *da == descriptor::BOOT_PAGE_DA)
        });

        let mut placements: Vec<Placement> = Vec::new();
        let mut slot = DiskAddress(0);
        let bad_set: std::collections::BTreeSet<u16> = bad.iter().map(|d| d.0).collect();
        let next_slot = |slot: &mut DiskAddress| loop {
            let s = *slot;
            *slot = DiskAddress(slot.0 + 1);
            let pinned = s == descriptor::BOOT_PAGE_DA || s == descriptor::DESCRIPTOR_LEADER_DA;
            if !pinned && !bad_set.contains(&s.0) {
                return s;
            }
        };

        // Order: descriptor data pages first (so they sit right after their
        // pinned leader), then everything else by serial number.
        let mut ordered: Vec<(Fv, ScannedPages)> = Vec::new();
        if let Some(desc_pages) = files.remove(&desc_fv) {
            ordered.push((desc_fv, desc_pages));
        }
        for (fv, pages) in std::mem::take(&mut files) {
            ordered.push((fv, pages));
        }

        for (fv, pages) in &ordered {
            for (page, old_da, length) in pages {
                let new_da = if *fv == desc_fv && *page == 0 {
                    descriptor::DESCRIPTOR_LEADER_DA
                } else if *fv == descriptor::boot_fv() && *page == 1 && boot_present {
                    descriptor::BOOT_PAGE_DA
                } else {
                    next_slot(&mut slot)
                };
                placements.push(Placement {
                    fv: *fv,
                    page: *page,
                    old_da: *old_da,
                    new_da,
                    length: *length,
                });
            }
        }
        report.files = ordered.len() as u32;

        // Index placements by old and new address for cycle chasing, and
        // compute the final link structure.
        let mut final_da: BTreeMap<(Fv, u16), DiskAddress> = BTreeMap::new();
        for p in &placements {
            final_da.insert((p.fv, p.page), p.new_da);
        }
        let new_label = |p: &Placement| -> Label {
            Label {
                fid: p.fv.serial.words(),
                version: p.fv.version,
                page_number: p.page,
                length: p.length,
                next: final_da
                    .get(&(p.fv, p.page + 1))
                    .copied()
                    .unwrap_or(DiskAddress::NIL),
                prev: if p.page == 0 {
                    DiskAddress::NIL
                } else {
                    final_da
                        .get(&(p.fv, p.page - 1))
                        .copied()
                        .unwrap_or(DiskAddress::NIL)
                },
            }
        };

        let by_old: BTreeMap<u16, usize> = placements
            .iter()
            .enumerate()
            .map(|(i, p)| (p.old_da.0, i))
            .collect();
        let pack_number = fs.disk().pack_number()?;

        // Permutation by cycle chasing. `emptied` tracks sectors whose
        // content has moved away and not been replaced (to be freed).
        let mut done = vec![false; placements.len()];
        let mut occupied_new: std::collections::BTreeSet<u16> =
            placements.iter().map(|p| p.new_da.0).collect();
        for start_idx in 0..placements.len() {
            if done[start_idx] || placements[start_idx].old_da == placements[start_idx].new_da {
                if !done[start_idx] {
                    // In place: rewrite the label only if links changed.
                    let p = placements[start_idx];
                    let pn = PageName::new(p.fv, p.page, p.old_da);
                    let (current, data) = crate::page::read_page(fs.disk_mut(), pn)?;
                    let target = new_label(&p);
                    if current != target {
                        crate::page::rewrite_label(fs.disk_mut(), pn, target, &data)?;
                    }
                    report.pages_in_place += 1;
                    done[start_idx] = true;
                }
                continue;
            }
            // Follow the cycle/path starting here: read this page into
            // memory, then repeatedly fill the vacated slot from whoever
            // must move into it.
            report.cycles += 1;
            let mut carried: Vec<(usize, [u16; DATA_WORDS])> = Vec::new();
            let mut idx = start_idx;
            loop {
                let p = placements[idx];
                let mut buf = SectorBuf::zeroed();
                crate::page::retry_op(fs.disk_mut(), p.old_da, SectorOp::READ_ALL, &mut buf)?;
                carried.push((idx, buf.data));
                done[idx] = true;
                // Who currently lives at our destination?
                match by_old.get(&p.new_da.0) {
                    Some(&next_idx) if !done[next_idx] => idx = next_idx,
                    _ => break,
                }
            }
            // Write the carried pages in reverse order: the last page read
            // has a free destination; each earlier page's destination was
            // vacated by the one after it.
            for (idx, data) in carried.into_iter().rev() {
                let p = placements[idx];
                let mut buf = SectorBuf::zeroed();
                buf.header = [pack_number, p.new_da.0];
                buf.set_label(new_label(&p));
                buf.data = data;
                crate::page::retry_op(fs.disk_mut(), p.new_da, SectorOp::WRITE_ALL, &mut buf)?;
                report.pages_moved += 1;
            }
        }

        // Free every sector that no longer holds live content.
        for i in 0..geometry.sector_count() {
            let da = DiskAddress(i as u16);
            if occupied_new.contains(&da.0)
                || bad_set.contains(&da.0)
                || da == descriptor::BOOT_PAGE_DA
                || da == descriptor::DESCRIPTOR_LEADER_DA
            {
                continue;
            }
            // Was it an old home of a moved page?
            if by_old.contains_key(&da.0) {
                let mut buf = SectorBuf::with_label(Label::FREE);
                buf.header = [pack_number, da.0];
                buf.data = [u16::MAX; DATA_WORDS];
                crate::page::retry_op(fs.disk_mut(), da, SectorOp::WRITE_ALL, &mut buf)?;
            }
        }
        occupied_new.insert(descriptor::DESCRIPTOR_LEADER_DA.0);

        // Refresh leader hints and count consecutive files.
        for (fv, pages) in &ordered {
            let leader_new = final_da[&(*fv, 0)];
            let last_page = pages.last().map_or(0, |(p, _, _)| *p);
            let last_da = final_da[&(*fv, last_page)];
            let consecutive = pages
                .iter()
                .all(|(p, _, _)| final_da[&(*fv, *p)].0 == leader_new.0.wrapping_add(*p));
            if consecutive {
                report.consecutive_files += 1;
            }
            let pn = PageName::new(*fv, 0, leader_new);
            let (_, data) = crate::page::read_page(fs.disk_mut(), pn)?;
            let mut leader = LeaderPage::decode(&data);
            leader.last_page = last_page;
            leader.last_da = last_da;
            leader.maybe_consecutive = consecutive;
            crate::page::write_page(fs.disk_mut(), pn, &leader.encode())?;
        }

        // Rebuild the in-memory descriptor to match the new layout.
        {
            let desc = fs.descriptor_mut();
            let total = desc.bitmap.len();
            desc.bitmap = crate::alloc::BitMap::all_free(total);
            desc.bitmap.set_busy(descriptor::BOOT_PAGE_DA);
            desc.bitmap.set_busy(descriptor::DESCRIPTOR_LEADER_DA);
            for p in &placements {
                desc.bitmap.set_busy(p.new_da);
            }
            for da in &bad {
                desc.bitmap.set_busy(*da);
            }
        }
        let root_fv = fs.descriptor().root_dir.fv;
        if let Some(&root_new) = final_da.get(&(root_fv, 0)) {
            fs.descriptor_mut().root_dir = FileFullName::new(root_fv, root_new);
        }

        // Rewrite directory entries with the new leader addresses.
        let dir_list: Vec<FileFullName> = ordered
            .iter()
            .filter(|(fv, _)| fv.serial.is_directory())
            .map(|(fv, _)| FileFullName::new(*fv, final_da[&(*fv, 0)]))
            .collect();
        for dir_name in dir_list {
            let entries = dir::list(fs, dir_name)?;
            let fixed: Vec<dir::DirEntry> = entries
                .into_iter()
                .map(|mut e| {
                    if let Some(&new) = final_da.get(&(e.file.fv, 0)) {
                        e.file = FileFullName::new(e.file.fv, new);
                    }
                    e
                })
                .collect();
            fs.write_file(dir_name, &dir::encode_entries(&fixed))?;
        }

        fs.flush_descriptor()?;
        report.elapsed = fs.disk().clock().now() - start;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, SplitMix64, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    /// Creates `n` files then rewrites them in shuffled order repeatedly so
    /// their pages interleave on disk.
    fn fragmented_fs(files: usize, pages_each: usize) -> (FileSystem<DiskDrive>, Vec<String>) {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let mut names = Vec::new();
        for i in 0..files {
            let name = format!("frag-{i}.dat");
            dir::create_named_file(&mut fs, root, &name).unwrap();
            names.push(name);
        }
        let mut rng = SplitMix64::new(99);
        // Interleave growth: extend each file one page at a time in random
        // order so pages of different files alternate on the disk.
        let mut sizes = vec![0usize; files];
        for _ in 0..pages_each {
            let mut order: Vec<usize> = (0..files).collect();
            rng.shuffle(&mut order);
            for f in order {
                sizes[f] += 1;
                let file = dir::lookup(&mut fs, root, &names[f]).unwrap().unwrap();
                fs.write_file(file, &vec![f as u8; sizes[f] * 512 - 1])
                    .unwrap();
            }
        }
        (fs, names)
    }

    #[test]
    fn compaction_preserves_contents() {
        let (mut fs, names) = fragmented_fs(4, 5);
        let root = fs.root_dir();
        let mut before = Vec::new();
        for n in &names {
            let f = dir::lookup(&mut fs, root, n).unwrap().unwrap();
            before.push(fs.read_file(f).unwrap());
        }
        let report = Compactor::run(&mut fs).unwrap();
        assert!(report.pages_moved > 0);
        let root = fs.root_dir();
        for (n, want) in names.iter().zip(&before) {
            let f = dir::lookup(&mut fs, root, n).unwrap().unwrap();
            assert_eq!(&fs.read_file(f).unwrap(), want, "{n} changed");
        }
    }

    #[test]
    fn compaction_makes_files_consecutive() {
        let (mut fs, names) = fragmented_fs(4, 5);
        let report = Compactor::run(&mut fs).unwrap();
        assert_eq!(report.consecutive_files, report.files);
        // Check one file's physical layout directly.
        let root = fs.root_dir();
        let f = dir::lookup(&mut fs, root, &names[0]).unwrap().unwrap();
        let (leader_label, leader_data) = fs.read_page(f.leader_page()).unwrap();
        let leader = LeaderPage::decode(&leader_data);
        assert!(leader.maybe_consecutive);
        let mut da = leader_label.next;
        let mut expect = f.leader_da.0 + 1;
        let mut page = 1u16;
        loop {
            assert_eq!(da.0, expect, "page {page} not consecutive");
            let (label, _) = fs.read_page(PageName::new(f.fv, page, da)).unwrap();
            if label.next.is_nil() {
                break;
            }
            da = label.next;
            expect += 1;
            page += 1;
        }
    }

    #[test]
    fn compaction_is_idempotent() {
        let (mut fs, _) = fragmented_fs(3, 4);
        Compactor::run(&mut fs).unwrap();
        let report2 = Compactor::run(&mut fs).unwrap();
        assert_eq!(report2.pages_moved, 0);
        assert_eq!(report2.consecutive_files, report2.files);
    }

    #[test]
    fn compaction_survives_scavenge() {
        // After compaction the disk must still scavenge cleanly.
        let (mut fs, names) = fragmented_fs(3, 4);
        Compactor::run(&mut fs).unwrap();
        let disk = fs.unmount().unwrap();
        let (mut fs, report) = Scavenger::rebuild(disk).unwrap();
        assert_eq!(report.links_repaired, 0);
        assert_eq!(report.entries_dropped, 0);
        assert_eq!(report.orphans_adopted, 0);
        let root = fs.root_dir();
        for n in &names {
            assert!(dir::lookup(&mut fs, root, n).unwrap().is_some());
        }
    }

    #[test]
    fn descriptor_stays_at_standard_address() {
        let (mut fs, _) = fragmented_fs(2, 3);
        Compactor::run(&mut fs).unwrap();
        let disk = fs.unmount().unwrap();
        // A plain mount (which goes straight to DA 1) must work.
        let fs = FileSystem::mount(disk).unwrap();
        assert_eq!(fs.descriptor().shape, DiskModel::Diablo31.geometry());
    }

    #[test]
    fn sequential_read_is_much_faster_after_compaction() {
        // The E3 headline: order-of-magnitude sequential-read speedup.
        let (mut fs, names) = fragmented_fs(6, 12);
        let root = fs.root_dir();
        let f = dir::lookup(&mut fs, root, &names[2]).unwrap().unwrap();
        let ((), scattered_time) = {
            let clock = fs.disk().clock().clone();
            let t0 = clock.now();
            fs.read_file(f).unwrap();
            ((), clock.now() - t0)
        };
        Compactor::run(&mut fs).unwrap();
        let root = fs.root_dir();
        let f = dir::lookup(&mut fs, root, &names[2]).unwrap().unwrap();
        let ((), compact_time) = {
            let clock = fs.disk().clock().clone();
            let t0 = clock.now();
            fs.read_file(f).unwrap();
            ((), clock.now() - t0)
        };
        let speedup = scattered_time.as_nanos() as f64 / compact_time.as_nanos() as f64;
        assert!(
            speedup > 3.0,
            "expected a large speedup, got {speedup:.2}x ({scattered_time} -> {compact_time})"
        );
    }
}
