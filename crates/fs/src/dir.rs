//! Directories (§3.4).
//!
//! A directory is an ordinary file (with a reserved serial-number bit)
//! containing a set of `(string, full name)` pairs. "A file may appear in
//! any number of directories … it is possible to have a tree, or indeed an
//! arbitrary directed graph, of directories." Nothing here is special to
//! the file system: these functions are an ordinary package built on the
//! file interface, and a user who dislikes them "is free to modify the
//! system-provided procedures for managing directories, or to write his
//! own" (§3.5).
//!
//! Directory entries are deliberately *less serious* than absolutes: if a
//! directory is destroyed no file contents are lost, only the fact that a
//! certain set of files was referenced from it by certain names.
//!
//! On-disk entry format (word-aligned within the file's data bytes):
//!
//! ```text
//! word 0        entry length in words (0 terminates the directory)
//! words 1..=2   serial number
//! word 3        version
//! word 4        leader disk address (hint)
//! word 5        name length in bytes
//! words 6..     name bytes, two per word, big-endian
//! ```
//!
//! Names are matched case-insensitively (ASCII), as on the Alto.

use alto_disk::{Disk, DiskAddress};

use crate::errors::FsError;
use crate::file::PAGE_BYTES;
use crate::file::{bytes_to_words, unpack_bytes, words_to_bytes, CacheLookup, FileSystem};
use crate::leader::MAX_LEADER_NAME;
use crate::names::{FileFullName, Fv, PageName, SerialNumber};

/// One directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// The string name within this directory.
    pub name: String,
    /// The file the entry points at.
    pub file: FileFullName,
}

fn names_equal(a: &str, b: &str) -> bool {
    a.eq_ignore_ascii_case(b)
}

/// Parses a directory file's bytes into entries.
///
/// Damaged tails are tolerated (the Scavenger reads directories that may be
/// scrambled): parsing stops at the first malformed entry.
pub fn parse_entries(bytes: &[u8]) -> Vec<DirEntry> {
    let words = bytes_to_words(bytes);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < words.len() {
        let len = words[i] as usize;
        if len == 0 || i + len > words.len() || len < 6 {
            break;
        }
        let serial = SerialNumber::from_words([words[i + 1], words[i + 2]]);
        let version = words[i + 3];
        let da = DiskAddress(words[i + 4]);
        let name_len = words[i + 5] as usize;
        if name_len > MAX_LEADER_NAME || 6 + name_len.div_ceil(2) > len {
            break;
        }
        let mut name_bytes = Vec::with_capacity(name_len);
        for k in 0..name_len {
            let w = words[i + 6 + k / 2];
            name_bytes.push(if k % 2 == 0 { (w >> 8) as u8 } else { w as u8 });
        }
        match String::from_utf8(name_bytes) {
            Ok(name) => out.push(DirEntry {
                name,
                file: FileFullName::new(Fv::new(serial, version), da),
            }),
            Err(_) => break,
        }
        i += len;
    }
    out
}

/// Encodes entries into directory file bytes.
pub fn encode_entries(entries: &[DirEntry]) -> Vec<u8> {
    let mut words: Vec<u16> = Vec::new();
    for e in entries {
        let name_bytes = e.name.as_bytes();
        let name_words = name_bytes.len().div_ceil(2);
        words.push((6 + name_words) as u16);
        let s = e.file.fv.serial.words();
        words.push(s[0]);
        words.push(s[1]);
        words.push(e.file.fv.version);
        words.push(e.file.leader_da.0);
        words.push(name_bytes.len() as u16);
        for chunk in name_bytes.chunks(2) {
            let hi = (chunk[0] as u16) << 8;
            let lo = chunk.get(1).map_or(0, |&b| b as u16);
            words.push(hi | lo);
        }
    }
    words.push(0); // terminator
    words_to_bytes(&words)
}

fn require_directory(dir: FileFullName) -> Result<(), FsError> {
    if dir.is_directory() {
        Ok(())
    } else {
        Err(FsError::NotADirectory(dir.fv))
    }
}

/// Lists the entries of `dir`. Served from the in-core name index while a
/// fresh snapshot exists (see [`crate::cache`]); a full scan otherwise,
/// which installs the snapshot for next time.
pub fn list<D: Disk>(fs: &mut FileSystem<D>, dir: FileFullName) -> Result<Vec<DirEntry>, FsError> {
    require_directory(dir)?;
    if let Some(entries) = fs.cached_dir_entries(dir) {
        return Ok(entries);
    }
    let entries = parse_entries(&fs.read_file(dir)?);
    fs.install_dir_snapshot(dir, &entries);
    Ok(entries)
}

/// Looks up `name` in `dir` (case-insensitive).
///
/// Warm path: answered from the name index, each positive hit verified
/// against the target's leader label (§3.6). Cold path with the cache
/// enabled: one full scan that builds the index. Cold path with the cache
/// disabled (the ablation): an incremental scan that stops reading the
/// directory file at the first match.
pub fn lookup<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    name: &str,
) -> Result<Option<FileFullName>, FsError> {
    require_directory(dir)?;
    if fs.hint_cache_enabled() {
        if let CacheLookup::Hit(found) = fs.cached_lookup(dir, name) {
            return Ok(found);
        }
        // No usable snapshot: pay for one full scan, which installs the
        // index, and answer from what it read.
        return Ok(list(fs, dir)?
            .into_iter()
            .find(|e| names_equal(&e.name, name))
            .map(|e| e.file));
    }
    scan_for_name(fs, dir, name)
}

/// Finds the entry for `fv` in `dir` (the hint ladder's rung 2). Warm
/// through the same index as [`list`].
pub fn lookup_fv<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    fv: Fv,
) -> Result<Option<FileFullName>, FsError> {
    Ok(list(fs, dir)?
        .into_iter()
        .find(|e| e.file.fv == fv)
        .map(|e| e.file))
}

/// Scans `dir` one page at a time, stopping at the first entry matching
/// `name` — the uncached cold path never reads past the match.
fn scan_for_name<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    name: &str,
) -> Result<Option<FileFullName>, FsError> {
    let (leader_label, _) = fs.open_leader(dir)?;
    if leader_label.next.is_nil() {
        return Ok(None);
    }
    let mut bytes = Vec::new();
    let mut pn = PageName::new(dir.fv, 1, leader_label.next);
    // A hostile directory chain cannot be longer than the disk has
    // sectors; walking past that is a cycle, not a long directory.
    let mut budget = fs.disk().geometry()?.sector_count() + 2;
    loop {
        let (label, data) = fs.read_page(pn)?;
        if label.length as usize > PAGE_BYTES {
            return Err(FsError::BadLength(label.length));
        }
        bytes.extend_from_slice(&unpack_bytes(&data)[..label.length as usize]);
        // Parse what has arrived so far; an entry cut off at the page
        // boundary looks malformed, stops the parse, and is retried whole
        // when the next page's bytes land.
        if let Some(e) = parse_entries(&bytes)
            .into_iter()
            .find(|e| names_equal(&e.name, name))
        {
            return Ok(Some(e.file));
        }
        if label.next.is_nil() {
            return Ok(None);
        }
        if budget == 0 {
            return Err(FsError::Corrupt {
                da: pn.da,
                what: "link cycle",
            });
        }
        budget -= 1;
        pn = PageName::new(dir.fv, pn.page + 1, label.next);
    }
}

/// Inserts (or replaces) the entry `name -> file` in `dir`.
pub fn insert<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    name: &str,
    file: FileFullName,
) -> Result<(), FsError> {
    if name.len() > MAX_LEADER_NAME {
        return Err(FsError::NameTooLong(name.len()));
    }
    let mut entries = list(fs, dir)?;
    entries.retain(|e| !names_equal(&e.name, name));
    entries.push(DirEntry {
        name: name.to_string(),
        file,
    });
    fs.write_file(dir, &encode_entries(&entries))?;
    fs.dir_rewritten(dir, entries);
    Ok(())
}

/// Removes the entry for `name` from `dir`, returning the file it named.
pub fn remove<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    name: &str,
) -> Result<Option<FileFullName>, FsError> {
    let mut entries = list(fs, dir)?;
    let mut removed = None;
    entries.retain(|e| {
        if removed.is_none() && names_equal(&e.name, name) {
            removed = Some(e.file);
            false
        } else {
            true
        }
    });
    if removed.is_some() {
        fs.write_file(dir, &encode_entries(&entries))?;
        fs.dir_rewritten(dir, entries);
    }
    Ok(removed)
}

/// Creates a new file named `name`, entering it in `dir`.
pub fn create_named_file<D: Disk>(
    fs: &mut FileSystem<D>,
    dir: FileFullName,
    name: &str,
) -> Result<FileFullName, FsError> {
    require_directory(dir)?;
    let file = fs.create_file(name)?;
    insert(fs, dir, name, file)?;
    Ok(file)
}

/// Creates a new sub-directory named `name`, entering it in `parent`.
pub fn create_directory<D: Disk>(
    fs: &mut FileSystem<D>,
    parent: FileFullName,
    name: &str,
) -> Result<FileFullName, FsError> {
    require_directory(parent)?;
    let dir = fs.create_directory_file(name)?;
    fs.write_file(dir, &encode_entries(&[]))?;
    fs.dir_rewritten(dir, Vec::new());
    insert(fs, parent, name, dir)?;
    Ok(dir)
}

/// Resolves a `/`-separated path of directory names from `start`.
pub fn resolve_path<D: Disk>(
    fs: &mut FileSystem<D>,
    start: FileFullName,
    path: &str,
) -> Result<FileFullName, FsError> {
    let mut current = start;
    for component in path.split('/').filter(|c| !c.is_empty()) {
        current = lookup(fs, current, component)?
            .ok_or_else(|| FsError::NameNotFound(component.to_string()))?;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, Trace};

    fn fresh_fs() -> FileSystem<DiskDrive> {
        let drive =
            DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
        FileSystem::format(drive).unwrap()
    }

    #[test]
    fn entry_encoding_round_trip() {
        let entries = vec![
            DirEntry {
                name: "a".into(),
                file: FileFullName::new(
                    Fv::new(SerialNumber::new(0x20, false), 1),
                    DiskAddress(100),
                ),
            },
            DirEntry {
                name: "longer-name.txt".into(),
                file: FileFullName::new(
                    Fv::new(SerialNumber::new(0x21, true), 2),
                    DiskAddress(200),
                ),
            },
        ];
        assert_eq!(parse_entries(&encode_entries(&entries)), entries);
        assert_eq!(parse_entries(&encode_entries(&[])), vec![]);
    }

    #[test]
    fn parse_tolerates_garbage_tail() {
        let entries = vec![DirEntry {
            name: "ok".into(),
            file: FileFullName::new(Fv::new(SerialNumber::new(0x20, false), 1), DiskAddress(5)),
        }];
        let mut bytes = encode_entries(&entries);
        // Replace the terminator with a nonsense length and garbage.
        let n = bytes.len();
        bytes[n - 2] = 0xFF;
        bytes[n - 1] = 0xFF;
        bytes.extend_from_slice(&[0xAB; 6]);
        let parsed = parse_entries(&bytes);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn root_dir_lists_the_well_known_files() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let entries = list(&mut fs, root).unwrap();
        let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["SysDir", "DiskDescriptor"]);
        // SysDir points at itself: the directory graph is already cyclic.
        assert_eq!(entries[0].file, root);
    }

    #[test]
    fn insert_lookup_remove() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = create_named_file(&mut fs, root, "memo.txt").unwrap();
        assert_eq!(lookup(&mut fs, root, "memo.txt").unwrap(), Some(f));
        // Case-insensitive, as on the Alto.
        assert_eq!(lookup(&mut fs, root, "MEMO.TXT").unwrap(), Some(f));
        assert_eq!(lookup(&mut fs, root, "other").unwrap(), None);
        assert_eq!(remove(&mut fs, root, "Memo.Txt").unwrap(), Some(f));
        assert_eq!(lookup(&mut fs, root, "memo.txt").unwrap(), None);
        assert_eq!(remove(&mut fs, root, "memo.txt").unwrap(), None);
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let a = fs.create_file("v1").unwrap();
        let b = fs.create_file("v2").unwrap();
        insert(&mut fs, root, "thing", a).unwrap();
        insert(&mut fs, root, "thing", b).unwrap();
        assert_eq!(lookup(&mut fs, root, "thing").unwrap(), Some(b));
        let thing_entries = list(&mut fs, root)
            .unwrap()
            .into_iter()
            .filter(|e| e.name == "thing")
            .count();
        assert_eq!(thing_entries, 1);
    }

    #[test]
    fn a_file_may_appear_in_many_directories() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let sub1 = create_directory(&mut fs, root, "one").unwrap();
        let sub2 = create_directory(&mut fs, root, "two").unwrap();
        let f = fs.create_file("shared").unwrap();
        insert(&mut fs, sub1, "shared", f).unwrap();
        insert(&mut fs, sub2, "alias", f).unwrap();
        assert_eq!(lookup(&mut fs, sub1, "shared").unwrap(), Some(f));
        assert_eq!(lookup(&mut fs, sub2, "alias").unwrap(), Some(f));
    }

    #[test]
    fn directory_graphs_may_contain_cycles() {
        // "it is possible to have a tree, or indeed an arbitrary directed
        // graph, of directories."
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let sub = create_directory(&mut fs, root, "sub").unwrap();
        insert(&mut fs, sub, "up", root).unwrap();
        let back = resolve_path(&mut fs, root, "sub/up/sub/up").unwrap();
        assert_eq!(back, root);
    }

    #[test]
    fn resolve_path_components() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let a = create_directory(&mut fs, root, "a").unwrap();
        let b = create_directory(&mut fs, a, "b").unwrap();
        let f = create_named_file(&mut fs, b, "deep.txt").unwrap();
        assert_eq!(resolve_path(&mut fs, root, "a/b/deep.txt").unwrap(), f);
        assert!(matches!(
            resolve_path(&mut fs, root, "a/missing/x"),
            Err(FsError::NameNotFound(_))
        ));
    }

    #[test]
    fn non_directory_is_rejected() {
        let mut fs = fresh_fs();
        let f = fs.create_file("plain").unwrap();
        assert!(matches!(list(&mut fs, f), Err(FsError::NotADirectory(_))));
        assert!(matches!(
            create_named_file(&mut fs, f, "x"),
            Err(FsError::NotADirectory(_))
        ));
    }

    #[test]
    fn many_entries_span_pages() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = fs.create_file("target").unwrap();
        for i in 0..100 {
            insert(&mut fs, root, &format!("file-{i:03}"), f).unwrap();
        }
        let entries = list(&mut fs, root).unwrap();
        assert_eq!(entries.len(), 102); // 100 + the two well-known entries
        assert_eq!(lookup(&mut fs, root, "file-099").unwrap(), Some(f));
        // The directory file itself is several pages long now.
        assert!(fs.file_length(root).unwrap() > 1024);
    }

    #[test]
    fn overlong_name_rejected() {
        let mut fs = fresh_fs();
        let root = fs.root_dir();
        let f = fs.create_file("x").unwrap();
        assert!(matches!(
            insert(&mut fs, root, &"n".repeat(40), f),
            Err(FsError::NameTooLong(40))
        ));
    }
}
