//! File and page names (§3.1, §3.2).
//!
//! A page's *absolute name* is `(FV, n)`: a two-word file identifier `F`
//! (the serial number), a version `V`, and a page number `n`. Its *hint
//! name* is a disk address. The *full name* is the pair; the name of page
//! `(FV, 0)` — the leader page — is also the name of the file.
//!
//! A subset of the file identifiers is reserved for directory files so the
//! Scavenger can identify all directories from labels alone (§3.4): bit 15
//! of the serial number's first word is the directory flag.

use alto_disk::{DiskAddress, Label};
use std::fmt;

/// A two-word file serial number.
///
/// Layout: word 0 = `directory flag (bit 15) | 0x4000 | number bits 16..29`;
/// word 1 = `number bits 0..15`. Bit 14 is always set so that word 0 of a
/// live file is never zero (a zero word would act as a wildcard in label
/// checks, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SerialNumber {
    words: [u16; 2],
}

/// The directory flag bit in word 0 of a serial number.
const DIRECTORY_FLAG: u16 = 0x8000;
/// The always-set marker bit in word 0 (keeps the word non-zero).
const LIVE_FLAG: u16 = 0x4000;

impl SerialNumber {
    /// Builds a serial number from a 30-bit file number and directory flag.
    ///
    /// # Panics
    ///
    /// Panics if `number` needs more than 30 bits.
    pub fn new(number: u32, directory: bool) -> SerialNumber {
        assert!(number < (1 << 30), "file number too large: {number}");
        let flag = if directory { DIRECTORY_FLAG } else { 0 };
        SerialNumber {
            words: [
                flag | LIVE_FLAG | ((number >> 16) as u16 & 0x3FFF),
                number as u16,
            ],
        }
    }

    /// Reconstructs a serial number from its two label words.
    pub fn from_words(words: [u16; 2]) -> SerialNumber {
        SerialNumber { words }
    }

    /// The two label words.
    pub fn words(self) -> [u16; 2] {
        self.words
    }

    /// The 30-bit file number.
    pub fn number(self) -> u32 {
        ((self.words[0] as u32 & 0x3FFF) << 16) | self.words[1] as u32
    }

    /// True if this serial is reserved for a directory file (§3.4).
    pub fn is_directory(self) -> bool {
        self.words[0] & DIRECTORY_FLAG != 0
    }

    /// True if the live marker bit is present (sanity check on labels
    /// recovered during scavenging).
    pub fn looks_live(self) -> bool {
        self.words[0] & LIVE_FLAG != 0
    }
}

impl fmt::Display for SerialNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_directory() {
            write!(f, "D{}", self.number())
        } else {
            write!(f, "S{}", self.number())
        }
    }
}

/// `FV`: a file identifier and version — the file part of an absolute name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fv {
    /// The file's serial number.
    pub serial: SerialNumber,
    /// The file's version (1 for all ordinarily created files).
    pub version: u16,
}

impl Fv {
    /// Creates an `FV` pair.
    pub fn new(serial: SerialNumber, version: u16) -> Fv {
        Fv { serial, version }
    }

    /// The label a page of this file must carry, with the given page
    /// number; length and links are wildcards (to be captured on check).
    pub fn check_label(self, page: u16) -> Label {
        Label {
            fid: self.serial.words(),
            version: self.version,
            page_number: page,
            length: 0,
            next: DiskAddress(0),
            prev: DiskAddress(0),
        }
    }

    /// Extracts the `FV` from a label.
    pub fn from_label(label: &Label) -> Fv {
        Fv {
            serial: SerialNumber::from_words(label.fid),
            version: label.version,
        }
    }
}

impl fmt::Display for Fv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}v{}", self.serial, self.version)
    }
}

/// The full name of a page: absolute name `(FV, n)` plus hint address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageName {
    /// File identifier and version.
    pub fv: Fv,
    /// Page number within the file (0 = leader page).
    pub page: u16,
    /// Hint: the disk address this page was last known to occupy.
    pub da: DiskAddress,
}

impl PageName {
    /// The full name of the page `page` of the file, with hint `da`.
    pub fn new(fv: Fv, page: u16, da: DiskAddress) -> PageName {
        PageName { fv, page, da }
    }
}

impl fmt::Display for PageName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}) @ {}", self.fv, self.page, self.da)
    }
}

/// The full name of a file: the full name of its leader page (§3.2 — "the
/// name of page (FV, 0) is also the name of the file").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileFullName {
    /// File identifier and version.
    pub fv: Fv,
    /// Hint: disk address of the leader page.
    pub leader_da: DiskAddress,
}

impl FileFullName {
    /// Creates a file full name.
    pub fn new(fv: Fv, leader_da: DiskAddress) -> FileFullName {
        FileFullName { fv, leader_da }
    }

    /// The full name of this file's page `n` with an unknown (nil) hint.
    pub fn page(self, n: u16) -> PageName {
        PageName::new(self.fv, n, DiskAddress::NIL)
    }

    /// The full name of the leader page.
    pub fn leader_page(self) -> PageName {
        PageName::new(self.fv, 0, self.leader_da)
    }

    /// True if this file is a directory (from its serial number).
    pub fn is_directory(self) -> bool {
        self.fv.serial.is_directory()
    }
}

impl fmt::Display for FileFullName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.fv, self.leader_da)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_round_trip() {
        for (n, d) in [
            (0u32, false),
            (1, true),
            (0x0001_2345, false),
            ((1 << 30) - 1, true),
        ] {
            let s = SerialNumber::new(n, d);
            assert_eq!(s.number(), n);
            assert_eq!(s.is_directory(), d);
            assert!(s.looks_live());
            assert_eq!(SerialNumber::from_words(s.words()), s);
        }
    }

    #[test]
    #[should_panic(expected = "file number too large")]
    fn serial_rejects_wide_numbers() {
        SerialNumber::new(1 << 30, false);
    }

    #[test]
    fn serial_words_never_zero_in_word0() {
        // Word 0 carries the live flag, so label checks on it are never
        // accidentally wildcarded.
        let s = SerialNumber::new(0, false);
        assert_ne!(s.words()[0], 0);
    }

    #[test]
    fn directory_flag_partitions_the_space() {
        let f = SerialNumber::new(77, false);
        let d = SerialNumber::new(77, true);
        assert_ne!(f, d);
        assert_eq!(f.number(), d.number());
        assert_eq!(f.to_string(), "S77");
        assert_eq!(d.to_string(), "D77");
    }

    #[test]
    fn check_label_wildcards_only_hints_and_length() {
        let fv = Fv::new(SerialNumber::new(5, false), 1);
        let l = fv.check_label(3);
        assert_eq!(l.fid, fv.serial.words());
        assert_eq!(l.version, 1);
        assert_eq!(l.page_number, 3);
        assert_eq!(l.length, 0);
        assert_eq!(l.next, DiskAddress(0));
        assert_eq!(l.prev, DiskAddress(0));
    }

    #[test]
    fn fv_from_label_round_trips() {
        let fv = Fv::new(SerialNumber::new(42, true), 3);
        let label = fv.check_label(0);
        assert_eq!(Fv::from_label(&label), fv);
    }

    #[test]
    fn file_full_name_pages() {
        let fv = Fv::new(SerialNumber::new(9, false), 1);
        let f = FileFullName::new(fv, DiskAddress(55));
        assert_eq!(f.leader_page().da, DiskAddress(55));
        assert_eq!(f.leader_page().page, 0);
        assert_eq!(f.page(4).page, 4);
        assert!(f.page(4).da.is_nil());
        assert!(!f.is_directory());
    }

    #[test]
    fn display_formats() {
        let fv = Fv::new(SerialNumber::new(9, false), 1);
        assert_eq!(fv.to_string(), "S9v1");
        let p = PageName::new(fv, 2, DiskAddress(7));
        assert_eq!(p.to_string(), "(S9v1, 2) @ DA[7]");
        let f = FileFullName::new(fv, DiskAddress(7));
        assert_eq!(f.to_string(), "S9v1 @ DA[7]");
    }
}
