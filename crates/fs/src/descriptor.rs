//! The disk descriptor (§3.3).
//!
//! "A disk contains a file called the disk descriptor with a standard name
//! and disk address. In it are: the allocation map (H); the disk shape (A);
//! the name of the root directory (H)." We implement the paper's *logical*
//! description (the "that's how we should have done it" version): the
//! descriptor file sits at a standard address and points to the root
//! directory.
//!
//! Well-known layout established at format time:
//!
//! | object                  | serial | leader page address |
//! |-------------------------|--------|---------------------|
//! | boot file (§4)          | S1     | page 1 fixed at DA 0 (leader allocated normally) |
//! | disk descriptor         | S2     | DA 1                |
//! | root directory `SysDir` | D3     | DA 2                |

use alto_disk::{DiskAddress, DiskGeometry};

use crate::alloc::BitMap;
use crate::errors::FsError;
use crate::names::{FileFullName, Fv, SerialNumber};

/// File number of the boot file.
pub const BOOT_FILE_NUMBER: u32 = 1;
/// File number of the disk descriptor.
pub const DESCRIPTOR_FILE_NUMBER: u32 = 2;
/// File number of the root directory.
pub const ROOT_DIR_FILE_NUMBER: u32 = 3;
/// First file number handed out for ordinary files.
pub const FIRST_DYNAMIC_FILE_NUMBER: u32 = 0x10;

/// The fixed disk address of the boot file's first data page (§4: "a disk
/// file whose first page is kept at a fixed location on the disk").
pub const BOOT_PAGE_DA: DiskAddress = DiskAddress(0);
/// The standard disk address of the descriptor file's leader page.
pub const DESCRIPTOR_LEADER_DA: DiskAddress = DiskAddress(1);
/// The standard disk address of the root directory's leader page.
pub const ROOT_DIR_LEADER_DA: DiskAddress = DiskAddress(2);

/// The standard leader name of the disk descriptor file.
pub const DESCRIPTOR_NAME: &str = "DiskDescriptor";
/// The standard leader name of the root directory.
pub const ROOT_DIR_NAME: &str = "SysDir";

/// Magic word identifying a descriptor data page.
const MAGIC: u16 = 0xA170;
/// Descriptor format version.
const VERSION: u16 = 1;

/// The `FV` of the disk descriptor file.
pub fn descriptor_fv() -> Fv {
    Fv::new(SerialNumber::new(DESCRIPTOR_FILE_NUMBER, false), 1)
}

/// The `FV` of the root directory.
pub fn root_dir_fv() -> Fv {
    Fv::new(SerialNumber::new(ROOT_DIR_FILE_NUMBER, true), 1)
}

/// The `FV` of the boot file.
pub fn boot_fv() -> Fv {
    Fv::new(SerialNumber::new(BOOT_FILE_NUMBER, false), 1)
}

/// In-memory disk descriptor.
///
/// The shape is absolute; the allocation map, free count and root-directory
/// address are hints, reconstructible by the Scavenger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskDescriptor {
    /// The disk shape (absolute).
    pub shape: DiskGeometry,
    /// Pack number this descriptor was written for.
    pub pack_number: u16,
    /// The allocation map (hint).
    pub bitmap: BitMap,
    /// The root directory's full name (hint: the DA part).
    pub root_dir: FileFullName,
    /// Next file number to assign (persisted so serials stay unique).
    pub next_file_number: u32,
    /// Rotating scan position for allocation locality (not persisted).
    pub rotor: DiskAddress,
}

impl DiskDescriptor {
    /// A fresh descriptor for a newly formatted pack (nothing allocated).
    pub fn fresh(shape: DiskGeometry, pack_number: u16) -> DiskDescriptor {
        DiskDescriptor {
            shape,
            pack_number,
            bitmap: BitMap::all_free(shape.sector_count()),
            root_dir: FileFullName::new(root_dir_fv(), ROOT_DIR_LEADER_DA),
            next_file_number: FIRST_DYNAMIC_FILE_NUMBER,
            rotor: DiskAddress(0),
        }
    }

    /// Assigns the next file number. Saturates at the top of the 30-bit
    /// serial space; the caller is responsible for rejecting an exhausted
    /// number before building a `SerialNumber` from it.
    pub fn assign_file_number(&mut self) -> u32 {
        let n = self.next_file_number;
        self.next_file_number = self.next_file_number.saturating_add(1).min(1 << 30);
        n
    }

    /// Serializes the descriptor to words (the descriptor file's data).
    pub fn encode(&self) -> Vec<u16> {
        let mut w = Vec::new();
        w.push(MAGIC);
        w.push(VERSION);
        w.extend_from_slice(&self.shape.encode());
        w.push(self.pack_number);
        w.extend_from_slice(&self.root_dir.fv.serial.words());
        w.push(self.root_dir.fv.version);
        w.push(self.root_dir.leader_da.0);
        w.push((self.next_file_number >> 16) as u16);
        w.push(self.next_file_number as u16);
        let map_words = self.bitmap.to_words();
        w.push(map_words.len() as u16);
        w.extend_from_slice(&map_words);
        w
    }

    /// Deserializes a descriptor from the descriptor file's data words.
    pub fn decode(words: &[u16]) -> Result<DiskDescriptor, FsError> {
        let mut r = words.iter().copied();
        let mut next = || {
            r.next()
                .ok_or(FsError::NotFormatted("descriptor truncated"))
        };
        if next()? != MAGIC {
            return Err(FsError::NotFormatted("bad descriptor magic"));
        }
        if next()? != VERSION {
            return Err(FsError::NotFormatted("unknown descriptor version"));
        }
        let shape_words = [next()?, next()?, next()?];
        let shape =
            DiskGeometry::decode(&shape_words).ok_or(FsError::NotFormatted("bad disk shape"))?;
        let pack_number = next()?;
        let root_serial = SerialNumber::from_words([next()?, next()?]);
        let root_version = next()?;
        let root_da = DiskAddress(next()?);
        let next_file_number = ((next()? as u32) << 16) | next()? as u32;
        if next_file_number > 1 << 30 {
            // A hostile descriptor page can claim a counter past the 30-bit
            // serial space; trust it no further than the space itself.
            return Err(FsError::NotFormatted("file number counter out of range"));
        }
        let map_len = next()? as usize;
        let map_words: Vec<u16> = (0..map_len).map(|_| next()).collect::<Result<_, _>>()?;
        let bitmap = BitMap::from_words(shape.sector_count(), &map_words);
        Ok(DiskDescriptor {
            shape,
            pack_number,
            bitmap,
            root_dir: FileFullName::new(Fv::new(root_serial, root_version), root_da),
            next_file_number,
            rotor: DiskAddress(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::DiskModel;

    #[test]
    fn fresh_descriptor() {
        let d = DiskDescriptor::fresh(DiskModel::Diablo31.geometry(), 7);
        assert_eq!(d.bitmap.free_count(), 4872);
        assert_eq!(d.root_dir.leader_da, ROOT_DIR_LEADER_DA);
        assert!(d.root_dir.fv.serial.is_directory());
        assert_eq!(d.next_file_number, FIRST_DYNAMIC_FILE_NUMBER);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut d = DiskDescriptor::fresh(DiskModel::Diablo31.geometry(), 7);
        d.bitmap.set_busy(DiskAddress(0));
        d.bitmap.set_busy(DiskAddress(4871));
        d.next_file_number = 0x12345;
        let words = d.encode();
        let back = DiskDescriptor::decode(&words).unwrap();
        assert_eq!(back.shape, d.shape);
        assert_eq!(back.pack_number, 7);
        assert_eq!(back.bitmap, d.bitmap);
        assert_eq!(back.root_dir, d.root_dir);
        assert_eq!(back.next_file_number, 0x12345);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            DiskDescriptor::decode(&[]),
            Err(FsError::NotFormatted(_))
        ));
        assert!(matches!(
            DiskDescriptor::decode(&[0x1234, 1]),
            Err(FsError::NotFormatted(_))
        ));
        let d = DiskDescriptor::fresh(DiskModel::Diablo31.geometry(), 1);
        let mut words = d.encode();
        words[1] = 99; // bad version
        assert!(matches!(
            DiskDescriptor::decode(&words),
            Err(FsError::NotFormatted("unknown descriptor version"))
        ));
        let mut words = d.encode();
        words.truncate(8);
        assert!(matches!(
            DiskDescriptor::decode(&words),
            Err(FsError::NotFormatted("descriptor truncated"))
        ));
    }

    #[test]
    fn file_number_assignment_is_sequential() {
        let mut d = DiskDescriptor::fresh(DiskModel::Diablo31.geometry(), 1);
        let a = d.assign_file_number();
        let b = d.assign_file_number();
        assert_eq!(b, a + 1);
        assert!(a >= FIRST_DYNAMIC_FILE_NUMBER);
    }

    #[test]
    fn well_known_fvs() {
        assert!(!descriptor_fv().serial.is_directory());
        assert!(root_dir_fv().serial.is_directory());
        assert!(!boot_fv().serial.is_directory());
        assert_eq!(descriptor_fv().serial.number(), DESCRIPTOR_FILE_NUMBER);
        assert_eq!(root_dir_fv().serial.number(), ROOT_DIR_FILE_NUMBER);
        assert_eq!(boot_fv().serial.number(), BOOT_FILE_NUMBER);
    }

    #[test]
    fn descriptor_fits_in_a_few_pages() {
        let d = DiskDescriptor::fresh(DiskModel::Diablo31.geometry(), 1);
        let words = d.encode();
        // 4872-bit map = 305 words + header: must fit in 2 data pages.
        assert!(
            words.len() <= 2 * 256,
            "descriptor is {} words",
            words.len()
        );
    }
}
