//! Alto dates: 32-bit second counts stored in leader pages (§3.2).
//!
//! The leader page records the dates of creation, last write and last read
//! as absolutes. The real Alto counted seconds from 1 January 1901; in the
//! simulation a date is the simulated clock reading in seconds, offset by
//! the same epoch constant so the values look like plausible Alto dates.

use alto_sim::SimTime;

/// Seconds between the Alto epoch (1 Jan 1901) and the simulation's zero,
/// chosen so a freshly booted simulation shows dates in 1979.
const SIM_EPOCH_OFFSET: u32 = 2_461_449_600; // 78 years of seconds

/// A 32-bit Alto date (seconds since 1 Jan 1901).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AltoDate(pub u32);

impl AltoDate {
    /// The date corresponding to a simulated instant.
    pub fn from_sim_time(t: SimTime) -> AltoDate {
        AltoDate(SIM_EPOCH_OFFSET.wrapping_add((t.as_nanos() / 1_000_000_000) as u32))
    }

    /// Encodes as two label/leader words, high word first.
    pub fn words(self) -> [u16; 2] {
        [(self.0 >> 16) as u16, self.0 as u16]
    }

    /// Decodes from two words, high word first.
    pub fn from_words(words: [u16; 2]) -> AltoDate {
        AltoDate(((words[0] as u32) << 16) | words[1] as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_round_trip() {
        for v in [0u32, 1, 0xFFFF, 0x1_0000, u32::MAX, SIM_EPOCH_OFFSET] {
            let d = AltoDate(v);
            assert_eq!(AltoDate::from_words(d.words()), d);
        }
    }

    #[test]
    fn from_sim_time_advances_with_the_clock() {
        let a = AltoDate::from_sim_time(SimTime::from_secs(10));
        let b = AltoDate::from_sim_time(SimTime::from_secs(75));
        assert_eq!(b.0 - a.0, 65);
    }

    #[test]
    fn epoch_is_in_1979() {
        // 1979 begins 78 years after 1901: 2,461,449,600 s (with leap days).
        let boot = AltoDate::from_sim_time(SimTime::ZERO);
        assert_eq!(boot.0, SIM_EPOCH_OFFSET);
    }

    #[test]
    fn sub_second_times_truncate() {
        let a = AltoDate::from_sim_time(SimTime::from_millis(999));
        let b = AltoDate::from_sim_time(SimTime::ZERO);
        assert_eq!(a, b);
    }
}
