//! Hostile-pack harness: structure-aware disk-image mutation (ROADMAP 5a).
//!
//! Every recovery path in this crate — the Scavenger's chain repair, the
//! §3.3 label re-verification, the §3.6 hint ladder — was originally only
//! exercised on images *this code wrote*. The paper's reliability claim
//! (§4.2) is stronger: because every sector is self-identifying, the file
//! system survives *arbitrary* damage. This module makes that claim
//! testable by generating adversarial images and asserting a contract over
//! what recovery does with them.
//!
//! A [`Case`] is a deterministic recipe: a base image (single drive or a
//! K=4 [`DriveArray`]), a population seed, and a list of [`Edit`]s applied
//! straight to the platter — label-field scribbles, cross-linked and
//! cyclic `next` chains, duplicated absolute names, leader/directory/
//! descriptor data smashes, truncations, damaged sectors and raw noise.
//! [`plan_edits`] derives such edits *structurally* (it reads the live
//! labels and aims at leaders, directories and chains rather than blind
//! offsets), and [`Case::to_text`]/[`Case::parse`] give every case a
//! stable, human-readable form for the regression corpus in
//! `crates/fs/tests/corpus/`.
//!
//! [`exercise`] then drives the full recovery stack against the mutant and
//! checks the contract:
//!
//! 1. the Scavenger terminates without error and the per-arm §3.3
//!    auditors observe no violation;
//! 2. every file the rebuilt directories reference is readable, and the
//!    allocator still works (create/write/read/delete probe);
//! 3. re-scavenging the emitted image is a **fixed point**: no repairs,
//!    no drops, no adoptions the second time around;
//! 4. surviving files serve the same bytes before and after the second
//!    scavenge, warm or cold.
//!
//! Anything else — a panic, a hang (caught by the simulated-time budget),
//! an audit violation, a non-idempotent repair — is a bug in the layer
//! under test, and its minimized case belongs in the corpus.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use alto_disk::{
    Auditor, Disk, DiskAddress, DiskDrive, DiskModel, DiskPack, DriveArray, Label, Placement,
    DATA_WORDS,
};
use alto_sim::{SimClock, SimTime, SplitMix64, Trace};

use crate::dir;
use crate::errors::FsError;
use crate::file::FileSystem;
use crate::names::FileFullName;
use crate::scavenge::{ScavengeReport, Scavenger};

/// Which valid image a case starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// One Diablo31 drive.
    Single,
    /// A K=4 range-placed [`DriveArray`] of Diablo31 arms.
    Array4,
}

impl Base {
    /// Number of arms (and therefore packs) in the base image.
    pub fn arms(self) -> usize {
        match self {
            Base::Single => 1,
            Base::Array4 => 4,
        }
    }
}

/// Which label word a field edit overwrites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelField {
    /// Serial-number word 0 (directory flag, live flag, number bits 16..29).
    Fid0,
    /// Serial-number word 1 (number bits 0..15).
    Fid1,
    /// The version word.
    Version,
    /// The page number within the file.
    Page,
    /// The data-length word.
    Length,
    /// The forward link.
    Next,
    /// The backward link.
    Prev,
}

impl LabelField {
    const ALL: [LabelField; 7] = [
        LabelField::Fid0,
        LabelField::Fid1,
        LabelField::Version,
        LabelField::Page,
        LabelField::Length,
        LabelField::Next,
        LabelField::Prev,
    ];

    fn name(self) -> &'static str {
        match self {
            LabelField::Fid0 => "fid0",
            LabelField::Fid1 => "fid1",
            LabelField::Version => "version",
            LabelField::Page => "page",
            LabelField::Length => "length",
            LabelField::Next => "next",
            LabelField::Prev => "prev",
        }
    }

    fn from_name(s: &str) -> Option<LabelField> {
        LabelField::ALL.into_iter().find(|f| f.name() == s)
    }
}

/// One primitive corruption, applied to an arm's pack before recovery runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Overwrite one label field.
    Field(LabelField, u16),
    /// Overwrite one data word: `(index, value)`.
    Data(u16, u16),
    /// Overwrite the whole label with the free label.
    Free,
    /// Make the sector a permanent hard error.
    Damage,
}

/// A corruption aimed at sector `da` (pack-local address) of arm `arm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edit {
    /// Which arm's pack to edit (0 on a single drive).
    pub arm: usize,
    /// Pack-local sector address.
    pub da: u16,
    /// What to do to it.
    pub op: EditOp,
}

/// A reproducible hostile-image case: base + population + corruptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The valid image the case starts from.
    pub base: Base,
    /// Seed for the deterministic file population.
    pub pop_seed: u64,
    /// The corruptions, applied in order.
    pub edits: Vec<Edit>,
}

impl Case {
    /// Serializes the case to the corpus text format (one directive per
    /// line; `#` starts a comment).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "base {}\n",
            match self.base {
                Base::Single => "single",
                Base::Array4 => "array4",
            }
        ));
        out.push_str(&format!("pop {}\n", self.pop_seed));
        for e in &self.edits {
            match e.op {
                EditOp::Field(f, v) => {
                    out.push_str(&format!("label {} {} {} {}\n", e.arm, e.da, f.name(), v));
                }
                EditOp::Data(i, v) => {
                    out.push_str(&format!("data {} {} {} {}\n", e.arm, e.da, i, v));
                }
                EditOp::Free => out.push_str(&format!("free {} {}\n", e.arm, e.da)),
                EditOp::Damage => out.push_str(&format!("damage {} {}\n", e.arm, e.da)),
            }
        }
        out
    }

    /// Parses the corpus text format produced by [`Case::to_text`].
    pub fn parse(text: &str) -> Result<Case, String> {
        let mut base = None;
        let mut pop_seed = 0u64;
        let mut edits = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut words = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
            let word = |w: Option<&str>, what: &str| w.ok_or_else(|| err(what)).map(str::to_owned);
            let num = |w: Option<&str>, what: &str| -> Result<u64, String> {
                word(w, what)?.parse().map_err(|_| err(what))
            };
            match words.next() {
                Some("base") => {
                    base = Some(match word(words.next(), "missing base kind")?.as_str() {
                        "single" => Base::Single,
                        "array4" => Base::Array4,
                        _ => return Err(err("unknown base kind")),
                    });
                }
                Some("pop") => pop_seed = num(words.next(), "bad pop seed")?,
                Some("label") => {
                    let arm = num(words.next(), "bad arm")? as usize;
                    let da = num(words.next(), "bad da")? as u16;
                    let field = LabelField::from_name(&word(words.next(), "missing field")?)
                        .ok_or_else(|| err("unknown label field"))?;
                    let value = num(words.next(), "bad value")? as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(field, value),
                    });
                }
                Some("data") => {
                    let arm = num(words.next(), "bad arm")? as usize;
                    let da = num(words.next(), "bad da")? as u16;
                    let index = num(words.next(), "bad index")? as u16;
                    let value = num(words.next(), "bad value")? as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Data(index, value),
                    });
                }
                Some("free") => {
                    let arm = num(words.next(), "bad arm")? as usize;
                    let da = num(words.next(), "bad da")? as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Free,
                    });
                }
                Some("damage") => {
                    let arm = num(words.next(), "bad arm")? as usize;
                    let da = num(words.next(), "bad da")? as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Damage,
                    });
                }
                Some(_) => return Err(err("unknown directive")),
                None => {}
            }
        }
        Ok(Case {
            base: base.ok_or("missing `base` directive")?,
            pop_seed,
            edits,
        })
    }
}

/// Applies one edit to a pack. Returns false if the address is out of
/// range for the pack (the edit is skipped — minimization may strand an
/// edit aimed at a sector the smaller replay no longer has).
pub fn apply_edit(pack: &mut DiskPack, edit: &Edit) -> bool {
    let da = DiskAddress(edit.da);
    match edit.op {
        EditOp::Damage => {
            if pack.sector(da).is_none() {
                return false;
            }
            pack.damage(da);
            true
        }
        EditOp::Free => match pack.sector_mut(da) {
            Some(sector) => {
                sector.label = Label::FREE.encode();
                true
            }
            None => false,
        },
        EditOp::Field(field, value) => match pack.sector_mut(da) {
            Some(sector) => {
                let mut label = sector.decoded_label();
                match field {
                    LabelField::Fid0 => label.fid[0] = value,
                    LabelField::Fid1 => label.fid[1] = value,
                    LabelField::Version => label.version = value,
                    LabelField::Page => label.page_number = value,
                    LabelField::Length => label.length = value,
                    LabelField::Next => label.next = DiskAddress(value),
                    LabelField::Prev => label.prev = DiskAddress(value),
                }
                sector.label = label.encode();
                true
            }
            None => false,
        },
        EditOp::Data(index, value) => match pack.sector_mut(da) {
            Some(sector) => {
                sector.data[index as usize % DATA_WORDS] = value;
                true
            }
            None => false,
        },
    }
}

// ---------------------------------------------------------------------
// Base-image builders.
// ---------------------------------------------------------------------

/// Deterministically populates a freshly formatted file system: a spread
/// of file sizes (empty through several pages), a subdirectory with
/// entries, an orphan (entry removed, file kept), deletions that punch
/// free holes, and an overwritten file so chains have seams.
fn populate<D: Disk>(fs: &mut FileSystem<D>, pop_seed: u64) -> Result<(), FsError> {
    let mut rng = SplitMix64::new(pop_seed ^ 0xA170_0001);
    let root = fs.root_dir();
    let mut files = Vec::new();
    for i in 0..10u32 {
        let name = format!("file{i:02}.dat");
        let f = dir::create_named_file(fs, root, &name)?;
        let len = match i {
            0 => 0,
            1 => 1,
            _ => rng.next_below(3500) as usize,
        };
        let fill = (i as u8).wrapping_mul(37).wrapping_add(pop_seed as u8);
        let bytes: Vec<u8> = (0..len)
            .map(|k| fill.wrapping_add((k % 251) as u8))
            .collect();
        fs.write_file(f, &bytes)?;
        files.push((name, f));
    }
    // A subdirectory with a couple of entries of its own.
    let sub = dir::create_directory(fs, root, "subdir")?;
    for i in 0..2u32 {
        let f = dir::create_named_file(fs, sub, &format!("nested{i}.dat"))?;
        fs.write_file(f, &vec![0x5A; 700 + 300 * i as usize])?;
    }
    // An orphan: the file stays, its name goes.
    let orphan = dir::create_named_file(fs, root, "orphan.dat")?;
    fs.write_file(orphan, b"an orphan file, adopted by the scavenger")?;
    dir::remove(fs, root, "orphan.dat")?;
    // Punch free holes so allocation patterns vary with the seed.
    for i in [3usize, 7] {
        let (name, f) = &files[i];
        fs.delete_file(*f)?;
        dir::remove(fs, root, name)?;
    }
    // Overwrite one file longer and one shorter: chains with seams.
    let (_, f) = &files[2];
    fs.write_file(*f, &vec![0xC3; 2600])?;
    let (_, f) = &files[5];
    fs.write_file(*f, &[0x3C; 150])?;
    Ok(())
}

/// Builds the populated single-drive base image, crashed (stale map).
pub fn build_single(pop_seed: u64) -> Result<DiskDrive, FsError> {
    let drive =
        DiskDrive::with_formatted_pack(SimClock::new(), Trace::new(), DiskModel::Diablo31, 1);
    let mut fs = FileSystem::format(drive)?;
    populate(&mut fs, pop_seed)?;
    Ok(fs.crash())
}

/// Builds the populated K=4 array base image, crashed (stale map).
pub fn build_array4(pop_seed: u64) -> Result<DriveArray, FsError> {
    let array = DriveArray::with_arms(
        4,
        Placement::Range,
        SimClock::new(),
        Trace::new(),
        DiskModel::Diablo31,
    );
    let mut fs = FileSystem::format(array)?;
    populate(&mut fs, pop_seed)?;
    Ok(fs.crash())
}

// ---------------------------------------------------------------------
// The structure-aware mutation planner.
// ---------------------------------------------------------------------

/// Live-label inventory of one pack, the planner's targeting data.
struct PackMap {
    /// `(local_da, label)` of every in-use sector.
    live: Vec<(u16, Label)>,
    /// Indices into `live` whose page number is 0 (leaders).
    leaders: Vec<usize>,
    /// Indices into `live` carrying the directory flag.
    dirs: Vec<usize>,
    /// Chains grouped by serial words: page -> index into `live`.
    chains: BTreeMap<[u16; 2], BTreeMap<u16, usize>>,
    sectors: u16,
}

impl PackMap {
    fn of(pack: &DiskPack) -> PackMap {
        let mut live = Vec::new();
        for (da, sector) in pack.iter() {
            let label = sector.decoded_label();
            if label.is_in_use() {
                live.push((da.0, label));
            }
        }
        let mut leaders = Vec::new();
        let mut dirs = Vec::new();
        let mut chains: BTreeMap<[u16; 2], BTreeMap<u16, usize>> = BTreeMap::new();
        for (i, (_, label)) in live.iter().enumerate() {
            if label.page_number == 0 {
                leaders.push(i);
            }
            if label.fid[0] & 0x8000 != 0 {
                dirs.push(i);
            }
            chains
                .entry(label.fid)
                .or_default()
                .insert(label.page_number, i);
        }
        PackMap {
            live,
            leaders,
            dirs,
            chains,
            sectors: pack.geometry().sector_count() as u16,
        }
    }

    fn pick<'a>(&'a self, rng: &mut SplitMix64, from: &[usize]) -> Option<&'a (u16, Label)> {
        if from.is_empty() {
            None
        } else {
            Some(&self.live[from[rng.next_below(from.len() as u64) as usize]])
        }
    }
}

/// A nasty value for a label field: boundary values, near-misses and
/// copies of other sectors' words are far more interesting than uniform
/// noise.
fn nasty_value(rng: &mut SplitMix64, map: &PackMap, near: u16) -> u16 {
    match rng.next_below(6) {
        0 => 0,
        1 => 1,
        2 => u16::MAX,
        3 => near.wrapping_add(1),
        4 => map
            .pick(rng, &(0..map.live.len()).collect::<Vec<_>>())
            .map_or_else(|| rng.next_u16(), |(da, _)| *da),
        _ => rng.next_u16(),
    }
}

/// Plans a batch of structure-aware corruptions against the base image.
/// `packs[k]` is arm `k`'s pack; `origins[k]` its global address origin
/// (labels on an array store global addresses, sector indices are local).
pub fn plan_edits(packs: &[&DiskPack], origins: &[u16], rng: &mut SplitMix64) -> Vec<Edit> {
    let maps: Vec<PackMap> = packs.iter().map(|p| PackMap::of(p)).collect();
    let mut edits = Vec::new();
    let count = 1 + rng.next_below(5);
    for _ in 0..count {
        let arm = rng.next_below(maps.len() as u64) as usize;
        let map = &maps[arm];
        let origin = origins.get(arm).copied().unwrap_or(0);
        let all: Vec<usize> = (0..map.live.len()).collect();
        match rng.next_below(12) {
            // Scribble a random field of a live label.
            0 => {
                if let Some(&(da, _)) = map.pick(rng, &all) {
                    let field = LabelField::ALL[rng.next_below(7) as usize];
                    let value = nasty_value(rng, map, da);
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(field, value),
                    });
                }
            }
            // Cross-link: point a chain at some other live sector.
            1 => {
                if let (Some(&(da, _)), Some(&(other, _))) =
                    (map.pick(rng, &all), map.pick(rng, &all))
                {
                    let field = if rng.chance(1, 2) {
                        LabelField::Next
                    } else {
                        LabelField::Prev
                    };
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(field, origin.wrapping_add(other)),
                    });
                }
            }
            // Cycle: point a page's next link back at an earlier page of
            // the same file (a two-sector loop when aimed at page n-1).
            2 => {
                let mut victims: Vec<(u16, u16)> = Vec::new();
                for pages in map.chains.values() {
                    for (&p, &i) in pages {
                        if p == 0 {
                            continue;
                        }
                        let back = rng.next_below(p as u64 + 1) as u16;
                        if let Some(&earlier) = pages.get(&back) {
                            victims.push((map.live[i].0, map.live[earlier].0));
                        }
                    }
                }
                if !victims.is_empty() {
                    let (da, earlier) = victims[rng.next_below(victims.len() as u64) as usize];
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(LabelField::Next, origin.wrapping_add(earlier)),
                    });
                }
            }
            // Duplicate an absolute name: copy one live label's identity
            // onto another sector.
            3 => {
                if let (Some(&(_, src)), Some(&(dst, _))) =
                    (map.pick(rng, &all), map.pick(rng, &all))
                {
                    edits.push(Edit {
                        arm,
                        da: dst,
                        op: EditOp::Field(LabelField::Fid0, src.fid[0]),
                    });
                    edits.push(Edit {
                        arm,
                        da: dst,
                        op: EditOp::Field(LabelField::Fid1, src.fid[1]),
                    });
                    edits.push(Edit {
                        arm,
                        da: dst,
                        op: EditOp::Field(LabelField::Page, src.page_number),
                    });
                }
            }
            // Smash a leader page's data (name length, name bytes, hints).
            4 => {
                if let Some(&(da, _)) = map.pick(rng, &map.leaders) {
                    let index = rng.next_below(32) as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Data(index, rng.next_u16()),
                    });
                }
            }
            // Smash directory entry words (lengths, serials, name bytes).
            5 => {
                if let Some(&(da, _)) = map.pick(rng, &map.dirs) {
                    let index = rng.next_below(48) as u16;
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Data(index, rng.next_u16()),
                    });
                }
            }
            // Smash the descriptor/bitmap region (arm 0 holds DA 1..3).
            6 => {
                let da = 1 + rng.next_below(3) as u16;
                edits.push(Edit {
                    arm: 0,
                    da,
                    op: EditOp::Data(rng.next_below(64) as u16, rng.next_u16()),
                });
            }
            // Truncated pack: free a run of sectors mid-platter.
            7 => {
                let start = rng.next_below(map.sectors as u64) as u16;
                let run = 8 + rng.next_below(56) as u16;
                for k in 0..run {
                    let da = start.saturating_add(k);
                    if da >= map.sectors {
                        break;
                    }
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Free,
                    });
                }
            }
            // A permanently unreadable sector.
            8 => {
                if let Some(&(da, _)) = map.pick(rng, &all) {
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Damage,
                    });
                }
            }
            // Length bomb: a live page claiming more than a sector holds.
            9 => {
                if let Some(&(da, _)) = map.pick(rng, &all) {
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(LabelField::Length, 0x8000 | rng.next_u16()),
                    });
                }
            }
            // Version scribble mid-chain (incarnation mixing).
            10 => {
                if let Some(&(da, _)) = map.pick(rng, &all) {
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(LabelField::Version, rng.next_u16()),
                    });
                }
            }
            // Raw noise: any sector, any word.
            _ => {
                let da = rng.next_below(map.sectors as u64) as u16;
                if rng.chance(1, 2) {
                    let field = LabelField::ALL[rng.next_below(7) as usize];
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Field(field, rng.next_u16()),
                    });
                } else {
                    edits.push(Edit {
                        arm,
                        da,
                        op: EditOp::Data(rng.next_below(DATA_WORDS as u64) as u16, rng.next_u16()),
                    });
                }
            }
        }
    }
    edits
}

// ---------------------------------------------------------------------
// The exerciser.
// ---------------------------------------------------------------------

/// A file the rebuilt directories reference, with its post-recovery bytes.
#[derive(Debug, Clone)]
pub struct Survivor {
    /// Path from the root, `/`-joined.
    pub path: String,
    /// The file's full name.
    pub file: FileFullName,
    /// True if the entry sits in the root directory (service-openable by
    /// bare name).
    pub in_root: bool,
    /// The bytes `read_file` returned after the first scavenge; `None` if
    /// the file was too large to keep in memory (its digest still counts).
    pub bytes: Option<Vec<u8>>,
}

/// What a clean exercise run observed, for reporting.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The first (repairing) scavenge report.
    pub first: ScavengeReport,
    /// The second (fixed-point) scavenge report.
    pub second: ScavengeReport,
    /// Files read and digest-compared across the two scavenges.
    pub files_checked: usize,
}

/// Simulated-time ceiling for a whole exercise run: a scavenge is about a
/// minute; anything past this is a runaway loop doing disk ops.
const SIM_BUDGET_SECS: u64 = 3600;
/// Caps on the directory walk, so a hostile graph can't balloon the run.
const MAX_DIRS: usize = 64;
const MAX_ENTRIES: usize = 1024;
/// Per-file byte cap for stored survivor bytes (hostile labels can inflate
/// a file to the whole pack; the digest still covers it).
const MAX_KEEP_BYTES: usize = 256 * 1024;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Identity of a walked file for cross-scavenge comparison.
type WalkKey = (String, [u16; 2], u16);

/// Walks every directory reachable from the root (bounded, cycle-safe) and
/// reads every referenced file. Directories and the descriptor file are
/// digested as *structure* (they legitimately change across scavenges);
/// ordinary files must serve identical bytes forever after.
fn walk_files<D: Disk>(
    fs: &mut FileSystem<D>,
    keep_bytes: bool,
) -> Result<(BTreeMap<WalkKey, u64>, Vec<Survivor>), String> {
    let root = fs.root_dir();
    let mut digests = BTreeMap::new();
    let mut survivors = Vec::new();
    let mut queue = VecDeque::new();
    let mut seen = BTreeSet::new();
    queue.push_back((String::new(), root));
    seen.insert(root.fv);
    let mut dirs = 0usize;
    let mut entries_seen = 0usize;
    while let Some((path, dir_file)) = queue.pop_front() {
        dirs += 1;
        if dirs > MAX_DIRS {
            return Err("directory graph exceeds walk budget after scavenge".into());
        }
        let bytes = fs
            .read_file(dir_file)
            .map_err(|e| format!("post-scavenge directory {path:?} unreadable: {e}"))?;
        for entry in dir::parse_entries(&bytes) {
            entries_seen += 1;
            if entries_seen > MAX_ENTRIES {
                return Err("directory entries exceed walk budget after scavenge".into());
            }
            let sub_path = if path.is_empty() {
                entry.name.clone()
            } else {
                format!("{path}/{}", entry.name)
            };
            if entry.file.is_directory() {
                if seen.insert(entry.file.fv) {
                    queue.push_back((sub_path, entry.file));
                }
                continue;
            }
            // The descriptor is rebuilt (and its content refreshed) by
            // every scavenge; its stability is covered by the fixed-point
            // counters, not byte digests.
            if entry.file.fv == crate::descriptor::descriptor_fv() {
                continue;
            }
            let data = fs.read_file(entry.file).map_err(|e| {
                format!(
                    "post-scavenge file {sub_path:?} ({}) unreadable: {e}",
                    entry.file
                )
            })?;
            let key = (
                sub_path.clone(),
                entry.file.fv.serial.words(),
                entry.file.fv.version,
            );
            digests.insert(key, fnv64(&data));
            if keep_bytes {
                survivors.push(Survivor {
                    path: sub_path,
                    file: entry.file,
                    in_root: path.is_empty(),
                    bytes: (data.len() <= MAX_KEEP_BYTES).then_some(data),
                });
            }
        }
    }
    Ok((digests, survivors))
}

/// Post-scavenge allocator probe: the rebuilt system must still create,
/// write, read and delete files (or fail *cleanly* when the hostile image
/// exhausted a resource).
fn probe_allocator<D: Disk>(fs: &mut FileSystem<D>) -> Result<(), String> {
    let root = fs.root_dir();
    let mut name = None;
    for k in 0..8u32 {
        let candidate = format!("hostile.probe.{k}");
        match dir::lookup(fs, root, &candidate) {
            Ok(None) => {
                name = Some(candidate);
                break;
            }
            Ok(Some(_)) => {}
            Err(e) => return Err(format!("probe lookup failed: {e}")),
        }
    }
    let Some(name) = name else {
        return Ok(()); // pathological namespace; nothing to probe
    };
    let file = match dir::create_named_file(fs, root, &name) {
        Ok(f) => f,
        // Clean exhaustion is an acceptable recovery outcome.
        Err(FsError::DiskFull | FsError::SerialsExhausted) => return Ok(()),
        Err(e) => return Err(format!("probe create failed uncleanly: {e}")),
    };
    let payload: Vec<u8> = (0..1200u32).map(|i| (i % 253) as u8).collect();
    if let Err(e) = fs.write_file(file, &payload) {
        if matches!(e, FsError::DiskFull) {
            // Roll back what exists so the fixed-point pass is unaffected.
            // lint: allow(error-path-discard) — best-effort rollback of the
            // probe file on a full disk; a leftover probe is tolerated by
            // the fixed-point pass, and the probe's verdict is DiskFull
            let _ = fs.delete_file(file);
            let _ = dir::remove(fs, root, &name);
            return Ok(());
        }
        return Err(format!("probe write failed: {e}"));
    }
    match fs.read_file(file) {
        Ok(back) if back == payload => {}
        Ok(_) => return Err("probe read returned different bytes".into()),
        Err(e) => return Err(format!("probe read failed: {e}")),
    }
    fs.delete_file(file)
        .map_err(|e| format!("probe delete failed: {e}"))?;
    dir::remove(fs, root, &name).map_err(|e| format!("probe entry removal failed: {e}"))?;
    Ok(())
}

fn check_auditors(auditors: &[Auditor], when: &str) -> Result<(), String> {
    for (k, a) in auditors.iter().enumerate() {
        let violations = a.violations();
        if let Some(v) = violations.first() {
            return Err(format!(
                "arm {k} audit rejected the {when} scavenge ({} violations; first: {v:?})",
                violations.len()
            ));
        }
    }
    Ok(())
}

/// Runs the full recovery contract against a (possibly corrupt) disk.
///
/// `auditors` are per-arm §3.3 shadow-model handles, already enabled on
/// the disk. `service` is an extension hook run between the two scavenges
/// with the mounted system and the surviving files — `crates/core`'s
/// `FsPageService` consistency check plugs in here (this crate cannot
/// depend on it); pass [`no_service`] when that layer is not under test.
///
/// Returns a violation description, the clean [`Outcome`], or `Ok(None)`
/// for the one damage recovery cannot route around: the descriptor
/// leader's *fixed* disk address (§3.3) physically unreadable. Every other
/// structure is found by self-identification and can be rebuilt elsewhere;
/// that one sector is the pack's root of trust, and the contract for
/// losing it is a clean error, not a repair.
pub fn exercise<D, F>(
    mut disk: D,
    auditors: &[Auditor],
    mut service: F,
) -> Result<Option<Outcome>, String>
where
    D: Disk,
    F: FnMut(&mut FileSystem<D>, &[Survivor]) -> Result<(), String>,
{
    let t0 = disk.clock().now();
    let budget = |fs: &FileSystem<D>, what: &str| -> Result<(), String> {
        if fs.disk().clock().now() - t0 > SimTime::from_secs(SIM_BUDGET_SECS) {
            Err(format!("simulated-time budget exceeded during {what}"))
        } else {
            Ok(())
        }
    };

    // Probe the descriptor leader's fixed sector up front: if the medium
    // itself cannot serve it, the only acceptable outcome below is a clean
    // scavenge error.
    let desc_dead =
        crate::page::read_raw_batch(&mut disk, &[crate::descriptor::DESCRIPTOR_LEADER_DA])
            .pop()
            .is_some_and(|r| r.is_err());

    // 1. The repairing scavenge: must terminate cleanly and audit-clean.
    let (mut fs, first) = match Scavenger::rebuild(disk) {
        Ok(ok) => ok,
        Err(e) if desc_dead => {
            // Clean refusal of an unrecoverable pack — accepted.
            let _ = e;
            return Ok(None);
        }
        Err(e) => return Err(format!("first scavenge failed: {e}")),
    };
    check_auditors(auditors, "first")?;
    budget(&fs, "the first scavenge")?;

    // 2. Every referenced file is readable; the allocator still works.
    let (digests1, survivors) = walk_files(&mut fs, true)?;
    service(&mut fs, &survivors)?;
    probe_allocator(&mut fs)?;
    budget(&fs, "the survivor walk")?;

    // 3. Re-scavenge: the emitted image must be a fixed point.
    let disk = fs
        .unmount()
        .map_err(|e| format!("unmount after first scavenge failed: {e}"))?;
    let (mut fs, second) =
        Scavenger::rebuild(disk).map_err(|e| format!("second scavenge failed: {e}"))?;
    check_auditors(auditors, "second")?;
    let repairs = [
        ("duplicate_pages_freed", second.duplicate_pages_freed),
        ("headless_pages_freed", second.headless_pages_freed),
        ("truncated_pages_freed", second.truncated_pages_freed),
        ("links_repaired", second.links_repaired),
        ("lengths_normalized", second.lengths_normalized),
        ("entries_fixed", second.entries_fixed),
        ("entries_dropped", second.entries_dropped),
        ("orphans_adopted", second.orphans_adopted),
    ];
    for (what, n) in repairs {
        if n != 0 {
            return Err(format!(
                "not a fixed point: second scavenge reports {what} = {n}"
            ));
        }
    }

    // 4. Served bytes are stable across the scavenge, cold then warm.
    let (digests2, _) = walk_files(&mut fs, false)?;
    if digests1 != digests2 {
        let diff: Vec<&WalkKey> = digests1
            .keys()
            .chain(digests2.keys())
            .filter(|k| digests1.get(*k) != digests2.get(*k))
            .collect();
        return Err(format!(
            "file bytes changed across scavenge: {} files differ (first: {:?})",
            diff.len(),
            diff.first()
        ));
    }
    let (digests3, _) = walk_files(&mut fs, false)?;
    if digests2 != digests3 {
        return Err("warm re-read returned different bytes than the cold read".into());
    }
    budget(&fs, "the fixed-point verification")?;

    Ok(Some(Outcome {
        first,
        second,
        files_checked: digests1.len(),
    }))
}

/// The no-op service hook for [`exercise`].
pub fn no_service<D: Disk>(_fs: &mut FileSystem<D>, _survivors: &[Survivor]) -> Result<(), String> {
    Ok(())
}

/// Builds a case's base image, applies its edits, and exercises the
/// recovery contract with per-arm auditors attached, using the no-op
/// service hook. Pass real hooks with [`run_case_with`].
pub fn run_case(case: &Case) -> Result<Option<Outcome>, String> {
    run_case_with(case, no_service, no_service)
}

/// [`run_case`] with explicit service hooks for each base kind (the two
/// disk types give the hooks different concrete `FileSystem` parameters).
/// `Ok(None)` is [`exercise`]'s accepted clean refusal (descriptor sector
/// physically dead).
pub fn run_case_with<FS, FA>(
    case: &Case,
    single_hook: FS,
    array_hook: FA,
) -> Result<Option<Outcome>, String>
where
    FS: FnMut(&mut FileSystem<DiskDrive>, &[Survivor]) -> Result<(), String>,
    FA: FnMut(&mut FileSystem<DriveArray>, &[Survivor]) -> Result<(), String>,
{
    match case.base {
        Base::Single => {
            let mut drive =
                build_single(case.pop_seed).map_err(|e| format!("base image build failed: {e}"))?;
            if let Some(pack) = drive.pack_mut() {
                for e in &case.edits {
                    if e.arm == 0 {
                        apply_edit(pack, e);
                    }
                }
            }
            let auditors = vec![drive.enable_audit()];
            exercise(drive, &auditors, single_hook)
        }
        Base::Array4 => {
            let mut array =
                build_array4(case.pop_seed).map_err(|e| format!("base image build failed: {e}"))?;
            for e in &case.edits {
                if e.arm < 4 {
                    if let Some(pack) = array.arm_mut(e.arm).pack_mut() {
                        apply_edit(pack, e);
                    }
                }
            }
            let auditors: Vec<Auditor> = (0..4).map(|k| array.arm_mut(k).enable_audit()).collect();
            exercise(array, &auditors, array_hook)
        }
    }
}

/// Derives the deterministic case for one sweep seed: base choice,
/// population, and a structure-aware edit plan read off the built image.
pub fn random_case(seed: u64) -> Result<Case, String> {
    let mut rng = SplitMix64::new(seed);
    let base = if rng.chance(1, 4) {
        Base::Array4
    } else {
        Base::Single
    };
    let pop_seed = rng.next_below(1 << 20);
    let edits = match base {
        Base::Single => {
            let drive =
                build_single(pop_seed).map_err(|e| format!("base image build failed: {e}"))?;
            let pack = drive.pack().ok_or("base drive lost its pack")?;
            plan_edits(&[pack], &[0], &mut rng)
        }
        Base::Array4 => {
            let array =
                build_array4(pop_seed).map_err(|e| format!("base image build failed: {e}"))?;
            let packs: Vec<&DiskPack> = (0..4).filter_map(|k| array.arm(k).pack()).collect();
            let origins: Vec<u16> = (0..4)
                .map(|k| array.arm_origin(k).map_or(0, |d| d.0))
                .collect();
            plan_edits(&packs, &origins, &mut rng)
        }
    };
    Ok(Case {
        base,
        pop_seed,
        edits,
    })
}
