//! The Alto file system (Lampson & Sproull, SOSP 1979, §3).
//!
//! Long-term storage is organized into **files**, each a sequence of
//! fixed-size **pages**; every page is one disk sector whose label carries
//! the page's *absolute name* — file identifier, version, and page number —
//! plus *hint* links to its neighbours. Because every page is
//! self-identifying, the entire state of the file system can be rebuilt
//! from a scan of the labels: that is the **Scavenger** (§3.5), and its
//! requirements govern much of the design.
//!
//! The crate exposes the system at every level the paper does ("we try as
//! far as possible to make the small components accessible to the user as
//! well as the large ones", §1):
//!
//! * pages — [`FileSystem::allocate_page`], [`FileSystem::free_page`],
//!   [`FileSystem::read_page`], [`FileSystem::write_page`];
//! * files — create/extend/truncate/delete, leader pages with recoverable
//!   leader names ([`leader::LeaderPage`]);
//! * directories — ordinary files holding (string, full name) pairs,
//!   forming an arbitrary directed graph ([`dir`]);
//! * hints — the five-step recovery ladder of §3.6 ([`hints`]), and the
//!   in-core hint cache that makes the same discipline the primary
//!   performance mechanism ([`cache`]);
//! * scavenging — full reconstruction of hints from absolutes
//!   ([`scavenge`]), plus the "more elaborate scavenger" that permutes
//!   pages in place so files become consecutive ([`compact`]).
//!
//! Everything is generic over [`alto_disk::Disk`], so a non-standard disk
//! implementation slots under the standard file-system package, exactly as
//! §5.2 describes.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod cache;
pub mod compact;
pub mod dates;
pub mod descriptor;
pub mod dir;
pub mod errors;
pub mod file;
pub mod hints;
pub mod hostile;
pub mod journal;
pub mod leader;
pub mod names;
pub mod page;
pub mod pool;
pub mod scavenge;

pub use cache::CacheStats;
pub use dates::AltoDate;
pub use descriptor::DiskDescriptor;
pub use errors::FsError;
pub use file::{FileSystem, FsStats};
pub use hints::{HintOutcome, HintStats, PageHints};
pub use leader::LeaderPage;
pub use names::{FileFullName, Fv, PageName, SerialNumber};
pub use scavenge::{ScavengeReport, Scavenger};
