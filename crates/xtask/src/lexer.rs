//! A minimal, dependency-free Rust source scanner.
//!
//! The lint pass needs to match textual patterns (`.do_op(`, `.unwrap()`, ...)
//! without being fooled by occurrences inside comments, string literals, or
//! char literals.  A full parser is overkill — and the workspace deliberately
//! takes no external dependencies — so this module implements a small state
//! machine that walks a source file once and produces, per line:
//!
//! * `code`: the line text with comment bodies and string/char-literal
//!   contents blanked out (replaced by spaces), so downstream substring
//!   matching only ever sees real code tokens, and
//! * any `// lint: allow(<rule>) — <reason>` annotations found in comments.
//!
//! The scanner understands line comments, nested block comments, regular and
//! raw strings (`r"..."`, `r#"..."#`, any hash depth), byte strings, and char
//! literals including lifetimes (`'a` is not a char literal).

/// One `// lint: allow(rule) — reason` annotation found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// 1-based line the annotation comment appears on.
    pub line: usize,
    /// The rule id inside `allow(...)`.
    pub rule: String,
    /// Free-text justification following the rule id. The lint pass rejects
    /// annotations with an empty reason: an escape hatch must say why.
    pub reason: String,
}

/// One source line after scanning.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// Line text with comments and literal contents blanked to spaces.
    pub code: String,
}

/// A scanned source file: blanked code lines plus extracted annotations.
#[derive(Debug, Clone, Default)]
pub struct Scanned {
    pub lines: Vec<Line>,
    pub annotations: Vec<Annotation>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside `"..."` or `b"..."`.
    Str,
    /// Inside `r##"..."##` with the given hash count.
    RawStr(u32),
    /// Inside `'...'`.
    Char,
}

/// Scan a whole source file.
pub fn scan(source: &str) -> Scanned {
    let mut out = Scanned::default();
    let mut mode = Mode::Code;
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let (code, comment, next) = scan_line(raw, mode);
        mode = next;
        if let Some(ann) = parse_annotation(&comment, number) {
            out.annotations.push(ann);
        }
        out.lines.push(Line { number, code });
    }
    out
}

/// Scan one line starting in `mode`. Returns the blanked code text, the
/// concatenated comment text seen on the line, and the mode the next line
/// starts in.
fn scan_line(raw: &str, start: Mode) -> (String, String, Mode) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut mode = start;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    // Line comment: rest of the line is comment text.
                    comment.extend(&chars[i..]);
                    while code.len() < raw.len() {
                        code.push(' ');
                    }
                    break;
                }
                '/' if next == Some('*') => {
                    mode = Mode::Block(1);
                    code.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    code.push('"');
                    i += 1;
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." or r#"..."#. Look ahead to
                    // count hashes and require an opening quote, otherwise it
                    // is just an identifier starting with `r`.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') && !prev_is_ident(&code) {
                        mode = Mode::RawStr(hashes);
                        for _ in i..=j {
                            code.push(' ');
                        }
                        code.pop();
                        code.push('"');
                        i = j + 1;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                'b' if next == Some('"') => {
                    mode = Mode::Str;
                    code.push_str(" \"");
                    i += 2;
                }
                '\'' => {
                    // Distinguish char literals from lifetimes: a lifetime is
                    // `'ident` not followed by a closing quote.
                    if is_char_literal(&chars, i) {
                        mode = Mode::Char;
                        code.push('\'');
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    comment.push_str("  ");
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    comment.push_str("  ");
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    code.push_str("  ");
                    i += 2;
                }
                '"' => {
                    mode = Mode::Code;
                    code.push('"');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && raw_str_closes(&chars, i, hashes) {
                    mode = Mode::Code;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    code.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    mode = Mode::Code;
                    code.push('\'');
                    i += 1;
                }
                _ => {
                    code.push(' ');
                    i += 1;
                }
            },
        }
    }
    // Unterminated string/char at end of line: plain strings and chars do not
    // span lines (other than via `\` continuations, which are rare enough to
    // treat as terminated — blanking the next line as code is the safe
    // direction for a linter only when it does not *hide* code, so we reset).
    if matches!(mode, Mode::Str | Mode::Char) {
        mode = Mode::Code;
    }
    (code, comment, mode)
}

/// True if `chars[i] == '\''` starts a char literal rather than a lifetime.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(&c) => {
            if chars.get(i + 2) == Some(&'\'') {
                true
            } else {
                // `'static`, `'a,` etc: identifier char then no quote.
                !(c.is_alphanumeric() || c == '_')
            }
        }
    }
}

/// True if the raw string closing delimiter (`"` + `hashes` `#`s) starts at i.
fn raw_str_closes(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + 1 + k) == Some(&'#'))
}

/// True if the blanked code so far ends in an identifier character, meaning a
/// following `r"` is part of an identifier like `for_r"..."` (impossible) —
/// practically this keeps identifiers ending in `r` (e.g. `var`) from eating
/// a `#` attribute that follows them.
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Parse `lint: allow(<rule>) — <reason>` (or `- <reason>`) out of a comment.
fn parse_annotation(comment: &str, line: usize) -> Option<Annotation> {
    let at = comment.find("lint: allow(")?;
    let rest = &comment[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    if rule.is_empty() {
        return None;
    }
    let mut reason = rest[close + 1..].trim();
    // Accept an em-dash, double hyphen, or single hyphen separator.
    for sep in ["—", "--", "-", ":"] {
        if let Some(stripped) = reason.strip_prefix(sep) {
            reason = stripped.trim();
            break;
        }
    }
    Some(Annotation {
        line,
        rule,
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_line_comments() {
        let s = scan("let x = 1; // .do_op( in a comment\n");
        assert!(!s.lines[0].code.contains(".do_op("));
        assert!(s.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn blanks_string_contents() {
        let s = scan("let p = \".do_op(\";\nlet q = r#\".do_batch(\"#;\n");
        assert!(!s.lines[0].code.contains(".do_op("));
        assert!(!s.lines[1].code.contains(".do_batch("));
    }

    #[test]
    fn blanks_nested_block_comments() {
        let s = scan("a /* x /* y */ .do_op( */ b\nc");
        assert!(!s.lines[0].code.contains(".do_op("));
        assert!(s.lines[0].code.starts_with('a'));
        assert!(s.lines[0].code.trim_end().ends_with('b'));
        assert_eq!(s.lines[1].code, "c");
    }

    #[test]
    fn block_comment_spans_lines() {
        let s = scan("/* start\n.do_op(\nend */ let y = 2;");
        assert!(!s.lines[1].code.contains(".do_op("));
        assert!(s.lines[2].code.contains("let y = 2;"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(s.lines[0].code.contains("str"));
    }

    #[test]
    fn char_literal_contents_blanked() {
        let s = scan("let c = '\"'; let d = 1; // tail");
        assert!(s.lines[0].code.contains("let d = 1;"));
    }

    #[test]
    fn parses_annotations() {
        let s = scan("x(); // lint: allow(clock-discipline) — retry backoff burns a revolution\n");
        assert_eq!(s.annotations.len(), 1);
        let a = &s.annotations[0];
        assert_eq!(a.rule, "clock-discipline");
        assert_eq!(a.reason, "retry backoff burns a revolution");
        assert_eq!(a.line, 1);
    }

    #[test]
    fn annotation_requires_rule() {
        let s = scan("// lint: allow() — nope\n");
        assert!(s.annotations.is_empty());
    }
}
