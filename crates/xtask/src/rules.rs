//! The §3.3 label-discipline rules.
//!
//! Each rule is a textual-but-token-aware check over the blanked source
//! produced by [`crate::lexer`]. The rules deliberately enforce *repo
//! conventions* that rustc/clippy cannot express:
//!
//! | id                 | invariant                                              |
//! |--------------------|--------------------------------------------------------|
//! | `raw-disk-op`      | sector ops reach the disk only via `fs::page` wrappers |
//! | `hint-reverify`    | hint-cache reads are re-verified in the same function  |
//! | `diskerror-unwrap` | no `unwrap`/`expect` on fallible paths in fs/streams   |
//! | `clock-discipline` | only `crates/disk`/`crates/sim` mutate the `SimClock`  |
//! | `stale-allow`      | every `lint: allow` annotation suppresses something    |
//!
//! Escape hatch: `// lint: allow(<rule>) — <reason>`. The annotation covers
//! the first non-blank code line at or below it, must carry a reason, and is
//! itself checked: an annotation that suppresses nothing is a `stale-allow`
//! violation, so the escape hatches cannot rot.

use std::collections::HashSet;
use std::fmt;

use crate::model::SourceFile;

pub const RULE_IDS: [&str; 5] = [
    "raw-disk-op",
    "hint-reverify",
    "diskerror-unwrap",
    "clock-discipline",
    "stale-allow",
];

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// One suppressed finding: an allow annotation that matched a violation.
#[derive(Debug, Clone)]
pub struct Allowed {
    pub rule: String,
    pub path: String,
    pub line: usize,
    pub reason: String,
}

impl fmt::Display for Allowed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] allowed — {}",
            self.path, self.line, self.rule, self.reason
        )
    }
}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub allowed: Vec<Allowed>,
    pub files_checked: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint a set of scanned files and produce a report.
pub fn lint_files(files: &[SourceFile]) -> Report {
    let mut report = Report {
        files_checked: files.len(),
        ..Report::default()
    };
    for file in files {
        lint_file(file, &mut report);
    }
    report
}

fn lint_file(file: &SourceFile, report: &mut Report) {
    // The linter's own sources document the annotation grammar in doc
    // comments; those are not escape hatches and must not be parsed as such.
    if file.crate_dir() == "crates/xtask" {
        return;
    }
    let mut raw = Vec::new();
    raw_disk_op(file, &mut raw);
    hint_reverify(file, &mut raw);
    diskerror_unwrap(file, &mut raw);
    clock_discipline(file, &mut raw);
    apply_allows(file, raw, &RULE_IDS, true, report);
}

/// Apply allow annotations for the rules in `owned` to one file's raw
/// violations, then flag stale annotations. An annotation at line A covers
/// the first line >= A holding non-blank code (a trailing comment covers its
/// own line). Each pass (lint, analyze) only stale-checks the annotations it
/// owns; `check_unknown` is set by the base pass so an annotation naming no
/// rule at all is reported exactly once.
pub(crate) fn apply_allows(
    file: &SourceFile,
    raw: Vec<Violation>,
    owned: &[&str],
    check_unknown: bool,
    report: &mut Report,
) {
    let mut used: HashSet<usize> = HashSet::new();
    for v in raw {
        let covering = file.scanned.annotations.iter().find(|a| {
            a.rule == v.rule && a.line <= v.line && covered_line(file, a.line) == Some(v.line)
        });
        match covering {
            Some(a) if !a.reason.is_empty() => {
                used.insert(a.line);
                report.allowed.push(Allowed {
                    rule: a.rule.clone(),
                    path: v.path.clone(),
                    line: v.line,
                    reason: a.reason.clone(),
                });
            }
            Some(a) => {
                used.insert(a.line);
                report.violations.push(Violation {
                    rule: v.rule,
                    path: v.path.clone(),
                    line: v.line,
                    message: format!(
                        "{} (the `lint: allow` on line {} has no reason — write one)",
                        v.message, a.line
                    ),
                });
            }
            None => report.violations.push(v),
        }
    }

    // Stale or unknown annotations among the rules this pass owns.
    for a in &file.scanned.annotations {
        if used.contains(&a.line) {
            continue;
        }
        let message = if owned.contains(&a.rule.as_str()) {
            format!(
                "`lint: allow({})` suppresses nothing — remove it or fix the rule id",
                a.rule
            )
        } else if check_unknown
            && !RULE_IDS.contains(&a.rule.as_str())
            && !crate::analyze::ANALYZE_RULE_IDS.contains(&a.rule.as_str())
        {
            format!("`lint: allow({})` names an unknown rule", a.rule)
        } else {
            continue;
        };
        report.violations.push(Violation {
            rule: "stale-allow",
            path: file.rel_path.clone(),
            line: a.line,
            message,
        });
    }
}

/// The first line >= `from` whose blanked code is non-blank.
pub(crate) fn covered_line(file: &SourceFile, from: usize) -> Option<usize> {
    file.scanned
        .lines
        .iter()
        .skip(from.saturating_sub(1))
        .find(|l| !l.code.trim().is_empty())
        .map(|l| l.number)
}

fn in_crates(file: &SourceFile, dirs: &[&str]) -> bool {
    dirs.contains(&file.crate_dir())
}

/// Lines eligible for production-code rules: skip `#[cfg(test)]` regions and
/// anything under a `tests/` or `examples/` tree.
fn production_lines(file: &SourceFile) -> impl Iterator<Item = &crate::lexer::Line> {
    let in_test_tree = file.rel_path.starts_with("tests/")
        || file.rel_path.starts_with("examples/")
        || file.rel_path.contains("/tests/");
    file.scanned
        .lines
        .iter()
        .filter(move |l| !in_test_tree && !file.is_test_line(l.number))
}

/// `raw-disk-op`: in `crates/fs` and `crates/streams`, sector operations must
/// go through the `fs::page` retry wrappers. Direct `.do_op(` / `.do_batch(`
/// calls and literal `SectorOp { .. }` construction are confined to
/// `fs/src/page.rs` (the wrapper module itself).
fn raw_disk_op(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_crates(file, &["crates/fs", "crates/streams"]) {
        return;
    }
    if file.rel_path == "crates/fs/src/page.rs" {
        return;
    }
    for line in production_lines(file) {
        for pat in [".do_op(", ".do_batch(", "SectorOp {"] {
            if line.code.contains(pat) {
                out.push(Violation {
                    rule: "raw-disk-op",
                    path: file.rel_path.clone(),
                    line: line.number,
                    message: format!(
                        "raw disk operation `{}` outside fs::page — route it \
                         through retry_op/complete_with_retry/batch_with_retry \
                         so §3.3 checks and bounded retry apply",
                        pat.trim()
                    ),
                });
            }
        }
    }
}

/// `hint-reverify`: raw hint-cache accessors (`.lookup_name(`,
/// `.dir_entries(`, `cache.leader(`) hand back *hints*, not truth. Any
/// function consuming one must also contain a label re-verification call
/// (`read_page`, `verify_absolutes`, `retry_op`, `complete_with_retry`) or
/// carry an explicit allow annotation explaining why the hint is safe
/// unverified (e.g. epoch gating). The cache module itself is exempt — it is
/// the hint store, not a consumer.
fn hint_reverify(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_crates(file, &["crates/fs", "crates/streams", "crates/core"]) {
        return;
    }
    if file.rel_path == "crates/fs/src/cache.rs" {
        return;
    }
    const HINT_PATTERNS: [&str; 3] = [".lookup_name(", ".dir_entries(", "cache.leader("];
    const VERIFY_PATTERNS: [&str; 4] = [
        "read_page(",
        "verify_absolutes(",
        "retry_op(",
        "complete_with_retry(",
    ];
    for line in production_lines(file) {
        let Some(pat) = HINT_PATTERNS.iter().find(|p| line.code.contains(**p)) else {
            continue;
        };
        let Some(span) = file.enclosing_fn(line.number) else {
            continue;
        };
        let verified = file
            .scanned
            .lines
            .iter()
            .filter(|l| span.start_line <= l.number && l.number <= span.end_line)
            .any(|l| VERIFY_PATTERNS.iter().any(|v| l.code.contains(v)));
        if !verified {
            out.push(Violation {
                rule: "hint-reverify",
                path: file.rel_path.clone(),
                line: line.number,
                message: format!(
                    "hint consumed via `{}` in fn `{}` with no label \
                     re-verification in the same function — hints may be \
                     arbitrarily stale (§3.3); re-read the page or annotate \
                     why staleness is impossible",
                    pat.trim(),
                    span.name
                ),
            });
        }
    }
}

/// `diskerror-unwrap`: production code in `crates/fs` and `crates/streams`
/// may not `unwrap()`/`expect(` — every `DiskError` must flow to the retry
/// layer or the caller. (Test code is free to unwrap.)
fn diskerror_unwrap(file: &SourceFile, out: &mut Vec<Violation>) {
    if !in_crates(file, &["crates/fs", "crates/streams"]) {
        return;
    }
    for line in production_lines(file) {
        for pat in [".unwrap()", ".expect("] {
            if line.code.contains(pat) {
                out.push(Violation {
                    rule: "diskerror-unwrap",
                    path: file.rel_path.clone(),
                    line: line.number,
                    message: format!(
                        "`{pat}` in production fs/streams code — a transient \
                         fault here becomes a panic; propagate the DiskError \
                         (or annotate why it is statically impossible)"
                    ),
                });
            }
        }
    }
}

/// `clock-discipline`: the simulated clock is advanced by the disk layer as a
/// side effect of I/O; other crates advancing (or worse, rewinding) it skew
/// every latency number in the simulation. Outside `crates/disk` and
/// `crates/sim`, any `.advance(` / `.set(` whose receiver mentions a clock
/// (on the same or the two preceding lines, to survive rustfmt chains) must
/// be annotated.
fn clock_discipline(file: &SourceFile, out: &mut Vec<Violation>) {
    if in_crates(file, &["crates/disk", "crates/sim"]) {
        return;
    }
    // Blank and comment-only lines are dropped so the lookback window sees
    // the nearest real code even when a comment sits inside a method chain.
    let lines: Vec<_> = production_lines(file)
        .filter(|l| !l.code.trim().is_empty())
        .collect();
    for (idx, line) in lines.iter().enumerate() {
        for pat in [".advance(", ".set("] {
            if !line.code.contains(pat) {
                continue;
            }
            let context_mentions_clock = (idx.saturating_sub(2)..=idx)
                .any(|j| lines[j].code.to_ascii_lowercase().contains("clock"));
            if context_mentions_clock {
                out.push(Violation {
                    rule: "clock-discipline",
                    path: file.rel_path.clone(),
                    line: line.number,
                    message: format!(
                        "`{pat}` on a clock outside crates/disk and crates/sim — \
                         simulated time is owned by the disk layer; model the \
                         delay as an I/O cost or annotate the exception"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_files(&[SourceFile::from_source(path.into(), src)])
    }

    #[test]
    fn raw_disk_op_fires_outside_page() {
        let r = lint_one(
            "crates/fs/src/file.rs",
            "fn f(d: &mut dyn Disk) {\n    d.do_op(op).ok();\n}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "raw-disk-op");
    }

    #[test]
    fn raw_disk_op_exempts_page_rs_and_tests() {
        let src = "fn f(d: &mut dyn Disk) {\n    d.do_op(op).ok();\n}\n";
        assert!(lint_one("crates/fs/src/page.rs", src).is_clean());
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(d: &mut dyn Disk) {\n        d.do_op(op).ok();\n    }\n}\n";
        assert!(lint_one("crates/fs/src/file.rs", test_src).is_clean());
    }

    #[test]
    fn hint_reverify_requires_verification() {
        let bad = "fn lookup(&self) -> u16 {\n    self.cache.lookup_name(k)\n}\n";
        let r = lint_one("crates/fs/src/file.rs", bad);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "hint-reverify");

        let good = "fn lookup(&mut self) -> u16 {\n    let h = self.cache.lookup_name(k);\n    self.read_page(h)\n}\n";
        assert!(lint_one("crates/fs/src/file.rs", good).is_clean());
    }

    #[test]
    fn unwrap_flagged_in_fs() {
        let r = lint_one(
            "crates/streams/src/disk.rs",
            "fn f() {\n    g().unwrap();\n}\n",
        );
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "diskerror-unwrap");
    }

    #[test]
    fn clock_discipline_catches_split_chains() {
        let src =
            "fn f(&mut self) {\n    self.machine\n        .clock()\n        .advance(t);\n}\n";
        let r = lint_one("crates/net/src/ether.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "clock-discipline");
        // Same code inside crates/disk is fine.
        assert!(lint_one("crates/disk/src/drive.rs", src).is_clean());
    }

    #[test]
    fn allow_annotation_suppresses_and_is_recorded() {
        let src = "fn f() {\n    // lint: allow(diskerror-unwrap) — infallible by construction\n    g().unwrap();\n}\n";
        let r = lint_one("crates/fs/src/page.rs", src);
        assert!(r.is_clean());
        assert_eq!(r.allowed.len(), 1);
        assert_eq!(r.allowed[0].rule, "diskerror-unwrap");
        assert_eq!(r.allowed[0].reason, "infallible by construction");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "fn f() {\n    // lint: allow(diskerror-unwrap)\n    g().unwrap();\n}\n";
        let r = lint_one("crates/fs/src/file.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("no reason"));
    }

    #[test]
    fn stale_allow_flagged() {
        let src = "// lint: allow(raw-disk-op) — left over\nfn f() {}\n";
        let r = lint_one("crates/fs/src/file.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].rule, "stale-allow");
    }

    #[test]
    fn unknown_rule_flagged() {
        let src = "// lint: allow(no-such-rule) — huh\nfn f() {}\n";
        let r = lint_one("crates/fs/src/file.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn patterns_in_strings_and_comments_ignored() {
        let src = "fn f() {\n    let s = \".do_op(\"; // .unwrap() in comment\n    log(s);\n}\n";
        assert!(lint_one("crates/fs/src/file.rs", src).is_clean());
    }
}
