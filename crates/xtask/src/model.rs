//! Workspace model for the lint pass: which files exist, which regions of a
//! file are test code, and where function bodies begin and end.
//!
//! Everything here works on the *blanked* code produced by [`crate::lexer`],
//! so brace matching and keyword searches are not confused by comments or
//! string literals.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Scanned};

/// A source file loaded for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    pub scanned: Scanned,
    /// For each line index (0-based), whether it is inside a `#[cfg(test)]`
    /// module or a `#[test]` function.
    pub test_mask: Vec<bool>,
    /// Function bodies found in the file, in source order.
    pub functions: Vec<FnSpan>,
}

/// A function body: `name` plus the 1-based inclusive line range of its body
/// (from the line holding the opening `{` through the closing `}`).
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    pub start_line: usize,
    pub end_line: usize,
}

impl SourceFile {
    /// Load and scan one file. `root` is the workspace root used to compute
    /// the relative path.
    pub fn load(root: &Path, path: &Path) -> std::io::Result<Self> {
        let text = fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(Self::from_source(rel, &text))
    }

    /// Build a `SourceFile` from in-memory source (used by the self-test
    /// fixtures as well as `load`).
    pub fn from_source(rel_path: String, text: &str) -> Self {
        let scanned = lexer::scan(text);
        let test_mask = test_mask(&scanned);
        let functions = function_spans(&scanned);
        SourceFile {
            rel_path,
            scanned,
            test_mask,
            functions,
        }
    }

    /// True if 1-based `line` is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line - 1).copied().unwrap_or(false)
    }

    /// The crate directory this file belongs to (`crates/fs`, `crates/disk`,
    /// ...), or the leading path component for root-package files (`src`,
    /// `tests`, `examples`).
    pub fn crate_dir(&self) -> &str {
        let p = &self.rel_path;
        if let Some(rest) = p.strip_prefix("crates/") {
            let end = rest.find('/').map_or(rest.len(), |i| i);
            &p[.."crates/".len() + end]
        } else {
            let end = p.find('/').map_or(p.len(), |i| i);
            &p[..end]
        }
    }

    /// The innermost function span containing 1-based `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }
}

/// Walk the workspace source tree under `root`, returning every `.rs` file in
/// `crates/*/src`, `src/`, `tests/`, and `examples/`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            collect_rs(&krate.join("src"), &mut out)?;
            collect_rs(&krate.join("tests"), &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Compute, for each line, whether it is inside `#[cfg(test)]` / `#[test]`
/// guarded code. The heuristic: when such an attribute is seen, the region
/// from the attribute through the matching close brace of the next top-level
/// `{` is test code.
fn test_mask(scanned: &Scanned) -> Vec<bool> {
    let n = scanned.lines.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let code = scanned.lines[i].code.trim();
        if code.starts_with("#[cfg(test)]")
            || code.starts_with("#[test]")
            || code.starts_with("#[cfg(all(test")
        {
            if let Some((open, close)) = brace_block_from(scanned, i) {
                for m in mask.iter_mut().take(close + 1).skip(i) {
                    *m = true;
                }
                let _ = open;
                i = close + 1;
                continue;
            }
            // Attribute with no following block (e.g. on a `use`): mark just
            // the attribute and the following line.
            mask[i] = true;
            if i + 1 < n {
                mask[i + 1] = true;
            }
        }
        i += 1;
    }
    mask
}

/// Starting at line index `from`, find the first `{` and return the 0-based
/// line indices of the lines holding the opening and matching closing brace.
fn brace_block_from(scanned: &Scanned, from: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut seen_open = false;
    let mut open_line = from;
    for (li, line) in scanned.lines.iter().enumerate().skip(from) {
        for c in line.code.chars() {
            match c {
                ';' if !seen_open && depth == 0 => {
                    // Item ended before any block (trait method decl, use,
                    // const): no body.
                    return None;
                }
                '{' => {
                    if !seen_open {
                        seen_open = true;
                        open_line = li;
                    }
                    depth += 1;
                }
                '}' if seen_open => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open_line, li));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Find every `fn` item with a body and record its name and body line range.
fn function_spans(scanned: &Scanned) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for (li, line) in scanned.lines.iter().enumerate() {
        for col in find_word(&line.code, "fn") {
            let after = &line.code[col + 2..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            if let Some((open, close)) = brace_block_from(scanned, li) {
                out.push(FnSpan {
                    name,
                    start_line: scanned.lines[open].number,
                    end_line: scanned.lines[close].number,
                });
            }
        }
    }
    out
}

/// Byte offsets where `word` occurs with non-identifier characters (or line
/// boundaries) on both sides.
pub fn find_word(code: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
fn real() {
    body();
}

#[cfg(test)]
mod tests {
    #[test]
    fn in_test() {
        test_body();
    }
}
"#;

    #[test]
    fn masks_test_module() {
        let f = SourceFile::from_source("crates/fs/src/x.rs".into(), SAMPLE);
        assert!(!f.is_test_line(3)); // body();
        assert!(f.is_test_line(10)); // test_body();
    }

    #[test]
    fn finds_functions() {
        let f = SourceFile::from_source("crates/fs/src/x.rs".into(), SAMPLE);
        let names: Vec<_> = f.functions.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"real"));
        assert!(names.contains(&"in_test"));
        let real = f.functions.iter().find(|s| s.name == "real").unwrap();
        assert_eq!((real.start_line, real.end_line), (2, 4));
    }

    #[test]
    fn crate_dir_parsing() {
        let f = SourceFile::from_source("crates/fs/src/x.rs".into(), "");
        assert_eq!(f.crate_dir(), "crates/fs");
        let g = SourceFile::from_source("tests/openness.rs".into(), "");
        assert_eq!(g.crate_dir(), "tests");
    }

    #[test]
    fn trait_method_decl_has_no_body() {
        let src =
            "trait T {\n    fn decl(&self) -> u16;\n    fn with_body(&self) -> u16 { 0 }\n}\n";
        let f = SourceFile::from_source("crates/fs/src/t.rs".into(), src);
        let names: Vec<_> = f.functions.iter().map(|s| s.name.as_str()).collect();
        assert!(!names.contains(&"decl"));
        assert!(names.contains(&"with_body"));
    }
}
