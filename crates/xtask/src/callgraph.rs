//! A workspace-wide, name-resolved call graph for the interprocedural rules.
//!
//! Built on the same blanked-code model as the per-function lint: every
//! [`FnSpan`](crate::model::FnSpan) becomes a node, and an identifier
//! immediately followed by `(` inside a body becomes a call site. Resolution
//! is *by name*: a call `foo(` (or `.foo(`) gets an edge to every function
//! named `foo` anywhere in the workspace. That is an over-approximation — two
//! unrelated `new`s alias — but it errs in the safe direction for the rules
//! built on it: taint sets are empty on a clean tree (so aliasing cannot
//! manufacture violations there), and positive-evidence queries ("does this
//! handler reach a send?") only get easier to satisfy.
//!
//! The graph is deterministic by construction: nodes are numbered in
//! file-then-line order, adjacency lists are built in that order, and both
//! BFS directions walk sorted lists.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::model::SourceFile;

/// One function node in the graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the file slice the graph was built from.
    pub file: usize,
    pub name: String,
    /// 1-based body range (opening `{` line through closing `}` line).
    pub start_line: usize,
    pub end_line: usize,
    /// True if the function is inside test-only code or a test tree.
    pub test: bool,
}

/// One resolved call: the callee node plus the 1-based line of the call site
/// in the *caller*.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    pub callee: usize,
    pub line: usize,
}

/// The workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    pub nodes: Vec<FnNode>,
    /// Forward adjacency: `calls[n]` are the resolved call sites in node `n`,
    /// in source order.
    pub calls: Vec<Vec<CallSite>>,
    /// Reverse adjacency: `called_by[n]` are the nodes containing a call that
    /// resolves to `n`, ascending.
    pub called_by: Vec<Vec<usize>>,
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_WORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "in", "as", "let", "loop", "else", "move", "fn",
];

impl CallGraph {
    /// Build the graph over a set of scanned files.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut nodes = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let in_test_tree = file.rel_path.starts_with("tests/")
                || file.rel_path.starts_with("examples/")
                || file.rel_path.contains("/tests/");
            for span in &file.functions {
                nodes.push(FnNode {
                    file: fi,
                    name: span.name.clone(),
                    start_line: span.start_line,
                    end_line: span.end_line,
                    test: in_test_tree || file.is_test_line(span.start_line),
                });
            }
        }
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (id, node) in nodes.iter().enumerate() {
            by_name.entry(node.name.as_str()).or_default().push(id);
        }

        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
        let mut called_by: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            let file = &files[node.file];
            for line in &file.scanned.lines {
                if line.number < node.start_line || line.number > node.end_line {
                    continue;
                }
                // Attribute each line to its innermost function only, so a
                // nested fn's calls are not also credited to its parent.
                let innermost = innermost_node(&nodes, node.file, line.number);
                if innermost != Some(id) {
                    continue;
                }
                for name in call_names(&line.code) {
                    let Some(callees) = by_name.get(name) else {
                        continue;
                    };
                    for &callee in callees {
                        calls[id].push(CallSite {
                            callee,
                            line: line.number,
                        });
                        called_by[callee].push(id);
                    }
                }
            }
        }
        for list in &mut called_by {
            list.sort_unstable();
            list.dedup();
        }
        CallGraph {
            nodes,
            calls,
            called_by,
        }
    }

    /// The innermost node containing 1-based `line` of file index `fi`.
    pub fn node_at(&self, fi: usize, line: usize) -> Option<usize> {
        innermost_node(&self.nodes, fi, line)
    }

    /// Reverse reachability: for every node that transitively calls into
    /// `targets`, the witness call site (first hop toward a target). Targets
    /// themselves map to `None`.
    pub fn reach_into(&self, targets: &[usize]) -> HashMap<usize, CallSite> {
        let target_set: HashSet<usize> = targets.iter().copied().collect();
        let mut witness: HashMap<usize, CallSite> = HashMap::new();
        let mut queue: VecDeque<usize> = targets.iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            for &caller in &self.called_by[n] {
                if target_set.contains(&caller) || witness.contains_key(&caller) {
                    continue;
                }
                let site = self.calls[caller]
                    .iter()
                    .find(|s| s.callee == n)
                    .copied()
                    .expect("reverse edge has a forward call site");
                witness.insert(caller, site);
                queue.push_back(caller);
            }
        }
        witness
    }

    /// Forward reachability: true if `start` is in, or transitively calls
    /// into, `targets`.
    pub fn reaches(&self, start: usize, targets: &HashSet<usize>) -> bool {
        if targets.contains(&start) {
            return true;
        }
        let mut seen = HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for site in &self.calls[n] {
                if targets.contains(&site.callee) {
                    return true;
                }
                if seen.insert(site.callee) {
                    queue.push_back(site.callee);
                }
            }
        }
        false
    }

    /// Render the call chain from `from` toward the taint sources recorded in
    /// `witness`, e.g. `plan -> helper -> do_raw`. Capped to six hops.
    pub fn chain(&self, from: usize, witness: &HashMap<usize, CallSite>) -> String {
        let mut parts = vec![self.nodes[from].name.clone()];
        let mut at = from;
        for _ in 0..6 {
            let Some(site) = witness.get(&at) else { break };
            at = site.callee;
            parts.push(self.nodes[at].name.clone());
        }
        parts.join(" -> ")
    }
}

fn innermost_node(nodes: &[FnNode], fi: usize, line: usize) -> Option<usize> {
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.file == fi && n.start_line <= line && line <= n.end_line)
        .min_by_key(|(_, n)| n.end_line - n.start_line)
        .map(|(id, _)| id)
}

/// Extract callee names from one blanked code line: identifier runs
/// immediately followed by `(`, excluding keywords, macro invocations
/// (`name!(`), and the `fn name(` definition itself.
fn call_names(code: &str) -> Vec<&str> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if !is_ident_start(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident_byte(bytes[i]) {
            i += 1;
        }
        let name = &code[start..i];
        if bytes.get(i) != Some(&b'(') {
            continue;
        }
        if NON_CALL_WORDS.contains(&name) {
            continue;
        }
        // `fn name(` is the definition, not a call.
        let before = code[..start].trim_end();
        if before.ends_with("fn")
            && before
                .len()
                .checked_sub(3)
                .is_none_or(|p| !is_ident_byte(before.as_bytes()[p]))
        {
            continue;
        }
        out.push(name);
    }
    out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SourceFile;

    fn graph_of(src: &str) -> (Vec<SourceFile>, CallGraph) {
        let files = vec![SourceFile::from_source("crates/fs/src/x.rs".into(), src)];
        let g = CallGraph::build(&files);
        (files, g)
    }

    #[test]
    fn resolves_direct_and_method_calls() {
        let (_, g) =
            graph_of("fn a(x: u32) {\n    b(x);\n    x.c();\n}\nfn b(x: u32) {}\nfn c(&self) {}\n");
        let a = g.nodes.iter().position(|n| n.name == "a").unwrap();
        let callees: Vec<&str> = g.calls[a]
            .iter()
            .map(|s| g.nodes[s.callee].name.as_str())
            .collect();
        assert_eq!(callees, ["b", "c"]);
    }

    #[test]
    fn definition_is_not_a_self_call() {
        let (_, g) = graph_of("fn a(x: u32) { x + 1; }\n");
        assert!(g.calls[0].is_empty());
    }

    #[test]
    fn macros_and_keywords_skipped() {
        let (_, g) = graph_of("fn a() {\n    assert_eq!(1, 1);\n    if (true) {}\n}\nfn b() {}\n");
        assert!(g.calls[0].is_empty());
    }

    #[test]
    fn reverse_reachability_finds_transitive_callers() {
        let (_, g) =
            graph_of("fn top() {\n    mid();\n}\nfn mid() {\n    sink();\n}\nfn sink() {}\n");
        let sink = g.nodes.iter().position(|n| n.name == "sink").unwrap();
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        let mid = g.nodes.iter().position(|n| n.name == "mid").unwrap();
        let witness = g.reach_into(&[sink]);
        assert!(witness.contains_key(&top));
        assert!(witness.contains_key(&mid));
        assert_eq!(g.chain(top, &witness), "top -> mid -> sink");
    }

    #[test]
    fn forward_reachability() {
        let (_, g) = graph_of(
            "fn top() {\n    mid();\n}\nfn mid() {\n    sink();\n}\nfn sink() {}\nfn lone() {}\n",
        );
        let sink = g.nodes.iter().position(|n| n.name == "sink").unwrap();
        let top = g.nodes.iter().position(|n| n.name == "top").unwrap();
        let lone = g.nodes.iter().position(|n| n.name == "lone").unwrap();
        let targets: HashSet<usize> = [sink].into_iter().collect();
        assert!(g.reaches(top, &targets));
        assert!(!g.reaches(lone, &targets));
    }

    #[test]
    fn nested_fn_calls_attributed_to_innermost() {
        let (_, g) = graph_of("fn outer() {\n    fn inner() {\n        leaf();\n    }\n    inner();\n}\nfn leaf() {}\n");
        let outer = g.nodes.iter().position(|n| n.name == "outer").unwrap();
        let inner = g.nodes.iter().position(|n| n.name == "inner").unwrap();
        let outer_callees: Vec<&str> = g.calls[outer]
            .iter()
            .map(|s| g.nodes[s.callee].name.as_str())
            .collect();
        assert_eq!(outer_callees, ["inner"]);
        let inner_callees: Vec<&str> = g.calls[inner]
            .iter()
            .map(|s| g.nodes[s.callee].name.as_str())
            .collect();
        assert_eq!(inner_callees, ["leaf"]);
    }
}
