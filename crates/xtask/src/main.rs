//! CLI entry point: `cargo xtask <lint|analyze> [--root <dir>]`.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        eprintln!("usage: cargo xtask <lint|analyze> [--root <dir>]");
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "lint" | "analyze" => {
            let mut root = workspace_root();
            let mut rest = args;
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--root" => {
                        if let Some(dir) = rest.next() {
                            root = PathBuf::from(dir);
                        }
                    }
                    other => {
                        eprintln!("unknown flag: {other}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            if cmd == "lint" {
                run_lint(&root)
            } else {
                run_analyze(&root)
            }
        }
        other => {
            eprintln!("unknown command: {other} (try `lint` or `analyze`)");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo (the
/// manifest dir is `crates/xtask`), else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|c| c.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn run_lint(root: &Path) -> ExitCode {
    let report = match xtask::lint_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if !report.allowed.is_empty() {
        println!("recorded exceptions ({}):", report.allowed.len());
        for a in &report.allowed {
            println!("  {a}");
        }
    }
    if report.is_clean() {
        println!(
            "xtask lint: {} files clean ({} rules, {} recorded exceptions)",
            report.files_checked,
            xtask::RULE_IDS.len(),
            report.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}

fn run_analyze(root: &Path) -> ExitCode {
    let report = match xtask::analyze_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask analyze: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if !report.allowed.is_empty() {
        println!("recorded exceptions ({}):", report.allowed.len());
        for a in &report.allowed {
            println!("  {a}");
        }
    }
    if report.is_clean() {
        println!(
            "xtask analyze: {} files clean ({} interprocedural rules, {} recorded exceptions)",
            report.files_checked,
            xtask::ANALYZE_RULE_IDS.len(),
            report.allowed.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: {} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
