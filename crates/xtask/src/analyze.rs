//! `cargo xtask analyze` — interprocedural discipline rules.
//!
//! The per-function lint ([`crate::rules`]) checks what a single function
//! looks like; these rules check what the *call graph* does. Four families:
//!
//! | id                           | invariant                                         |
//! |------------------------------|---------------------------------------------------|
//! | `raw-disk-op-transitive`     | no fs/streams helper *reaches* a raw sector op    |
//! | `error-path-discard`         | disk/net error results are never silently dropped |
//! | `hashmap-iteration`          | no hash-order iteration on deterministic paths    |
//! | `thread-discipline`          | host threads live only in `crates/disk`           |
//! | `clock-discipline-transitive`| no helper *reaches* an undisciplined clock write  |
//! | `protocol-totality`          | every defined opcode is dispatched and replied to |
//!
//! The same `// lint: allow(<rule>) — <reason>` escape hatch applies, and the
//! analyze pass owns staleness checking for its own rule ids (the base lint
//! skips them, so the two passes never double-report).
//!
//! An allow on a *direct* violation sanctions the whole function for the
//! transitive rules: annotating the raw op (or clock write) line asserts that
//! call site is safe, so its callers inherit the sanction instead of each
//! needing their own annotation.

use std::collections::HashSet;

use crate::callgraph::{CallGraph, CallSite};
use crate::model::{find_word, SourceFile};
use crate::rules::{apply_allows, covered_line, Report, Violation};

pub const ANALYZE_RULE_IDS: [&str; 6] = [
    "raw-disk-op-transitive",
    "error-path-discard",
    "hashmap-iteration",
    "thread-discipline",
    "clock-discipline-transitive",
    "protocol-totality",
];

/// Crates whose batch-planning / serving / scavenging / trace-emitting paths
/// must stay deterministic.
const DETERMINISTIC_CRATES: [&str; 5] = [
    "crates/disk",
    "crates/fs",
    "crates/streams",
    "crates/net",
    "crates/core",
];

/// Run the interprocedural rules over a set of scanned files.
pub fn analyze_files(files: &[SourceFile]) -> Report {
    let graph = CallGraph::build(files);
    let mut raw = Vec::new();
    raw_disk_op_transitive(files, &graph, &mut raw);
    error_path_discard(files, &mut raw);
    hashmap_iteration(files, &mut raw);
    thread_discipline(files, &mut raw);
    clock_discipline_transitive(files, &graph, &mut raw);
    protocol_totality(files, &graph, &mut raw);

    let mut report = Report {
        files_checked: files.len(),
        ..Report::default()
    };
    for file in files {
        if file.crate_dir() == "crates/xtask" {
            continue;
        }
        let mine: Vec<Violation> = raw
            .iter()
            .filter(|v| v.path == file.rel_path)
            .cloned()
            .collect();
        apply_allows(file, mine, &ANALYZE_RULE_IDS, false, &mut report);
    }
    report
}

fn in_crates(file: &SourceFile, dirs: &[&str]) -> bool {
    dirs.contains(&file.crate_dir())
}

fn production_lines(file: &SourceFile) -> impl Iterator<Item = &crate::lexer::Line> {
    let in_test_tree = file.rel_path.starts_with("tests/")
        || file.rel_path.starts_with("examples/")
        || file.rel_path.contains("/tests/");
    file.scanned
        .lines
        .iter()
        .filter(move |l| !in_test_tree && !file.is_test_line(l.number))
}

/// True if the line at 1-based `line` carries a non-empty allow for `rule`.
fn line_is_allowed(file: &SourceFile, line: usize, rule: &str) -> bool {
    file.scanned.annotations.iter().any(|a| {
        a.rule == rule
            && !a.reason.is_empty()
            && a.line <= line
            && covered_line(file, a.line) == Some(line)
    })
}

fn push(
    out: &mut Vec<Violation>,
    rule: &'static str,
    file: &SourceFile,
    line: usize,
    message: String,
) {
    out.push(Violation {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
    });
}

/// Shared skeleton of the two taint rules: reverse-reach from `sources` and
/// flag every in-scope production caller at its witness call site.
fn flag_reaching(
    files: &[SourceFile],
    graph: &CallGraph,
    sources: &[usize],
    rule: &'static str,
    in_scope: impl Fn(&SourceFile) -> bool,
    message: impl Fn(&str, &str) -> String,
    out: &mut Vec<Violation>,
) {
    if sources.is_empty() {
        return;
    }
    let witness = graph.reach_into(sources);
    let mut ids: Vec<usize> = witness.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let node = &graph.nodes[id];
        let file = &files[node.file];
        if node.test || !in_scope(file) {
            continue;
        }
        let site: CallSite = witness[&id];
        let chain = graph.chain(id, &witness);
        push(out, rule, file, site.line, message(&node.name, &chain));
    }
}

/// `raw-disk-op-transitive`: the base `raw-disk-op` rule flags a function
/// that *contains* a raw sector op; this one flags every fs/streams function
/// that *reaches* one through calls. Sanctioned sinks: `fs/src/page.rs` (the
/// retry wrappers) and direct sites carrying a `raw-disk-op` allow.
fn raw_disk_op_transitive(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Violation>) {
    const RAW_PATTERNS: [&str; 3] = [".do_op(", ".do_batch(", "SectorOp {"];
    let mut sources = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        let file = &files[node.file];
        if node.test
            || !in_crates(file, &["crates/fs", "crates/streams"])
            || file.rel_path == "crates/fs/src/page.rs"
        {
            continue;
        }
        let tainted = production_lines(file).any(|l| {
            l.number >= node.start_line
                && l.number <= node.end_line
                && graph.node_at(node.file, l.number) == Some(id)
                && RAW_PATTERNS.iter().any(|p| l.code.contains(p))
                && !line_is_allowed(file, l.number, "raw-disk-op")
        });
        if tainted {
            sources.push(id);
        }
    }
    flag_reaching(
        files,
        graph,
        &sources,
        "raw-disk-op-transitive",
        |file| {
            in_crates(file, &["crates/fs", "crates/streams"])
                && file.rel_path != "crates/fs/src/page.rs"
        },
        |name, chain| {
            format!(
                "fn `{name}` reaches a raw sector op outside fs::page ({chain}) \
                 — route the whole path through retry_op/complete_with_retry/\
                 batch_with_retry so §3.3 checks and bounded retry apply"
            )
        },
        out,
    );
}

/// Error sources whose `Result` carries a `DiskError` or a net send status.
const ERROR_SOURCES: [&str; 12] = [
    ".send(",
    ".do_op(",
    ".do_batch(",
    "read_page(",
    "write_page(",
    "free_page(",
    "delete_file(",
    "write_file(",
    "retry_op(",
    "complete_with_retry(",
    "batch_with_retry(",
    "rewrite_label(",
];

/// `error-path-discard`: on fs/streams/net production paths, a disk or send
/// `Result` may be propagated, retried, or counted+traced — never discarded
/// via `let _ =` or a statement-position `.ok();`.
fn error_path_discard(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !in_crates(file, &["crates/fs", "crates/streams", "crates/net"]) {
            continue;
        }
        let lines: Vec<_> = production_lines(file)
            .filter(|l| !l.code.trim().is_empty())
            .collect();
        for (idx, line) in lines.iter().enumerate() {
            let code = line.code.trim();
            // `let _ = <error source>;` — scan forward to the statement end.
            if code.contains("let _ =") {
                let mut stmt_hit = None;
                for l in lines.iter().skip(idx).take(4) {
                    if let Some(p) = ERROR_SOURCES.iter().find(|p| l.code.contains(**p)) {
                        stmt_hit = Some(*p);
                    }
                    if l.code.contains(';') {
                        break;
                    }
                }
                if let Some(pat) = stmt_hit {
                    push(
                        out,
                        "error-path-discard",
                        file,
                        line.number,
                        discard_message(pat, "let _ ="),
                    );
                    continue;
                }
            }
            // `...<error source>....ok();` — statement-position swallow,
            // looking back two lines to survive rustfmt-split chains.
            if code.ends_with(".ok();") {
                let hit = (idx.saturating_sub(2)..=idx)
                    .find_map(|j| ERROR_SOURCES.iter().find(|p| lines[j].code.contains(**p)));
                if let Some(pat) = hit {
                    push(
                        out,
                        "error-path-discard",
                        file,
                        line.number,
                        discard_message(pat, ".ok()"),
                    );
                }
            }
        }
    }
}

fn discard_message(pat: &str, via: &str) -> String {
    format!(
        "`{}` result discarded via `{via}` — a failed disk/net operation \
         must be propagated, retried, or counted+traced (e.g. a stats \
         counter plus a trace event), never swallowed",
        pat.trim()
    )
}

/// Iteration accessors whose order is the hasher's, not the program's.
const ITER_SUFFIXES: [&str; 8] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".retain(",
];

/// `hashmap-iteration`: in the deterministic crates, `HashMap`/`HashSet`
/// *lookup* is fine but *iteration* order leaks the hasher state into batch
/// plans, serve order, and traces. Ordered walks must use `BTreeMap` or an
/// explicit sort.
fn hashmap_iteration(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if !in_crates(file, &DETERMINISTIC_CRATES) {
            continue;
        }
        let names = hash_container_names(file);
        if names.is_empty() {
            continue;
        }
        for line in production_lines(file) {
            for name in &names {
                for pos in find_word(&line.code, name) {
                    let after = &line.code[pos + name.len()..];
                    let iterated = ITER_SUFFIXES.iter().any(|s| after.starts_with(s))
                        || is_for_loop_subject(&line.code[..pos]);
                    if iterated {
                        push(
                            out,
                            "hashmap-iteration",
                            file,
                            line.number,
                            format!(
                                "iteration over hash-ordered `{name}` on a \
                                 deterministic path — hash order varies run to \
                                 run; use BTreeMap/BTreeSet or collect and sort \
                                 before walking"
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Identifiers declared as `HashMap`/`HashSet` in this file: struct fields
/// and let bindings (`x: HashMap<..>`, `let [mut] x = HashMap::new()`), plus
/// typed fn params (`m: &HashMap<..>`).
fn hash_container_names(file: &SourceFile) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in production_lines(file) {
        for ty in ["HashMap", "HashSet"] {
            for pos in find_word(&line.code, ty) {
                if let Some(name) = decl_name_before(&line.code[..pos]) {
                    if !names.iter().any(|n| n == name) {
                        names.push(name.to_string());
                    }
                }
            }
        }
    }
    names
}

/// Given the text preceding a `HashMap`/`HashSet` token, the identifier it
/// declares, if this is a declaration site.
fn decl_name_before(before: &str) -> Option<&str> {
    let mut b = before.trim_end();
    // `let x = HashMap::new()` / `let mut x = HashMap::with_capacity(..)`.
    if let Some(eq) = b.strip_suffix('=') {
        let binding = eq.trim_end();
        let ident = trailing_ident(binding)?;
        let decl = binding[..binding.len() - ident.len()].trim_end();
        if decl == "let" || decl.ends_with("let mut") || decl == "let mut" {
            return Some(ident);
        }
        return None;
    }
    // `x: HashMap<..>` / `x: &HashMap<..>` / `x: &mut HashMap<..>`.
    if let Some(s) = b.strip_suffix("mut") {
        b = s.trim_end();
    }
    if let Some(s) = b.strip_suffix('&') {
        b = s.trim_end();
    }
    b = b.strip_suffix(':')?.trim_end();
    trailing_ident(b)
}

fn trailing_ident(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut start = bytes.len();
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == bytes.len() || bytes[start].is_ascii_digit() {
        None
    } else {
        Some(&s[start..])
    }
}

/// True if the text before an identifier ends with a `for .. in` (optionally
/// `&`/`&mut`) — the identifier is being walked.
fn is_for_loop_subject(before: &str) -> bool {
    let mut b = before.trim_end();
    if let Some(s) = b.strip_suffix("mut") {
        let t = s.trim_end();
        if t.ends_with('&') {
            b = t;
        }
    }
    if let Some(s) = b.strip_suffix('&') {
        b = s.trim_end();
    }
    b.ends_with(" in") || b == "in"
}

/// `thread-discipline`: host threads exist to overlap *simulated* drive arm
/// timelines and live only in `crates/disk` (array/timeline merging), where
/// the merge discipline (elapsed = max-of-arms, traces absorbed in arm
/// order) keeps the simulation bit-identical. Anywhere else they are a
/// nondeterminism hazard.
fn thread_discipline(files: &[SourceFile], out: &mut Vec<Violation>) {
    for file in files {
        if in_crates(file, &["crates/disk"]) {
            continue;
        }
        for line in production_lines(file) {
            for pat in ["thread::spawn(", "thread::scope(", "thread::Builder"] {
                if line.code.contains(pat) {
                    push(
                        out,
                        "thread-discipline",
                        file,
                        line.number,
                        format!(
                            "`{pat}` outside crates/disk — host threads are \
                             confined to the drive-array timeline merge; model \
                             concurrency in simulated time instead"
                        ),
                    );
                }
            }
        }
    }
}

/// `clock-discipline-transitive`: the base rule flags a *direct* clock write
/// outside crates/disk+sim; this one flags functions that reach one through
/// calls. An annotated direct site sanctions its callers.
fn clock_discipline_transitive(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Violation>) {
    let mut sources = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        let file = &files[node.file];
        if node.test || in_crates(file, &["crates/disk", "crates/sim"]) {
            continue;
        }
        let lines: Vec<_> = production_lines(file)
            .filter(|l| !l.code.trim().is_empty())
            .collect();
        let tainted = lines.iter().enumerate().any(|(idx, line)| {
            line.number >= node.start_line
                && line.number <= node.end_line
                && graph.node_at(node.file, line.number) == Some(id)
                && [".advance(", ".set("].iter().any(|p| line.code.contains(p))
                && (idx.saturating_sub(2)..=idx)
                    .any(|j| lines[j].code.to_ascii_lowercase().contains("clock"))
                && !line_is_allowed(file, line.number, "clock-discipline")
        });
        if tainted {
            sources.push(id);
        }
    }
    flag_reaching(
        files,
        graph,
        &sources,
        "clock-discipline-transitive",
        |file| !in_crates(file, &["crates/disk", "crates/sim"]),
        |name, chain| {
            format!(
                "fn `{name}` reaches an undisciplined clock mutation ({chain}) \
                 — simulated time is owned by the disk layer; annotate the \
                 direct site with its justification or model the delay as I/O"
            )
        },
        out,
    );
}

/// `protocol-totality`: every opcode defined as
/// `const NAME: PacketType = PacketType::Other(..)` in net/core must be a
/// complete citizen of the protocol: `*_REQUEST` opcodes need a dispatch
/// site (`NAME =>` arm or `==`/`!=` comparison) whose function transitively
/// reaches a `.send(` (the reply); `*_REPLY` opcodes must actually be
/// constructed (`ptype: NAME`); anything else must at least be referenced
/// outside its definition. Violations anchor at the const so one allow
/// covers the opcode.
fn protocol_totality(files: &[SourceFile], graph: &CallGraph, out: &mut Vec<Violation>) {
    const NET_CRATES: [&str; 2] = ["crates/net", "crates/core"];
    struct Opcode {
        name: String,
        file: usize,
        line: usize,
    }
    let mut ops = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !in_crates(file, &NET_CRATES) {
            continue;
        }
        for line in production_lines(file) {
            if let Some(pos) = line.code.find(": PacketType = PacketType::Other(") {
                if let Some(name) = trailing_ident(line.code[..pos].trim_end()) {
                    ops.push(Opcode {
                        name: name.to_string(),
                        file: fi,
                        line: line.number,
                    });
                }
            }
        }
    }
    if ops.is_empty() {
        return;
    }
    // Functions that directly contain a send — reply evidence sinks.
    let send_nodes: HashSet<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| {
            files[node.file].scanned.lines.iter().any(|l| {
                l.number >= node.start_line
                    && l.number <= node.end_line
                    && l.code.contains(".send(")
            })
        })
        .map(|(id, _)| id)
        .collect();

    for op in &ops {
        let mut dispatch_fns: Vec<usize> = Vec::new();
        let mut constructed = false;
        let mut referenced = false;
        for (fi, file) in files.iter().enumerate() {
            if !in_crates(file, &NET_CRATES) {
                continue;
            }
            for line in production_lines(file) {
                if fi == op.file && line.number == op.line {
                    continue;
                }
                let trimmed = line.code.trim_start();
                if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
                    continue;
                }
                if find_word(&line.code, &op.name).is_empty() {
                    continue;
                }
                referenced = true;
                if line.code.contains(&format!("ptype: {}", op.name)) {
                    constructed = true;
                }
                if ["=>", "==", "!="].iter().any(|t| line.code.contains(t)) {
                    if let Some(id) = graph.node_at(fi, line.number) {
                        dispatch_fns.push(id);
                    }
                }
            }
        }
        let file = &files[op.file];
        if op.name.ends_with("_REQUEST") {
            if dispatch_fns.is_empty() {
                push(
                    out,
                    "protocol-totality",
                    file,
                    op.line,
                    format!(
                        "request opcode `{}` has no dispatch site (`{} =>` arm \
                         or `==`/`!=` check) in net/core — an unhandled request \
                         is silently dropped on the wire",
                        op.name, op.name
                    ),
                );
            } else if !dispatch_fns
                .iter()
                .any(|&id| graph.reaches(id, &send_nodes))
            {
                push(
                    out,
                    "protocol-totality",
                    file,
                    op.line,
                    format!(
                        "request opcode `{}` is dispatched but its handler \
                         never reaches a `.send(` — every request deserves a \
                         reply (or an allow explaining why not)",
                        op.name
                    ),
                );
            }
        } else if op.name.ends_with("_REPLY") {
            if !constructed {
                push(
                    out,
                    "protocol-totality",
                    file,
                    op.line,
                    format!(
                        "reply opcode `{}` is never constructed (`ptype: {}`) \
                         — the protocol defines a reply nobody sends",
                        op.name, op.name
                    ),
                );
            }
        } else if !referenced {
            push(
                out,
                "protocol-totality",
                file,
                op.line,
                format!(
                    "opcode `{}` is defined but never referenced outside its \
                     definition — dead protocol surface",
                    op.name
                ),
            );
        }
    }
}
