//! `cargo xtask lint` — the workspace label-discipline checker.
//!
//! The Alto stack's robustness argument (paper §3.3) is a *discipline*:
//! every data write is preceded by a label check in the same sector visit,
//! and every hint is re-verified against the authoritative label before it
//! is trusted. Four PRs of scheduling, caching, write-behind, and retry
//! machinery have multiplied the call sites that must uphold that discipline
//! by hand. This crate makes it machine-checked at the source level; the
//! runtime half lives in `alto-disk`'s `audit` module.
//!
//! The pass is deliberately dependency-free: a comment/string-aware scanner
//! ([`lexer`]) feeds a lightweight structural model ([`model`]) which the
//! rules ([`rules`]) query. See `ARCHITECTURE.md` § Invariants for the rule
//! catalogue and its mapping to §3.3.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod callgraph;
pub mod lexer;
pub mod model;
pub mod rules;

use std::path::Path;

pub use analyze::ANALYZE_RULE_IDS;
pub use model::SourceFile;
pub use rules::{Allowed, Report, Violation, RULE_IDS};

/// Lint every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(rules::lint_files(&load_workspace(root)?))
}

/// Run the interprocedural analyze pass over every workspace source file.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(analyze::analyze_files(&load_workspace(root)?))
}

fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let paths = model::workspace_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        files.push(SourceFile::load(root, path)?);
    }
    Ok(files)
}

/// Lint in-memory sources given as `(relative_path, text)` pairs. Used by the
/// mutation self-test to prove each rule still fires on seeded violations.
pub fn lint_sources(sources: &[(&str, &str)]) -> Report {
    rules::lint_files(&from_sources(sources))
}

/// Analyze in-memory sources — the call graph is built over exactly these
/// files, so fixtures are self-contained.
pub fn analyze_sources(sources: &[(&str, &str)]) -> Report {
    analyze::analyze_files(&from_sources(sources))
}

fn from_sources(sources: &[(&str, &str)]) -> Vec<SourceFile> {
    sources
        .iter()
        .map(|(path, text)| SourceFile::from_source((*path).to_string(), text))
        .collect()
}
