//! The system-call (trap) interface.
//!
//! Loaded programs reach the resident packages through traps; the loader
//! binds symbolic references to two-word stubs (`TRAP code; JMP 0,3`)
//! placed in the owning level's memory region (§5.1). Every call is gated
//! on its level being resident: a program that removed the display package
//! with `Junta` really cannot `PutChar` any more (§5.2).

use crate::errors::OsError;

/// Calls, their trap codes, and argument conventions.
///
/// Arguments travel in accumulators; strings are length-prefixed packed
/// byte vectors in simulated memory (the assembler's `.str` layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysCall {
    /// `AC0` = character to display. Level 11.
    PutChar,
    /// Returns `AC0` = next type-ahead character, or `0xFFFF` if none.
    /// Level 10 (the buffer itself is level 2).
    GetChar,
    /// `AC0` = name string → `AC0` = read-stream handle. Level 8.
    OpenRead,
    /// `AC0` = name string → `AC0` = write-stream handle (creates or
    /// truncates the file). Level 8.
    OpenWrite,
    /// `AC0` = handle → `AC0` = next byte, or `0xFFFF` at end. Level 8.
    Gets,
    /// `AC0` = handle, `AC1` = byte. Level 8.
    Puts,
    /// `AC0` = handle: flush and close. Level 8.
    Closes,
    /// `AC0` = handle: reset to the start. Level 8.
    Resets,
    /// `AC0` = name string: remove the directory entry and delete the
    /// file. Level 9.
    DeleteFile,
    /// `AC0` = level to retain: remove all higher levels. Level 12.
    Junta,
    /// Restore all levels. Level 1.
    CounterJunta,
    /// `AC0` = state-file name string. Writes the machine state; continues
    /// with the written flag = 1. After a later `InLoad` of the same file,
    /// continues *again* with the flag = 0 and the message delivered
    /// (§4.1). Level 1.
    OutLoad,
    /// `AC0` = state-file name string, `AC1` = address of a 20-word
    /// message vector. Replaces the machine state. Level 1.
    InLoad,
    /// Returns `AC0` = low 16 bits of the millisecond clock. Level 4.
    Ticks,
    /// `AC0` = program name string: terminate by loading another program
    /// over this one (§5.1 — "the program may terminate … by calling the
    /// program loader to read in another program and thus overlay the
    /// first program"). On failure `AC0 = 0xFFFF` and execution continues
    /// here. Level 12.
    Chain,
}

/// All calls, for iteration.
pub const ALL_CALLS: [SysCall; 15] = [
    SysCall::PutChar,
    SysCall::GetChar,
    SysCall::OpenRead,
    SysCall::OpenWrite,
    SysCall::Gets,
    SysCall::Puts,
    SysCall::Closes,
    SysCall::Resets,
    SysCall::DeleteFile,
    SysCall::Junta,
    SysCall::CounterJunta,
    SysCall::OutLoad,
    SysCall::InLoad,
    SysCall::Ticks,
    SysCall::Chain,
];

impl SysCall {
    /// The trap code.
    pub fn code(self) -> u16 {
        match self {
            SysCall::PutChar => 8,
            SysCall::GetChar => 9,
            SysCall::OpenRead => 10,
            SysCall::OpenWrite => 11,
            SysCall::Gets => 12,
            SysCall::Puts => 13,
            SysCall::Closes => 14,
            SysCall::Resets => 15,
            SysCall::DeleteFile => 16,
            SysCall::Junta => 17,
            SysCall::CounterJunta => 18,
            SysCall::OutLoad => 19,
            SysCall::InLoad => 20,
            SysCall::Ticks => 21,
            SysCall::Chain => 22,
        }
    }

    /// Decodes a trap code.
    pub fn from_code(code: u16) -> Result<SysCall, OsError> {
        ALL_CALLS
            .iter()
            .copied()
            .find(|c| c.code() == code)
            .ok_or(OsError::UnknownSysCall(code))
    }

    /// The level that provides this service (§5.2 table).
    pub fn level(self) -> u8 {
        match self {
            SysCall::OutLoad | SysCall::InLoad | SysCall::CounterJunta => 1,
            SysCall::Ticks => 4,
            SysCall::OpenRead
            | SysCall::OpenWrite
            | SysCall::Gets
            | SysCall::Puts
            | SysCall::Closes
            | SysCall::Resets => 8,
            SysCall::DeleteFile => 9,
            SysCall::GetChar => 10,
            SysCall::PutChar => 11,
            SysCall::Junta | SysCall::Chain => 12,
        }
    }

    /// The procedure name the loader binds (§5.1 fixups).
    pub fn symbol(self) -> &'static str {
        match self {
            SysCall::PutChar => "PutChar",
            SysCall::GetChar => "GetChar",
            SysCall::OpenRead => "OpenRead",
            SysCall::OpenWrite => "OpenWrite",
            SysCall::Gets => "Gets",
            SysCall::Puts => "Puts",
            SysCall::Closes => "Closes",
            SysCall::Resets => "Resets",
            SysCall::DeleteFile => "DeleteFile",
            SysCall::Junta => "Junta",
            SysCall::CounterJunta => "CounterJunta",
            SysCall::OutLoad => "OutLoad",
            SysCall::InLoad => "InLoad",
            SysCall::Ticks => "Ticks",
            SysCall::Chain => "Chain",
        }
    }
}

/// The distinguished "no data / end" result value.
pub const NONE_VALUE: u16 = 0xFFFF;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for call in ALL_CALLS {
            assert!(seen.insert(call.code()), "duplicate code {}", call.code());
            assert_eq!(SysCall::from_code(call.code()).unwrap(), call);
            assert!(call.code() >= alto_machine::traps::OS_BASE);
        }
    }

    #[test]
    fn unknown_code_rejected() {
        assert!(matches!(
            SysCall::from_code(999),
            Err(OsError::UnknownSysCall(999))
        ));
    }

    #[test]
    fn levels_match_the_paper_table() {
        assert_eq!(SysCall::OutLoad.level(), 1);
        assert_eq!(SysCall::Gets.level(), 8);
        assert_eq!(SysCall::DeleteFile.level(), 9);
        assert_eq!(SysCall::GetChar.level(), 10);
        assert_eq!(SysCall::PutChar.level(), 11);
        assert_eq!(SysCall::Junta.level(), 12);
    }

    #[test]
    fn symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for call in ALL_CALLS {
            assert!(seen.insert(call.symbol()));
        }
    }
}
