//! The diskless configuration (§5.2).
//!
//! "The display, keyboard, and storage-allocation packages have been
//! assembled to form an operating system for use without a disk, used to
//! support diagnostics or other programs that depend on network
//! communications rather than on local disk storage."
//!
//! [`DisklessOs`] is that assembly: the same level structure, stubs and
//! type-ahead machinery as [`AltoOs`], but with no disk and therefore no
//! file levels — the disk, stream and directory services (levels 5, 6, 8,
//! 9) simply are not resident, and the trap interface says so. Programs
//! arrive over the ether from a [`BootServer`] running on a machine that
//! does have a disk.

use std::collections::{BTreeMap, BTreeSet};

use alto_disk::{Disk, DiskAddress, DATA_WORDS};
use alto_fs::file::PAGE_BYTES;
use alto_fs::{dir, FileFullName, FileSystem, PageName};
use alto_machine::{CodeFile, Machine, MachineError, Step};
use alto_net::server::{
    OpenInfo, PageRequest, PageStore, STATUS_BAD_HANDLE, STATUS_BAD_PAGE, STATUS_IO,
    STATUS_NO_SUCH_FILE,
};
use alto_net::{receive_file, Ether, HostId, Packet, PacketType, ProtoError};

use crate::errors::OsError;
use crate::levels::LevelTable;
use crate::loader::ProgramExit;
use crate::os::AltoOs;
use crate::symbols::SymbolTable;
use crate::syscalls::{SysCall, NONE_VALUE};
use crate::typeahead::TypeAhead;

/// Packet type for "send me this program" requests.
pub const BOOT_REQUEST: PacketType = PacketType::Other(10);
/// The well-known boot-server socket.
pub const BOOT_SOCKET: u16 = 0o44;

/// The diskless operating system: display, keyboard, storage allocation —
/// no disk.
#[derive(Debug)]
pub struct DisklessOs {
    /// The simulated Alto.
    pub machine: Machine,
    levels: LevelTable,
    /// Which levels this configuration includes.
    resident: BTreeSet<u8>,
    typeahead: TypeAhead,
    symbols: SymbolTable,
}

impl DisklessOs {
    /// Assembles the diskless system: levels 1–4, 7 (zones), 10–13 —
    /// everything except the disk object, disk streams and directories.
    pub fn new(mut machine: Machine) -> DisklessOs {
        let levels = LevelTable::new();
        let symbols = SymbolTable::install(&mut machine.mem, &levels);
        let l2 = levels.level(2).expect("level 2 exists");
        let typeahead = TypeAhead::init(&mut machine.mem, l2.base, l2.words);
        let resident: BTreeSet<u8> = [1u8, 2, 3, 4, 7, 10, 11, 12, 13].into_iter().collect();
        DisklessOs {
            machine,
            levels,
            resident,
            typeahead,
            symbols,
        }
    }

    /// True if a level is part of this configuration.
    pub fn is_resident(&self, level: u8) -> bool {
        self.resident.contains(&level)
    }

    /// The memory layout (identical to the full system's, so programs and
    /// stubs are binary-compatible across configurations).
    pub fn levels(&self) -> &LevelTable {
        &self.levels
    }

    /// Drains struck keys into the type-ahead buffer.
    pub fn service_keyboard(&mut self) {
        let now = self.machine.clock().now();
        while let Some(key) = self.machine.keyboard.read_at(now) {
            self.typeahead.push(&mut self.machine.mem, key);
        }
    }

    /// Reads one buffered character.
    pub fn get_char(&mut self) -> Option<u8> {
        self.service_keyboard();
        self.typeahead.pop(&mut self.machine.mem).map(|k| k as u8)
    }

    /// Serves the diskless subset of the system calls.
    pub fn handle_syscall(&mut self, code: u16, _ac: u8) -> Result<(), OsError> {
        let call = SysCall::from_code(code)?;
        if !self.is_resident(call.level()) {
            return Err(OsError::ServiceNotResident {
                call: call.symbol(),
                level: call.level(),
            });
        }
        match call {
            SysCall::PutChar => {
                let c = self.machine.ac[0] as u8;
                self.machine.display.put_char(c as char);
            }
            SysCall::GetChar => {
                self.machine.ac[0] = self.get_char().map_or(NONE_VALUE, u16::from);
            }
            SysCall::Ticks => {
                self.machine.ac[0] = self.machine.clock().now().as_millis() as u16;
            }
            // Junta/CounterJunta/OutLoad/InLoad *are* in resident levels
            // (1 and 12), but they are disk operations: without a disk
            // there is nowhere to put a world.
            other => {
                return Err(OsError::ServiceNotResident {
                    call: other.symbol(),
                    level: other.level(),
                })
            }
        }
        Ok(())
    }

    /// Steps the machine until it halts, serving the diskless services.
    pub fn run_machine(&mut self, mut budget: u64) -> Result<(), OsError> {
        loop {
            if budget == 0 {
                return Err(OsError::Machine(MachineError::BudgetExhausted));
            }
            budget -= 1;
            match self.machine.step().map_err(OsError::Machine)? {
                Step::Running => {}
                Step::Halted => return Ok(()),
                Step::Interrupt => self.service_keyboard(),
                Step::Trap { code, ac } => self.handle_syscall(code, ac)?,
            }
        }
    }

    /// Loads a code file (arrived over the wire) and binds its fixups.
    pub fn load_code(&mut self, code: &CodeFile) -> Result<u16, OsError> {
        let end = code.base as u32 + code.code.len() as u32;
        if end > self.levels.resident_base() as u32 {
            return Err(OsError::Machine(MachineError::BadImage(
                "program overlaps the resident system",
            )));
        }
        let mut image = code.code.clone();
        for fixup in &code.fixups {
            image[fixup.offset as usize] = self.symbols.resolve(&fixup.symbol)?;
        }
        self.machine
            .mem
            .write_block(code.base, &image)
            .map_err(|_| OsError::Machine(MachineError::BadImage("program does not fit")))?;
        self.machine.pc = code.entry;
        Ok(code.entry)
    }

    /// Boots a program over the network: sends a request to the boot
    /// server, receives the code file, loads and runs it.
    ///
    /// The server end is driven by [`BootServer::serve`]; in this
    /// single-threaded simulation the caller passes the server so the two
    /// ends can interleave on the shared ether.
    pub fn netboot<D: Disk>(
        &mut self,
        ether: &mut Ether,
        my_host: HostId,
        server: &mut BootServer<'_, D>,
        name: &str,
        budget: u64,
    ) -> Result<ProgramExit, OsError> {
        // The request: program name, packed.
        let payload = alto_fs::file::bytes_to_words(name.as_bytes());
        let request = Packet {
            ptype: BOOT_REQUEST,
            dst_host: server.host,
            src_host: my_host,
            dst_socket: BOOT_SOCKET,
            src_socket: BOOT_SOCKET + 1,
            seq: 0,
            payload,
        };
        ether.send(request).map_err(|e| {
            OsError::Stream(alto_streams::StreamError::NotSupported({
                let _ = e;
                "network send failed"
            }))
        })?;
        let words = server
            .serve(ether)
            .map_err(|_| OsError::CommandNotFound(name.to_string()))?;
        let code = CodeFile::decode(&words)?;
        self.load_code(&code)?;
        let before = self.machine.instructions();
        self.run_machine(budget)?;
        Ok(ProgramExit {
            instructions: self.machine.instructions() - before,
        })
    }
}

/// The boot server: a machine *with* a disk serving code files by name.
#[derive(Debug)]
pub struct BootServer<'a, D: Disk> {
    os: &'a mut AltoOs<D>,
    /// The server's host address.
    pub host: HostId,
    /// Requests served.
    pub served: u64,
}

impl<'a, D: Disk> BootServer<'a, D> {
    /// Wraps a disk-full system as a boot server on `host`.
    pub fn new(os: &'a mut AltoOs<D>, host: HostId) -> BootServer<'a, D> {
        BootServer {
            os,
            host,
            served: 0,
        }
    }

    /// Polls for one request and serves it, returning the words delivered
    /// to the requester (the inline receiver of the shared-ether pump).
    pub fn serve(&mut self, ether: &mut Ether) -> Result<Vec<u16>, ProtoError> {
        let Some(request) = ether.receive(self.host, BOOT_SOCKET)? else {
            return Err(ProtoError::TooManyRetries { seq: 0 });
        };
        if request.ptype != BOOT_REQUEST {
            // A stray packet on the boot socket is not a boot request;
            // answering it with a file transfer would corrupt the protocol.
            return Err(ProtoError::TooManyRetries { seq: request.seq });
        }
        let name_bytes = alto_fs::file::words_to_bytes(&request.payload);
        let name = String::from_utf8_lossy(&name_bytes);
        let name = name.trim_end_matches('\0');
        let root = self.os.fs.root_dir();
        let file = alto_fs::dir::lookup(&mut self.os.fs, root, name)
            .ok()
            .flatten()
            .ok_or(ProtoError::TooManyRetries { seq: 0 })?;
        let bytes = self
            .os
            .fs
            .read_file(file)
            .map_err(|_| ProtoError::TooManyRetries { seq: 0 })?;
        let words = alto_fs::file::bytes_to_words(&bytes);
        self.served += 1;
        // Pump the transfer to the requester.
        receive_file(
            ether,
            self.host,
            request.src_host,
            request.src_socket,
            BOOT_SOCKET + 2,
            &words,
        )
    }
}

/// One file held open on behalf of the fleet: its identity plus the
/// per-page disk-address hints the service has learned so far.
#[derive(Debug)]
struct ServedFile {
    file: FileFullName,
    /// `hints[p - 1]` is the best-known address of data page `p`; seeded
    /// with consecutive guesses from the leader's `next` pointer (§3.6 —
    /// a wrong guess costs a check miss, never wrong data) and corrected
    /// from the labels every served batch captures.
    hints: Vec<DiskAddress>,
}

/// The disk end of the page server: an [`alto_net::PageStore`] over a real
/// [`FileSystem`]. Opens resolve through the directory and leader (with
/// the hint cache behind them); batches are sorted by hinted disk address
/// across *all* clients and issued through the zero-copy chained read
/// path, so requests landing on neighbouring sectors ride one command
/// chain regardless of which client asked. Pages whose hints went stale
/// fall back to a leader-chain walk, relearning the hints as they go.
#[derive(Debug)]
pub struct FsPageService<'a, D: Disk> {
    fs: &'a mut FileSystem<D>,
    opens: Vec<ServedFile>,
    by_name: BTreeMap<String, u32>,
    // Scratch, reused across serve calls.
    order: Vec<usize>,
    names: Vec<PageName>,
    sorted_names: Vec<PageName>,
    valid: Vec<PageRequest>,
    /// Pages served through the batched fast path.
    pub fast_served: u64,
    /// Pages that needed the chain-walk slow path (stale hints).
    pub slow_served: u64,
}

impl<'a, D: Disk> FsPageService<'a, D> {
    /// Wraps a mounted file system as a page store.
    pub fn new(fs: &'a mut FileSystem<D>) -> FsPageService<'a, D> {
        FsPageService {
            fs,
            opens: Vec::new(),
            by_name: BTreeMap::new(),
            order: Vec::new(),
            names: Vec::new(),
            sorted_names: Vec::new(),
            valid: Vec::new(),
            fast_served: 0,
            slow_served: 0,
        }
    }

    /// Reads page `page` by walking the leader chain from the front —
    /// the §3.6 recovery path when hints are wrong — relearning every
    /// hint on the way. Returns the page's data.
    fn chain_walk(&mut self, open_id: u32, page: u16) -> Result<[u16; DATA_WORDS], u16> {
        let open = self.opens.get(open_id as usize).ok_or(STATUS_BAD_HANDLE)?;
        if page == 0 {
            return Err(STATUS_BAD_PAGE);
        }
        let file = open.file;
        let (leader_label, _) = self.fs.open_leader(file).map_err(|_| STATUS_IO)?;
        let mut da = leader_label.next;
        let mut data = None;
        for p in 1..=page {
            if da == DiskAddress::NIL {
                return Err(STATUS_IO);
            }
            let (label, d) = self
                .fs
                .read_page(PageName::new(file.fv, p, da))
                .map_err(|_| STATUS_IO)?;
            // On a freshly scavenged pack the file may have fewer pages
            // than the open handle remembers; never index past the hint
            // vector a hostile history left short.
            let open = &mut self.opens[open_id as usize];
            if let Some(h) = open.hints.get_mut(p as usize - 1) {
                *h = da;
            }
            if let Some(h) = open.hints.get_mut(p as usize) {
                *h = label.next;
            }
            da = label.next;
            data = Some(d);
        }
        data.ok_or(STATUS_IO)
    }
}

impl<'a, D: Disk> PageStore for FsPageService<'a, D> {
    fn open(&mut self, name: &str) -> Result<OpenInfo, u16> {
        if let Some(&open_id) = self.by_name.get(name) {
            // Re-measure on every re-open: a scavenge between opens can
            // shrink or grow the file, and sizing from the stale hint
            // vector would underflow the last-page length below.
            let file = self.opens[open_id as usize].file;
            let length = self.fs.file_length(file).map_err(|_| STATUS_IO)?;
            let pages = length.div_ceil(PAGE_BYTES as u64).max(1) as u16;
            let last_len = (length - (pages as u64 - 1) * PAGE_BYTES as u64) as u16;
            let open = &mut self.opens[open_id as usize];
            open.hints.resize(pages as usize, DiskAddress::NIL);
            return Ok(OpenInfo {
                open_id,
                pages,
                last_len,
            });
        }
        let root = self.fs.root_dir();
        let file = dir::lookup(self.fs, root, name)
            .map_err(|_| STATUS_IO)?
            .ok_or(STATUS_NO_SUCH_FILE)?;
        let (leader_label, _) = self.fs.open_leader(file).map_err(|_| STATUS_IO)?;
        let length = self.fs.file_length(file).map_err(|_| STATUS_IO)?;
        let pages = length.div_ceil(PAGE_BYTES as u64).max(1) as u16;
        let last_len = (length - (pages as u64 - 1) * PAGE_BYTES as u64) as u16;
        // Seed the hints with consecutive guesses from page 1's address:
        // allocation strives for consecutive pages, and the label check
        // turns any wrong guess into a clean per-page miss.
        let first = leader_label.next;
        let hints = (0..pages)
            .map(|p| {
                if first == DiskAddress::NIL {
                    DiskAddress::NIL
                } else {
                    DiskAddress(first.0.wrapping_add(p))
                }
            })
            .collect();
        let open_id = self.opens.len() as u32;
        self.opens.push(ServedFile { file, hints });
        self.by_name.insert(name.to_string(), open_id);
        Ok(OpenInfo {
            open_id,
            pages,
            last_len,
        })
    }

    fn serve<F>(&mut self, reqs: &[PageRequest], failed: &mut Vec<(u32, u16)>, mut deliver: F)
    where
        F: FnMut(u32, &[u16; DATA_WORDS]),
    {
        // Refuse ill-formed requests up front — a forged open id or a page
        // number outside the open file (page 0 is the leader, never
        // served) must fail with a status, not index out of bounds. Only
        // well-formed requests enter the batch.
        let mut valid = std::mem::take(&mut self.valid);
        valid.clear();
        for r in reqs {
            match self.opens.get(r.open_id as usize) {
                None => failed.push((r.tag, STATUS_BAD_HANDLE)),
                Some(open) if r.page == 0 || r.page as usize > open.hints.len() => {
                    failed.push((r.tag, STATUS_BAD_PAGE));
                }
                Some(_) => valid.push(*r),
            }
        }

        // Name every request at its hinted address, then sort the batch by
        // disk address across clients — the whole point: neighbouring
        // sectors coalesce into one command chain no matter who asked.
        self.names.clear();
        self.names.extend(valid.iter().map(|r| {
            let open = &self.opens[r.open_id as usize];
            PageName::new(open.file.fv, r.page, open.hints[r.page as usize - 1])
        }));
        self.order.clear();
        self.order.extend(0..valid.len());
        let names = &self.names;
        self.order.sort_by_key(|&i| names[i].da.0);
        self.sorted_names.clear();
        self.sorted_names
            .extend(self.order.iter().map(|&i| names[i]));

        let fast = &mut self.fast_served;
        let opens = &mut self.opens;
        let order = &self.order;
        let labels = alto_fs::page::read_pages_zero_copy(
            self.fs.disk_mut(),
            &self.sorted_names,
            |k, label, view| {
                let i = order[k];
                let r = &valid[i];
                *fast += 1;
                // Learn the next page's address from the captured label.
                let open = &mut opens[r.open_id as usize];
                if (r.page as usize) < open.hints.len() {
                    open.hints[r.page as usize] = label.next;
                }
                deliver(r.tag, view.data());
            },
        );
        // Stale hints (or real faults): walk the chain from the leader.
        for (k, res) in labels.iter().enumerate() {
            if res.is_ok() {
                continue;
            }
            let i = self.order[k];
            let r = valid[i];
            match self.chain_walk(r.open_id, r.page) {
                Ok(data) => {
                    self.slow_served += 1;
                    deliver(r.tag, &data);
                }
                Err(status) => failed.push((r.tag, status)),
            }
        }
        alto_fs::pool::recycle_labels(labels);
        self.valid = valid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_sim::{SimClock, SimTime, Trace};

    fn setup() -> (DisklessOs, AltoOs, Ether, SimClock) {
        let clock = SimClock::new();
        let diskless = DisklessOs::new(Machine::new(clock.clone(), Trace::new()));
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive =
            DiskDrive::with_formatted_pack(clock.clone(), Trace::new(), DiskModel::Diablo31, 1);
        let server_os = AltoOs::install(machine, drive).unwrap();
        let mut ether = Ether::new(clock.clone(), Trace::new());
        ether.attach(1).unwrap(); // diskless workstation
        ether.attach(2).unwrap(); // boot server
        (diskless, server_os, ether, clock)
    }

    #[test]
    fn diskless_has_display_and_keyboard_but_no_files() {
        let (mut d, ..) = setup();
        d.machine.ac[0] = b'!' as u16;
        d.handle_syscall(SysCall::PutChar.code(), 0).unwrap();
        assert_eq!(d.machine.display.transcript(), "!");
        // File services are not in this configuration.
        let err = d.handle_syscall(SysCall::OpenRead.code(), 0).unwrap_err();
        assert!(matches!(err, OsError::ServiceNotResident { level: 8, .. }));
        let err = d.handle_syscall(SysCall::OutLoad.code(), 0).unwrap_err();
        assert!(matches!(err, OsError::ServiceNotResident { .. }));
    }

    #[test]
    fn keyboard_typeahead_works_disklessly() {
        let (mut d, ..) = setup();
        let now = d.machine.clock().now();
        d.machine
            .keyboard
            .type_string(now, SimTime::from_millis(1), "ok");
        d.machine.clock().advance(SimTime::from_millis(10));
        assert_eq!(d.get_char(), Some(b'o'));
        assert_eq!(d.get_char(), Some(b'k'));
    }

    #[test]
    fn netboot_runs_a_diagnostic_from_the_server() {
        let (mut d, mut server_os, mut ether, _clock) = setup();
        // The server has a diagnostic program on its disk.
        server_os
            .store_program(
                "memtest.run",
                r#"
        ; a diagnostic: pattern-test a memory word, report via display
        lda 0, pat
        sta 0, @cell
        lda 1, @cell
        sub# 0, 1, szr
        jmp bad
        lda 0, okch
        jsr @putchar
        halt
bad:    lda 0, badch
        jsr @putchar
        halt
putchar: .fixup "PutChar"
cell:   .word 0o1000
pat:    .word 0o125252
okch:   .word 'P'
badch:  .word 'F'
        "#,
            )
            .unwrap();
        let mut server = BootServer::new(&mut server_os, 2);
        let exit = d
            .netboot(&mut ether, 1, &mut server, "memtest.run", 100_000)
            .unwrap();
        assert!(exit.instructions > 0);
        assert_eq!(server.served, 1);
        assert_eq!(d.machine.display.transcript(), "P");
    }

    #[test]
    fn netboot_unknown_program_fails_cleanly() {
        let (mut d, mut server_os, mut ether, _clock) = setup();
        let mut server = BootServer::new(&mut server_os, 2);
        let err = d
            .netboot(&mut ether, 1, &mut server, "ghost.run", 1000)
            .unwrap_err();
        assert!(matches!(err, OsError::CommandNotFound(_)));
    }

    #[test]
    fn stub_addresses_match_the_full_system() {
        // Binary compatibility: a program linked against the full system's
        // stubs runs unchanged on the diskless configuration.
        let (d, mut server_os, ..) = setup();
        for (symbol, addr) in d.symbols.symbols() {
            assert_eq!(server_os.symbols().resolve(symbol).unwrap(), addr);
        }
        let _ = &mut server_os;
    }
}
