//! The program loader (§5.1).
//!
//! "Code for the program is read from a disk stream and loaded into low
//! memory addresses. All references to operating system procedures are
//! bound, using a fixup table contained in the code file. Finally, the
//! program is invoked by calling a single entry routine."
//!
//! Loaded code must fit below the resident system; the loader checks this
//! against the *current* level table, so a program that plans to be big
//! can `Junta` first and then load an overlay into the reclaimed space —
//! the §5.2 overlay pattern.

use alto_disk::Disk;
use alto_fs::dir;
use alto_fs::file::bytes_to_words;
use alto_fs::names::FileFullName;
use alto_machine::{CodeFile, MachineError};

use crate::errors::OsError;
use crate::os::AltoOs;

/// What a program run reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramExit {
    /// Instructions executed by the program (including its system calls'
    /// trap instructions, not the Rust-side service work).
    pub instructions: u64,
}

impl<D: Disk> AltoOs<D> {
    /// Writes assembled source to a named code file (the "linker" step the
    /// examples use to put programs on disk).
    pub fn store_program(&mut self, name: &str, source: &str) -> Result<FileFullName, OsError> {
        let assembled = alto_machine::assemble(source)?;
        let code = CodeFile::from_assembled(&assembled);
        let bytes = alto_fs::file::words_to_bytes(&code.encode());
        let root = self.fs.root_dir();
        let file = match dir::lookup(&mut self.fs, root, name)? {
            Some(f) => f,
            None => dir::create_named_file(&mut self.fs, root, name)?,
        };
        self.fs.write_file(file, &bytes)?;
        Ok(file)
    }

    /// Loads a code file into memory and binds its fixups; returns the
    /// entry address without running (the Executive and tests run it).
    /// The image comes in through a disk byte stream's bulk path, so a
    /// multi-page program is fetched in chained readahead batches.
    pub fn load_program(&mut self, file: FileFullName) -> Result<u16, OsError> {
        let bytes = self.read_via_stream(file)?;
        let words = bytes_to_words(&bytes);
        let code = CodeFile::decode(&words)?;
        // The program must fit below the resident system.
        let end = code.base as u32 + code.code.len() as u32;
        if end > self.levels().resident_base() as u32 {
            return Err(OsError::Machine(MachineError::BadImage(
                "program overlaps the resident system",
            )));
        }
        let mut image = code.code.clone();
        for fixup in &code.fixups {
            let addr = self.symbols().resolve(&fixup.symbol)?;
            image[fixup.offset as usize] = addr;
        }
        self.machine
            .mem
            .write_block(code.base, &image)
            .map_err(|_| OsError::Machine(MachineError::BadImage("program does not fit")))?;
        self.machine.pc = code.entry;
        Ok(code.entry)
    }

    /// Loads and runs a named program from the root directory, serving its
    /// system calls until it halts.
    pub fn run_program(&mut self, name: &str, budget: u64) -> Result<ProgramExit, OsError> {
        let root = self.fs.root_dir();
        let file = dir::lookup(&mut self.fs, root, name)?
            .ok_or_else(|| OsError::CommandNotFound(name.to_string()))?;
        self.load_program(file).map_err(|e| match e {
            OsError::Machine(MachineError::BadImage("not a code file")) => {
                OsError::NotAProgram(name.to_string())
            }
            other => other,
        })?;
        let before = self.machine.instructions();
        self.run_machine(budget)?;
        Ok(ProgramExit {
            instructions: self.machine.instructions() - before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn store_load_run_hello() {
        let mut os = os();
        os.store_program(
            "hello.run",
            r#"
            lda 2, msgp      ; AC2 = string address
            lda 1, 0,2       ; AC1 = remaining count
            subz 3, 3        ; AC3 unused here; clear
loop:       mov# 1, 1, snr   ; done when count == 0
            jmp done
            ; fetch next byte: words are packed two bytes each; simplest
            ; path is one character per word table instead.
            jmp done
done:       halt
msgp:       .word msg
msg:        .str "hi"
            "#,
        )
        .unwrap();
        let exit = os.run_program("hello.run", 10_000).unwrap();
        assert!(exit.instructions > 0);
    }

    #[test]
    fn fixups_bind_os_procedures() {
        let mut os = os();
        // A program that prints "Alto!" through the PutChar fixup.
        os.store_program(
            "print.run",
            r#"
            lda 2, msgp      ; AC2 -> character table
            lda 1, count
loop:       lda 0, 0,2       ; AC0 = next character word
            jsr @putchar
            inc 2, 2
            dsz countv
            jmp loop
            halt
putchar:    .fixup "PutChar"
count:      .word 5
countv:     .word 5
msgp:       .word msg
msg:        .word 'A'
            .word 'l'
            .word 't'
            .word 'o'
            .word '!'
            "#,
        )
        .unwrap();
        os.run_program("print.run", 10_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "Alto!");
    }

    #[test]
    fn program_reads_and_writes_files_via_syscalls() {
        let mut os = os();
        // Put a source file on disk.
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "in.dat").unwrap();
        os.fs.write_file(f, b"abc").unwrap();
        // Program: copy in.dat to out.dat, uppercasing is too fancy —
        // byte-for-byte copy.
        os.store_program(
            "copy.run",
            r#"
            lda 0, innamep
            jsr @openr
            sta 0, inh
            lda 0, outnamep
            jsr @openw
            sta 0, outh
loop:       lda 0, inh
            jsr @gets
            ; end of stream? AC0 == 0xFFFF
            lda 1, eof
            sub# 0, 1, snr
            jmp done
            mov 0, 1         ; byte to AC1
            lda 0, outh
            jsr @puts
            jmp loop
done:       lda 0, outh
            jsr @closes
            lda 0, inh
            jsr @closes
            halt
openr:      .fixup "OpenRead"
openw:      .fixup "OpenWrite"
gets:       .fixup "Gets"
puts:       .fixup "Puts"
closes:     .fixup "Closes"
inh:        .word 0
outh:       .word 0
eof:        .word 0xFFFF
innamep:    .word inname
outnamep:   .word outname
inname:     .str "in.dat"
outname:    .str "out.dat"
            "#,
        )
        .unwrap();
        os.run_program("copy.run", 1_000_000).unwrap();
        let root = os.fs.root_dir();
        let out = dir::lookup(&mut os.fs, root, "out.dat").unwrap().unwrap();
        assert_eq!(os.fs.read_file(out).unwrap(), b"abc");
    }

    #[test]
    fn unknown_program_not_found() {
        let mut os = os();
        assert!(matches!(
            os.run_program("missing.run", 1000),
            Err(OsError::CommandNotFound(_))
        ));
    }

    #[test]
    fn data_file_is_not_a_program() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "data.txt").unwrap();
        os.fs.write_file(f, b"just text").unwrap();
        let err = os.run_program("data.txt", 1000).unwrap_err();
        assert!(matches!(err, OsError::Machine(_) | OsError::NotAProgram(_)));
    }

    #[test]
    fn unbound_symbol_is_reported() {
        let mut os = os();
        os.store_program(
            "bad.run",
            "
            jsr @nowhere
            halt
nowhere:    .fixup \"NoSuchService\"
            ",
        )
        .unwrap();
        assert!(matches!(
            os.run_program("bad.run", 1000),
            Err(OsError::UnboundSymbol(_))
        ));
    }

    #[test]
    fn oversized_program_rejected_against_resident_system() {
        let mut os = os();
        // Shrink the program space drastically by faking a big program:
        // assemble a program with a huge block.
        let source = "
            halt
            .blk 0xF000
        ";
        os.store_program("big.run", source).unwrap();
        let err = os.run_program("big.run", 1000).unwrap_err();
        assert!(matches!(err, OsError::Machine(MachineError::BadImage(_))));
        // After Junta(1), nearly all memory is program space; now it fits.
        os.junta(1).unwrap();
        // (Level 12 holds the loader; with it gone the *system* loader
        // would be gone too — but the Rust API stands in for the microcode
        // here, and the paper's point is the space really is available.)
        let exit = os.run_program("big.run", 1000);
        assert!(exit.is_ok(), "{exit:?}");
    }

    #[test]
    fn program_chains_to_another_program() {
        // §5.1: "the program may terminate … by calling the program loader
        // to read in another program and thus overlay the first program."
        let mut os = os();
        os.store_program(
            "second.run",
            r#"
            lda 0, ch
            jsr @putchar
            halt
putchar:    .fixup "PutChar"
ch:         .word 'B'
            "#,
        )
        .unwrap();
        os.store_program(
            "first.run",
            &format!(
                r#"
            lda 0, ch
            jsr @putchar
            lda 0, namep
            trap 0, {chain}
            ; only reached if the chain failed
            lda 0, bang
            jsr @putchar
            halt
putchar:    .fixup "PutChar"
ch:         .word 'A'
bang:       .word '!'
namep:      .word name
name:       .str "second.run"
            "#,
                chain = crate::syscalls::SysCall::Chain.code()
            ),
        )
        .unwrap();
        os.run_program("first.run", 100_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "AB");
    }

    #[test]
    fn failed_chain_returns_to_the_caller() {
        let mut os = os();
        os.store_program(
            "only.run",
            &format!(
                r#"
            lda 0, namep
            trap 0, {chain}
            ; AC0 = 0xFFFF on failure
            lda 1, eof
            sub# 0, 1, snr
            jmp failed
            halt
failed:     lda 0, qm
            jsr @putchar
            halt
putchar:    .fixup "PutChar"
eof:        .word 0xFFFF
qm:         .word '?'
namep:      .word name
name:       .str "ghost.run"
            "#,
                chain = crate::syscalls::SysCall::Chain.code()
            ),
        )
        .unwrap();
        os.run_program("only.run", 100_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "?");
    }
}
