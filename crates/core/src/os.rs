//! The assembled operating system.
//!
//! An [`AltoOs`] owns the simulated machine and the mounted file system,
//! keeps the resident level structure in the top of simulated memory, and
//! runs loaded programs by stepping the CPU and serving its traps. There
//! is deliberately *no boundary* between what the OS does and what a Rust
//! caller may do directly (§1: the user "may reject, accept, modify or
//! extend" any facility): everything the system uses — the file system,
//! the disk, the machine — is a public field or has a public accessor.

use alto_disk::{Disk, DiskDrive};
use alto_fs::{dir, FileSystem};
use alto_machine::{Machine, MachineError, Step};
use alto_sim::Memory;
use alto_streams::{DiskByteStream, Stream, StreamError};

use crate::errors::OsError;
use crate::levels::{LevelTable, LEVEL_COUNT};
use crate::symbols::SymbolTable;
use crate::syscalls::{SysCall, NONE_VALUE};
use crate::typeahead::TypeAhead;

/// The operating system: machine + file system + resident packages.
///
/// # Examples
///
/// ```
/// use alto_disk::{DiskDrive, DiskModel};
/// use alto_machine::Machine;
/// use alto_os::AltoOs;
/// use alto_sim::{SimClock, Trace};
///
/// let clock = SimClock::new();
/// let machine = Machine::new(clock.clone(), Trace::new());
/// let drive = DiskDrive::with_formatted_pack(
///     clock, Trace::new(), DiskModel::Diablo31, 1);
/// let mut os = AltoOs::install(machine, drive)?;
///
/// // A session at the keyboard, served by the Executive.
/// os.type_text("ls\nquit\n");
/// os.run_executive(10)?;
/// assert!(os.machine.display.transcript().contains("SysDir"));
/// # Ok::<(), alto_os::OsError>(())
/// ```
#[derive(Debug)]
pub struct AltoOs<D: Disk = DiskDrive> {
    /// The simulated Alto (open access, §1).
    pub machine: Machine,
    /// The mounted file system (open access, §1).
    pub fs: FileSystem<D>,
    pub(crate) levels: LevelTable,
    pub(crate) typeahead: TypeAhead,
    pub(crate) symbols: SymbolTable,
    pub(crate) handles: Vec<Option<DiskByteStream<D>>>,
    /// Pristine copies of every level region, for CounterJunta.
    pub(crate) pristine: Vec<(u16, Vec<u16>)>,
}

impl<D: Disk> AltoOs<D> {
    /// Installs the system on a blank disk: formats the file system and
    /// initializes the resident structures.
    pub fn install(machine: Machine, disk: D) -> Result<AltoOs<D>, OsError> {
        let fs = FileSystem::format(disk)?;
        Ok(AltoOs::assemble(machine, fs))
    }

    /// Boots the system from an already-installed disk.
    pub fn boot(machine: Machine, disk: D) -> Result<AltoOs<D>, OsError> {
        let fs = FileSystem::mount(disk)?;
        Ok(AltoOs::assemble(machine, fs))
    }

    /// Assembles the OS around an existing machine and file system,
    /// (re)initializing the resident memory structures.
    pub fn assemble(mut machine: Machine, fs: FileSystem<D>) -> AltoOs<D> {
        let levels = LevelTable::new();
        let symbols = SymbolTable::install(&mut machine.mem, &levels);
        let l2 = levels.level(2).expect("level 2 exists");
        let typeahead = TypeAhead::init(&mut machine.mem, l2.base, l2.words);
        let pristine = levels
            .levels()
            .iter()
            .map(|l| {
                let copy = machine
                    .mem
                    .slice(l.base, l.words as usize)
                    .expect("level regions are in range")
                    .to_vec();
                (l.base, copy)
            })
            .collect();
        AltoOs {
            machine,
            fs,
            levels,
            typeahead,
            symbols,
            handles: Vec::new(),
            pristine,
        }
    }

    /// The level table (residency, layout).
    pub fn levels(&self) -> &LevelTable {
        &self.levels
    }

    /// The OS procedure symbol table (used by the loader).
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    // ------------------------------------------------------------------
    // The keyboard process (§2).
    // ------------------------------------------------------------------

    /// The interrupt-driven keyboard process: drains struck keys into the
    /// resident type-ahead buffer. Runs between instructions (on
    /// [`Step::Interrupt`]) and whenever input is read.
    pub fn service_keyboard(&mut self) {
        let now = self.machine.clock().now();
        while let Some(key) = self.machine.keyboard.read_at(now) {
            if self.levels.is_resident(2) {
                self.typeahead.push(&mut self.machine.mem, key);
            }
            // With level 2 removed, keys fall on the floor — the program
            // took responsibility for the keyboard when it Junta'd.
        }
    }

    /// Reads one buffered character, if any.
    pub fn get_char(&mut self) -> Option<u8> {
        self.service_keyboard();
        if self.levels.is_resident(2) {
            self.typeahead.pop(&mut self.machine.mem).map(|k| k as u8)
        } else {
            None
        }
    }

    /// Prints a character on the display.
    pub fn put_char(&mut self, c: u8) {
        self.machine.display.put_char(c as char);
    }

    /// Prints a string on the display.
    pub fn put_str(&mut self, s: &str) {
        self.machine.display.put_str(s);
    }

    /// Scripts the user typing `text` starting now (test/example aid).
    pub fn type_text(&mut self, text: &str) {
        let now = self.machine.clock().now();
        self.machine
            .keyboard
            .type_string(now, alto_sim::SimTime::from_millis(1), text);
    }

    // ------------------------------------------------------------------
    // Junta and CounterJunta (§5.2).
    // ------------------------------------------------------------------

    /// Removes all levels above `keep`, freeing their storage. Returns the
    /// number of words freed. Open streams are lost when level 8 goes
    /// (their state lived there).
    pub fn junta(&mut self, keep: u8) -> Result<u32, OsError> {
        if keep == 0 || keep > LEVEL_COUNT {
            return Err(OsError::BadLevel(keep));
        }
        let freed = self.levels.junta(keep);
        if !self.levels.is_resident(8) {
            self.handles.clear();
        }
        // Freed storage really is gone: scribble it so programs that rely
        // on stale stubs fail loudly rather than mysteriously.
        for level in self.levels.levels() {
            if !self.levels.is_resident(level.number) {
                let _ = self.machine.mem.fill(level.base, level.words as usize, 0);
            }
        }
        Ok(freed)
    }

    /// Restores every removed level from the pristine images and
    /// reinitializes their data structures (§5.2: "The CounterJunta
    /// procedure restores all levels that were removed, and reinitializes
    /// any data structures they contain."). Levels that stayed resident
    /// are untouched, so type-ahead survives an ordinary program's Junta
    /// of the higher levels.
    pub fn counter_junta(&mut self) {
        let was_resident = self.levels.resident();
        for (level, (base, image)) in self.levels.levels().iter().zip(&self.pristine) {
            if level.number > was_resident {
                self.machine
                    .mem
                    .write_block(*base, image)
                    .expect("level regions are in range");
            }
        }
        self.levels.counter_junta();
        // If the keyboard buffer itself was removed, it comes back empty.
        if was_resident < 2 {
            let l2 = self.levels.level(2).expect("level 2 exists");
            self.typeahead = TypeAhead::init(&mut self.machine.mem, l2.base, l2.words);
        }
    }

    // ------------------------------------------------------------------
    // Running programs and serving traps.
    // ------------------------------------------------------------------

    /// Steps the machine until it halts, serving system calls and the
    /// keyboard interrupt. `budget` bounds the instruction count.
    pub fn run_machine(&mut self, mut budget: u64) -> Result<(), OsError> {
        loop {
            if budget == 0 {
                return Err(OsError::Machine(MachineError::BudgetExhausted));
            }
            budget -= 1;
            match self.machine.step().map_err(OsError::Machine)? {
                Step::Running => {}
                Step::Halted => return Ok(()),
                Step::Interrupt => self.service_keyboard(),
                Step::Trap { code, ac } => self.handle_syscall(code, ac)?,
            }
        }
    }

    /// Serves one system call. Public so that alternative run loops (the
    /// openness story again) can reuse the standard services.
    pub fn handle_syscall(&mut self, code: u16, _ac: u8) -> Result<(), OsError> {
        let call = SysCall::from_code(code)?;
        if !self.levels.is_resident(call.level()) {
            return Err(OsError::ServiceNotResident {
                call: call.symbol(),
                level: call.level(),
            });
        }
        match call {
            SysCall::PutChar => {
                let c = self.machine.ac[0] as u8;
                self.put_char(c);
            }
            SysCall::GetChar => {
                self.machine.ac[0] = self.get_char().map_or(NONE_VALUE, u16::from);
            }
            SysCall::OpenRead => {
                let name = self.read_string(self.machine.ac[0])?;
                self.machine.ac[0] = match self.open_read(&name) {
                    Ok(h) => h,
                    Err(_) => NONE_VALUE,
                };
            }
            SysCall::OpenWrite => {
                let name = self.read_string(self.machine.ac[0])?;
                self.machine.ac[0] = match self.open_write(&name) {
                    Ok(h) => h,
                    Err(_) => NONE_VALUE,
                };
            }
            SysCall::Gets => {
                let handle = self.machine.ac[0];
                self.machine.ac[0] = match self.stream_get(handle) {
                    Ok(Some(b)) => b as u16,
                    Ok(None) => NONE_VALUE,
                    Err(e) => return Err(e),
                };
            }
            SysCall::Puts => {
                let handle = self.machine.ac[0];
                let byte = self.machine.ac[1] as u8;
                self.stream_put(handle, byte)?;
            }
            SysCall::Closes => {
                let handle = self.machine.ac[0];
                self.stream_close(handle)?;
            }
            SysCall::Resets => {
                let handle = self.machine.ac[0];
                self.stream_reset(handle)?;
            }
            SysCall::DeleteFile => {
                let name = self.read_string(self.machine.ac[0])?;
                self.delete_named(&name)?;
            }
            SysCall::Junta => {
                let keep = self.machine.ac[0] as u8;
                self.junta(keep)?;
            }
            SysCall::CounterJunta => {
                self.counter_junta();
            }
            SysCall::OutLoad => {
                let name = self.read_string(self.machine.ac[0])?;
                self.out_load_named(&name)?;
            }
            SysCall::InLoad => {
                let name = self.read_string(self.machine.ac[0])?;
                let msg_ptr = self.machine.ac[1];
                let mut message = [0u16; crate::swap::MESSAGE_WORDS];
                if msg_ptr != 0 {
                    self.machine
                        .mem
                        .read_block(msg_ptr, &mut message)
                        .map_err(|_| OsError::BadString(msg_ptr))?;
                }
                self.in_load_named(&name, &message)?;
            }
            SysCall::Ticks => {
                self.machine.ac[0] = self.machine.clock().now().as_millis() as u16;
            }
            SysCall::Chain => {
                // Overlay: load the named program over this one (§5.1); on
                // success execution continues at the new entry point.
                let name = self.read_string(self.machine.ac[0])?;
                let root = self.fs.root_dir();
                let target = dir::lookup(&mut self.fs, root, &name)?;
                match target {
                    Some(file) => {
                        if self.load_program(file).is_err() {
                            self.machine.ac[0] = NONE_VALUE;
                        }
                    }
                    None => self.machine.ac[0] = NONE_VALUE,
                }
            }
        }
        Ok(())
    }

    /// Reads a length-prefixed packed string from simulated memory (the
    /// assembler's `.str` layout).
    pub fn read_string(&self, addr: u16) -> Result<String, OsError> {
        let mem: &Memory = &self.machine.mem;
        let len = mem.read(addr) as usize;
        if len > 255 {
            return Err(OsError::BadString(addr));
        }
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let w = mem.read(addr + 1 + (i / 2) as u16);
            bytes.push(if i % 2 == 0 { (w >> 8) as u8 } else { w as u8 });
        }
        String::from_utf8(bytes).map_err(|_| OsError::BadString(addr))
    }

    // ------------------------------------------------------------------
    // Stream handles (level 8 services).
    // ------------------------------------------------------------------

    fn alloc_handle(&mut self, stream: DiskByteStream<D>) -> u16 {
        for (i, slot) in self.handles.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(stream);
                return i as u16;
            }
        }
        self.handles.push(Some(stream));
        (self.handles.len() - 1) as u16
    }

    fn stream_mut(&mut self, handle: u16) -> Result<&mut DiskByteStream<D>, OsError> {
        self.handles
            .get_mut(handle as usize)
            .and_then(|s| s.as_mut())
            .ok_or(OsError::BadHandle(handle))
    }

    /// Opens a read stream on the named file in the root directory.
    pub fn open_read(&mut self, name: &str) -> Result<u16, OsError> {
        let root = self.fs.root_dir();
        let file = dir::lookup(&mut self.fs, root, name)?
            .ok_or_else(|| OsError::Fs(alto_fs::FsError::NameNotFound(name.to_string())))?;
        let stream = DiskByteStream::open(&mut self.fs, file)?;
        Ok(self.alloc_handle(stream))
    }

    /// Opens a write stream, creating (or truncating) the named file.
    pub fn open_write(&mut self, name: &str) -> Result<u16, OsError> {
        let root = self.fs.root_dir();
        let file = match dir::lookup(&mut self.fs, root, name)? {
            Some(f) => {
                self.fs.write_file(f, &[])?; // truncate
                f
            }
            None => dir::create_named_file(&mut self.fs, root, name)?,
        };
        let stream = DiskByteStream::open(&mut self.fs, file)?;
        Ok(self.alloc_handle(stream))
    }

    /// Gets a byte from an open stream (`None` at end).
    pub fn stream_get(&mut self, handle: u16) -> Result<Option<u8>, OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        // Split borrow: take the stream out while it talks to the fs.
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.get_byte(&mut self.fs);
        self.handles[slot] = Some(stream);
        match result {
            Ok(b) => Ok(Some(b)),
            Err(StreamError::EndOfStream) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Bulk-reads from an open stream into `out` with whole-page slice
    /// copies. Returns how many bytes were read — short only at the end.
    pub fn stream_read(&mut self, handle: u16, out: &mut [u8]) -> Result<usize, OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.read_bytes(&mut self.fs, out);
        self.handles[slot] = Some(stream);
        Ok(result?)
    }

    /// Bulk-writes `bytes` to an open stream; page crossings ride the
    /// stream's write-behind buffer.
    pub fn stream_write(&mut self, handle: u16, bytes: &[u8]) -> Result<(), OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.write_bytes(&mut self.fs, bytes);
        self.handles[slot] = Some(stream);
        Ok(result?)
    }

    /// Reads a whole file through a disk byte stream's bulk fast path —
    /// what the Executive's `type` and `copy` use, so their transfers get
    /// readahead batching instead of page-at-a-time reads.
    pub fn read_via_stream(
        &mut self,
        file: alto_fs::names::FileFullName,
    ) -> Result<Vec<u8>, OsError> {
        let len = self.fs.file_length(file)? as usize;
        let mut stream = DiskByteStream::open(&mut self.fs, file)?;
        let mut bytes = vec![0u8; len];
        let n = stream.read_bytes(&mut self.fs, &mut bytes)?;
        bytes.truncate(n);
        stream.close(&mut self.fs)?;
        Ok(bytes)
    }

    /// Puts a byte to an open stream.
    pub fn stream_put(&mut self, handle: u16, byte: u8) -> Result<(), OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.put_byte(&mut self.fs, byte);
        self.handles[slot] = Some(stream);
        Ok(result?)
    }

    /// Resets an open stream to its start.
    pub fn stream_reset(&mut self, handle: u16) -> Result<(), OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.reset(&mut self.fs);
        self.handles[slot] = Some(stream);
        Ok(result?)
    }

    /// Closes an open stream.
    pub fn stream_close(&mut self, handle: u16) -> Result<(), OsError> {
        let slot = handle as usize;
        self.stream_mut(handle)?;
        let mut stream = self.handles[slot].take().expect("checked above");
        let result = stream.close(&mut self.fs);
        self.handles[slot] = None;
        Ok(result?)
    }

    /// Deletes a named file from the root directory.
    pub fn delete_named(&mut self, name: &str) -> Result<(), OsError> {
        let root = self.fs.root_dir();
        let file = dir::remove(&mut self.fs, root, name)?
            .ok_or_else(|| OsError::Fs(alto_fs::FsError::NameNotFound(name.to_string())))?;
        self.fs.delete_file(file)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::DiskModel;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn install_and_reboot() {
        let os1 = os();
        let clock = os1.machine.clock().clone();
        let disk = os1.fs.unmount().unwrap();
        let machine = Machine::new(clock, Trace::new());
        let os2 = AltoOs::boot(machine, disk).unwrap();
        assert_eq!(os2.levels().resident(), LEVEL_COUNT);
    }

    #[test]
    fn typeahead_flows_from_keyboard_to_getchar() {
        let mut os = os();
        os.type_text("hi");
        os.machine
            .clock()
            .advance(alto_sim::SimTime::from_millis(10));
        assert_eq!(os.get_char(), Some(b'h'));
        assert_eq!(os.get_char(), Some(b'i'));
        assert_eq!(os.get_char(), None);
    }

    #[test]
    fn junta_frees_and_counter_junta_restores() {
        let mut os = os();
        let freed = os.junta(4).unwrap();
        assert!(freed > 0);
        assert!(!os.levels().is_resident(8));
        // Display service now refuses.
        let err = os.handle_syscall(SysCall::PutChar.code(), 0).unwrap_err();
        assert!(matches!(err, OsError::ServiceNotResident { level: 11, .. }));
        os.counter_junta();
        assert!(os.levels().is_resident(11));
        os.machine.ac[0] = b'x' as u16;
        os.handle_syscall(SysCall::PutChar.code(), 0).unwrap();
        assert_eq!(os.machine.display.transcript(), "x");
    }

    #[test]
    fn junta_rejects_bad_levels() {
        let mut os = os();
        assert!(matches!(os.junta(0), Err(OsError::BadLevel(0))));
        assert!(matches!(os.junta(14), Err(OsError::BadLevel(14))));
    }

    #[test]
    fn typeahead_survives_junta_of_higher_levels() {
        let mut os = os();
        os.type_text("ab");
        os.machine
            .clock()
            .advance(alto_sim::SimTime::from_millis(10));
        os.service_keyboard();
        os.junta(3).unwrap(); // keyboard buffer (level 2) stays
        os.counter_junta();
        assert_eq!(os.get_char(), Some(b'a'));
        assert_eq!(os.get_char(), Some(b'b'));
    }

    #[test]
    fn typeahead_lost_when_level_2_removed() {
        let mut os = os();
        os.type_text("ab");
        os.machine
            .clock()
            .advance(alto_sim::SimTime::from_millis(10));
        os.service_keyboard();
        os.junta(1).unwrap();
        os.counter_junta();
        assert_eq!(os.get_char(), None);
    }

    #[test]
    fn stream_syscalls_round_trip() {
        let mut os = os();
        let h = os.open_write("test.dat").unwrap();
        for b in b"hello" {
            os.stream_put(h, *b).unwrap();
        }
        os.stream_close(h).unwrap();
        let h = os.open_read("test.dat").unwrap();
        let mut out = Vec::new();
        while let Some(b) = os.stream_get(h).unwrap() {
            out.push(b);
        }
        os.stream_close(h).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn open_write_truncates() {
        let mut os = os();
        let h = os.open_write("t.dat").unwrap();
        for b in b"long contents here" {
            os.stream_put(h, *b).unwrap();
        }
        os.stream_close(h).unwrap();
        let h = os.open_write("t.dat").unwrap();
        os.stream_put(h, b'x').unwrap();
        os.stream_close(h).unwrap();
        let root = os.fs.root_dir();
        let f = dir::lookup(&mut os.fs, root, "t.dat").unwrap().unwrap();
        assert_eq!(os.fs.read_file(f).unwrap(), b"x");
    }

    #[test]
    fn bad_handles_rejected() {
        let mut os = os();
        assert!(matches!(os.stream_get(0), Err(OsError::BadHandle(0))));
        assert!(matches!(os.stream_put(7, 1), Err(OsError::BadHandle(7))));
        assert!(matches!(os.stream_close(7), Err(OsError::BadHandle(7))));
        let h = os.open_write("x.dat").unwrap();
        os.stream_close(h).unwrap();
        assert!(matches!(os.stream_get(h), Err(OsError::BadHandle(_))));
    }

    #[test]
    fn handles_are_reused_after_close() {
        let mut os = os();
        let a = os.open_write("a.dat").unwrap();
        os.stream_close(a).unwrap();
        let b = os.open_write("b.dat").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn delete_named_removes_entry_and_file() {
        let mut os = os();
        let h = os.open_write("dead.dat").unwrap();
        os.stream_close(h).unwrap();
        os.delete_named("dead.dat").unwrap();
        assert!(os.open_read("dead.dat").is_err());
        assert!(matches!(
            os.delete_named("dead.dat"),
            Err(OsError::Fs(alto_fs::FsError::NameNotFound(_)))
        ));
    }

    #[test]
    fn read_string_decodes_packed_strings() {
        let mut os = os();
        // "abc" packed at 0o3000.
        os.machine.mem.write(0o3000, 3);
        os.machine.mem.write(0o3001, 0x6162);
        os.machine.mem.write(0o3002, 0x6300);
        assert_eq!(os.read_string(0o3000).unwrap(), "abc");
        // Absurd length rejected.
        os.machine.mem.write(0o3000, 9999);
        assert!(matches!(os.read_string(0o3000), Err(OsError::BadString(_))));
    }

    #[test]
    fn vm_program_calls_the_os() {
        // A machine program prints "OK" through the PutChar stub bound by
        // hand (the loader test exercises fixup binding).
        let mut os = os();
        let putchar = os.symbols().resolve("PutChar").unwrap();
        let source = format!(
            "
            lda 0, chO
            jsr @stub
            lda 0, chK
            jsr @stub
            halt
chO:        .word 'O'
chK:        .word 'K'
stub:       .word {putchar}
            "
        );
        let code = alto_machine::assemble(&source).unwrap();
        os.machine.load_program(0o400, &code.words).unwrap();
        os.run_machine(1000).unwrap();
        assert_eq!(os.machine.display.transcript(), "OK");
    }

    #[test]
    fn ticks_reports_milliseconds() {
        let mut os = os();
        os.handle_syscall(SysCall::Ticks.code(), 0).unwrap();
        let before = os.machine.ac[0];
        os.machine
            .clock()
            .advance(alto_sim::SimTime::from_millis(1234));
        os.handle_syscall(SysCall::Ticks.code(), 0).unwrap();
        assert_eq!(os.machine.ac[0].wrapping_sub(before), 1234);
    }
}
