//! Operating-system error types.

use std::fmt;

use alto_fs::FsError;
use alto_machine::MachineError;
use alto_streams::StreamError;

/// Errors surfaced by the operating system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// File-system failure.
    Fs(FsError),
    /// Machine failure (bad program, assembler error, bad image).
    Machine(MachineError),
    /// Stream failure.
    Stream(StreamError),
    /// A system call arrived for a service whose level is not resident —
    /// the program `Junta`ed it away (§5.2).
    ServiceNotResident {
        /// The call that was attempted.
        call: &'static str,
        /// The level that would provide it.
        level: u8,
    },
    /// An unknown trap code reached the dispatcher.
    UnknownSysCall(u16),
    /// A bad stream/file handle was passed to a system call.
    BadHandle(u16),
    /// A reference to an operating-system procedure could not be bound
    /// (unknown symbol in a fixup table, §5.1).
    UnboundSymbol(String),
    /// The named command or program was not found by the Executive.
    CommandNotFound(String),
    /// The file exists but is not a loadable code file.
    NotAProgram(String),
    /// A string in simulated memory was malformed.
    BadString(u16),
    /// Junta level out of range.
    BadLevel(u8),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::Fs(e) => write!(f, "file system: {e}"),
            OsError::Machine(e) => write!(f, "machine: {e}"),
            OsError::Stream(e) => write!(f, "stream: {e}"),
            OsError::ServiceNotResident { call, level } => {
                write!(
                    f,
                    "{call} is not resident (level {level} was removed by Junta)"
                )
            }
            OsError::UnknownSysCall(code) => write!(f, "unknown system call {code}"),
            OsError::BadHandle(h) => write!(f, "bad stream handle {h}"),
            OsError::UnboundSymbol(s) => write!(f, "unbound OS procedure \"{s}\""),
            OsError::CommandNotFound(c) => write!(f, "command not found: {c}"),
            OsError::NotAProgram(n) => write!(f, "{n} is not a loadable program"),
            OsError::BadString(addr) => write!(f, "bad string at {addr:#o}"),
            OsError::BadLevel(l) => write!(f, "bad Junta level {l}"),
        }
    }
}

impl std::error::Error for OsError {}

impl From<FsError> for OsError {
    fn from(e: FsError) -> Self {
        OsError::Fs(e)
    }
}

impl From<MachineError> for OsError {
    fn from(e: MachineError) -> Self {
        OsError::Machine(e)
    }
}

impl From<StreamError> for OsError {
    fn from(e: StreamError) -> Self {
        OsError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(OsError::ServiceNotResident {
            call: "PutChar",
            level: 11
        }
        .to_string()
        .contains("level 11"));
        assert!(OsError::UnknownSysCall(99).to_string().contains("99"));
        assert!(OsError::BadHandle(3).to_string().contains("3"));
        assert!(OsError::UnboundSymbol("Gets".into())
            .to_string()
            .contains("Gets"));
        assert!(OsError::CommandNotFound("frob".into())
            .to_string()
            .contains("frob"));
        assert!(OsError::NotAProgram("x".into()).to_string().contains("x"));
        assert!(OsError::BadString(8).to_string().contains("0o10"));
        assert!(OsError::BadLevel(99).to_string().contains("99"));
        assert!(OsError::Fs(FsError::DiskFull).to_string().contains("full"));
    }

    #[test]
    fn conversions() {
        let _: OsError = FsError::DiskFull.into();
        let _: OsError = MachineError::BudgetExhausted.into();
        let _: OsError = StreamError::EndOfStream.into();
    }
}
