//! The Alto Operating System — the paper's primary contribution.
//!
//! "The operating system is a collection of commonly used subroutine
//! packages that are normally present in memory for the convenience of
//! user programs" (§5). This crate assembles the substrate crates into
//! that system:
//!
//! * **Levels and Junta** ([`levels`]) — the packages are organized into
//!   13 levels laid out from the top of memory down; [`AltoOs::junta`]
//!   removes higher-numbered levels, *actually freeing their words* for
//!   the program, and [`AltoOs::counter_junta`] restores them (§5.2).
//! * **World swap** ([`swap`]) — `OutLoad` writes the entire machine state
//!   to a disk file and `InLoad` restores one, with the written-flag and
//!   20-word message protocol of §4.1; boot files ([`boot`]) put a state's
//!   first page at the fixed disk address the hardware bootstrap reads.
//! * **Program loading** ([`loader`]) — code files are read from disk
//!   streams into low memory and their references to OS procedures are
//!   bound through fixup tables (§5.1).
//! * **The Executive** ([`exec`]) — the command interpreter that runs when
//!   a program returns (§5.1).
//! * **System calls** ([`syscalls`]) — the trap interface through which
//!   loaded programs reach the resident packages; each call is gated on
//!   its level being resident, so a program that `Junta`s away the display
//!   package really does lose `PutChar`.
//! * **Type-ahead** ([`typeahead`]) — the level-2 keyboard buffer that
//!   survives across program loads ("any characters typed ahead by the
//!   user when running one program are saved for interpretation by the
//!   next", §5.2).
//! * **Install-phase hints** ([`install`]) — the §3.6 pattern: create
//!   auxiliary files, store hints for them in a state file, and get them
//!   back at full disk speed on the next startup.

#![forbid(unsafe_code)]

pub mod boot;
pub mod debug;
pub mod diskless;
pub mod errors;
pub mod exec;
pub mod install;
pub mod levels;
pub mod loader;
pub mod os;
pub mod programs;
pub mod swap;
pub mod symbols;
pub mod syscalls;
pub mod sysdata;
pub mod typeahead;
pub mod vmisr;

pub use debug::{Breakpoint, DebugStop, SwateeDebugger};
pub use diskless::{BootServer, DisklessOs, FsPageService};
pub use errors::OsError;
pub use levels::{Level, LevelTable, LEVEL_COUNT};
pub use os::AltoOs;
pub use swap::{OutLoadResult, MESSAGE_WORDS};
pub use syscalls::SysCall;
