//! The standard utility programs.
//!
//! "The system code is made available as a set of independent subroutine
//! packages" (§2) — and the Alto's disks shipped with a standard toolbox
//! of loadable programs. This module provides the equivalent: small,
//! genuine machine-code utilities the Executive can run, written in the
//! included assembly and bound to the OS through fixup tables.
//!
//! | program | function |
//! |---|---|
//! | `type.run` | print the file named in `CmdArg` to the display |
//! | `copy.run` | copy the file named in `CmdArg` to the file in `CmdArg2` |
//! | `wc.run` | count the bytes of `CmdArg`, printing a decimal total |
//! | `echo.run` | echo type-ahead to the display until it runs dry |
//!
//! Programs take their arguments from two well-known string cells written
//! by [`AltoOs::set_command_args`] — the Alto's convention was a command
//! line left in memory by the Executive.

use alto_disk::Disk;

use crate::errors::OsError;
use crate::os::AltoOs;

/// Address of the first argument string (`.str` layout).
pub const CMD_ARG1: u16 = 0o200;
/// Address of the second argument string.
pub const CMD_ARG2: u16 = 0o240;
/// Maximum argument length in bytes.
pub const CMD_ARG_MAX: usize = 62;

impl<D: Disk> AltoOs<D> {
    /// Writes up to two argument strings at the well-known cells.
    pub fn set_command_args(&mut self, arg1: &str, arg2: &str) -> Result<(), OsError> {
        for (base, arg) in [(CMD_ARG1, arg1), (CMD_ARG2, arg2)] {
            if arg.len() > CMD_ARG_MAX {
                return Err(OsError::BadString(base));
            }
            let bytes = arg.as_bytes();
            self.machine.mem.write(base, bytes.len() as u16);
            for (i, chunk) in bytes.chunks(2).enumerate() {
                let hi = (chunk[0] as u16) << 8;
                let lo = chunk.get(1).map_or(0, |&b| b as u16);
                self.machine.mem.write(base + 1 + i as u16, hi | lo);
            }
        }
        Ok(())
    }

    /// Installs the standard toolbox onto the disk. Idempotent.
    pub fn install_standard_programs(&mut self) -> Result<(), OsError> {
        self.store_program(
            "type.run",
            &format!(
                r#"
        ; print the file named at CMD_ARG1
        lda 0, argp
        jsr @openr
        sta 0, handle
        lda 1, eofv
        sub# 0, 1, snr      ; open failed?
        jmp fail
loop:   lda 0, handle
        jsr @gets
        lda 1, eofv
        sub# 0, 1, snr
        jmp close
        jsr @putchar
        jmp loop
close:  lda 0, handle
        jsr @closes
        halt
fail:   lda 0, qm
        jsr @putchar
        halt
openr:  .fixup "OpenRead"
gets:   .fixup "Gets"
putchar: .fixup "PutChar"
closes: .fixup "Closes"
handle: .word 0
eofv:   .word 0xFFFF
qm:     .word '?'
argp:   .word {CMD_ARG1}
        "#
            ),
        )?;

        self.store_program(
            "copy.run",
            &format!(
                r#"
        ; copy CMD_ARG1 to CMD_ARG2
        lda 0, arg1p
        jsr @openr
        sta 0, inh
        lda 0, arg2p
        jsr @openw
        sta 0, outh
loop:   lda 0, inh
        jsr @gets
        lda 1, eofv
        sub# 0, 1, snr
        jmp done
        mov 0, 1
        lda 0, outh
        jsr @puts
        jmp loop
done:   lda 0, outh
        jsr @closes
        lda 0, inh
        jsr @closes
        halt
openr:  .fixup "OpenRead"
openw:  .fixup "OpenWrite"
gets:   .fixup "Gets"
puts:   .fixup "Puts"
closes: .fixup "Closes"
inh:    .word 0
outh:   .word 0
eofv:   .word 0xFFFF
arg1p:  .word {CMD_ARG1}
arg2p:  .word {CMD_ARG2}
        "#
            ),
        )?;

        self.store_program(
            "wc.run",
            &format!(
                r#"
        ; count the bytes of CMD_ARG1, print the count in decimal
        lda 0, argp
        jsr @openr
        sta 0, handle
        subz 2, 2           ; AC2 = byte count
loop:   lda 0, handle
        jsr @gets
        lda 1, eofv
        sub# 0, 1, snr
        jmp print
        inc 2, 2
        jmp loop
        ; ---- print AC2 in decimal by repeated subtraction ----
print:  lda 0, handle
        jsr @closes
        ; digits from 10000 down to 1
        subz 3, 3           ; AC3 = table index... (use memory cursor)
        lda 1, tblp
        sta 1, cursor
digit:  lda 1, @cursor      ; AC1 = current power of ten
        mov# 1, 1, snr      ; power == 0 -> done
        jmp nl
        subz 0, 0           ; AC0 = digit
count:  subz# 1, 2, snc     ; skip while AC2 >= AC1 (no borrow)
        jmp emit
        sub 1, 2            ; AC2 -= power
        inc 0, 0
        jmp count
emit:   lda 1, zero
        add 1, 0            ; AC0 = '0' + digit
        jsr @putchar
        isz cursor
        jmp digit
nl:     lda 0, nlv
        jsr @putchar
        halt
openr:  .fixup "OpenRead"
gets:   .fixup "Gets"
putchar: .fixup "PutChar"
closes: .fixup "Closes"
handle: .word 0
cursor: .word 0
eofv:   .word 0xFFFF
zero:   .word '0'
nlv:    .word 10
argp:   .word {CMD_ARG1}
tblp:   .word tbl
tbl:    .word 10000
        .word 1000
        .word 100
        .word 10
        .word 1
        .word 0
        "#
            ),
        )?;

        self.store_program(
            "echo.run",
            r#"
        ; echo type-ahead to the display until it runs dry
loop:   jsr @getchar
        lda 1, eofv
        sub# 0, 1, snr
        jmp done
        jsr @putchar
        jmp loop
done:   halt
getchar: .fixup "GetChar"
putchar: .fixup "PutChar"
eofv:   .word 0xFFFF
        "#,
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_fs::dir;
    use alto_machine::Machine;
    use alto_sim::{SimClock, SimTime, Trace};

    fn os_with_tools() -> AltoOs {
        let clock = SimClock::new();
        let machine = Machine::new(clock.clone(), Trace::new());
        let drive = DiskDrive::with_formatted_pack(clock, Trace::new(), DiskModel::Diablo31, 1);
        let mut os = AltoOs::install(machine, drive).unwrap();
        os.install_standard_programs().unwrap();
        os
    }

    #[test]
    fn type_prints_a_file() {
        let mut os = os_with_tools();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "note").unwrap();
        os.fs.write_file(f, b"hello from disk").unwrap();
        os.set_command_args("note", "").unwrap();
        os.run_program("type.run", 1_000_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "hello from disk");
    }

    #[test]
    fn type_reports_a_missing_file() {
        let mut os = os_with_tools();
        os.set_command_args("ghost", "").unwrap();
        os.run_program("type.run", 100_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "?");
    }

    #[test]
    fn copy_duplicates_bytes() {
        let mut os = os_with_tools();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "src").unwrap();
        let body: Vec<u8> = (0..700u32).map(|i| (i % 251) as u8).collect();
        os.fs.write_file(f, &body).unwrap();
        os.set_command_args("src", "dst").unwrap();
        os.run_program("copy.run", 10_000_000).unwrap();
        let root = os.fs.root_dir();
        let g = dir::lookup(&mut os.fs, root, "dst").unwrap().unwrap();
        assert_eq!(os.fs.read_file(g).unwrap(), body);
    }

    #[test]
    fn wc_counts_in_decimal() {
        let mut os = os_with_tools();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "counted").unwrap();
        os.fs.write_file(f, &vec![b'x'; 1234]).unwrap();
        os.set_command_args("counted", "").unwrap();
        os.run_program("wc.run", 10_000_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "01234\n");
    }

    #[test]
    fn wc_zero_byte_file() {
        let mut os = os_with_tools();
        let root = os.fs.root_dir();
        dir::create_named_file(&mut os.fs, root, "empty").unwrap();
        os.set_command_args("empty", "").unwrap();
        os.run_program("wc.run", 1_000_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "00000\n");
    }

    #[test]
    fn echo_replays_typeahead() {
        let mut os = os_with_tools();
        os.type_text("echoed!");
        os.machine.clock().advance(SimTime::from_millis(20));
        os.service_keyboard();
        os.run_program("echo.run", 1_000_000).unwrap();
        assert_eq!(os.machine.display.transcript(), "echoed!");
    }

    #[test]
    fn overlong_args_rejected() {
        let mut os = os_with_tools();
        assert!(os.set_command_args(&"a".repeat(63), "").is_err());
        assert!(os.set_command_args("", &"b".repeat(63)).is_err());
        assert!(os
            .set_command_args(&"a".repeat(62), &"b".repeat(62))
            .is_ok());
    }
}
