//! Bootstrapping (§4).
//!
//! "A hardware bootstrap button causes the state of the machine to be
//! restored from a disk file whose first page is kept at a fixed location
//! on the disk." The boot file's first data page is pinned at disk address
//! 0; the bootstrap reads it by address alone — no directory, no
//! descriptor — and follows the links, exactly what microcode could do.
//!
//! Also here: the *emergency* OutLoad of §4.1, a last-ditch state save
//! that "could not preserve some of the most vital state (e.g., processor
//! registers)".

use alto_disk::{Disk, DiskAddress, Label, DATA_WORDS};
use alto_fs::descriptor::{boot_fv, BOOT_PAGE_DA};
use alto_fs::file::{bytes_to_words, unpack_bytes, words_to_bytes};
use alto_fs::leader::LeaderPage;
use alto_fs::names::{FileFullName, PageName};
use alto_fs::{dir, page};
use alto_machine::state::MachineState;

use crate::errors::OsError;
use crate::os::AltoOs;
use crate::swap::{FLAG_ADDR, MESSAGE_ADDR, MESSAGE_WORDS};

/// The boot file's conventional directory name.
pub const BOOT_FILE_NAME: &str = "Boot.state";

impl<D: Disk> AltoOs<D> {
    /// Installs the current machine state as the boot file: a file whose
    /// page 1 sits at the fixed disk address 0. Subsequent
    /// [`AltoOs::bootstrap`] calls restore this state.
    pub fn install_boot_file(&mut self) -> Result<FileFullName, OsError> {
        let fv = boot_fv();
        let root = self.fs.root_dir();
        let existing = dir::lookup(&mut self.fs, root, BOOT_FILE_NAME)?;
        let file = match existing {
            Some(f) => f,
            None => {
                // Lay the skeleton down by hand: leader anywhere, page 1
                // pinned at DA 0 (reserved busy since format).
                let leader = LeaderPage::new(BOOT_FILE_NAME, self.fs.now()).map_err(OsError::Fs)?;
                let leader_label = Label {
                    fid: fv.serial.words(),
                    version: fv.version,
                    page_number: 0,
                    length: alto_fs::file::PAGE_BYTES as u16,
                    next: BOOT_PAGE_DA,
                    prev: DiskAddress::NIL,
                };
                let leader_da = self
                    .fs
                    .allocate_page(None, leader_label, &leader.encode())?;
                let page1_label = Label {
                    fid: fv.serial.words(),
                    version: fv.version,
                    page_number: 1,
                    length: 0,
                    next: DiskAddress::NIL,
                    prev: leader_da,
                };
                page::allocate_at(
                    self.fs.disk_mut(),
                    BOOT_PAGE_DA,
                    page1_label,
                    &[0; DATA_WORDS],
                )?;
                let file = FileFullName::new(fv, leader_da);
                // Record the last-page hint.
                let mut leader = leader;
                leader.last_page = 1;
                leader.last_da = BOOT_PAGE_DA;
                self.fs.write_leader(file, &leader)?;
                dir::insert(&mut self.fs, root, BOOT_FILE_NAME, file)?;
                file
            }
        };
        // Write the state image in place; page 1 never moves off DA 0
        // because same-size (and growing-in-place) rewrites reuse pages.
        let state = self.capture_for_boot();
        let bytes = words_to_bytes(&state.encode());
        self.fs.write_file(file, &bytes)?;
        Ok(file)
    }

    fn capture_for_boot(&mut self) -> MachineState {
        // Like OutLoad: the image carries the restored-branch flag.
        self.machine.mem.write(FLAG_ADDR, 0);
        for i in 0..MESSAGE_WORDS as u16 {
            self.machine.mem.write(MESSAGE_ADDR + i, 0);
        }
        MachineState::capture(&self.machine)
    }

    /// The hardware bootstrap button: reads the sector at the fixed boot
    /// address, identifies the boot file from its *label*, follows the
    /// links to collect the state image, and restores it. No directory or
    /// descriptor is consulted.
    pub fn bootstrap(&mut self) -> Result<(), OsError> {
        let disk = self.fs.disk_mut();
        let (label, data) = page::read_raw(disk, BOOT_PAGE_DA)?;
        if !label.is_in_use() || label.page_number != 1 {
            return Err(OsError::Fs(alto_fs::FsError::Corrupt {
                da: BOOT_PAGE_DA,
                what: "no boot file at the fixed address",
            }));
        }
        let fv = alto_fs::names::Fv::from_label(&label);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&unpack_bytes(&data)[..label.length as usize]);
        // Installs lay the state image out consecutively, so the boot
        // loader makes the §3.6 guess: batch reads at next, next+1, … and
        // let each sector's label check reject a wrong guess. The links in
        // the captured labels steer recovery, so a scattered boot file
        // still loads — it just pays a revolution per jump.
        const BOOT_GUESS: u16 = 32;
        let mut next = label.next;
        let mut page_no = 1u16;
        'chain: while !next.is_nil() {
            let first = next;
            let results = page::read_pages_guessed(
                disk,
                fv,
                PageName::new(fv, page_no + 1, first),
                BOOT_GUESS,
            )?;
            for (j, res) in results.into_iter().enumerate() {
                match res {
                    Ok((label, data)) => {
                        bytes.extend_from_slice(&unpack_bytes(&data)[..label.length as usize]);
                        page_no += 1;
                        next = label.next;
                        let guessed = DiskAddress(first.0.wrapping_add(j as u16 + 1));
                        if next.is_nil() || next != guessed {
                            continue 'chain;
                        }
                    }
                    // Entry 0's address came from a real link; its failure
                    // is authoritative. Later entries were guesses.
                    Err(e) if j == 0 => return Err(e.into()),
                    Err(_) => continue 'chain,
                }
            }
        }
        let state = MachineState::decode(&bytes_to_words(&bytes))?;
        state.restore(&mut self.machine);
        // Re-attach the resident structures carried in the image.
        let l2 = self.levels().level(2).expect("level 2 exists");
        self.typeahead = crate::typeahead::TypeAhead::attach(&self.machine.mem, l2.base);
        Ok(())
    }

    /// The emergency OutLoad (§4.1): saves the memory image but loses the
    /// processor registers (they are zero in the saved state).
    pub fn emergency_out_load(&mut self, name: &str) -> Result<(), OsError> {
        let file = self.create_state_file(name)?;
        self.machine.mem.write(FLAG_ADDR, 0);
        let mut state = MachineState::capture(&self.machine);
        state.ac = [0; 4];
        state.pc = 0;
        state.carry = false;
        let bytes = words_to_bytes(&state.encode());
        self.fs.write_file(file, &bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, SimTime, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    #[test]
    fn boot_file_page_one_is_at_the_fixed_address() {
        let mut os = os();
        os.install_boot_file().unwrap();
        let label = os
            .fs
            .disk()
            .pack()
            .unwrap()
            .sector(BOOT_PAGE_DA)
            .unwrap()
            .decoded_label();
        assert!(label.is_in_use());
        assert_eq!(label.page_number, 1);
        assert_eq!(alto_fs::names::Fv::from_label(&label), boot_fv());
    }

    #[test]
    fn bootstrap_restores_the_installed_state() {
        let mut os = os();
        os.machine.pc = 0o7777;
        os.machine.ac[1] = 0xBEA7;
        os.machine.mem.write(0o6000, 0x1234);
        os.install_boot_file().unwrap();

        // The machine is then trashed by a wild program…
        os.machine.pc = 0;
        os.machine.ac = [0; 4];
        os.machine.mem.write(0o6000, 0);
        // …and the user pushes the boot button.
        os.bootstrap().unwrap();
        assert_eq!(os.machine.pc, 0o7777);
        assert_eq!(os.machine.ac[1], 0xBEA7);
        assert_eq!(os.machine.mem.read(0o6000), 0x1234);
    }

    #[test]
    fn bootstrap_survives_losing_every_directory() {
        // The bootstrap consults no directory: scramble them all.
        let mut os = os();
        os.machine.ac[3] = 321;
        os.install_boot_file().unwrap();
        let root = os.fs.root_dir();
        os.fs.write_file(root, &[0xFF; 100]).unwrap();
        os.machine.ac[3] = 0;
        os.bootstrap().unwrap();
        assert_eq!(os.machine.ac[3], 321);
    }

    #[test]
    fn reinstalling_overwrites_in_place() {
        let mut os = os();
        os.machine.ac[0] = 1;
        os.install_boot_file().unwrap();
        let clock = os.machine.clock().clone();
        os.machine.ac[0] = 2;
        let t0 = clock.now();
        os.install_boot_file().unwrap();
        let dt = clock.now() - t0;
        // Second install is an in-place streaming rewrite: ~1 s, not the
        // ~15 s of initial allocation.
        assert!(dt < SimTime::from_secs(3), "reinstall took {dt}");
        os.machine.ac[0] = 0;
        os.bootstrap().unwrap();
        assert_eq!(os.machine.ac[0], 2);
    }

    #[test]
    fn bootstrap_without_boot_file_fails_cleanly() {
        let mut os = os();
        assert!(matches!(
            os.bootstrap(),
            Err(OsError::Fs(alto_fs::FsError::Corrupt { .. }))
        ));
    }

    #[test]
    fn emergency_out_load_loses_registers() {
        let mut os = os();
        os.machine.ac = [5, 6, 7, 8];
        os.machine.pc = 0o1234;
        os.machine.mem.write(0o3000, 99);
        os.emergency_out_load("Emergency.state").unwrap();
        os.in_load_named("Emergency.state", &[0; crate::swap::MESSAGE_WORDS])
            .unwrap();
        // Memory survived; the vital processor state did not (§4.1).
        assert_eq!(os.machine.mem.read(0o3000), 99);
        assert_eq!(os.machine.pc, 0);
        assert_eq!(os.machine.ac[1], 0);
    }
}
