//! The Executive (§5.1).
//!
//! "If the program returns, the system loads and runs a standard Executive
//! program. The Executive accepts user commands from the keyboard and
//! executes them, often by calling the loader to invoke a program the user
//! has requested."
//!
//! Built-in commands:
//!
//! | command | effect |
//! |---|---|
//! | `ls` | list the root directory |
//! | `type NAME` | print a file |
//! | `copy SRC DST` | copy a file |
//! | `dump NAME` | octal word dump of a file's first page |
//! | `delete NAME` | remove entry and file |
//! | `rename OLD NEW` | re-enter a file under a new name |
//! | `space` | free/used page counts |
//! | `cachestats` | hint-cache hit/miss/invalidation counters |
//! | `iostat` | per-disk I/O counters: sectors, batches, readahead, write-behind, overlap, retry |
//! | `levels` | show the Junta level table |
//! | `scavenge` | run the Scavenger |
//! | `compact` | run the compacting scavenger |
//! | `snapshot` | snapshot all directories to the journal package |
//! | `recover` | restore directories from snapshot + journal |
//! | `quit` | leave the Executive |
//! | anything else | run it as a program via the loader |

use alto_disk::Disk;
use alto_fs::{compact::Compactor, dir, Scavenger};

use crate::errors::OsError;
use crate::os::AltoOs;

/// Why the Executive stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecExit {
    /// The user typed `quit`.
    Quit,
    /// The keyboard script ran dry (no more input will ever arrive).
    OutOfInput,
    /// The command budget was reached.
    Budget,
}

impl<D: Disk> AltoOs<D> {
    /// Reads one command line from the type-ahead buffer, echoing it.
    /// Returns `None` when input is exhausted mid-line.
    pub fn read_command_line(&mut self) -> Option<String> {
        let mut line = String::new();
        loop {
            match self.get_char() {
                Some(b'\n') | Some(b'\r') => {
                    self.put_char(b'\n');
                    return Some(line);
                }
                Some(c) => {
                    self.put_char(c);
                    line.push(c as char);
                }
                None => {
                    // No more keys *now*; if the script still has keys for
                    // later, advance time to them (the Executive blocks on
                    // input); otherwise give up.
                    if self.machine.keyboard.remaining() == 0 {
                        return None;
                    }
                    self.machine
                        .clock()
                        // lint: allow(clock-discipline) — the Executive blocks on scripted
                        // keyboard input; idling until the next key is modeled as waiting,
                        // not as a disk I/O cost
                        .advance(alto_sim::SimTime::from_millis(1));
                }
            }
        }
    }

    /// Executes one command line. Returns false for `quit`.
    pub fn execute_command(&mut self, line: &str) -> Result<bool, OsError> {
        let mut parts = line.split_whitespace();
        let Some(command) = parts.next() else {
            return Ok(true); // empty line
        };
        let arg1 = parts.next();
        let arg2 = parts.next();
        match command {
            "quit" => return Ok(false),
            "ls" => {
                let root = self.fs.root_dir();
                let entries = dir::list(&mut self.fs, root)?;
                for e in entries {
                    let len = self.fs.file_length(e.file).unwrap_or(0);
                    self.put_str(&format!("{:<24} {:>8} bytes\n", e.name, len));
                }
            }
            "type" => {
                let name =
                    arg1.ok_or_else(|| OsError::CommandNotFound("type: missing name".into()))?;
                let root = self.fs.root_dir();
                let file = dir::lookup(&mut self.fs, root, name)?
                    .ok_or_else(|| OsError::CommandNotFound(name.to_string()))?;
                let bytes = self.read_via_stream(file)?;
                let text: String = bytes.iter().map(|&b| b as char).collect();
                self.put_str(&text);
                self.put_char(b'\n');
            }
            "copy" => {
                let (Some(src), Some(dst)) = (arg1, arg2) else {
                    return Err(OsError::CommandNotFound("copy: need SRC DST".into()));
                };
                let root = self.fs.root_dir();
                let from = dir::lookup(&mut self.fs, root, src)?
                    .ok_or_else(|| OsError::CommandNotFound(src.to_string()))?;
                let bytes = self.read_via_stream(from)?;
                let to = match dir::lookup(&mut self.fs, root, dst)? {
                    Some(f) => f,
                    None => dir::create_named_file(&mut self.fs, root, dst)?,
                };
                self.fs.write_file(to, &bytes)?;
                self.put_str(&format!("copied {} bytes\n", bytes.len()));
            }
            "dump" => {
                let name =
                    arg1.ok_or_else(|| OsError::CommandNotFound("dump: missing name".into()))?;
                let root = self.fs.root_dir();
                let file = dir::lookup(&mut self.fs, root, name)?
                    .ok_or_else(|| OsError::CommandNotFound(name.to_string()))?;
                let bytes = self.fs.read_file(file)?;
                let words = alto_fs::file::bytes_to_words(&bytes);
                for (i, chunk) in words.chunks(8).take(8).enumerate() {
                    let mut line = format!("{:#06o}: ", i * 8);
                    for w in chunk {
                        line.push_str(&format!("{w:06o} "));
                    }
                    line.push('\n');
                    self.put_str(&line);
                }
                if words.len() > 64 {
                    self.put_str(&format!("... ({} words total)\n", words.len()));
                }
            }
            "space" => {
                let total = self.fs.descriptor().bitmap.len();
                let free = self.fs.descriptor().bitmap.free_count();
                self.put_str(&format!(
                    "{free} pages free of {total} ({} bytes free)\n",
                    free as u64 * 512
                ));
            }
            "cachestats" => {
                let s = self.fs.cache_stats();
                self.put_str(&format!(
                    "name index: {} hits, {} misses; leader cache: {} hits, {} misses\n\
                     {} verify failures, {} invalidations\n",
                    s.name_hits,
                    s.name_misses,
                    s.leader_hits,
                    s.leader_misses,
                    s.verify_failures,
                    s.invalidations
                ));
            }
            "iostat" => {
                let s = self.fs.disk().io_stats();
                self.put_str(&format!(
                    "{} sectors read, {} written; {} batches ({} chained of {} batched ops)\n\
                     readahead: {} hits, {} prefetched; \
                     write-behind: {} drains, {} pages coalesced\n\
                     overlap: {} batches, {} saved\n\
                     retry: {} soft errors, {} retries, {} recovered, {} hard failures\n",
                    s.sectors_read,
                    s.sectors_written,
                    s.batches,
                    s.chained_transfers,
                    s.batched_ops,
                    s.readahead_hits,
                    s.readahead_prefetched,
                    s.wb_drains,
                    s.wb_coalesced,
                    s.overlap_batches,
                    s.overlap_saved,
                    s.soft_errors,
                    s.retries,
                    s.recovered,
                    s.hard_failures,
                ));
            }
            "snapshot" => {
                let j = match alto_fs::journal::DirJournal::open(&mut self.fs) {
                    Ok(j) => j,
                    Err(_) => alto_fs::journal::DirJournal::install(&mut self.fs)?,
                };
                let dirs = j.take_snapshot(&mut self.fs)?;
                self.put_str(&format!("snapshotted {dirs} directories\n"));
            }
            "recover" => {
                let j = alto_fs::journal::DirJournal::open(&mut self.fs)?;
                let (restored, replayed) = j.recover(&mut self.fs)?;
                self.put_str(&format!(
                    "restored {restored} directories, replayed {replayed} changes\n"
                ));
            }
            "delete" => {
                let name =
                    arg1.ok_or_else(|| OsError::CommandNotFound("delete: missing name".into()))?;
                self.delete_named(name)?;
                self.put_str("deleted\n");
            }
            "rename" => {
                let (Some(old), Some(new)) = (arg1, arg2) else {
                    return Err(OsError::CommandNotFound("rename: need OLD NEW".into()));
                };
                let root = self.fs.root_dir();
                let file = dir::remove(&mut self.fs, root, old)?
                    .ok_or_else(|| OsError::CommandNotFound(old.to_string()))?;
                dir::insert(&mut self.fs, root, new, file)?;
                self.put_str("renamed\n");
            }
            "levels" => {
                let table = self.levels().to_string();
                self.put_str(&table);
            }
            "scavenge" => {
                let report = Scavenger::run(&mut self.fs)?;
                self.put_str(&format!(
                    "scavenged: {} files, {} free pages, {} orphans adopted\n",
                    report.files, report.free_pages, report.orphans_adopted
                ));
            }
            "compact" => {
                let report = Compactor::run(&mut self.fs)?;
                self.put_str(&format!(
                    "compacted: {} pages moved, {} files consecutive\n",
                    report.pages_moved, report.consecutive_files
                ));
            }
            name => {
                // Not a builtin: run it as a program, passing any
                // arguments through the well-known command cells.
                self.set_command_args(arg1.unwrap_or(""), arg2.unwrap_or(""))?;
                match self.run_program(name, 10_000_000) {
                    Ok(_) => {}
                    Err(OsError::CommandNotFound(_)) => {
                        self.put_str(&format!("?{name}\n"));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(true)
    }

    /// Runs the Executive: reads and executes commands until `quit`, input
    /// exhaustion, or `max_commands`.
    pub fn run_executive(&mut self, max_commands: u32) -> Result<ExecExit, OsError> {
        self.put_str("> ");
        let mut executed = 0;
        while executed < max_commands {
            let Some(line) = self.read_command_line() else {
                return Ok(ExecExit::OutOfInput);
            };
            executed += 1;
            match self.execute_command(&line) {
                Ok(true) => {}
                Ok(false) => return Ok(ExecExit::Quit),
                Err(e) => {
                    let msg = format!("error: {e}\n");
                    self.put_str(&msg);
                }
            }
            self.put_str("> ");
        }
        Ok(ExecExit::Budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alto_disk::{DiskDrive, DiskModel};
    use alto_machine::Machine;
    use alto_sim::{SimClock, Trace};

    fn os() -> AltoOs {
        let clock = SimClock::new();
        let trace = Trace::new();
        let machine = Machine::new(clock.clone(), trace.clone());
        let drive = DiskDrive::with_formatted_pack(clock, trace, DiskModel::Diablo31, 1);
        AltoOs::install(machine, drive).unwrap()
    }

    fn transcript(os: &AltoOs) -> &str {
        os.machine.display.transcript()
    }

    #[test]
    fn ls_lists_the_root_directory() {
        let mut os = os();
        os.execute_command("ls").unwrap();
        let t = transcript(&os);
        assert!(t.contains("SysDir"));
        assert!(t.contains("DiskDescriptor"));
    }

    #[test]
    fn type_prints_file_contents() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "note.txt").unwrap();
        os.fs.write_file(f, b"remember the milk").unwrap();
        os.execute_command("type note.txt").unwrap();
        assert!(transcript(&os).contains("remember the milk"));
    }

    #[test]
    fn delete_and_rename() {
        let mut os = os();
        let root = os.fs.root_dir();
        dir::create_named_file(&mut os.fs, root, "old.txt").unwrap();
        os.execute_command("rename old.txt new.txt").unwrap();
        assert!(dir::lookup(&mut os.fs, root, "new.txt").unwrap().is_some());
        assert!(dir::lookup(&mut os.fs, root, "old.txt").unwrap().is_none());
        os.execute_command("delete new.txt").unwrap();
        assert!(dir::lookup(&mut os.fs, root, "new.txt").unwrap().is_none());
    }

    #[test]
    fn levels_command_prints_the_table() {
        let mut os = os();
        os.execute_command("levels").unwrap();
        assert!(transcript(&os).contains("Disk streams"));
    }

    #[test]
    fn scavenge_command_runs() {
        let mut os = os();
        os.execute_command("scavenge").unwrap();
        assert!(transcript(&os).contains("scavenged"));
    }

    #[test]
    fn unknown_command_reports() {
        let mut os = os();
        os.execute_command("frobnicate").unwrap();
        assert!(transcript(&os).contains("?frobnicate"));
    }

    #[test]
    fn full_session_from_the_keyboard() {
        let mut os = os();
        os.type_text("ls\nquit\n");
        let exit = os.run_executive(10).unwrap();
        assert_eq!(exit, ExecExit::Quit);
        let t = transcript(&os);
        assert!(t.contains("> ls"));
        assert!(t.contains("SysDir"));
    }

    #[test]
    fn executive_runs_a_stored_program() {
        let mut os = os();
        os.store_program(
            "greet.run",
            r#"
            lda 0, ch
            jsr @putchar
            halt
putchar:    .fixup "PutChar"
ch:         .word '!'
            "#,
        )
        .unwrap();
        os.type_text("greet.run\nquit\n");
        os.run_executive(10).unwrap();
        assert!(transcript(&os).contains('!'));
    }

    #[test]
    fn out_of_input_ends_the_session() {
        let mut os = os();
        os.type_text("ls\n"); // no quit
        let exit = os.run_executive(10).unwrap();
        assert_eq!(exit, ExecExit::OutOfInput);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut os = os();
        os.type_text("type nothing.txt\nls\nquit\n");
        let exit = os.run_executive(10).unwrap();
        assert_eq!(exit, ExecExit::Quit);
        assert!(transcript(&os).contains("error:"));
        assert!(transcript(&os).contains("SysDir"));
    }

    #[test]
    fn type_ahead_spans_commands() {
        // Keys typed while one command runs are interpreted by the next —
        // the §5.2 type-ahead property.
        let mut os = os();
        os.type_text("ls\nquit\n"); // all scripted before anything runs
        let exit = os.run_executive(10).unwrap();
        assert_eq!(exit, ExecExit::Quit);
    }

    #[test]
    fn copy_duplicates_files() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "orig.txt").unwrap();
        os.fs.write_file(f, b"twice is nice").unwrap();
        os.execute_command("copy orig.txt dup.txt").unwrap();
        let g = dir::lookup(&mut os.fs, root, "dup.txt").unwrap().unwrap();
        assert_eq!(os.fs.read_file(g).unwrap(), b"twice is nice");
        assert!(transcript(&os).contains("copied 13 bytes"));
    }

    #[test]
    fn dump_shows_octal_words() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "w.dat").unwrap();
        os.fs.write_file(f, &[0o125, 0o252]).unwrap(); // word 0o052652
        os.execute_command("dump w.dat").unwrap();
        assert!(transcript(&os).contains("052652"), "{}", transcript(&os));
    }

    #[test]
    fn cachestats_reports_hits() {
        let mut os = os();
        let root = os.fs.root_dir();
        dir::create_named_file(&mut os.fs, root, "warm.txt").unwrap();
        // First lookup builds the index, second hits it.
        os.execute_command("type warm.txt").unwrap_or(true);
        os.execute_command("type warm.txt").unwrap_or(true);
        os.execute_command("cachestats").unwrap();
        assert!(transcript(&os).contains("name index:"));
        assert!(os.fs.cache_stats().name_hits > 0);
    }

    #[test]
    fn iostat_reports_io_counters() {
        let mut os = os();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "big.dat").unwrap();
        os.fs.write_file(f, &vec![0x42u8; 3000]).unwrap();
        os.execute_command("type big.dat").unwrap();
        os.execute_command("iostat").unwrap();
        let t = transcript(&os);
        assert!(t.contains("sectors read"), "{t}");
        assert!(t.contains("write-behind:"), "{t}");
        assert!(t.contains("retry:"), "{t}");
        // The `type` above went through the stream's bulk path, so the
        // counters show real traffic — including readahead prefetches.
        let s = os.fs.disk().io_stats();
        assert!(s.sectors_read > 0);
        assert!(s.readahead_prefetched > 0);
    }

    #[test]
    fn space_reports_free_pages() {
        let mut os = os();
        os.execute_command("space").unwrap();
        assert!(transcript(&os).contains("pages free of 4872"));
    }

    #[test]
    fn snapshot_and_recover_commands() {
        let mut os = os();
        os.execute_command("snapshot").unwrap();
        assert!(transcript(&os).contains("snapshotted"));
        os.execute_command("recover").unwrap();
        assert!(transcript(&os).contains("restored"));
    }

    #[test]
    fn executive_passes_arguments_to_programs() {
        let mut os = os();
        os.install_standard_programs().unwrap();
        let root = os.fs.root_dir();
        let f = dir::create_named_file(&mut os.fs, root, "todo").unwrap();
        os.fs.write_file(f, b"ship it").unwrap();
        os.type_text("type.run todo\nquit\n");
        os.run_executive(10).unwrap();
        assert!(transcript(&os).contains("ship it"));
    }

    #[test]
    fn command_budget_is_enforced() {
        let mut os = os();
        os.type_text("ls\nls\nls\nquit\n");
        // Budget of 2 commands: stops before reaching quit.
        assert_eq!(os.run_executive(2).unwrap(), ExecExit::Budget);
    }
}
