//! The level organization of the system and Junta (§5.2).
//!
//! "The system is organized into several levels of services … the lowest
//! level, which contains the most commonly used services, is at the very
//! top of memory. Less ubiquitous services are in levels with higher
//! numbers, located lower in memory. The highest level number to be
//! retained is passed as an argument to Junta, which removes all
//! higher-numbered levels and frees the storage they occupy."
//!
//! The table below reproduces the paper's level list verbatim. The sizes
//! are plausible for the original (the paper gives only one figure —
//! `InLoad`/`OutLoad` are "about 900 words" — which level 1 honours).

use std::fmt;

/// Number of levels (the paper numbers them 1–13; 5 and 6 are the disk
/// code and data, which we keep as separate entries like the paper's
/// "5,6" row).
pub const LEVEL_COUNT: u8 = 13;

/// One level of the resident system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Level {
    /// Level number (1 = most ubiquitous, at the very top of memory).
    pub number: u8,
    /// What the level provides (paper's wording).
    pub name: &'static str,
    /// Resident size in words.
    pub words: u16,
    /// First word of the level's region (inclusive).
    pub base: u16,
}

/// The paper's level table: (number, name, words).
const LEVELS: [(u8, &str, u16); LEVEL_COUNT as usize] = [
    (1, "OutLoad/InLoad, CounterJunta", 900),
    (2, "Keyboard input buffer", 128),
    (3, "Hints for important files", 256),
    (4, "BCPL runtime procedures", 512),
    (5, "Disk code (standard disk object)", 768),
    (6, "Disk data (standard disk object)", 256),
    (7, "Zones (standard free-storage object)", 512),
    (8, "Disk streams", 1024),
    (9, "Disk directories", 768),
    (10, "Keyboard streams", 256),
    (11, "Display streams", 512),
    (12, "Program loader and Junta", 768),
    (13, "System free storage", 4096),
];

/// The memory layout of the resident system.
#[derive(Debug, Clone)]
pub struct LevelTable {
    levels: Vec<Level>,
    /// Highest level currently resident (after a Junta it shrinks).
    resident: u8,
}

impl Default for LevelTable {
    fn default() -> Self {
        LevelTable::new()
    }
}

impl LevelTable {
    /// Builds the layout: level 1 ends at the top word of memory, each
    /// higher-numbered level sits below its predecessor.
    pub fn new() -> LevelTable {
        let mut levels = Vec::with_capacity(LEVEL_COUNT as usize);
        let mut top: u32 = 0x1_0000; // one past the last word
        for (number, name, words) in LEVELS {
            top -= words as u32;
            levels.push(Level {
                number,
                name,
                words,
                base: top as u16,
            });
        }
        LevelTable {
            levels,
            resident: LEVEL_COUNT,
        }
    }

    /// The level with the given number.
    pub fn level(&self, number: u8) -> Option<&Level> {
        self.levels.get(number.checked_sub(1)? as usize)
    }

    /// All levels, in number order.
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Highest level currently resident.
    pub fn resident(&self) -> u8 {
        self.resident
    }

    /// True if the service level is resident.
    pub fn is_resident(&self, number: u8) -> bool {
        number >= 1 && number <= self.resident
    }

    /// Performs the bookkeeping of a Junta: levels above `keep` stop being
    /// resident. Returns the number of words freed.
    pub fn junta(&mut self, keep: u8) -> u32 {
        let keep = keep.clamp(1, LEVEL_COUNT);
        let freed = self
            .levels
            .iter()
            .filter(|l| l.number > keep && l.number <= self.resident)
            .map(|l| l.words as u32)
            .sum();
        self.resident = self.resident.min(keep);
        freed
    }

    /// Restores all levels (CounterJunta bookkeeping).
    pub fn counter_junta(&mut self) {
        self.resident = LEVEL_COUNT;
    }

    /// The first word of the resident system: everything below this is the
    /// user program's to use.
    pub fn resident_base(&self) -> u16 {
        self.levels
            .iter()
            .filter(|l| l.number <= self.resident)
            .map(|l| l.base)
            .min()
            .unwrap_or(u16::MAX)
    }

    /// Total resident words.
    pub fn resident_words(&self) -> u32 {
        self.levels
            .iter()
            .filter(|l| l.number <= self.resident)
            .map(|l| l.words as u32)
            .sum()
    }
}

impl fmt::Display for LevelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.levels {
            let mark = if self.is_resident(l.number) {
                "resident"
            } else {
                "freed"
            };
            writeln!(
                f,
                "{:2}. {:<42} {:5} words at {:#06x}  [{}]",
                l.number, l.name, l.words, l.base, mark
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_levels_in_paper_order() {
        let t = LevelTable::new();
        assert_eq!(t.levels().len(), 13);
        assert_eq!(t.level(1).unwrap().name, "OutLoad/InLoad, CounterJunta");
        assert_eq!(t.level(13).unwrap().name, "System free storage");
        // The paper's single hard number: InLoad/OutLoad ≈ 900 words.
        assert_eq!(t.level(1).unwrap().words, 900);
    }

    #[test]
    fn level_one_is_at_the_very_top_of_memory() {
        let t = LevelTable::new();
        let l1 = t.level(1).unwrap();
        assert_eq!(l1.base as u32 + l1.words as u32, 0x1_0000);
        // Monotone: higher numbers sit lower.
        for pair in t.levels().windows(2) {
            assert!(pair[1].base < pair[0].base);
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        let t = LevelTable::new();
        for pair in t.levels().windows(2) {
            assert_eq!(
                pair[1].base as u32 + pair[1].words as u32,
                pair[0].base as u32
            );
        }
    }

    #[test]
    fn junta_frees_words_and_clears_residency() {
        let mut t = LevelTable::new();
        let before = t.resident_words();
        let freed = t.junta(8);
        assert_eq!(t.resident(), 8);
        assert!(!t.is_resident(9));
        assert!(t.is_resident(8));
        assert_eq!(t.resident_words() + freed, before);
        // Freeing more: idempotent at the same level.
        assert_eq!(t.junta(8), 0);
        // Junta can only remove, never restore.
        assert_eq!(t.junta(10), 0);
        assert_eq!(t.resident(), 8);
    }

    #[test]
    fn counter_junta_restores_everything() {
        let mut t = LevelTable::new();
        t.junta(1);
        assert_eq!(t.resident(), 1);
        t.counter_junta();
        assert_eq!(t.resident(), 13);
        assert!(t.is_resident(13));
    }

    #[test]
    fn resident_base_moves_up_as_levels_are_freed() {
        let mut t = LevelTable::new();
        let full = t.resident_base();
        t.junta(4);
        let slim = t.resident_base();
        assert!(slim > full, "freeing levels must raise the resident floor");
        // With only level 1 left, the program owns nearly everything.
        t.junta(1);
        assert_eq!(t.resident_base() as u32, 0x1_0000 - 900);
    }

    #[test]
    fn display_lists_levels() {
        let mut t = LevelTable::new();
        t.junta(5);
        let s = t.to_string();
        assert!(s.contains("Disk streams"));
        assert!(s.contains("freed"));
        assert!(s.contains("resident"));
    }
}
